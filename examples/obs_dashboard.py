"""Live TTY dashboard over the engine's observability surface.

A 4-shard SHE-CM engine ingests a Zipf stream while the terminal
redraws once per window: per-shard ingest/flush counters and SHE probe
state (fill ratio, young/perfect/aged cells, cleaning work), the flush
latency percentiles, and the slowest spans of the latest flush trace.
A `MetricsExporter` serves the same numbers over HTTP while the loop
runs, so you can `curl <url>/metrics` from another terminal.

Run:  python examples/obs_dashboard.py           # live loop
      python examples/obs_dashboard.py --smoke   # one frame, for CI
"""

import sys
import time
import urllib.request

from repro.datasets import BoundedZipf
from repro.obs import MetricsExporter
from repro.service import EngineConfig, StreamEngine

WINDOW = 1 << 13
N_WINDOWS = 8
CHUNK = 2048
SHARDS = 4


def _bar(frac: float, width: int = 20) -> str:
    full = int(round(max(0.0, min(1.0, frac)) * width))
    return "#" * full + "." * (width - full)


def _frames(probe: dict) -> list[dict]:
    return probe["frames"] if "frames" in probe else [probe["frame"]]


def render(engine: StreamEngine, url: str) -> str:
    engine.update_probe_gauges()
    snap = engine.obs.registry.snapshot()
    lines = [
        f"SHE engine dashboard     {url}/metrics",
        f"ingested {engine.stats.items_ingested:>10,}   "
        f"flushed {engine.stats.items_flushed:>10,}   "
        f"flush rounds {engine.stats.flush_count}",
        "",
        f"{'shard':>5} {'items':>9} {'queue':>6} {'fill':<22}"
        f"{'young':>7} {'perfect':>8} {'aged':>6} {'cleaned':>8}",
    ]
    probes = engine.probe_shards()
    for s in range(engine.num_shards):
        frames = _frames(probes[s]) if probes[s] else []
        n_cells = sum(f["num_cells"] for f in frames) or 1
        fill = sum(f["occupied_cells"] for f in frames) / n_cells
        items_key = 'engine_shard_items_total{shard="%d"}' % s
        depth_key = 'engine_queue_depth{shard="%d"}' % s
        lines.append(
            f"{s:>5} "
            f"{int(snap.get(items_key, 0)):>9,} "
            f"{int(snap.get(depth_key, 0)):>6} "
            f"[{_bar(fill)}] "
            f"{sum(f['young_cells'] for f in frames):>6} "
            f"{sum(f['perfect_cells'] for f in frames):>8} "
            f"{sum(f['aged_cells'] for f in frames):>6} "
            f"{sum(f['groups_cleaned'] for f in frames):>8}"
        )
    lat = engine.stats.flush_latency_ms()
    if lat:
        lines.append("")
        lines.append(
            "flush latency  "
            + "   ".join(f"{k}={v:.2f}ms" for k, v in lat.items())
        )
    spans = engine.obs.tracer.spans()
    if spans:
        last_trace = spans[-1].trace_id
        chain = sorted(
            engine.obs.tracer.spans(last_trace),
            key=lambda s: s.duration_ms or 0.0,
            reverse=True,
        )[:4]
        lines.append("latest flush trace (slowest spans):")
        for sp in chain:
            lines.append(
                f"  {sp.name:<16} {sp.duration_ms or 0.0:>8.3f} ms"
                f"  pid={sp.pid}  {sp.tags}"
            )
    return "\n".join(lines)


def main(smoke: bool = False) -> None:
    stream = BoundedZipf(20_000, 1.2, seed=23).sample(N_WINDOWS * WINDOW)
    cfg = EngineConfig(
        "cm",
        window=WINDOW,
        size=1 << 12,
        num_shards=SHARDS,
        flush_batch_size=CHUNK,
        flush_interval_s=None,
        sketch_kwargs={"seed": 7},
    )
    with StreamEngine(cfg, obs=True) as engine, MetricsExporter(engine) as exp:
        for lo in range(0, stream.size, CHUNK):
            engine.ingest(stream[lo : lo + CHUNK])
            if lo % WINDOW == 0 or smoke:
                frame = render(engine, exp.url)
                if smoke:
                    print(frame)
                    body = urllib.request.urlopen(
                        exp.url + "/metrics", timeout=5
                    ).read().decode()
                    assert "she_fill_ratio" in body, "exporter must serve probes"
                    print("\nsmoke ok: exporter served "
                          f"{len(body.splitlines())} metric lines")
                    return
                sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
                sys.stdout.flush()
                time.sleep(0.05)
        engine.flush()
        sys.stdout.write("\x1b[2J\x1b[H" + render(engine, exp.url) + "\n")


if __name__ == "__main__":
    main(smoke="--smoke" in sys.argv)
