"""Distributed monitoring: per-port sketches merged into one view.

Four "switch ports" each watch their share of a packet stream, stamping
arrivals with the shared global sequence number.  Each port runs its
own SHE-BF and SHE-CM; a collector merges the four into a single
sketch that answers exactly as if one monitor had seen everything —
the mergeability property distributed telemetry relies on.

Run:  python examples/distributed_merge.py
"""

import numpy as np

from repro import SheBloomFilter, SheCountMin, TimedStream, merge_sketches
from repro.datasets import caida_like
from repro.exact import ExactWindow

WINDOW = 1 << 12
PORTS = 4


def main() -> None:
    trace = caida_like(6 * WINDOW, 2 * WINDOW, seed=20).items
    times = np.arange(trace.size, dtype=np.int64)
    rng = np.random.default_rng(21)
    port_of = rng.integers(0, PORTS, size=trace.size)

    # per-port monitors (identical configuration + seeds: merge requires it)
    bf_ports = [SheBloomFilter(WINDOW, 1 << 16, seed=30) for _ in range(PORTS)]
    cm_ports = [SheCountMin(WINDOW, 1 << 14, seed=31) for _ in range(PORTS)]
    for p in range(PORTS):
        sel = port_of == p
        TimedStream(bf_ports[p]).insert_many(trace[sel], times[sel])
        TimedStream(cm_ports[p]).insert_many(trace[sel], times[sel])
        print(f"port {p}: {int(sel.sum())} packets")

    # the collector folds the ports together
    bf_all = bf_ports[0]
    cm_all = cm_ports[0]
    for p in range(1, PORTS):
        bf_all = merge_sketches(bf_all, bf_ports[p], t=trace.size)
        cm_all = merge_sketches(cm_all, cm_ports[p], t=trace.size)

    # ground truth over the union stream
    oracle = ExactWindow(WINDOW)
    oracle.insert_many(trace)
    members = oracle.distinct_keys()
    found = int(np.count_nonzero(bf_all.contains_many(members)))
    print(f"\nmerged SHE-BF: {found}/{members.size} window members found "
          f"(no false negatives: {found == members.size})")

    hot = int(members[np.argmax(oracle.frequency_many(members))])
    print(f"merged SHE-CM: hottest key exact {oracle.frequency(hot)}, "
          f"merged estimate {cm_all.frequency(hot):.0f}")

    # the merged view equals a single all-seeing monitor, bit for bit
    single_bf = SheBloomFilter(WINDOW, 1 << 16, seed=30)
    single_bf.insert_many(trace)
    single_bf.frame.prepare_query_all(single_bf.now())
    same = np.array_equal(bf_all.frame.cells, single_bf.frame.cells)
    print(f"merged == single all-seeing monitor: {same}")


if __name__ == "__main__":
    main()
