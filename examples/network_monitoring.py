"""Network monitoring: intrusion-flavoured use of SHE sketches.

The scenario the paper's introduction motivates: a gateway watching a
high-speed packet stream wants, over the most recent window,

* heavy hitters (per-source packet counts, SHE-CM),
* "have we seen this source recently?" (SHE-BF) for allow-list checks,
* a port-scan tell-tale: the distinct-destination count per window
  (SHE-BM) jumping while the packet rate stays flat.

We synthesise a trace with a scan burst injected halfway and show the
cardinality sketch catching it.

Run:  python examples/network_monitoring.py
"""

import numpy as np

from repro import ExactWindow, SheBitmap, SheBloomFilter, SheCountMin
from repro.datasets import caida_like

WINDOW = 1 << 13
SCAN_START = 4 * WINDOW
SCAN_LEN = WINDOW // 2


def build_trace(seed: int = 3) -> np.ndarray:
    """Normal CAIDA-like traffic with a distinct-key scan burst inside."""
    base = caida_like(12 * WINDOW, 2 * WINDOW, seed=seed).items.copy()
    # the scanner: a burst of never-repeating destinations
    scan = (np.uint64(1) << np.uint64(50)) + np.arange(SCAN_LEN, dtype=np.uint64)
    base[SCAN_START : SCAN_START + SCAN_LEN] = scan
    return base


def main() -> None:
    trace = build_trace()
    bm = SheBitmap(WINDOW, num_bits=1 << 14)
    cm = SheCountMin(WINDOW, num_counters=1 << 15)
    bf = SheBloomFilter(WINDOW, num_bits=1 << 17)
    oracle = ExactWindow(WINDOW)

    print("time(win)  distinct(SHE-BM)  distinct(exact)  alert")
    step = WINDOW // 4
    baseline = None
    for lo in range(0, trace.size, step):
        chunk = trace[lo : lo + step]
        for s in (bm, cm, bf):
            s.insert_many(chunk)
        oracle.insert_many(chunk)
        if lo < 2 * WINDOW:
            continue  # warm-up
        est = bm.cardinality()
        if baseline is None:
            baseline = est
        alert = "SCAN?" if est > 1.5 * baseline else ""
        print(f"{(lo + step) / WINDOW:8.2f}  {est:16.0f}  {oracle.cardinality():15d}  {alert}")

    # heavy hitters over the final window
    keys = oracle.distinct_keys()
    true_freq = oracle.frequency_many(keys)
    top = np.argsort(true_freq)[::-1][:5]
    print("\ntop-5 sources (exact vs SHE-CM):")
    for i in top:
        k = int(keys[i])
        print(f"  {k:#018x}  exact {true_freq[i]:6d}   SHE-CM {cm.frequency(k):6.0f}")

    # allow-list check: recently-seen sources pass, stale ones do not
    seen = int(keys[0])
    print(f"\nallow-list: recently seen {seen:#x} -> {bf.contains(seen)}")
    # a scan key never recurs; it is ~7.5 windows old, beyond even the
    # relaxed (1+alpha)N = 4N span, so SHE-BF can prove it absent
    stale = int(trace[SCAN_START])
    print(f"allow-list: stale scanner {stale:#x} -> {bf.contains(stale)}")


if __name__ == "__main__":
    main()
