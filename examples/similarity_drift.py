"""Similarity drift: a detector watching the Jaccard index of two venues.

Financial-tracker flavour: two exchanges publish trade streams; how
similar are the instruments traded on each over the last window?  The
overlap flips every two windows, and a
:class:`~repro.applications.drift.JaccardDistance` in ``external``
reference mode (exchange B *is* the reference) feeds a
:class:`~repro.applications.drift.DriftDetector` — the detector
calibrates its own thresholds during burn-in, alarms when the overlap
regime flips, then recovers and re-baselines on the new regime.  An
exact-Jaccard oracle runs alongside to show what the sketch is
tracking.

Run:  python examples/similarity_drift.py
"""

from repro import ExactJaccard
from repro.applications.drift import DriftDetector, DriftState, JaccardDistance
from repro.datasets import relevant_pair

WINDOW = 1 << 12
DRIFT = 4 * WINDOW  # overlap flips every four windows


def main() -> None:
    a, b = relevant_pair(
        16 * WINDOW, 2 * WINDOW, overlap=0.7, drift_period=DRIFT, seed=5
    )
    dist = JaccardDistance(WINDOW, mode="external", num_counters=768)
    oracle = ExactJaccard(WINDOW)
    detector = DriftDetector("venue-overlap", burn_in=8, alarm_sigma=4.0)

    print(f"estimator memory {dist.memory_bytes} B; drift every {DRIFT} items")
    print("\ntime(win)   exact   distance   state")
    step = WINDOW // 4
    for lo in range(0, 16 * WINDOW, step):
        chunk_a = a.items[lo : lo + step]
        chunk_b = b.items[lo : lo + step]
        dist.observe(chunk_a, reference_keys=chunk_b)
        oracle.insert_many(0, chunk_a)
        oracle.insert_many(1, chunk_b)
        if not dist.ready():
            continue
        t = lo + step
        before = detector.alarm_count
        state = detector.update(dist.distance(), t)
        flag = " <- regime change" if detector.alarm_count > before else ""
        print(
            f"{t / WINDOW:8.1f}   {oracle.similarity():.3f}   "
            f"{dist.distance():8.3f}   {state.value}{flag}"
        )

    alarms = detector.alarms()
    print(f"\n{len(alarms)} alarm(s) at t = {[e.t for e in alarms]}")
    print(f"overlap flips occur at multiples of t = {DRIFT}")


if __name__ == "__main__":
    main()
