"""Similarity tracking: SHE-MH following a drifting Jaccard index.

Financial-tracker flavour: two exchanges publish trade streams; how
similar are the instruments traded on each over the last window?  The
overlap drifts over time and the sketch must follow it — exactly what a
sliding window buys over a fixed window, and what the straw-man's
sticky timestamps smear out.

Run:  python examples/similarity_drift.py
"""

import numpy as np

from repro import ExactJaccard, SheMinHash
from repro.baselines import StrawmanMinHash
from repro.datasets import relevant_pair

WINDOW = 1 << 12
DRIFT = 2 * WINDOW  # overlap flips every two windows


def main() -> None:
    a, b = relevant_pair(
        12 * WINDOW, 2 * WINDOW, overlap=0.7, drift_period=DRIFT, seed=5
    )
    mh = SheMinHash(WINDOW, num_counters=768)
    straw = StrawmanMinHash(WINDOW, num_counters=768)
    oracle = ExactJaccard(WINDOW)

    print(f"SHE-MH memory {mh.memory_bytes} B vs straw-man {straw.memory_bytes} B")
    print("\ntime(win)   exact   SHE-MH   straw-man")
    she_err, straw_err = [], []
    step = WINDOW // 2
    for lo in range(0, 12 * WINDOW, step):
        for side, s in ((0, a.items), (1, b.items)):
            chunk = s[lo : lo + step]
            mh.insert_many(side, chunk)
            straw.insert_many(side, chunk)
            oracle.insert_many(side, chunk)
        if lo < 2 * WINDOW:
            continue
        true_s = oracle.similarity()
        e1, e2 = mh.similarity(), straw.similarity()
        she_err.append(abs(e1 - true_s))
        straw_err.append(abs(e2 - true_s))
        print(f"{(lo + step) / WINDOW:8.1f}   {true_s:.3f}   {e1:6.3f}   {e2:9.3f}")

    print(
        f"\nmean |error|: SHE-MH {np.mean(she_err):.4f} "
        f"vs straw-man {np.mean(straw_err):.4f} "
        f"(straw-man uses {straw.memory_bytes / mh.memory_bytes:.1f}x the memory)"
    )


if __name__ == "__main__":
    main()
