"""Drift monitoring service: engine + DriftMonitor + injected drift.

One :class:`~repro.service.StreamEngine` ingests a synthetic stream
whose input distribution shifts abruptly halfway through (a mixture
shift into a disjoint, wider, flatter key pool).  A
:class:`~repro.applications.drift.DriftMonitor` taps the same stream,
evaluates three window-vs-window distances on the engine cadence and
drives a quorum-voting composite detector.

The run also demonstrates degraded-coverage suppression: the drift
onset lands while a shard is (simulated) down, so the first would-be
alarms are *suppressed* — a distance measured during an outage
describes the outage, not the stream.  Once the shard recovers, the
still-elevated scores raise the real alarm, and the ``/statusz`` drift
section from a live :class:`~repro.obs.MetricsExporter` shows the full
story.

Run:  python examples/drift_monitor.py
"""

import json
import urllib.request

from repro.applications.drift import DriftMonitor
from repro.applications.drift.eval import drift_stream
from repro.obs import MetricsExporter
from repro.service import EngineConfig, StreamEngine

WINDOW = 1 << 11
N = 16 * WINDOW
ONSET = N // 2
OUTAGE = (ONSET - WINDOW // 2, ONSET + 2 * WINDOW)  # covers the onset


def main() -> None:
    cfg = EngineConfig(
        kind="hll",
        window=WINDOW,
        size=1 << 10,
        num_shards=2,
        flush_batch_size=1 << 10,
        flush_interval_s=None,
    )
    with StreamEngine(cfg, obs=True) as engine:
        monitor = DriftMonitor(engine, detector_kwargs={"alarm_sigma": 5.0})
        print(
            f"window={WINDOW} eval_every={monitor.eval_every} "
            f"drift onset at t={ONSET}, shard 1 down over t={OUTAGE}"
        )
        print("\n  win  state       jac    card   freq   coverage")
        outage_on = False
        for keys in drift_stream(
            N, kind="abrupt", onset=ONSET, universe=4 * WINDOW, batch=512, seed=7
        ):
            t = engine.now()
            if not outage_on and OUTAGE[0] <= t < OUTAGE[1]:
                engine._down.add(1)  # simulate a lost worker (see
                outage_on = True     # fault_tolerance_demo for the real thing)
            elif outage_on and t >= OUTAGE[1]:
                engine._down.discard(1)
                outage_on = False
            monitor.ingest(keys)
            if t // WINDOW != (t + keys.size) // WINDOW:
                s = monitor.last_scores
                cov = "DEGRADED" if monitor.last_coverage["degraded"] else "ok"
                print(
                    f"{(t + keys.size) / WINDOW:5.0f}  {monitor.state.value:10s} "
                    f"{s.get('jaccard', float('nan')):5.2f}  "
                    f"{s.get('cardinality', float('nan')):5.2f}  "
                    f"{s.get('frequency', float('nan')):5.2f}   {cov}"
                )
        engine.flush()

        suppressed = sum(
            d.suppressed_count for d in monitor.detector.members.values()
        )
        print(
            f"\ncomposite alarms: {monitor.detector.alarm_count}, "
            f"member alarms suppressed during the outage: {suppressed}"
        )
        with MetricsExporter(engine) as exp:
            with urllib.request.urlopen(exp.url + "/statusz", timeout=5) as resp:
                drift = json.load(resp)["drift"]
            print("\n/statusz drift section:")
            print(json.dumps(
                {k: drift[k] for k in ("state", "evaluations", "scores", "coverage")},
                indent=2,
            ))
            metrics = exp._metrics_text()
        print("\ndrift metric families exported:")
        for line in metrics.splitlines():
            if line.startswith(("drift_alarms_total", "drift_state")):
                print(" ", line)


if __name__ == "__main__":
    main()
