"""FPGA pipeline demo: co-simulation, constraints, Tables 2-3.

Walks the hardware story of §2.3 + §6 end to end:

1. run the four-stage SHE-BM RTL model and show it is bit-exact with
   the Python hardware frame (co-simulation);
2. check the three §2.3 constraints on SHE's pipeline (they hold) and
   on SWAMP's (they don't — the "domino effect" shows up as
   multi-address accesses and a shared region);
3. print the calibrated resource/clock model next to the paper's
   Table 2 / Table 3.

Run:  python examples/fpga_pipeline_demo.py
"""

import numpy as np

from repro.core import SheBitmap
from repro.harness import table2_resources, table3_frequency
from repro.hardware import SheBmRtl, check_constraints, swamp_pipeline_report

WINDOW = 512


def main() -> None:
    rng = np.random.default_rng(6)
    stream = rng.integers(0, 1 << 16, size=4096, dtype=np.uint64)

    # 1. co-simulation -----------------------------------------------------
    rtl = SheBmRtl(WINDOW, num_bits=1024, alpha=0.2, seed=2)
    ref = SheBitmap(WINDOW, 1024, alpha=0.2, frame="hardware", seed=2)
    run = rtl.insert_stream(stream)
    ref.insert_many(stream)
    exact = np.array_equal(rtl.cell_bits(), ref.frame.cells) and np.array_equal(
        rtl.mark_bits(), ref.frame.marks
    )
    print(f"co-simulation: RTL == reference frame: {exact}")
    print(
        f"pipeline: {run.items} items in {run.cycles} cycles "
        f"({run.items_per_cycle:.4f} items/cycle)"
    )
    for st in run.stage_stats:
        print(
            f"  stage {st.name:12s} regions={list(st.regions)!r:28s} "
            f"max addr/item={st.max_distinct_addresses_per_item} "
            f"max bits/item={st.max_bits_per_item}"
        )

    # 2. constraints ---------------------------------------------------------
    she_report = check_constraints(rtl.pipeline, run)
    print(f"\nSHE-BM hardware friendly: {she_report.hardware_friendly}")
    swamp = swamp_pipeline_report(WINDOW, 4096)
    print(f"SWAMP  hardware friendly: {swamp.hardware_friendly}")
    for v in swamp.violations:
        print(f"  {v}")

    # 3. the published tables ---------------------------------------------------
    print()
    print(table2_resources())
    print(table3_frequency())


if __name__ == "__main__":
    main()
