"""Capacity planning: from accuracy targets to deployed sketches.

The workflow a production user actually follows: "I need membership at
FPR <= 1e-3 and cardinality at RE <= 5% over the last N items — what do
I configure, and how much SRAM does it cost?"  The designers assemble
the paper's §5 equations into concrete parameter sets (with the
equation behind every choice), and this script validates the deployed
sketches against their own predictions on a live stream.

Run:  python examples/capacity_planning.py
"""

import numpy as np

from repro.analysis import design_bitmap, design_bloom_filter
from repro.datasets import caida_like, distinct_stream
from repro.exact import ExactWindow

WINDOW = 1 << 12
EXPECTED_CARD = WINDOW  # plan for the worst case: all-distinct traffic


def main() -> None:
    # ---- membership: FPR <= 1e-3 ---------------------------------------
    bf_design = design_bloom_filter(WINDOW, EXPECTED_CARD, target_fpr=1e-3)
    print("SHE-BF design:")
    print(f"  M={bf_design.num_bits} bits, k={bf_design.num_hashes}, "
          f"alpha={bf_design.alpha:.2f}, w={bf_design.group_width} "
          f"({bf_design.memory_bytes} B, predicted FPR {bf_design.predicted_fpr:.2e})")
    for r in bf_design.rationale:
        print(f"    - {r}")

    bf = bf_design.build(seed=11)
    stream = distinct_stream(6 * WINDOW, seed=11).items  # worst case
    bf.insert_many(stream)
    probes = (np.uint64(1) << np.uint64(59)) + np.arange(20_000, dtype=np.uint64)
    measured = float(bf.contains_many(probes).mean())
    print(f"  measured FPR on a worst-case stream: {measured:.2e}\n")

    # ---- cardinality: RE <= 5 % -----------------------------------------
    trace = caida_like(6 * WINDOW, 2 * WINDOW, seed=12).items
    probe_window = ExactWindow(WINDOW)
    probe_window.insert_many(trace[: 3 * WINDOW])
    card = probe_window.cardinality()
    bm_design = design_bitmap(WINDOW, card, target_re=0.05)
    print("SHE-BM design:")
    print(f"  M={bm_design.num_bits} bits, alpha={bm_design.alpha:.2f}, "
          f"beta={bm_design.beta:.2f} ({bm_design.memory_bytes} B; "
          f"bias<= {bm_design.predicted_bias_bound:.3f}, "
          f"std~ {bm_design.predicted_std:.3f})")
    for r in bm_design.rationale:
        print(f"    - {r}")

    bm = bm_design.build(seed=12)
    oracle = ExactWindow(WINDOW)
    errs = []
    step = WINDOW // 2
    for lo in range(0, trace.size, step):
        bm.insert_many(trace[lo : lo + step])
        oracle.insert_many(trace[lo : lo + step])
        if lo >= 2 * WINDOW:
            errs.append(abs(bm.cardinality() - oracle.cardinality()) / oracle.cardinality())
    print(f"  measured mean RE: {np.mean(errs):.3f} (target 0.05)")


if __name__ == "__main__":
    main()
