"""Registering your own CSM algorithm and serving it with the engine.

The SHE framework is generic over CSM triples ⟨C, K, F⟩: pick a cell
array, a hash family and an update rule, wrap them in a cleaning frame,
and the framework handles sliding-window expiry, merging, persistence,
sharding and checkpoint/recovery.  This example lifts a *new* sketch —
a two-probe presence bitmap, not one of the five paper rows — through
the whole stack:

1. declare its CSM spec and subclass :class:`GenericSheSketch`,
2. register it with :func:`register_algorithm`,
3. serve it with :class:`StreamEngine` on the multiprocess executor,
4. checkpoint, throw the engine away, and recover bit-identically.

Run:  python examples/custom_algorithm.py
"""

import shutil
import tempfile
from pathlib import Path

import numpy as np

from repro.core import (
    CellType,
    CsmSpec,
    GenericSheSketch,
    UpdateKind,
    merge_sketches,
    register_algorithm,
)
from repro.core.base import sized_from_memory
from repro.core.registry import AlgoDescriptor
from repro.datasets import caida_like
from repro.service import (
    EngineConfig,
    StreamEngine,
    recover_engine,
    save_checkpoint,
)

WINDOW = 1 << 13

# -- 1. the CSM triple: bit cells, 2 probe locations, set-to-one ---------
TWO_PROBE_SPEC = CsmSpec(
    name="two-probe presence bitmap",
    cell_type=CellType.BIT,
    locations=2,
    update=UpdateKind.SET_ONE,
    default_cell_bits=1,
    empty_value=0,
    one_sided=False,
)


class TwoProbeBitmap(GenericSheSketch):
    """A windowed 2-probe bitmap with a linear-counting cardinality query.

    ``GenericSheSketch`` supplies the cleaning-frame machinery (expiry,
    marks/sweeps, batch updates); the subclass only bakes in the spec
    and adds query logic.
    """

    cell_bits = 1
    from_memory = classmethod(sized_from_memory)

    def __init__(self, window, num_cells, **kwargs):
        super().__init__(TWO_PROBE_SPEC, window, num_cells, **kwargs)

    def cardinality(self, t=None):
        t = self._resolve_time(t)
        self.frame.prepare_query_all(t)
        m = self.num_cells_total
        zeros = int(np.count_nonzero(self.frame.cells == 0))
        if zeros == 0:
            return float(m)
        # each key sets 2 cells, so halve the linear-counting estimate
        return float(m * np.log(m / zeros) / 2.0)


# -- 2. one registration call wires it into every dispatch layer ---------
register_algorithm(
    AlgoDescriptor(
        kind="two-probe-bm",
        cls=TwoProbeBitmap,
        size_arg="num_cells",
        spec=TWO_PROBE_SPEC,
        queries=frozenset({"cardinality"}),
        degraded_caveat=(
            "cardinality is a lower bound: missing shards' keys are uncounted"
        ),
    )
)


def main() -> None:
    trace = caida_like(
        n_items=4 * WINDOW, n_distinct=WINDOW, seed=9
    ).items

    # standalone: merge + from_memory come for free from the registry
    left = TwoProbeBitmap(WINDOW, 1 << 14, seed=5)
    right = TwoProbeBitmap(WINDOW, 1 << 14, seed=5)
    half = trace.size // 2
    left.insert_many(trace[:half])
    right.advance_to(half)
    right.insert_many(trace[half:])
    merged = merge_sketches(left, right)
    print(
        f"standalone: merged two half-streams, "
        f"cardinality ~{merged.cardinality():.0f} distinct in window"
    )

    # -- 3. served by the sharded engine (real worker processes) ----------
    cfg = EngineConfig(
        "two-probe-bm",
        window=WINDOW,
        size=1 << 13,
        num_shards=2,
        flush_batch_size=2048,
        flush_interval_s=None,
        sketch_kwargs={"seed": 5},
    )
    workdir = Path(tempfile.mkdtemp(prefix="she-custom-"))
    try:
        engine = StreamEngine(cfg, executor="process", num_workers=2)
        try:
            engine.ingest(trace)
            answer = engine.cardinality()
            print(
                f"engine: 2 process shards served kind='two-probe-bm', "
                f"cardinality ~{answer:.0f}"
            )
            # -- 4. checkpoint, kill, recover ------------------------------
            ckpt = save_checkpoint(engine, workdir)
            print(f"checkpoint: wrote {ckpt.name} (manifest records the kind)")
        finally:
            engine.close()  # workers gone; only the checkpoint survives

        recovered = recover_engine(workdir, executor="process", num_workers=2)
        try:
            again = recovered.cardinality()
            print(
                f"recovered: clock {recovered.now()}, "
                f"cardinality ~{again:.0f} "
                f"({'bit-identical' if again == answer else 'MISMATCH'})"
            )
            assert again == answer
        finally:
            recovered.close()
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
