"""Persistent, time-windowed monitoring: TimedStream + save/load.

An operational pattern the library supports beyond the paper's
benchmarks: a monitor tracks "sources seen in the last second" with a
time-based window (timestamps in microseconds), checkpoints its sketch
to disk, "restarts", and resumes from the archive without losing the
window — byte-identical to a monitor that never went down.

Run:  python examples/persistent_timed_monitor.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import SheBloomFilter, TimedStream, load_sketch, save_sketch

WINDOW_US = 1_000_000  # one second
RATE_US = 50           # one packet every ~50 us


def packet_burst(rng, start_us: int, n: int) -> tuple[np.ndarray, np.ndarray]:
    keys = rng.integers(0, 1 << 32, size=n, dtype=np.uint64)
    gaps = rng.integers(1, 2 * RATE_US, size=n)
    times = start_us + np.cumsum(gaps)
    return keys, times.astype(np.int64)


def main() -> None:
    rng = np.random.default_rng(8)
    base = SheBloomFilter(WINDOW_US, num_bits=1 << 18, alpha=1.0)
    monitor = TimedStream(base)

    # phase 1: ~3.5 seconds of traffic (well past the relaxed 2s span)
    keys1, times1 = packet_burst(rng, 0, 70_000)
    monitor.insert_many(keys1, times1)
    probe_recent = int(keys1[-1])
    probe_old = int(keys1[0])
    print(f"clock: {monitor.now()} us")
    print(f"recent source seen?   {monitor.contains(probe_recent)}  (expect True)")
    print(f"3s-old source seen?   {monitor.contains(probe_old)}  (expect False)")

    # checkpoint + "restart"
    with tempfile.TemporaryDirectory() as tmp:
        archive = Path(tmp) / "monitor.npz"
        save_sketch(base, archive)
        print(f"\ncheckpointed {archive.stat().st_size} B")

        restored = TimedStream(load_sketch(archive))
        restored._last_t = monitor._last_t  # resume the wall clock

        # phase 2: both the original and the restored monitor ingest the
        # same subsequent traffic; they must agree bit for bit
        keys2, times2 = packet_burst(rng, monitor.now(), 20_000)
        monitor.insert_many(keys2, times2)
        restored.insert_many(keys2, times2)

        same = np.array_equal(base.frame.cells, restored.sketch.frame.cells)
        print(f"restored monitor tracks the original bit-for-bit: {same}")
        print(
            f"post-restart membership agreement: "
            f"{monitor.contains(int(keys2[-1]))} == {restored.contains(int(keys2[-1]))}"
        )


if __name__ == "__main__":
    main()
