"""Admission control under a traffic burst: one slow shard, four policies.

A 4-shard SHE-CM `StreamEngine` runs on real `ProcessExecutor` workers,
with a `ChaosExecutor` making worker 0 *slow* (every op pays latency but
still beats its deadline — a CPU-starved box, not a dead one) and then
pinning its shard down entirely mid-burst.  The same burst is driven
through each `overload_policy` with per-shard budgets configured:

* `raise`      — whole batches come back as `EngineOverloadedError`
                 (no clock ticks consumed; the caller backs off),
* `shed_oldest`/`shed_newest` — bounded buffers with exact shed
                 accounting and a query-time caveat,
* `block`      — bounded wait, then escalate.

After each run the demo prints the conservation ledger
(`ingested == flushed + buffered + shed + retained_down`), the overload
snapshot served on `/statusz`, and a degraded query showing the shed
caveat.  Buffers stay bounded in every run; without budgets the pinned
shard's buffer would grow with the stream.

Run:  python examples/overload_demo.py
"""

import numpy as np

from repro.datasets import BoundedZipf
from repro.service import (
    OVERLOAD_POLICIES,
    ChaosExecutor,
    EngineConfig,
    EngineOverloadedError,
    ProcessExecutor,
    StreamEngine,
    format_stats,
)

WINDOW = 1 << 12
BURSTS = 60
BURST_SIZE = 2_000
PER_SHARD_BUDGET = 4_096
SLOW_SECONDS = 0.02


def config(policy: str) -> EngineConfig:
    return EngineConfig(
        "cm",
        window=WINDOW,
        size=1 << 12,
        num_shards=4,
        flush_batch_size=1024,
        flush_interval_s=None,
        rpc_timeout_s=5.0,
        max_buffered_items=PER_SHARD_BUDGET,
        down_retention_items=PER_SHARD_BUDGET // 4,
        overload_policy=policy,
        block_timeout_s=0.05,
        sketch_kwargs={"seed": 7},
    )


def slow_then_stalled_executor(shards):
    """Worker 0 is slow from the start; the demo marks its shard down
    partway through to model the stall admission control must survive."""
    return ChaosExecutor(
        ProcessExecutor(shards, num_workers=4, timeout_s=5.0),
        slow_workers={0: SLOW_SECONDS},
    )


def drive(policy: str, stream: np.ndarray) -> None:
    print(f"\n=== policy: {policy} ===")
    eng = StreamEngine(config(policy), executor=slow_then_stalled_executor)
    rejected_batches = 0
    try:
        for i in range(BURSTS):
            if i == BURSTS // 3:
                # the slow worker finally wedges: its shard stops draining
                eng._down.add(0)
            burst = stream[i * BURST_SIZE:(i + 1) * BURST_SIZE]
            try:
                eng.ingest(burst)
            except EngineOverloadedError as err:
                rejected_batches += 1
                if rejected_batches == 1:
                    print(f"  first rejection: {err}")
            depths = eng.queue_depths()
            assert depths[0] <= PER_SHARD_BUDGET, depths

        snap = eng.stats_snapshot(tick=False)
        ledger = (
            snap["items_flushed"] + snap["items_buffered"]
            + snap["items_shed"] + snap["items_retained_down"]
        )
        print(f"  rejected batches: {rejected_batches}")
        print(format_stats({
            k: snap[k] for k in (
                "items_ingested", "items_flushed", "items_buffered",
                "items_shed", "items_rejected", "items_retained_down",
            )
        }))
        print(f"  conservation: {snap['items_ingested']} == {ledger}  "
              f"({'OK' if snap['items_ingested'] == ledger else 'BROKEN'})")
        over = eng.overload_snapshot()
        print(f"  overload snapshot: depths={over['queue_depths']} "
              f"high_water={over['queue_high_water']} "
              f"shed_per_shard={over['items_shed_per_shard']}")

        # degraded query: shard 0 is down, and under the shed policies
        # its recent history may also have been dropped
        probe = stream[:8]
        ans = eng.frequency_many(probe, strict=False)
        print(f"  strict=False query: {ans.shards_answered}/{ans.shards_total} "
              f"shards, missing={ans.missing_shards} shed={ans.shed_shards}")
        if ans.caveat:
            print(f"  caveat: {ans.caveat}")
    finally:
        eng.close()


def main() -> None:
    stream = BoundedZipf(20_000, 1.05, seed=31).sample(BURSTS * BURST_SIZE)
    print(
        f"burst: {BURSTS} x {BURST_SIZE} items, per-shard budget "
        f"{PER_SHARD_BUDGET}, down-shard retention {PER_SHARD_BUDGET // 4}, "
        f"worker 0 slow ({SLOW_SECONDS * 1e3:.0f} ms/op) then stalled"
    )
    for policy in OVERLOAD_POLICIES:
        drive(policy, stream)
    print("\nevery run stayed inside its budgets; an unbounded engine "
          "would have retained the stalled shard's whole backlog")


if __name__ == "__main__":
    main()
