"""Fault tolerance: a worker dies mid-stream and nobody notices.

A 4-shard SHE-CM `StreamEngine` on real `ProcessExecutor` workers is
wrapped in a `ChaosExecutor` scripted to SIGKILL one worker partway
through ingest. A `Supervisor` is attached, so the death is absorbed
inline: the worker restarts from the attach-time checkpoint, the
replay buffer re-applies every batch flushed since, and the final
frequencies are bit-identical to a run that never failed.

Act two disables recovery (`RetryPolicy(max_restarts=0)`) and kills
again: strict queries now raise typed errors naming the down shards,
while `strict=False` queries keep answering from the survivors with an
explicit coverage annotation — then an operator-style breaker reset
brings the shards back.

Run:  python examples/fault_tolerance_demo.py
"""

import shutil
import tempfile

import numpy as np

from repro.datasets import BoundedZipf
from repro.service import (
    ChaosExecutor,
    EngineConfig,
    ProcessExecutor,
    RetryPolicy,
    ShardError,
    ShardUnrecoverableError,
    StreamEngine,
    Supervisor,
    format_stats,
)

WINDOW = 1 << 12
STREAM = 40_000


def config() -> EngineConfig:
    return EngineConfig(
        "cm",
        window=WINDOW,
        size=1 << 12,
        num_shards=4,
        flush_batch_size=1024,
        flush_interval_s=None,
        rpc_timeout_s=5.0,
        sketch_kwargs={"seed": 7},
    )


def chaos_engine(kill_at: int, box: dict) -> StreamEngine:
    def factory(shards):
        box["chaos"] = ChaosExecutor(
            ProcessExecutor(shards, num_workers=2, timeout_s=5.0),
            kill_worker_after_ops=kill_at,
        )
        return box["chaos"]

    return StreamEngine(config(), executor=factory)


def main() -> None:
    trace = BoundedZipf(5_000, 1.2, seed=23).sample(STREAM)
    probes = np.unique(trace)[:20]

    reference = StreamEngine(config())
    reference.ingest(trace)
    want = reference.frequency_many(probes)

    # -- act one: supervised kill, transparent recovery ---------------------
    ckpt_dir = tempfile.mkdtemp(prefix="she-ft-")
    box: dict = {}
    engine = chaos_engine(kill_at=20, box=box)
    supervisor = Supervisor(engine, ckpt_dir)
    for lo in range(0, STREAM, 4096):
        engine.ingest(trace[lo : lo + 4096])
    got = engine.frequency_many(probes)
    print("act one: SIGKILL under supervision")
    print(f"  kills injected        {box['chaos'].kills}")
    print(f"  worker restarts       {engine.stats.worker_restarts}")
    print(f"  items replayed        {engine.stats.items_replayed}")
    print(f"  bit-identical result  {bool(np.array_equal(got, want))}")
    engine.close()
    shutil.rmtree(ckpt_dir)

    # -- act two: recovery disabled, honest degradation ---------------------
    ckpt_dir = tempfile.mkdtemp(prefix="she-ft-")
    box = {}
    engine = chaos_engine(kill_at=20, box=box)
    supervisor = Supervisor(engine, ckpt_dir, policy=RetryPolicy(max_restarts=0))
    for lo in range(0, STREAM, 4096):
        try:
            engine.ingest(trace[lo : lo + 4096])
        except ShardError as err:  # items are buffered before any flush:
            pass                   # nothing is lost, the stream keeps going
    print("\nact two: SIGKILL with the restart breaker open")
    print(f"  down shards           {engine.down_shards}")
    try:
        engine.frequency_many(probes)
    except ShardUnrecoverableError as err:
        print(f"  strict query          raised {type(err).__name__}")
    degraded = engine.frequency_many(probes, strict=False)
    print(f"  degraded coverage     {degraded.shards_answered}/{degraded.shards_total}"
          f" (missing {degraded.missing_shards})")
    print(f"  caveat                {degraded.caveat}")

    # operator steps in: refill the budget and bring the shards back
    supervisor.policy = RetryPolicy(max_restarts=2)
    supervisor.reset_breaker()
    supervisor.recover_down()
    got = engine.frequency_many(probes)
    print("  after recover_down()")
    print(f"  down shards           {engine.down_shards}")
    print(f"  bit-identical result  {bool(np.array_equal(got, want))}")
    print()
    print(format_stats({
        k: v for k, v in engine.stats_snapshot().items()
        if k in ("items_ingested", "items_flushed", "rpc_timeouts",
                 "worker_deaths", "worker_restarts", "items_replayed",
                 "batches_replayed", "degraded_queries", "shards_down")
    }))
    engine.close()
    reference.close()
    shutil.rmtree(ckpt_dir)


if __name__ == "__main__":
    main()
