"""Cardinality tracking: SHE-BM vs SHE-HLL vs competitors, live.

A QoS-dashboard scenario: track the number of distinct flows over the
last window continuously, under a strict memory budget, and compare
what each algorithm family costs for the accuracy it gives —
reproducing Fig. 9a/9b's trade-off on a single live run.

Run:  python examples/cardinality_dashboard.py
"""

import numpy as np

from repro import ExactWindow, SheBitmap, SheHyperLogLog
from repro.baselines import CounterVectorSketch, SlidingHyperLogLog, TimestampVector
from repro.datasets import campus_like

WINDOW = 1 << 13
BUDGET = 512  # bytes, strict


def main() -> None:
    trace = campus_like(8 * WINDOW, 2 * WINDOW, seed=4).items

    sketches = {
        "SHE-BM": SheBitmap.from_memory(WINDOW, BUDGET),
        "SHE-HLL": SheHyperLogLog.from_memory(WINDOW, BUDGET),
        "TSV": TimestampVector.from_memory(WINDOW, BUDGET),
        "CVS": CounterVectorSketch.from_memory(WINDOW, BUDGET),
        "SHLL": SlidingHyperLogLog(WINDOW, BUDGET * 8 // (69 * 3)),
    }
    oracle = ExactWindow(WINDOW)

    print(f"memory budget: {BUDGET} B each")
    for name, sk in sketches.items():
        print(f"  {name:8s} actual memory {sk.memory_bytes} B")

    header = "time(win)  exact  " + "  ".join(f"{n:>8s}" for n in sketches)
    print("\n" + header)
    errors: dict[str, list[float]] = {n: [] for n in sketches}
    step = WINDOW // 2
    for lo in range(0, trace.size, step):
        chunk = trace[lo : lo + step]
        oracle.insert_many(chunk)
        for sk in sketches.values():
            sk.insert_many(chunk)
        if lo < 2 * WINDOW:
            continue
        true_c = oracle.cardinality()
        row = [f"{(lo + step) / WINDOW:8.1f}", f"{true_c:6d}"]
        for name, sk in sketches.items():
            est = sk.cardinality()
            errors[name].append(abs(est - true_c) / true_c)
            row.append(f"{est:8.0f}")
        print("  ".join(row))

    print("\nmean relative error at this budget:")
    for name, errs in sorted(errors.items(), key=lambda kv: np.mean(kv[1])):
        mem = sketches[name].memory_bytes
        print(f"  {name:8s} RE {np.mean(errs):6.3f}   ({mem} B used)")
    print(
        "\nSHLL's memory is live-sized (its timestamp queues grow with the "
        "stream) — the §2.2 caveat this example makes visible."
    )


if __name__ == "__main__":
    main()
