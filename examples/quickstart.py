"""Quickstart: the five SHE sketches in five minutes.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    ExactJaccard,
    ExactWindow,
    SheBitmap,
    SheBloomFilter,
    SheCountMin,
    SheHyperLogLog,
    SheMinHash,
)
from repro.datasets import caida_like, relevant_pair

WINDOW = 1 << 13  # sliding window: the most recent 8192 items


def main() -> None:
    trace = caida_like(n_items=6 * WINDOW, n_distinct=2 * WINDOW, seed=1).items
    oracle = ExactWindow(WINDOW)

    # -- membership: did this key appear in the last N items? ------------
    bf = SheBloomFilter(WINDOW, num_bits=1 << 17)  # alpha=3, k=8 defaults
    bf.insert_many(trace)
    oracle.insert_many(trace)
    member = int(oracle.distinct_keys()[0])
    print(f"membership: key {member:#x} in window -> {bf.contains(member)}")
    print(f"membership: absent key -> {bf.contains(0xDEAD_BEEF_0000)}")

    # -- cardinality: how many distinct keys in the window? --------------
    bm = SheBitmap(WINDOW, num_bits=1 << 14)
    hll = SheHyperLogLog(WINDOW, num_registers=2048)
    bm.insert_many(trace)
    hll.insert_many(trace)
    print(
        f"cardinality: exact {oracle.cardinality()}, "
        f"SHE-BM {bm.cardinality():.0f} ({bm.memory_bytes} B), "
        f"SHE-HLL {hll.cardinality():.0f} ({hll.memory_bytes} B)"
    )

    # -- frequency: how often did this key appear? ------------------------
    cm = SheCountMin(WINDOW, num_counters=1 << 15)
    cm.insert_many(trace)
    hot = int(oracle.distinct_keys()[np.argmax(oracle.frequency_many(oracle.distinct_keys()))])
    print(
        f"frequency: hottest key exact {oracle.frequency(hot)}, "
        f"SHE-CM {cm.frequency(hot):.0f}"
    )

    # -- similarity: Jaccard index of two windowed streams ----------------
    a, b = relevant_pair(4 * WINDOW, WINDOW, overlap=0.5, seed=2)
    mh = SheMinHash(WINDOW, num_counters=512)
    jac = ExactJaccard(WINDOW)
    for lo in range(0, 4 * WINDOW, WINDOW // 2):
        mh.insert_many(0, a.items[lo : lo + WINDOW // 2])
        mh.insert_many(1, b.items[lo : lo + WINDOW // 2])
        jac.insert_many(0, a.items[lo : lo + WINDOW // 2])
        jac.insert_many(1, b.items[lo : lo + WINDOW // 2])
    print(f"similarity: exact {jac.similarity():.3f}, SHE-MH {mh.similarity():.3f}")


if __name__ == "__main__":
    main()
