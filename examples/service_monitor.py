"""Service monitor: the sharded engine serving a live monitoring loop.

A replay of the production shape the service subsystem targets: a
Zipf-skewed key stream flows into a 4-shard SHE-CM `StreamEngine`
(buffered, batched, hash-partitioned), a `HeavyHitters` tracker asks it
for the hottest keys once per window, a `Checkpointer` persists all
shards periodically, and at the end we kill the engine, recover from
the newest checkpoint, and show the recovered answers match — then
print the engine's own counters.

Run:  python examples/service_monitor.py
"""

import shutil
import tempfile

import numpy as np

from repro.applications import HeavyHitters
from repro.datasets import BoundedZipf
from repro.exact import ExactWindow
from repro.service import Checkpointer, EngineConfig, StreamEngine, recover_engine

WINDOW = 1 << 13
N_WINDOWS = 6


def main() -> None:
    trace = BoundedZipf(20_000, 1.2, seed=23).sample(N_WINDOWS * WINDOW)
    cfg = EngineConfig(
        "cm",
        window=WINDOW,
        size=1 << 13,
        num_shards=4,
        flush_batch_size=2048,
        flush_interval_s=None,
        sketch_kwargs={"seed": 7},
    )
    engine = StreamEngine(cfg)
    tracker = HeavyHitters(WINDOW, threshold=WINDOW / 64, sketch=engine)
    oracle = ExactWindow(WINDOW)

    ckpt_dir = tempfile.mkdtemp(prefix="she-service-ckpt-")
    checkpointer = Checkpointer(engine, ckpt_dir, interval_items=2 * WINDOW, keep=2)

    print(f"replaying {trace.size} items through {cfg.num_shards} shards "
          f"(window {WINDOW}, flush batch {cfg.flush_batch_size})\n")
    print("window   top-3 heavy hitters (key: est | exact)")
    for w in range(N_WINDOWS):
        chunk = trace[w * WINDOW : (w + 1) * WINDOW]
        tracker.insert_many(chunk)
        oracle.insert_many(chunk)
        checkpointer.maybe()
        top = tracker.heavy_hitters()[:3]
        cells = ", ".join(
            f"{key}: {est:.0f} | {oracle.frequency(key)}" for key, est in top
        )
        print(f"{w:>6}   {cells}")

    # -- kill and recover ---------------------------------------------------
    checkpointer.save()
    probes = np.asarray([key for key, _ in tracker.heavy_hitters()[:5]], dtype=np.uint64)
    before = engine.frequency_many(probes)
    engine.close()

    recovered = recover_engine(ckpt_dir)
    after = recovered.frequency_many(probes)
    print(f"\nkill-and-recover: answers identical = {bool(np.array_equal(before, after))} "
          f"(clock {recovered.now()}, from {recovered.stats.recovered_from})")

    recovered.close()
    shutil.rmtree(ckpt_dir, ignore_errors=True)
    print("\nengine counters (full run, pre-kill):")
    print(engine.stats_report())


if __name__ == "__main__":
    main()
