"""Tests for the §5 mathematical analysis (Eqs. 1-5)."""

import numpy as np
import pytest

from repro.analysis import (
    bf_q_parameter,
    bm_estimator_std,
    bm_legal_cells,
    bm_relative_error_bound,
    expected_failed_groups,
    fpr_model,
    hll_relative_error_bound,
    max_groups_for_error,
    mh_bias_bound,
    ondemand_design_value,
    optimal_alpha,
    optimal_r,
)


class TestOnDemand:
    def test_expected_failures_decrease_with_updates(self):
        a = expected_failed_groups(1024, 0.2, 1000, 1)
        b = expected_failed_groups(1024, 0.2, 10_000, 1)
        assert b < a

    def test_expected_failures_exact_form(self):
        g, alpha, c, h = 64, 0.5, 100, 2
        expected = g * (1 - 1 / g) ** ((1 + alpha) * c * h)
        assert expected_failed_groups(g, alpha, c, h) == pytest.approx(expected)

    def test_single_group_never_fails_with_traffic(self):
        assert expected_failed_groups(1, 0.2, 100, 1) == 0.0

    def test_design_value_monotone_in_g(self):
        vals = [ondemand_design_value(g, 1.0, 10_000, 8) for g in (64, 256, 1024)]
        assert vals == sorted(vals)

    def test_max_groups_satisfies_inequality(self):
        g = max_groups_for_error(0.01, 3.0, 65536, 8)
        assert ondemand_design_value(g, 3.0, 65536, 8) <= 0.01
        assert ondemand_design_value(g + 1, 3.0, 65536, 8) > 0.01

    def test_paper_default_group_count_is_safe(self):
        # §6's config: w=64 on a 2^20-bit array -> G=16384; with the
        # default CAIDA-like load the failure expectation is negligible
        assert expected_failed_groups(16384, 3.0, 65536, 8) < 1e-10


class TestOptimalAlpha:
    def test_q_parameter_range(self):
        q = bf_q_parameter(1000, 8, 100_000)
        assert 0 < q < 1

    def test_q_decreases_with_load(self):
        assert bf_q_parameter(2000, 8, 65536) < bf_q_parameter(500, 8, 65536)

    def test_optimal_r_is_stationary_point(self):
        q = 0.8
        r0 = optimal_r(q)
        lnq = np.log(q)
        assert q**r0 * (r0 * lnq - 1) + q == pytest.approx(0.0, abs=1e-8)

    def test_optimal_r_minimises_fpr(self):
        q = 0.8
        r0 = optimal_r(q)
        f0 = fpr_model(r0, q, 8)
        for r in (r0 * 0.7, r0 * 1.3):
            assert fpr_model(r, q, 8) >= f0

    def test_paper_alpha_about_three(self):
        """§7.1: for k=8 at the paper's operating point, alpha ~ 3."""
        # Q ~ 0.8 is the load where Eq. 2 lands at 3 (see module doc)
        alpha = optimal_alpha(65536, 8, int(4.5 * 65536 * 8))
        assert 2.0 < alpha < 4.0

    def test_fpr_model_one_when_no_aged_band(self):
        assert fpr_model(0.5, 0.8, 8) == 1.0

    def test_fpr_decreases_with_hashes_at_fixed_q(self):
        assert fpr_model(4.0, 0.9, 16) < fpr_model(4.0, 0.9, 4)

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            optimal_r(1.5)


class TestBounds:
    def test_bm_bound_formula(self):
        assert bm_relative_error_bound(0.2, 65536, 32768) == pytest.approx(0.1)

    def test_bm_bound_shrinks_with_alpha(self):
        assert bm_relative_error_bound(0.1, 1000, 500) < bm_relative_error_bound(
            0.4, 1000, 500
        )

    def test_hll_bound_exceeds_bm(self):
        assert hll_relative_error_bound(0.2, 1000, 500) > bm_relative_error_bound(
            0.2, 1000, 500
        )

    def test_mh_bound_formula(self):
        eps = 2 * 0.2 * 1000 / 2000
        assert mh_bias_bound(0.2, 1000, 2000) == pytest.approx(eps / 4 + eps**2 / 6)

    def test_legal_cells_fraction(self):
        # alpha = 1: m_l = (2 - 2/2) m = m
        assert bm_legal_cells(1.0, 1024) == pytest.approx(1024)
        # small alpha -> few legal cells
        assert bm_legal_cells(0.1, 1024) < 256

    def test_estimator_std_shrinks_with_cells(self):
        assert bm_estimator_std(0.2, 10_000, 0.5) < bm_estimator_std(0.2, 100, 0.5)

    def test_empirical_bm_bias_within_bound(self):
        """Eq. 3 must actually hold for the implementation (uniform keys)."""
        from repro.core import SheBitmap
        from repro.exact import ExactWindow

        n, alpha = 1024, 0.5
        rng = np.random.default_rng(0)
        errs = []
        for seed in range(5):
            bm = SheBitmap(n, 1 << 13, alpha=alpha, beta=1.0 - alpha, seed=seed)
            ew = ExactWindow(n)
            stream = rng.integers(0, 1 << 40, size=4 * n, dtype=np.uint64)
            step = n // 2
            for lo in range(0, stream.size, step):
                bm.insert_many(stream[lo : lo + step])
                ew.insert_many(stream[lo : lo + step])
                if lo >= 2 * n:
                    errs.append((bm.cardinality() - ew.cardinality()) / ew.cardinality())
        bound = bm_relative_error_bound(alpha, n, n)  # C ~ N (all distinct)
        assert abs(np.mean(errs)) <= bound + 0.05
