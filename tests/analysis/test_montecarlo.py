"""Monte Carlo checks: §5 closed forms vs the actual mechanisms."""

import pytest

from repro.analysis.montecarlo import (
    simulate_bf_fpr,
    simulate_bm_bias,
    simulate_ondemand_failures,
)


class TestOndemandSimulation:
    def test_matches_closed_form(self):
        sim, ana = simulate_ondemand_failures(256, 0.5, 300, 2, trials=300)
        # balls-in-bins expectation: tight agreement
        assert sim == pytest.approx(ana, rel=0.15, abs=0.5)

    def test_more_traffic_fewer_failures(self):
        lo, _ = simulate_ondemand_failures(256, 0.5, 100, 1, trials=100)
        hi, _ = simulate_ondemand_failures(256, 0.5, 2000, 1, trials=100)
        assert hi < lo

    def test_zero_regime(self):
        sim, ana = simulate_ondemand_failures(64, 3.0, 5000, 8, trials=20)
        assert sim == 0.0
        assert ana < 1e-6


class TestBfFprModel:
    @pytest.mark.parametrize("alpha", [1.0, 3.0])
    def test_model_within_factor_three(self, alpha):
        """FPR(R) is a mean-field formula; expect order-of-magnitude
        agreement with the real structure, not exactness."""
        sim, ana = simulate_bf_fpr(1 << 11, 1 << 15, 8, alpha, seed=1)
        assert ana > 0
        if sim > 0:
            ratio = sim / ana
            assert 1 / 4 < ratio < 4, (sim, ana)

    def test_fpr_falls_with_memory_in_both(self):
        s1, a1 = simulate_bf_fpr(1 << 11, 1 << 14, 8, 3.0, seed=2)
        s2, a2 = simulate_bf_fpr(1 << 11, 1 << 16, 8, 3.0, seed=2)
        assert s2 <= s1
        assert a2 < a1


class TestBmBiasBound:
    def test_bias_within_envelope(self):
        sim, bound = simulate_bm_bias(1 << 10, 1 << 13, 0.4, trials=4)
        assert sim <= bound + 0.02

    def test_bound_grows_with_alpha(self):
        _, b1 = simulate_bm_bias(1 << 9, 1 << 12, 0.2, trials=1)
        _, b2 = simulate_bm_bias(1 << 9, 1 << 12, 0.8, trials=1)
        assert b2 > b1
