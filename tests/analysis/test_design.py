"""Tests for the parameter designers (and that their designs deliver)."""

import numpy as np
import pytest

from repro.analysis.design import BfDesign, BmDesign, design_bitmap, design_bloom_filter
from repro.datasets import caida_like
from repro.exact import ExactWindow


class TestBloomDesigner:
    def test_meets_prediction_contract(self):
        d = design_bloom_filter(4096, 2000, 1e-3)
        assert d.predicted_fpr <= 1e-3
        assert d.num_bits % d.group_width == 0
        assert len(d.rationale) >= 3

    def test_tighter_target_needs_more_bits(self):
        loose = design_bloom_filter(4096, 2000, 1e-2)
        tight = design_bloom_filter(4096, 2000, 1e-5)
        assert tight.num_bits > loose.num_bits

    def test_unreachable_target_raises(self):
        with pytest.raises(ValueError):
            design_bloom_filter(4096, 1e9, 1e-30)

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            design_bloom_filter(4096, 100, 1.5)

    def test_built_filter_achieves_roughly_the_target(self):
        """The design's predicted FPR holds on a real stream (within ~4x)."""
        window, card = 2048, 2048
        d = design_bloom_filter(window, card, 1e-2)
        bf = d.build(seed=3)
        from repro.datasets import distinct_stream

        bf.insert_many(distinct_stream(6 * window, seed=3).items)
        probes = (np.uint64(1) << np.uint64(59)) + np.arange(5000, dtype=np.uint64)
        fpr = float(bf.contains_many(probes).mean())
        assert fpr < 4 * 1e-2

    def test_memory_property(self):
        d = design_bloom_filter(1024, 500, 1e-3)
        assert d.memory_bytes >= d.num_bits // 8


class TestBitmapDesigner:
    def test_meets_prediction_contract(self):
        d = design_bitmap(4096, 1500, 0.05)
        assert d.predicted_bias_bound <= 0.05
        assert d.predicted_std <= 0.05
        assert d.num_bits % d.group_width == 0

    def test_paper_beta_option(self):
        d = design_bitmap(4096, 1500, 0.05, symmetric_band=False)
        assert d.beta == 0.9

    def test_symmetric_band_default(self):
        d = design_bitmap(4096, 1500, 0.05)
        assert d.beta == pytest.approx(max(0.5, 1.0 - d.alpha))

    def test_tighter_target_needs_more_bits(self):
        loose = design_bitmap(4096, 1500, 0.2)
        tight = design_bitmap(4096, 1500, 0.02)
        assert tight.num_bits > loose.num_bits

    def test_built_bitmap_achieves_roughly_the_target(self):
        window = 4096
        trace = caida_like(6 * window, 2 * window, seed=21).items
        ew = ExactWindow(window)
        ew.insert_many(trace[: 3 * window])
        card = ew.cardinality()
        d = design_bitmap(window, card, 0.1)
        bm = d.build(seed=4)
        ew.reset()
        errs = []
        step = window // 2
        for lo in range(0, trace.size, step):
            bm.insert_many(trace[lo : lo + step])
            ew.insert_many(trace[lo : lo + step])
            if lo >= 2 * window:
                errs.append(
                    abs(bm.cardinality() - ew.cardinality()) / ew.cardinality()
                )
        assert np.mean(errs) < 2.5 * 0.1
