"""Tests for the Common Sketch Model abstraction."""

import numpy as np
import pytest

from repro.core.csm import (
    BITMAP_SPEC,
    BLOOM_FILTER_SPEC,
    COUNT_MIN_SPEC,
    HYPERLOGLOG_SPEC,
    MINHASH_SPEC,
    CellType,
    CsmSpec,
    UpdateKind,
)


class TestCanonicalSpecs:
    def test_figure2_rows(self):
        # Fig. 2's table, row by row
        assert BLOOM_FILTER_SPEC.cell_type is CellType.BIT
        assert BLOOM_FILTER_SPEC.update is UpdateKind.SET_ONE
        assert BITMAP_SPEC.locations == 1
        assert HYPERLOGLOG_SPEC.update is UpdateKind.MAX_RANK
        assert COUNT_MIN_SPEC.update is UpdateKind.ADD_ONE
        assert MINHASH_SPEC.locations == "all"
        assert MINHASH_SPEC.update is UpdateKind.MIN_HASH

    def test_one_sidedness(self):
        assert BLOOM_FILTER_SPEC.one_sided
        assert COUNT_MIN_SPEC.one_sided
        assert not BITMAP_SPEC.one_sided
        assert not HYPERLOGLOG_SPEC.one_sided
        assert not MINHASH_SPEC.one_sided

    def test_empty_values_are_update_identities(self):
        # cleaning must reset a cell to F's identity element
        assert BLOOM_FILTER_SPEC.empty_value == 0
        assert HYPERLOGLOG_SPEC.empty_value == 0  # max identity
        assert MINHASH_SPEC.empty_value == (1 << 24) - 1  # min identity


class TestSpecValidation:
    def test_rejects_zero_locations(self):
        with pytest.raises(ValueError):
            CsmSpec("x", CellType.BIT, 0, UpdateKind.SET_ONE, 1, 0, True)

    def test_rejects_bad_string_locations(self):
        with pytest.raises(ValueError):
            CsmSpec("x", CellType.BIT, "some", UpdateKind.SET_ONE, 1, 0, True)


class TestApply:
    def test_set_one(self):
        cells = np.asarray([0, 1, 0])
        out = BLOOM_FILTER_SPEC.apply(None, cells)
        assert out.tolist() == [1, 1, 1]

    def test_add_one(self):
        cells = np.asarray([0, 5])
        assert COUNT_MIN_SPEC.apply(None, cells).tolist() == [1, 6]

    def test_max_rank(self):
        cells = np.asarray([3, 3])
        vals = np.asarray([1, 7])
        assert HYPERLOGLOG_SPEC.apply(vals, cells).tolist() == [3, 7]

    def test_min_hash(self):
        cells = np.asarray([100, 100])
        vals = np.asarray([7, 200])
        assert MINHASH_SPEC.apply(vals, cells).tolist() == [7, 100]
