"""Cross-checks between the two frames and between insert paths."""

import numpy as np
import pytest

from repro.core import (
    SheBitmap,
    SheBloomFilter,
    SheConfig,
    SheCountMin,
    SheHyperLogLog,
    SheMinHash,
    make_frame,
)

from helpers import zipf_stream


class TestLegalFractions:
    """Both frames expose the same expected age demographics."""

    @pytest.mark.parametrize("alpha", [0.2, 0.5, 1.0, 3.0])
    def test_mature_fraction_matches_theory(self, alpha):
        # fraction of mature cells = alpha/(1+alpha) in steady state
        n, m = 1000, 4096
        cfg_h = SheConfig(window=n, alpha=alpha, group_width=4)
        cfg_s = SheConfig(window=n, alpha=alpha)
        expected = alpha / (1.0 + alpha)
        for kind, cfg in (("hardware", cfg_h), ("software", cfg_s)):
            f = make_frame(kind, cfg, m, dtype=np.uint8, empty_value=0, cell_bits=1)
            t = 7 * n  # any time; ages are deterministic in t
            frac = float(np.mean(f.mature_mask(np.arange(m), t)))
            assert frac == pytest.approx(expected, abs=0.02), (kind, alpha)

    @pytest.mark.parametrize("beta", [0.6, 0.8, 0.95])
    def test_legal_fraction_matches_theory(self, beta):
        n, m, alpha = 1000, 4096, 0.2
        expected = 1.0 - beta / (1.0 + alpha)
        for kind in ("hardware", "software"):
            cfg = SheConfig(
                window=n, alpha=alpha, beta=beta,
                group_width=4 if kind == "hardware" else 64,
            )
            f = make_frame(kind, cfg, m, dtype=np.uint8, empty_value=0, cell_bits=1)
            frac = float(np.mean(f.legal_mask(np.arange(m), 5 * n)))
            assert frac == pytest.approx(expected, abs=0.02), (kind, beta)


class TestBatchVsLoop:
    """insert_many(batch) == a loop of insert(item) for every sketch."""

    def pairs(self, frame):
        return [
            (SheBloomFilter(96, 512, num_hashes=3, frame=frame, seed=1),
             SheBloomFilter(96, 512, num_hashes=3, frame=frame, seed=1)),
            (SheBitmap(96, 512, frame=frame, seed=2),
             SheBitmap(96, 512, frame=frame, seed=2)),
            (SheHyperLogLog(96, 128, frame=frame, seed=3),
             SheHyperLogLog(96, 128, frame=frame, seed=3)),
            (SheCountMin(96, 256, num_hashes=3, frame=frame, seed=4),
             SheCountMin(96, 256, num_hashes=3, frame=frame, seed=4)),
        ]

    @pytest.mark.parametrize("frame", ["hardware", "software"])
    def test_single_stream_sketches(self, frame):
        stream = zipf_stream(500, 120, seed=5)
        for batched, looped in self.pairs(frame):
            batched.insert_many(stream)
            for k in stream:
                looped.insert(int(k))
            batched.frame.prepare_query_all(batched.now())
            looped.frame.prepare_query_all(looped.now())
            assert np.array_equal(batched.frame.cells, looped.frame.cells), type(batched)

    @pytest.mark.parametrize("frame", ["hardware", "software"])
    def test_minhash(self, frame):
        stream = zipf_stream(400, 90, seed=6)
        a = SheMinHash(96, 48, frame=frame, seed=7)
        b = SheMinHash(96, 48, frame=frame, seed=7)
        a.insert_many(0, stream)
        for k in stream:
            b.insert(0, int(k))
        t = a.counts[0]
        a.frames[0].prepare_query_all(t)
        b.frames[0].prepare_query_all(t)
        assert np.array_equal(a.frames[0].cells, b.frames[0].cells)


class TestFrameStatisticalAgreement:
    """Software and hardware frames answer within sampling noise."""

    @pytest.mark.parametrize("alpha", [0.2, 1.0])
    def test_cm_estimates_close(self, alpha):
        n = 1024
        stream = zipf_stream(5 * n, 400, seed=8)
        hw = SheCountMin(n, 1 << 13, alpha=alpha, frame="hardware", seed=9)
        sw = SheCountMin(n, 1 << 13, alpha=alpha, frame="software", seed=9)
        hw.insert_many(stream)
        sw.insert_many(stream)
        keys = np.arange(100, dtype=np.uint64)
        a, b = hw.frequency_many(keys), sw.frequency_many(keys)
        # identical hashes; only cleaning granularity differs
        assert np.mean(np.abs(a - b)) < 3.0

    def test_hll_estimates_close(self):
        n = 1024
        stream = np.random.default_rng(10).integers(0, 1 << 40, size=4 * n, dtype=np.uint64)
        hw = SheHyperLogLog(n, 1024, frame="hardware", seed=11)
        sw = SheHyperLogLog(n, 1024, frame="software", seed=11)
        hw.insert_many(stream)
        sw.insert_many(stream)
        a, b = hw.cardinality(), sw.cardinality()
        assert abs(a - b) / max(a, b) < 0.35
