"""Tests for SHE-BM (sliding-window bitmap cardinality)."""

import numpy as np
import pytest

from repro.core import SheBitmap
from repro.exact import ExactWindow

from helpers import zipf_stream


@pytest.fixture(params=["hardware", "software"])
def frame(request):
    return request.param


class TestBasics:
    def test_empty_cardinality_zero(self, frame):
        bm = SheBitmap(128, 1024, frame=frame)
        assert bm.cardinality() == 0.0

    def test_single_item(self, frame):
        bm = SheBitmap(128, 1024, frame=frame)
        bm.insert(7)
        est = bm.cardinality()
        # the single set bit may fall outside the legal band, giving 0
        assert 0 <= est < 16

    def test_estimates_track_truth(self, frame):
        n = 512
        bm = SheBitmap(n, 1 << 13, frame=frame, alpha=0.2)
        ew = ExactWindow(n)
        stream = zipf_stream(4 * n, 700, seed=1)
        errs = []
        step = n // 2
        for lo in range(0, stream.size, step):
            bm.insert_many(stream[lo : lo + step])
            ew.insert_many(stream[lo : lo + step])
            if lo >= 2 * n:
                true_c = ew.cardinality()
                errs.append(abs(bm.cardinality() - true_c) / true_c)
        assert np.mean(errs) < 0.25

    def test_saturated_bitmap_clamped(self, frame):
        # tiny array, huge cardinality: estimate stays finite
        bm = SheBitmap(256, 64, frame=frame)
        bm.insert_many(np.arange(2048, dtype=np.uint64))
        assert np.isfinite(bm.cardinality())

    def test_from_memory_budget(self):
        bm = SheBitmap.from_memory(256, 256)
        assert bm.memory_bytes <= 256

    def test_reset(self, frame):
        bm = SheBitmap(128, 1024, frame=frame)
        bm.insert_many(np.arange(100, dtype=np.uint64))
        bm.reset()
        assert bm.cardinality() == 0.0
        assert bm.now() == 0


class TestWindowSemantics:
    def test_expired_items_leave_estimate(self, frame):
        n = 256
        bm = SheBitmap(n, 1 << 12, frame=frame, alpha=0.2)
        # phase 1: large cardinality burst
        bm.insert_many(np.arange(n, dtype=np.uint64))
        # phase 2: a long run of a single repeated key
        bm.insert_many(np.full(4 * n, 5, dtype=np.uint64))
        est = bm.cardinality()
        # the window now holds one distinct key; burst must have expired
        assert est < 0.1 * n

    def test_beta_widens_legal_band(self):
        n = 256
        lo_beta = SheBitmap(n, 1 << 12, beta=0.5)
        hi_beta = SheBitmap(n, 1 << 12, beta=0.99)
        t = 3 * n
        lo_legal = int(np.count_nonzero(lo_beta.frame.legal_groups(t)))
        hi_legal = int(np.count_nonzero(hi_beta.frame.legal_groups(t)))
        assert lo_legal > hi_legal


class TestDeterminism:
    def test_same_seed_same_estimate(self, frame):
        stream = zipf_stream(1000, 200, seed=9)
        a = SheBitmap(128, 1024, frame=frame, seed=5)
        b = SheBitmap(128, 1024, frame=frame, seed=5)
        a.insert_many(stream)
        b.insert_many(stream)
        assert a.cardinality() == b.cardinality()
