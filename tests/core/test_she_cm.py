"""Tests for SHE-CM (sliding-window Count-Min)."""

import numpy as np
import pytest

from repro.core import SheCountMin
from repro.exact import ExactWindow

from helpers import zipf_stream


@pytest.fixture(params=["hardware", "software"])
def frame(request):
    return request.param


class TestBasics:
    def test_empty_zero(self, frame):
        cm = SheCountMin(128, 1024, frame=frame)
        assert cm.frequency(7) == 0.0

    def test_counts_repeats(self, frame):
        cm = SheCountMin(128, 4096, frame=frame)
        cm.insert_many(np.full(10, 42, dtype=np.uint64))
        assert cm.frequency(42) >= 10

    def test_never_underestimates_with_mature_counters(self, frame):
        n = 512
        cm = SheCountMin(n, 1 << 14, frame=frame, alpha=1.0)
        ew = ExactWindow(n)
        stream = zipf_stream(4 * n, 300, seed=6)
        cm.insert_many(stream)
        ew.insert_many(stream)
        keys = ew.distinct_keys()
        est = cm.frequency_many(keys)
        true = ew.frequency_many(keys)
        # underestimates only via the documented no-mature-counter
        # fallback, probability (1/2)^8 per key
        frac_under = np.mean(est < true)
        assert frac_under < 0.05

    def test_overestimate_bounded_by_collisions(self, frame):
        n = 512
        cm = SheCountMin(n, 1 << 15, frame=frame)
        ew = ExactWindow(n)
        stream = zipf_stream(2 * n, 300, seed=7)
        cm.insert_many(stream)
        ew.insert_many(stream)
        keys = ew.distinct_keys()
        are = np.mean(
            np.abs(cm.frequency_many(keys) - ew.frequency_many(keys))
            / np.maximum(ew.frequency_many(keys), 1)
        )
        assert are < 1.0

    def test_expired_counts_leave(self, frame):
        n = 256
        cm = SheCountMin(n, 1 << 13, frame=frame, alpha=1.0)
        cm.insert_many(np.full(n, 9, dtype=np.uint64))
        # push the hot key far out of the relaxed window
        cm.insert_many((1000 + np.arange(6 * n, dtype=np.uint64)) % np.uint64(50))
        assert cm.frequency(9) < n / 4

    def test_frequency_many_matches_scalar(self, frame):
        cm = SheCountMin(128, 2048, frame=frame)
        cm.insert_many(zipf_stream(512, 60, seed=8))
        keys = np.arange(30, dtype=np.uint64)
        batch = cm.frequency_many(keys)
        for i, k in enumerate(keys):
            assert cm.frequency(int(k)) == batch[i]

    def test_from_memory(self):
        cm = SheCountMin.from_memory(128, 4096)
        assert cm.memory_bytes <= 4096

    def test_memory_accounting(self):
        cm = SheCountMin(128, 128, group_width=64, frame="hardware")
        # 128 counters x 32 bits + 2 marks
        assert cm.memory_bytes == (128 * 32 + 2 + 7) // 8

    def test_reset(self, frame):
        cm = SheCountMin(128, 1024, frame=frame)
        cm.insert_many(np.full(5, 3, dtype=np.uint64))
        cm.reset()
        assert cm.frequency(3) == 0.0
        assert cm.now() == 0
