"""Tests for SHE-MH (sliding-window MinHash)."""

import numpy as np
import pytest

from repro.common.hashing import splitmix64
from repro.core import SheMinHash
from repro.exact import ExactJaccard


@pytest.fixture(params=["hardware", "software"])
def frame(request):
    return request.param


def feed_pair(mh, a, b, chunk=128):
    for lo in range(0, len(a), chunk):
        mh.insert_many(0, a[lo : lo + chunk])
        mh.insert_many(1, b[lo : lo + chunk])


class TestBasics:
    def test_identical_streams_similarity_one(self, frame):
        n = 256
        mh = SheMinHash(n, 128, frame=frame)
        stream = np.arange(2 * n, dtype=np.uint64) % np.uint64(100)
        feed_pair(mh, stream, stream)
        assert mh.similarity() == 1.0

    def test_disjoint_streams_similarity_low(self, frame):
        n = 256
        mh = SheMinHash(n, 256, frame=frame)
        a = np.arange(2 * n, dtype=np.uint64) % np.uint64(100)
        b = (np.arange(2 * n, dtype=np.uint64) % np.uint64(100)) + np.uint64(10_000)
        feed_pair(mh, a, b)
        assert mh.similarity() < 0.1

    def test_partial_overlap(self, frame):
        n = 512
        rng = np.random.default_rng(3)
        pool = np.arange(300, dtype=np.uint64)
        a = rng.choice(pool[:200], size=3 * n).astype(np.uint64)
        b = rng.choice(pool[100:], size=3 * n).astype(np.uint64)
        mh = SheMinHash(n, 512, frame=frame)
        ej = ExactJaccard(n)
        feed_pair(mh, a, b)
        ej.insert_many(0, a)
        ej.insert_many(1, b)
        assert abs(mh.similarity() - ej.similarity()) < 0.15

    def test_rejects_bad_side(self, frame):
        mh = SheMinHash(64, 32, frame=frame)
        with pytest.raises(ValueError):
            mh.insert(2, 1)

    def test_window_expiry(self, frame):
        n = 256
        mh = SheMinHash(n, 128, frame=frame)
        shared = np.arange(100, dtype=np.uint64)
        # phase 1: both sides identical
        for _ in range(4):
            mh.insert_many(0, shared)
            mh.insert_many(1, shared)
        # phase 2: completely disjoint for many windows
        for i in range(12):
            mh.insert_many(0, np.uint64(1000 + i * 100) + shared)
            mh.insert_many(1, np.uint64(90_000 + i * 100) + shared)
        assert mh.similarity() < 0.25

    def test_cells_match_bruteforce_minima(self, frame):
        """The counters hold exact minima over each column's age span."""
        n = 200
        mh = SheMinHash(n, 64, frame=frame, alpha=0.3)
        rng = np.random.default_rng(5)
        stream = rng.integers(0, 5000, size=900, dtype=np.uint64)
        # irregular chunk sizes stress the chunked batch logic
        for lo, hi in [(0, 1), (1, 130), (130, 131), (131, 500), (500, 900)]:
            mh.insert_many(0, stream[lo:hi])
        t = mh.counts[0]
        f = mh.frames[0]
        f.prepare_query_all(t)
        ages = f.group_ages(t) if hasattr(f, "group_ages") else None
        mask24 = np.uint64((1 << 24) - 1)
        for j in range(0, 64, 7):
            age = int(ages[j])
            span = stream[max(0, t - age) : t]
            if span.size == 0:
                continue
            expected = int(np.min(splitmix64(span ^ mh._col_seeds[j]) & mask24))
            assert int(f.cells[j]) == expected, f"column {j}, age {age}"

    def test_from_memory_covers_both_sides(self):
        mh = SheMinHash.from_memory(128, 2048)
        assert mh.memory_bytes <= 2048

    def test_reset(self, frame):
        mh = SheMinHash(64, 32, frame=frame)
        mh.insert(0, 1)
        mh.insert(1, 2)
        mh.reset()
        assert mh.counts == [0, 0]

    def test_independent_clocks(self, frame):
        mh = SheMinHash(64, 32, frame=frame)
        mh.insert_many(0, np.arange(10, dtype=np.uint64))
        assert mh.counts == [10, 0]
