"""Tests for the software (sweeping cleaner) frame."""

import numpy as np
import pytest

from repro.core.config import SheConfig
from repro.core.software_frame import SoftwareFrame

from helpers import NaiveSoftwareFrame


def make(window=100, alpha=0.2, m=24, **kw):
    cfg = SheConfig(window=window, alpha=alpha)
    return SoftwareFrame(cfg, m, **kw)


class TestSweep:
    def test_full_cycle_cleans_everything(self):
        f = make()
        f.cells[:] = 1
        f.advance(f.t_cycle)
        assert np.all(f.cells == 0)

    def test_partial_sweep(self):
        f = make(window=100, alpha=0.2, m=24)  # Tcycle=120, 0.2 cells/t
        f.cells[:] = 1
        f.advance(60)  # boundaries 1..12 crossed since construction
        assert f.cells[0] == 1  # boundary 0 was consumed at t=0
        assert np.all(f.cells[1:13] == 0)
        assert np.all(f.cells[13:] == 1)

    def test_wraparound_sweep(self):
        f = make(window=100, alpha=0.2, m=24)
        f.advance(110)  # boundaries up to 22 done
        f.cells[:] = 1
        f.advance(130)  # boundaries 23..26: cells 23, 0, 1, 2 cleaned
        expected = np.ones(24, dtype=np.uint8)
        expected[[23, 0, 1, 2]] = 0
        assert np.array_equal(f.cells, expected)

    def test_advance_monotone_noop(self):
        f = make()
        f.advance(50)
        f.cells[:] = 1
        f.advance(50)  # no time passed: nothing cleaned
        assert np.all(f.cells == 1)

    def test_matches_naive_reference(self):
        cfg = SheConfig(window=37, alpha=0.35)
        fast = SoftwareFrame(cfg, 17)
        naive = NaiveSoftwareFrame(cfg, 17)
        rng = np.random.default_rng(1)
        t = 0
        for _ in range(60):
            t += int(rng.integers(1, 9))
            fast.cells[:] = 1
            naive.cells = [1] * 17
            fast.advance(t)
            naive.advance(t)
            assert fast.cells.tolist() == naive.cells


class TestAges:
    def test_age_range(self):
        f = make(window=100, alpha=0.2, m=24)
        for t in [0, 17, 120, 121, 999]:
            ages = f.all_cell_ages(t)
            assert ages.min() >= 0
            assert ages.max() <= f.t_cycle + 1

    def test_just_cleaned_cell_age_zero(self):
        f = make(window=100, alpha=0.2, m=24)
        f.advance(60)  # boundary 12 (cell 12) crossed at t=60 exactly
        assert f.ages(np.asarray([12]), 60)[0] == 0

    def test_mature_mask_uses_exact_arithmetic(self):
        f = make(window=100, alpha=0.2, m=24)
        t = 500
        mature = f.mature_mask(np.arange(24), t)
        ages_num = f._age_numerators(np.arange(24), t)
        assert np.array_equal(mature, ages_num >= 100 * 24)

    def test_legal_groups_size(self):
        f = make(m=24)
        assert f.legal_groups(200).shape == (24,)


class TestAccounting:
    def test_memory_no_marks(self):
        f = make(m=24, cell_bits=1)
        assert f.memory_bytes == 3  # 24 bits

    def test_reset(self):
        f = make()
        f.advance(100)
        f.cells[:] = 1
        f.reset()
        assert np.all(f.cells == 0)
        assert f._boundaries_done == 0

    def test_group_of_identity(self):
        f = make(m=24)
        idx = np.asarray([0, 5, 23])
        assert np.array_equal(f.group_of(idx), idx)
