"""Tests for SheConfig."""

import pytest

from repro.core.config import SheConfig


class TestSheConfig:
    def test_t_cycle(self):
        cfg = SheConfig(window=1000, alpha=0.2)
        assert cfg.t_cycle == 1200

    def test_t_cycle_exceeds_window(self):
        # even a tiny alpha must leave room for aged cells
        cfg = SheConfig(window=10, alpha=0.001)
        assert cfg.t_cycle >= 11

    def test_legal_low(self):
        cfg = SheConfig(window=1000, beta=0.9)
        assert cfg.legal_low == 900

    def test_frozen(self):
        cfg = SheConfig(window=10)
        with pytest.raises(AttributeError):
            cfg.window = 20

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            SheConfig(window=0)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            SheConfig(window=10, alpha=0.0)
        with pytest.raises(ValueError):
            SheConfig(window=10, alpha=-1.0)

    def test_rejects_bad_beta(self):
        with pytest.raises(ValueError):
            SheConfig(window=10, beta=1.5)

    def test_cells_for_memory_group_multiple(self):
        cfg = SheConfig(window=100, group_width=64)
        m = cfg.cells_for_memory(1024, 1)
        assert m % 64 == 0
        assert m > 0

    def test_cells_for_memory_accounts_for_marks(self):
        cfg = SheConfig(window=100, group_width=64)
        # 1024 bytes = 8192 bits; per group: 64*1 + 1 = 65 bits -> 126 groups
        assert cfg.cells_for_memory(1024, 1) == 126 * 64

    def test_cells_for_memory_wide_cells(self):
        cfg = SheConfig(window=100, group_width=1)
        # 40 bytes = 320 bits; per group: 32 + 1 = 33 -> 9 cells
        assert cfg.cells_for_memory(40, 32) == 9

    def test_cells_for_memory_too_small(self):
        cfg = SheConfig(window=100, group_width=64)
        with pytest.raises(ValueError):
            cfg.cells_for_memory(1, 32)
