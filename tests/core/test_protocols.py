"""Protocol conformance: every structure satisfies the declared types."""

import pytest

from repro.baselines import (
    CounterVectorSketch,
    EcmSketch,
    SlidingHyperLogLog,
    Swamp,
    TimeOutBloomFilter,
    TimestampVector,
    TimingBloomFilter,
)
from repro.common.types import (
    CardinalitySketch,
    FrequencySketch,
    MembershipSketch,
    SlidingSketch,
)
from repro.core import SheBitmap, SheBloomFilter, SheCountMin, SheHyperLogLog
from repro.exact import ExactWindow
from repro.fixed import Bitmap, BloomFilter, CountMinSketch, HyperLogLog

W, M = 64, 128

SLIDING = [
    SheBloomFilter(W, M),
    SheBitmap(W, M),
    SheHyperLogLog(W, M),
    SheCountMin(W, M),
    Swamp(W, 8),
    SlidingHyperLogLog(W, 16),
    CounterVectorSketch(W, M),
    TimestampVector(W, M),
    TimeOutBloomFilter(W, M),
    TimingBloomFilter(W, M),
    EcmSketch(W, 16),
    ExactWindow(W),
]


@pytest.mark.parametrize("obj", SLIDING, ids=lambda o: type(o).__name__)
def test_sliding_sketch_protocol(obj):
    assert isinstance(obj, SlidingSketch)
    assert obj.memory_bytes >= 0


@pytest.mark.parametrize(
    "obj",
    [SheBloomFilter(W, M), Swamp(W, 8), TimeOutBloomFilter(W, M), TimingBloomFilter(W, M), BloomFilter(M), ExactWindow(W)],
    ids=lambda o: type(o).__name__,
)
def test_membership_protocol(obj):
    assert isinstance(obj, MembershipSketch)


@pytest.mark.parametrize(
    "obj",
    [SheBitmap(W, M), SheHyperLogLog(W, M), Swamp(W, 8), SlidingHyperLogLog(W, 16), CounterVectorSketch(W, M), TimestampVector(W, M), Bitmap(M), HyperLogLog(M), ExactWindow(W)],
    ids=lambda o: type(o).__name__,
)
def test_cardinality_protocol(obj):
    assert isinstance(obj, CardinalitySketch)


@pytest.mark.parametrize(
    "obj",
    [SheCountMin(W, M), Swamp(W, 8), EcmSketch(W, 16), CountMinSketch(M), ExactWindow(W)],
    ids=lambda o: type(o).__name__,
)
def test_frequency_protocol(obj):
    assert isinstance(obj, FrequencySketch)
