"""Tests for SHE-HLL (sliding-window HyperLogLog)."""

import numpy as np
import pytest

from repro.core import SheHyperLogLog, hll_alpha
from repro.exact import ExactWindow

from helpers import zipf_stream


@pytest.fixture(params=["hardware", "software"])
def frame(request):
    return request.param


class TestHllAlpha:
    def test_known_constants(self):
        assert hll_alpha(16) == 0.673
        assert hll_alpha(32) == 0.697
        assert hll_alpha(64) == 0.709

    def test_large_m_formula(self):
        assert abs(hll_alpha(1024) - 0.7213 / (1 + 1.079 / 1024)) < 1e-12

    def test_monotone_towards_limit(self):
        assert hll_alpha(128) < hll_alpha(10**6) < 0.7213


class TestSheHll:
    def test_empty_zero(self, frame):
        h = SheHyperLogLog(128, 256, frame=frame)
        assert h.cardinality() == 0.0

    def test_registers_are_own_groups(self):
        h = SheHyperLogLog(128, 256, frame="hardware")
        assert h.frame.group_width == 1
        assert h.frame.num_groups == 256

    def test_estimates_track_truth_on_average(self, frame):
        n = 1024
        errs = []
        for seed in range(4):
            h = SheHyperLogLog(n, 1024, frame=frame, seed=seed)
            ew = ExactWindow(n)
            stream = zipf_stream(3 * n, 1500, seed=seed + 10)
            h.insert_many(stream)
            ew.insert_many(stream)
            errs.append((h.cardinality() - ew.cardinality()) / ew.cardinality())
        # mean signed error small: individual runs are noisy (~6%/sqrt
        # of legal registers), the average must not be wildly biased
        assert abs(np.mean(errs)) < 0.35

    def test_large_cardinality_regime(self, frame):
        # enough distinct keys to leave linear counting
        n = 4096
        h = SheHyperLogLog(n, 512, frame=frame)
        ew = ExactWindow(n)
        stream = np.random.default_rng(2).integers(0, 1 << 40, size=2 * n, dtype=np.uint64)
        h.insert_many(stream)
        ew.insert_many(stream)
        assert abs(h.cardinality() - ew.cardinality()) / ew.cardinality() < 0.5

    def test_rank_saturates_at_31(self, frame):
        h = SheHyperLogLog(128, 64, frame=frame)
        h.insert_many(np.arange(10_000, dtype=np.uint64))
        assert int(h.frame.cells.max()) <= 31

    def test_from_memory(self):
        h = SheHyperLogLog.from_memory(128, 128)
        assert h.memory_bytes <= 128

    def test_memory_counts_marks(self):
        h = SheHyperLogLog(128, 256, frame="hardware")
        assert h.memory_bytes == (256 * 5 + 256 + 7) // 8

    def test_reset(self, frame):
        h = SheHyperLogLog(128, 256, frame=frame)
        h.insert_many(np.arange(100, dtype=np.uint64))
        h.reset()
        assert h.cardinality() == 0.0

    def test_window_expiry(self, frame):
        n = 512
        h = SheHyperLogLog(n, 512, frame=frame, alpha=0.2)
        h.insert_many(np.arange(n, dtype=np.uint64))
        h.insert_many(np.full(4 * n, 7, dtype=np.uint64))
        # only one distinct key remains in the window
        assert h.cardinality() < 0.2 * n
