"""Tests for the generic CSM-lifting sketch."""

import numpy as np
import pytest

from repro.core import (
    BLOOM_FILTER_SPEC,
    COUNT_MIN_SPEC,
    MINHASH_SPEC,
    GenericSheSketch,
    SheBloomFilter,
)


class TestGenericSheSketch:
    def test_rejects_all_locations(self):
        with pytest.raises(ValueError):
            GenericSheSketch(MINHASH_SPEC, 100, 64)

    def test_bloom_spec_lift(self):
        g = GenericSheSketch(BLOOM_FILTER_SPEC, 128, 1024, alpha=3.0)
        g.insert_many(np.arange(64, dtype=np.uint64))
        ro = g.read_cells(np.arange(64, dtype=np.uint64))
        # every mapped cell of an in-window key was just set
        assert np.all(ro.values[ro.mature] == 1) or np.all(ro.values.max(axis=1) == 1)

    def test_readout_shapes(self):
        g = GenericSheSketch(COUNT_MIN_SPEC, 128, 512, alpha=1.0)
        g.insert_many(np.arange(100, dtype=np.uint64))
        ro = g.read_cells(np.arange(10, dtype=np.uint64))
        k = COUNT_MIN_SPEC.locations
        for arr in (ro.values, ro.ages, ro.mature, ro.legal):
            assert arr.shape == (10, k)

    def test_ages_within_cycle(self):
        g = GenericSheSketch(COUNT_MIN_SPEC, 128, 512, alpha=0.5)
        g.insert_many(np.arange(300, dtype=np.uint64))
        ro = g.read_cells(np.arange(20, dtype=np.uint64))
        assert ro.ages.min() >= 0
        assert ro.ages.max() < g.config.t_cycle

    def test_mature_implies_legal(self):
        g = GenericSheSketch(COUNT_MIN_SPEC, 128, 512, beta=0.9)
        g.insert_many(np.arange(300, dtype=np.uint64))
        ro = g.read_cells(np.arange(20, dtype=np.uint64))
        assert np.all(~ro.mature | ro.legal)

    def test_equivalent_to_named_bloom(self):
        """Lifting the BF spec reproduces SheBloomFilter's cell array."""
        stream = np.random.default_rng(1).integers(0, 500, size=800, dtype=np.uint64)
        g = GenericSheSketch(BLOOM_FILTER_SPEC, 128, 1024, alpha=3.0, seed=7)
        bf = SheBloomFilter(128, 1024, alpha=3.0, seed=7)
        g.insert_many(stream)
        bf.insert_many(stream)
        assert np.array_equal(g.frame.cells, bf.frame.cells)

    def test_software_frame_variant(self):
        g = GenericSheSketch(COUNT_MIN_SPEC, 128, 500, frame="software")
        g.insert_many(np.arange(50, dtype=np.uint64))
        assert g.read_cells(np.asarray([1], dtype=np.uint64)).values.max() >= 1

    def test_reset(self):
        g = GenericSheSketch(COUNT_MIN_SPEC, 128, 512)
        g.insert_many(np.arange(50, dtype=np.uint64))
        g.reset()
        assert g.now() == 0
        assert int(g.frame.cells.max()) == 0

    def test_memory_bytes(self):
        g = GenericSheSketch(BLOOM_FILTER_SPEC, 128, 1024, group_width=64)
        assert g.memory_bytes == (1024 + 16 + 7) // 8
