"""Tests for the hardware (grouped, time-marked) frame."""

import numpy as np
import pytest

from repro.core.config import SheConfig
from repro.core.hardware_frame import HardwareFrame


def make(window=100, alpha=0.2, w=4, m=32, **kw):
    cfg = SheConfig(window=window, alpha=alpha, group_width=w)
    return HardwareFrame(cfg, m, **kw)


class TestConstruction:
    def test_group_count(self):
        f = make(m=32, w=4)
        assert f.num_groups == 8

    def test_rejects_non_multiple(self):
        with pytest.raises(ValueError):
            make(m=30, w=4)

    def test_offsets_evenly_spaced(self):
        f = make(window=100, alpha=0.2, w=1, m=12)
        # d_gid = -floor(Tcycle * gid / G), Tcycle = 120, G = 12
        assert f.offsets[0] == 0
        assert f.offsets[1] == -10
        assert f.offsets[11] == -110

    def test_initial_marks_are_current(self):
        f = make()
        assert np.array_equal(f.marks, f._current_marks_all(0))

    def test_memory_accounting(self):
        f = make(m=64, w=4, cell_bits=1)
        # 64 bits + 16 marks = 80 bits = 10 bytes
        assert f.memory_bytes == 10


class TestAges:
    def test_age_zero_at_virtual_clean(self):
        f = make(window=100, alpha=0.2, w=1, m=12)
        # group 1 offset -10: at t=10 its age is 0
        assert f.ages(np.asarray([1]), 10)[0] == 0

    def test_age_in_range(self):
        f = make(window=100, alpha=0.2, w=4, m=32)
        for t in [0, 57, 119, 120, 1000]:
            ages = f.all_cell_ages(t)
            assert ages.min() >= 0
            assert ages.max() < f.t_cycle

    def test_age_cycles(self):
        f = make(window=100, alpha=0.2, w=1, m=12)
        idx = np.asarray([3])
        assert f.ages(idx, 5)[0] == f.ages(idx, 5 + f.t_cycle)[0]

    def test_mature_iff_age_ge_window(self):
        f = make(window=100, alpha=0.5, w=1, m=10)
        t = 777
        ages = f.all_cell_ages(t)
        mature = f.mature_mask(np.arange(10), t)
        assert np.array_equal(mature, ages >= 100)

    def test_legal_band(self):
        f = make(window=100, alpha=0.5, w=1, m=10)
        t = 345
        ages = f.all_cell_ages(t)
        legal = f.legal_mask(np.arange(10), t)
        assert np.array_equal(legal, ages >= 90)

    def test_group_ages_match_cell_ages(self):
        f = make(w=4, m=32)
        t = 250
        assert np.array_equal(np.repeat(f.group_ages(t), 4), f.all_cell_ages(t))


class TestCleaning:
    def test_check_cleans_stale_group(self):
        f = make(window=100, alpha=0.2, w=4, m=32)
        f.cells[:] = 1
        # advance time past a flip of group 0 (offset 0 flips at Tcycle)
        f.check_groups(np.asarray([0]), f.t_cycle)
        assert np.all(f.cells[:4] == 0)
        assert np.all(f.cells[4:] == 1)

    def test_check_noop_when_fresh(self):
        f = make(window=100, alpha=0.2, w=4, m=32)
        f.cells[:] = 1
        f.check_groups(np.asarray([0]), 5)
        assert np.all(f.cells[:4] == 1)

    def test_check_all_groups(self):
        f = make(window=100, alpha=0.2, w=4, m=32)
        f.cells[:] = 1
        f.check_all_groups(2 * f.t_cycle - 1)
        # after nearly two full cycles every group flipped at least once
        assert np.count_nonzero(f.cells) < 32

    def test_mark_wraparound_failure_mode(self):
        # untouched for exactly 2 cycles: the mark wraps back and stale
        # cells survive — the Eq. 1 failure mode must be preserved
        f = make(window=100, alpha=0.2, w=4, m=32)
        f.cells[:4] = 1
        f.check_groups(np.asarray([0]), 2 * f.t_cycle)
        assert np.all(f.cells[:4] == 1)

    def test_prepare_insert_cleans(self):
        f = make(window=100, alpha=0.2, w=4, m=32)
        f.cells[:] = 1
        f.prepare_insert(np.asarray([0, 1]), f.t_cycle)
        assert np.all(f.cells[:4] == 0)

    def test_empty_value_respected(self):
        f = make(window=100, alpha=0.2, w=4, m=32, dtype=np.uint32, empty_value=99)
        f.cells[:] = 1
        f.check_groups(np.asarray([0]), f.t_cycle)
        assert np.all(f.cells[:4] == 99)

    def test_reset(self):
        f = make()
        f.cells[:] = 1
        f.marks[:] = 1
        f.reset()
        assert np.all(f.cells == 0)
        assert np.array_equal(f.marks, f._current_marks_all(0))


class TestGroupMapping:
    def test_group_of(self):
        f = make(w=4, m=32)
        assert np.array_equal(
            f.group_of(np.asarray([0, 3, 4, 31])), np.asarray([0, 0, 1, 7])
        )
