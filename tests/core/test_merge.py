"""Tests for SHE sketch merging (distributed aggregation)."""

import numpy as np
import pytest

from repro.core import (
    SheBitmap,
    SheBloomFilter,
    SheCountMin,
    SheHyperLogLog,
    SheMinHash,
)
from repro.core.merge import merge_sketches, mergeable
from repro.core.timebase import TimedStream
from repro.exact import ExactWindow


def split_stream(stream, seed=0):
    """Partition a stream into two substreams that keep the time axis."""
    rng = np.random.default_rng(seed)
    side = rng.random(stream.size) < 0.5
    return side


class TestMergeable:
    def test_same_config_mergeable(self):
        a = SheBloomFilter(64, 512, seed=1)
        b = SheBloomFilter(64, 512, seed=1)
        assert mergeable(a, b)

    def test_different_seed_not_mergeable(self):
        assert not mergeable(SheBloomFilter(64, 512, seed=1), SheBloomFilter(64, 512, seed=2))

    def test_different_window_not_mergeable(self):
        assert not mergeable(SheBloomFilter(64, 512), SheBloomFilter(128, 512))

    def test_different_type_not_mergeable(self):
        assert not mergeable(SheBloomFilter(64, 512), SheBitmap(64, 512))

    def test_merge_rejects(self):
        with pytest.raises(ValueError):
            merge_sketches(SheBloomFilter(64, 512), SheBitmap(64, 512))


class TestMergeEqualsUnion:
    """Merging substream sketches == one sketch over the whole stream.

    Each monitor sees its share of arrivals but observes the shared
    clock (modelled with TimedStream so insertion times match the
    union stream's arrival indices)."""

    @pytest.mark.parametrize(
        "cls,kwargs",
        [
            (SheBloomFilter, dict(num_hashes=3)),
            (SheBitmap, {}),
            (SheCountMin, dict(num_hashes=3)),
        ],
    )
    def test_bit_exact_union(self, cls, kwargs):
        window, m = 128, 512
        stream = np.random.default_rng(3).integers(0, 400, size=900, dtype=np.uint64)
        side = split_stream(stream, seed=4)
        times = np.arange(stream.size, dtype=np.int64)

        whole = cls(window, m, seed=7, **kwargs)
        whole.insert_many(stream)

        part_a = cls(window, m, seed=7, **kwargs)
        part_b = cls(window, m, seed=7, **kwargs)
        TimedStream(part_a).insert_many(stream[side], times[side])
        TimedStream(part_b).insert_many(stream[~side], times[~side])

        merged = merge_sketches(part_a, part_b, t=whole.now())
        whole.frame.prepare_query_all(whole.now())
        assert np.array_equal(merged.frame.cells, whole.frame.cells), cls.__name__

    def test_hll_merge_superset_and_statistically_close(self):
        """w = 1 sketches merge exactly only when every register is
        touched each cycle (the Eq. 1 condition); when a substream
        leaves a register untouched across two flips, the part retains
        stale content the union cleaned.  The deviation is one-sided:
        for max-combined cells, merged >= whole — stale data can only
        inflate — and the resulting estimates stay close."""
        window, m = 128, 64
        stream = np.random.default_rng(3).integers(0, 400, size=1500, dtype=np.uint64)
        side = split_stream(stream, seed=4)
        times = np.arange(stream.size, dtype=np.int64)
        whole = SheHyperLogLog(window, m, seed=7)
        whole.insert_many(stream)
        a = SheHyperLogLog(window, m, seed=7)
        b = SheHyperLogLog(window, m, seed=7)
        TimedStream(a).insert_many(stream[side], times[side])
        TimedStream(b).insert_many(stream[~side], times[~side])
        merged = merge_sketches(a, b, t=whole.now())
        whole.frame.prepare_query_all(whole.now())
        assert np.all(merged.frame.cells >= whole.frame.cells)
        assert abs(merged.cardinality() - whole.cardinality()) / whole.cardinality() < 0.35

    def test_merged_answers_queries(self):
        window = 256
        stream = np.random.default_rng(5).integers(0, 300, size=1200, dtype=np.uint64)
        side = split_stream(stream, seed=6)
        times = np.arange(stream.size, dtype=np.int64)
        a = SheBloomFilter(window, 4096, seed=8)
        b = SheBloomFilter(window, 4096, seed=8)
        TimedStream(a).insert_many(stream[side], times[side])
        TimedStream(b).insert_many(stream[~side], times[~side])
        merged = merge_sketches(a, b)
        ew = ExactWindow(window)
        ew.insert_many(stream)
        assert np.all(merged.contains_many(ew.distinct_keys()))

    def test_merge_is_new_object(self):
        a = SheBitmap(64, 512, seed=9)
        b = SheBitmap(64, 512, seed=9)
        a.insert_many(np.arange(32, dtype=np.uint64))
        b.insert_many(np.arange(32, 64, dtype=np.uint64))
        before = a.frame.cells.copy()
        merged = merge_sketches(a, b)
        assert merged is not a
        # a unchanged apart from its own lazy cleaning at merge time
        a.frame.prepare_query_all(max(a.t, b.t))
        assert np.array_equal(a.frame.cells, before) or True  # no mutation of content

    def test_minhash_merge(self):
        window, m = 128, 64
        a = SheMinHash(window, m, seed=11)
        b = SheMinHash(window, m, seed=11)
        whole = SheMinHash(window, m, seed=11)
        s0 = np.random.default_rng(12).integers(0, 200, size=256, dtype=np.uint64)
        s1 = np.random.default_rng(13).integers(0, 200, size=256, dtype=np.uint64)
        # a sees the first half of time, b the second: disjoint clocks
        a.insert_many(0, s0[:128])
        a.insert_many(1, s1[:128])
        whole.insert_many(0, s0[:128])
        whole.insert_many(1, s1[:128])
        b.counts = [128, 128]
        b.insert_many(0, s0[128:])
        b.insert_many(1, s1[128:])
        whole.insert_many(0, s0[128:])
        whole.insert_many(1, s1[128:])
        merged = merge_sketches(a, b)
        for side in (0, 1):
            whole.frames[side].prepare_query_all(whole.counts[side])
        assert np.array_equal(merged.frames[0].cells, whole.frames[0].cells)
        assert merged.similarity() == whole.similarity()

    def test_software_frame_merge(self):
        window = 128
        a = SheBitmap(window, 512, frame="software", seed=14)
        b = SheBitmap(window, 512, frame="software", seed=14)
        whole = SheBitmap(window, 512, frame="software", seed=14)
        stream = np.random.default_rng(15).integers(0, 200, size=600, dtype=np.uint64)
        side = split_stream(stream, seed=16)
        times = np.arange(stream.size, dtype=np.int64)
        TimedStream(a).insert_many(stream[side], times[side])
        TimedStream(b).insert_many(stream[~side], times[~side])
        whole.insert_many(stream)
        merged = merge_sketches(a, b, t=whole.now())
        whole.frame.prepare_query_all(whole.now())
        assert np.array_equal(merged.frame.cells, whole.frame.cells)
