"""Tests for time-based windows via TimedStream."""

import numpy as np
import pytest

from repro.core import SheBitmap, SheBloomFilter, SheCountMin, SheMinHash
from repro.core.timebase import TimedStream


class TestTimedStream:
    def test_membership_over_time_window(self):
        # window = 1000 ticks; steady background traffic keeps the
        # on-demand cleaning fed (Eq. 1's operating assumption — with
        # 3 items in 5000 ticks the 1-bit marks would wrap instead)
        bf = SheBloomFilter(1000, 1 << 13, alpha=1.0)
        ts = TimedStream(bf)
        ts.insert(111, t=0)
        rng = np.random.default_rng(0)
        bg_keys = rng.integers(1 << 40, 1 << 41, size=2500, dtype=np.uint64)
        ts.insert_many(bg_keys, np.arange(1, 5001, 2, dtype=np.int64))
        ts.insert(333, t=5000)
        assert not ts.contains(111)  # 5000 ticks old, window is 1000
        assert ts.contains(333)

    def test_burst_at_same_timestamp(self):
        bf = SheBloomFilter(1000, 1 << 13)
        ts = TimedStream(bf)
        keys = np.arange(50, dtype=np.uint64)
        ts.insert_many(keys, np.full(50, 7, dtype=np.int64))
        assert np.all(bf.contains_many(keys))
        assert ts.now() == 8

    def test_cardinality_expires_by_time_not_count(self):
        bm = SheBitmap(1000, 1 << 12, alpha=0.2)
        ts = TimedStream(bm)
        # 500 distinct keys in a burst during t < 500
        ts.insert_many(
            np.arange(500, dtype=np.uint64), np.arange(0, 500, dtype=np.int64)
        )
        # then a single repeating key; by t=5000 the burst has expired
        reps = np.full(2000, 7, dtype=np.uint64)
        ts.insert_many(reps, np.arange(502, 4502, 2, dtype=np.int64))
        assert bm.cardinality(t=4502) < 100

    def test_frequency_windowed_by_time(self):
        cm = SheCountMin(1000, 1 << 12, alpha=1.0)
        ts = TimedStream(cm)
        ts.insert_many(np.full(20, 5, dtype=np.uint64), np.arange(20, dtype=np.int64))
        assert cm.frequency(5) >= 20
        ts.insert(6, t=10_000)
        assert cm.frequency(5) < 20

    def test_rejects_decreasing_times(self):
        ts = TimedStream(SheBloomFilter(100, 1 << 10))
        ts.insert(1, t=50)
        with pytest.raises(ValueError):
            ts.insert(2, t=49)

    def test_rejects_negative_times(self):
        ts = TimedStream(SheBloomFilter(100, 1 << 10))
        with pytest.raises(ValueError):
            ts.insert(1, t=-1)

    def test_rejects_shape_mismatch(self):
        ts = TimedStream(SheBloomFilter(100, 1 << 10))
        with pytest.raises(ValueError):
            ts.insert_many(np.arange(3, dtype=np.uint64), np.arange(2))

    def test_rejects_two_stream_sketches(self):
        with pytest.raises(TypeError):
            TimedStream(SheMinHash(100, 16))

    def test_attribute_passthrough(self):
        bf = SheBloomFilter(100, 1 << 10)
        ts = TimedStream(bf)
        assert ts.memory_bytes == bf.memory_bytes

    def test_equivalent_to_count_based_for_unit_arrivals(self):
        """With one arrival per tick, timed == count-based, bit for bit."""
        keys = np.random.default_rng(0).integers(0, 500, size=600, dtype=np.uint64)
        a = SheBloomFilter(128, 1 << 11, seed=5)
        b = SheBloomFilter(128, 1 << 11, seed=5)
        a.insert_many(keys)
        TimedStream(b).insert_many(keys, np.arange(keys.size, dtype=np.int64))
        assert np.array_equal(a.frame.cells, b.frame.cells)

    def test_empty_batch(self):
        ts = TimedStream(SheBloomFilter(100, 1 << 10))
        ts.insert_many(np.asarray([], dtype=np.uint64), np.asarray([], dtype=np.int64))
        assert ts.now() == 1
