"""Gap-filling tests for base plumbing and less-travelled paths."""

import numpy as np
import pytest

from repro.core import (
    BITMAP_SPEC,
    HYPERLOGLOG_SPEC,
    MINHASH_SPEC,
    GenericSheSketch,
    SheBloomFilter,
    make_frame,
)
from repro.core.base import SheSketchBase
from repro.core.config import SheConfig


class TestSheSketchBase:
    def test_resolve_time_defaults_to_now(self):
        bf = SheBloomFilter(64, 128)
        bf.insert_many(np.arange(5, dtype=np.uint64))
        assert bf._resolve_time(None) == 5

    def test_resolve_time_rejects_negative(self):
        bf = SheBloomFilter(64, 128)
        with pytest.raises(ValueError):
            bf._resolve_time(-1)

    def test_insert_at_abstract(self):
        class Stub(SheSketchBase):
            pass

        with pytest.raises(NotImplementedError):
            Stub().insert(1)

    def test_insert_accepts_python_list(self):
        bf = SheBloomFilter(64, 128)
        bf.insert_many([1, 2, 3])
        assert bf.now() == 3


class TestMakeFrame:
    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_frame("quantum", SheConfig(window=10), 8, dtype=np.uint8, empty_value=0, cell_bits=1)


class TestGenericOperands:
    def test_max_rank_operand_path(self):
        g = GenericSheSketch(HYPERLOGLOG_SPEC, 64, 32, alpha=0.5, group_width=1)
        g.insert_many(np.arange(200, dtype=np.uint64))
        ro = g.read_cells(np.arange(8, dtype=np.uint64))
        assert ro.values.max() >= 1  # some rank landed

    def test_min_hash_operand_rejected_for_all_locations(self):
        with pytest.raises(ValueError):
            GenericSheSketch(MINHASH_SPEC, 64, 32)

    def test_bitmap_spec_single_location(self):
        g = GenericSheSketch(BITMAP_SPEC, 64, 128, alpha=0.3)
        g.insert_many(np.arange(50, dtype=np.uint64))
        ro = g.read_cells(np.arange(5, dtype=np.uint64))
        assert ro.values.shape == (5, 1)


class TestWindowSample:
    def test_returns_all_when_few(self):
        from repro.exact import ExactWindow
        from repro.harness.common import window_sample

        w = ExactWindow(32)
        w.insert_many(np.arange(10, dtype=np.uint64))
        assert window_sample(w, 100).size == 10

    def test_samples_without_replacement(self):
        from repro.exact import ExactWindow
        from repro.harness.common import window_sample

        w = ExactWindow(256)
        w.insert_many(np.arange(200, dtype=np.uint64))
        sample = window_sample(w, 50, seed=1)
        assert sample.size == 50
        assert len(np.unique(sample)) == 50


class TestRtlFalsePositivePath:
    def test_bf_rtl_reports_collision_positive(self):
        """A never-inserted key whose lanes all collide reads present —
        the one-sided error surfaces in the RTL model too."""
        from repro.hardware import SheBfRtl

        bf = SheBfRtl(64, 128, num_lanes=1, alpha=3.0, seed=1)
        lane = bf.lanes[0]
        # saturate the tiny lane array
        bf.insert_stream(np.arange(512, dtype=np.uint64))
        probes = (np.uint64(1) << np.uint64(40)) + np.arange(64, dtype=np.uint64)
        answers = [bf.contains(int(p)) for p in probes]
        assert any(answers)  # collisions at this load must appear
