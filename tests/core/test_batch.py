"""Equivalence tests: vectorised batch updates vs the literal Algorithm 1.

These are the keystone correctness tests of the repository — every SHE
sketch funnels its insertions through ``apply_batch``.
"""

import numpy as np
import pytest

from repro.core.base import make_frame
from repro.core.batch import apply_batch
from repro.core.config import SheConfig
from repro.core.csm import UpdateKind

from helpers import NaiveHardwareFrame, NaiveSoftwareFrame


def random_touches(rng, n, m, t_span, kind):
    times = np.sort(rng.integers(0, t_span, size=n)).astype(np.int64)
    cells = rng.integers(0, m, size=n).astype(np.int64)
    if kind in (UpdateKind.MAX_RANK, UpdateKind.MIN_HASH):
        values = rng.integers(1, 30, size=n).astype(np.int64)
    else:
        values = None
    return times, cells, values


KINDS = [UpdateKind.SET_ONE, UpdateKind.ADD_ONE, UpdateKind.MAX_RANK, UpdateKind.MIN_HASH]


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_hardware_batch_matches_naive(kind, seed):
    rng = np.random.default_rng(seed)
    cfg = SheConfig(window=40, alpha=0.3, group_width=4)
    m = 16
    empty = 255 if kind is UpdateKind.MIN_HASH else 0
    fast = make_frame("hardware", cfg, m, dtype=np.int64, empty_value=empty, cell_bits=8)
    naive = NaiveHardwareFrame(cfg, m, empty_value=empty)

    times, cells, values = random_touches(rng, 400, m, 6 * cfg.t_cycle, kind)
    apply_batch(fast, times, cells, values, kind)
    for i in range(times.size):
        naive.touch(int(cells[i]), int(times[i]), kind, None if values is None else int(values[i]))

    assert fast.cells.tolist() == naive.cells
    assert fast.marks.tolist() == naive.marks


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_software_batch_matches_naive(kind, seed):
    rng = np.random.default_rng(seed + 100)
    cfg = SheConfig(window=40, alpha=0.3)
    m = 16
    empty = 255 if kind is UpdateKind.MIN_HASH else 0
    fast = make_frame("software", cfg, m, dtype=np.int64, empty_value=empty, cell_bits=8)
    naive = NaiveSoftwareFrame(cfg, m, empty_value=empty)

    times, cells, values = random_touches(rng, 400, m, 6 * cfg.t_cycle, kind)
    apply_batch(fast, times, cells, values, kind)
    for i in range(times.size):
        naive.touch(int(cells[i]), int(times[i]), kind, None if values is None else int(values[i]))
    naive.advance(int(times[-1]))

    assert fast.cells.tolist() == naive.cells


@pytest.mark.parametrize("frame_kind", ["hardware", "software"])
def test_split_batches_equal_one_batch(frame_kind):
    """Inserting in many small batches == one big batch."""
    rng = np.random.default_rng(7)
    cfg = SheConfig(window=50, alpha=0.4, group_width=4)
    m = 32
    f1 = make_frame(frame_kind, cfg, m, dtype=np.int64, empty_value=0, cell_bits=8)
    f2 = make_frame(frame_kind, cfg, m, dtype=np.int64, empty_value=0, cell_bits=8)
    times, cells, _ = random_touches(rng, 600, m, 8 * cfg.t_cycle, UpdateKind.ADD_ONE)
    apply_batch(f1, times, cells, None, UpdateKind.ADD_ONE)
    # split at arbitrary points
    for lo, hi in [(0, 13), (13, 200), (200, 201), (201, 600)]:
        apply_batch(f2, times[lo:hi], cells[lo:hi], None, UpdateKind.ADD_ONE)
    # marks may differ on groups f2 lazily cleaned later, but a final
    # check at the same time must converge the cell contents
    f1.prepare_query_all(int(times[-1]))
    f2.prepare_query_all(int(times[-1]))
    assert np.array_equal(f1.cells, f2.cells)


def test_empty_batch_is_noop():
    cfg = SheConfig(window=10, alpha=0.5, group_width=2)
    f = make_frame("hardware", cfg, 8, dtype=np.int64, empty_value=0, cell_bits=8)
    apply_batch(f, np.asarray([], dtype=np.int64), np.asarray([], dtype=np.int64), None, UpdateKind.SET_ONE)
    assert np.all(f.cells == 0)


def test_single_touch_sets_mark():
    cfg = SheConfig(window=10, alpha=0.5, group_width=2)
    f = make_frame("hardware", cfg, 8, dtype=np.int64, empty_value=0, cell_bits=8)
    # touch at a time where group 0's mark has flipped once (t >= Tcycle)
    t = cfg.t_cycle
    apply_batch(f, np.asarray([t]), np.asarray([0]), None, UpdateKind.SET_ONE)
    assert f.marks[0] == 1
    assert f.cells[0] == 1


def test_rejects_unknown_frame():
    with pytest.raises(TypeError):
        apply_batch(object(), np.asarray([0]), np.asarray([0]), None, UpdateKind.SET_ONE)


def test_duplicate_cell_same_time_add():
    """k hashes hitting the same counter at the same instant both count."""
    cfg = SheConfig(window=10, alpha=0.5, group_width=2)
    f = make_frame("hardware", cfg, 8, dtype=np.int64, empty_value=0, cell_bits=8)
    apply_batch(f, np.asarray([3, 3]), np.asarray([5, 5]), None, UpdateKind.ADD_ONE)
    assert f.cells[5] == 2
