"""Tests for SHE-BF (sliding-window Bloom filter)."""

import numpy as np
import pytest

from repro.core import SheBloomFilter
from repro.exact import ExactWindow

from helpers import zipf_stream


@pytest.fixture(params=["hardware", "software"])
def frame(request):
    return request.param


class TestConstruction:
    def test_rounds_to_group_multiple(self):
        bf = SheBloomFilter(100, 1000, group_width=64, frame="hardware")
        assert bf.num_bits == 960

    def test_software_keeps_exact_bits(self):
        bf = SheBloomFilter(100, 1000, frame="software")
        assert bf.num_bits == 1000

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            SheBloomFilter(100, 63, group_width=64)

    def test_from_memory_within_budget(self):
        bf = SheBloomFilter.from_memory(100, 512)
        assert bf.memory_bytes <= 512

    def test_invalid_frame_kind(self):
        with pytest.raises(ValueError):
            SheBloomFilter(100, 128, frame="asic")


class TestMembership:
    def test_empty_filter_negative(self, frame):
        bf = SheBloomFilter(64, 1024, frame=frame)
        # at t=0 every cell is aged/perfect or young depending on offset;
        # an empty filter must never claim presence via a mature 0 bit
        assert not bf.contains(12345)

    def test_inserted_key_found_immediately(self, frame):
        bf = SheBloomFilter(64, 1024, frame=frame)
        bf.insert(42)
        assert bf.contains(42)

    def test_no_false_negatives_in_window(self, frame):
        n = 256
        bf = SheBloomFilter(n, 1 << 12, frame=frame)
        ew = ExactWindow(n)
        stream = zipf_stream(2048, 400, seed=3)
        bf.insert_many(stream)
        ew.insert_many(stream)
        members = ew.distinct_keys()
        assert np.all(bf.contains_many(members))

    def test_expired_distinct_key_eventually_absent(self, frame):
        n = 128
        bf = SheBloomFilter(n, 1 << 12, alpha=1.0, frame=frame)
        probe = 999_999_999
        bf.insert(probe)
        # push far past the relaxed window (1+alpha)N = 2N
        filler = np.arange(10 * n, dtype=np.uint64)
        bf.insert_many(filler)
        assert not bf.contains(probe)

    def test_contains_many_matches_scalar(self, frame):
        bf = SheBloomFilter(64, 1024, frame=frame)
        stream = zipf_stream(300, 80, seed=4)
        bf.insert_many(stream)
        keys = np.arange(50, dtype=np.uint64)
        batch = bf.contains_many(keys)
        for i, k in enumerate(keys):
            assert bf.contains(int(k)) == batch[i]

    def test_explicit_time_query(self, frame):
        bf = SheBloomFilter(64, 1024, frame=frame)
        bf.insert_many(np.arange(32, dtype=np.uint64))
        assert bf.contains(5, t=32)

    def test_fpr_reasonable(self, frame):
        n = 512
        bf = SheBloomFilter(n, 1 << 14, alpha=3.0, frame=frame)
        bf.insert_many(zipf_stream(4 * n, 600, seed=5))
        absent = (np.uint64(1) << np.uint64(50)) + np.arange(2000, dtype=np.uint64)
        fpr = float(bf.contains_many(absent).mean())
        assert fpr < 0.05


class TestClockAndState:
    def test_clock_advances(self):
        bf = SheBloomFilter(64, 1024)
        bf.insert_many(np.arange(10, dtype=np.uint64))
        assert bf.now() == 10

    def test_reset(self):
        bf = SheBloomFilter(64, 1024)
        bf.insert_many(np.arange(10, dtype=np.uint64))
        bf.reset()
        assert bf.now() == 0
        assert not bf.contains(0)

    def test_memory_includes_marks(self):
        bf = SheBloomFilter(64, 1024, group_width=64, frame="hardware")
        assert bf.memory_bytes == (1024 + 16 + 7) // 8

    def test_empty_batch(self):
        bf = SheBloomFilter(64, 1024)
        bf.insert_many(np.asarray([], dtype=np.uint64))
        assert bf.now() == 0
