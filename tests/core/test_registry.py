"""The algorithm registry: descriptors, lookup, and dispatch defaults."""

import numpy as np
import pytest

from repro.core import (
    BLOOM_FILTER_SPEC,
    GenericSheSketch,
    SheBitmap,
    SheBloomFilter,
    SheCountMin,
    SheHyperLogLog,
    SheMinHash,
    UpdateKind,
)
from repro.core.csm import CsmSpec, CellType
from repro.core.registry import (
    GENERIC_KIND,
    AlgoDescriptor,
    cell_merge_for,
    descriptor_of,
    get_descriptor,
    register_algorithm,
    registered_kinds,
    require_descriptor,
    spec_from_json,
    spec_to_json,
    unregister_algorithm,
)


class TestBuiltinRegistrations:
    def test_five_builtins_plus_generic_registered(self):
        assert {"bf", "bm", "hll", "cm", "mh", GENERIC_KIND} <= set(
            registered_kinds()
        )

    @pytest.mark.parametrize(
        "kind,cls,size_arg",
        [
            ("bf", SheBloomFilter, "num_bits"),
            ("bm", SheBitmap, "num_bits"),
            ("hll", SheHyperLogLog, "num_registers"),
            ("cm", SheCountMin, "num_counters"),
            ("mh", SheMinHash, "num_counters"),
            (GENERIC_KIND, GenericSheSketch, "num_cells"),
        ],
    )
    def test_descriptor_shape(self, kind, cls, size_arg):
        desc = get_descriptor(kind)
        assert desc.cls is cls
        assert desc.size_arg == size_arg
        assert desc.class_name == cls.__name__

    def test_lookup_by_class_name(self):
        assert get_descriptor("SheBloomFilter") is get_descriptor("bf")

    def test_lookup_by_class_and_instance(self):
        desc = get_descriptor("cm")
        assert descriptor_of(SheCountMin) is desc
        assert descriptor_of(SheCountMin(128, 128)) is desc

    def test_unknown_kind_raises_with_catalogue(self):
        with pytest.raises(KeyError, match="registered kinds"):
            get_descriptor("nope")

    def test_descriptor_of_unregistered_is_none(self):
        assert descriptor_of(object()) is None
        with pytest.raises(TypeError, match="register_algorithm"):
            require_descriptor(object())

    def test_only_mh_is_two_stream(self):
        assert get_descriptor("mh").two_stream
        for kind in ("bf", "bm", "hll", "cm", GENERIC_KIND):
            assert not get_descriptor(kind).two_stream

    def test_cm_fans_in_by_sum(self):
        assert get_descriptor("cm").query_fanin == "sum"
        for kind in ("bf", "bm", "hll", "mh"):
            assert get_descriptor(kind).query_fanin == "merge"

    def test_queries_declared(self):
        assert "membership" in get_descriptor("bf").queries
        assert "cardinality" in get_descriptor("bm").queries
        assert "cardinality" in get_descriptor("hll").queries
        assert "frequency" in get_descriptor("cm").queries
        assert "similarity" in get_descriptor("mh").queries


class TestCellMergeDerivation:
    def test_merge_ops_match_update_kinds(self):
        a = np.array([1, 5, 0], dtype=np.uint32)
        b = np.array([3, 2, 4], dtype=np.uint32)
        assert list(cell_merge_for(UpdateKind.SET_ONE)(a, b)) == [3, 5, 4]
        assert list(cell_merge_for(UpdateKind.MAX_RANK)(a, b)) == [3, 5, 4]
        assert list(cell_merge_for(UpdateKind.ADD_ONE)(a, b)) == [4, 7, 4]
        assert list(cell_merge_for(UpdateKind.MIN_HASH)(a, b)) == [1, 2, 0]

    def test_descriptor_cell_merge_derived_from_spec(self):
        assert get_descriptor("cm").cell_merge(np.uint32(2), np.uint32(3)) == 5
        assert get_descriptor("bf").cell_merge(np.uint8(0), np.uint8(1)) == 1

    def test_generic_descriptor_defers_cell_merge_to_instance(self):
        assert get_descriptor(GENERIC_KIND).cell_merge is None


class TestRegistration:
    def test_register_unregister_roundtrip(self):
        class MySketch(GenericSheSketch):
            pass

        desc = AlgoDescriptor(kind="my-test-kind", cls=MySketch, size_arg="num_cells")
        register_algorithm(desc)
        try:
            assert get_descriptor("my-test-kind") is desc
            assert descriptor_of(MySketch) is desc
        finally:
            unregister_algorithm("my-test-kind")
        assert "my-test-kind" not in registered_kinds()

    def test_duplicate_kind_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_algorithm(
                AlgoDescriptor(kind="bf", cls=object, size_arg="num_bits")
            )

    def test_replace_existing_allows_override(self):
        original = get_descriptor("bf")
        register_algorithm(original, replace_existing=True)
        assert get_descriptor("bf") is original

    def test_empty_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            AlgoDescriptor(kind="", cls=object, size_arg="x")

    def test_bad_fanin_rejected(self):
        with pytest.raises(ValueError, match="query_fanin"):
            AlgoDescriptor(
                kind="x", cls=object, size_arg="x", query_fanin="median"
            )


class TestSpecJson:
    def test_roundtrip(self):
        spec = CsmSpec(
            name="custom",
            cell_type=CellType.COUNTER,
            locations=3,
            update=UpdateKind.ADD_ONE,
            default_cell_bits=32,
            empty_value=0,
            one_sided=True,
        )
        assert spec_from_json(spec_to_json(spec)) == spec

    def test_builtin_spec_roundtrip(self):
        assert spec_from_json(spec_to_json(BLOOM_FILTER_SPEC)) == BLOOM_FILTER_SPEC


class TestSignatures:
    def test_same_config_same_signature(self):
        desc = get_descriptor("bf")
        a = SheBloomFilter(256, 256, seed=3)
        b = SheBloomFilter(256, 256, seed=3)
        assert desc.merge_signature(a) == desc.merge_signature(b)

    def test_seed_changes_signature(self):
        desc = get_descriptor("bf")
        a = SheBloomFilter(256, 256, seed=3)
        b = SheBloomFilter(256, 256, seed=4)
        assert desc.merge_signature(a) != desc.merge_signature(b)

    def test_generic_spec_in_signature(self):
        desc = get_descriptor(GENERIC_KIND)
        bitmap_like = CsmSpec(
            name="bm-like",
            cell_type=CellType.BIT,
            locations=1,
            update=UpdateKind.SET_ONE,
            default_cell_bits=1,
            empty_value=0,
            one_sided=False,
        )
        a = GenericSheSketch(BLOOM_FILTER_SPEC, 256, 256, seed=3)
        c = GenericSheSketch(bitmap_like, 256, 256, seed=3)
        assert desc.merge_signature(a) != desc.merge_signature(c)

    def test_mh_signature_ignores_frame_kind(self):
        # pre-registry quirk, preserved: hw-MH and sw-MH share a signature
        desc = get_descriptor("mh")
        hw = SheMinHash(256, 64, frame="hardware")
        sw = SheMinHash(256, 64, frame="software")
        assert desc.merge_signature(hw) == desc.merge_signature(sw)


class TestFromMemory:
    @pytest.mark.parametrize("kind", ["bf", "bm", "hll", "cm", "mh"])
    def test_descriptor_from_memory_respects_budget(self, kind):
        desc = get_descriptor(kind)
        sketch = desc.from_memory(1 << 12, 1 << 14, seed=9)
        assert isinstance(sketch, desc.cls)
        assert sketch.memory_bytes <= 1 << 14

    def test_generic_from_memory_needs_spec(self):
        desc = get_descriptor(GENERIC_KIND)
        with pytest.raises(ValueError, match="spec"):
            desc.from_memory(1 << 12, 1 << 14)
        sketch = desc.from_memory(1 << 12, 1 << 14, spec=BLOOM_FILTER_SPEC)
        assert sketch.memory_bytes <= 1 << 14
