"""Tests for argument validation helpers."""

import numpy as np
import pytest

from repro.common.validation import (
    as_key_array,
    require_in_range,
    require_non_negative_int,
    require_positive_float,
    require_positive_int,
)


class TestRequirePositiveInt:
    def test_accepts_positive(self):
        assert require_positive_int("x", 5) == 5

    def test_accepts_numpy_int(self):
        assert require_positive_int("x", np.int64(7)) == 7

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            require_positive_int("x", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            require_positive_int("x", -1)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            require_positive_int("x", 1.5)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            require_positive_int("x", True)


class TestRequireNonNegativeInt:
    def test_accepts_zero(self):
        assert require_non_negative_int("x", 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            require_non_negative_int("x", -1)


class TestRequirePositiveFloat:
    def test_accepts_float(self):
        assert require_positive_float("x", 0.5) == 0.5

    def test_accepts_int(self):
        assert require_positive_float("x", 2) == 2.0

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            require_positive_float("x", 0.0)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            require_positive_float("x", float("nan"))

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            require_positive_float("x", float("inf"))

    def test_rejects_non_numeric(self):
        with pytest.raises(TypeError):
            require_positive_float("x", "abc")


class TestRequireInRange:
    def test_inclusive_bounds(self):
        assert require_in_range("x", 0.0, 0.0, 1.0) == 0.0
        assert require_in_range("x", 1.0, 0.0, 1.0) == 1.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            require_in_range("x", 0.0, 0.0, 1.0, inclusive=False)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            require_in_range("x", 1.5, 0.0, 1.0)


class TestAsKeyArray:
    def test_list_of_ints(self):
        out = as_key_array([1, 2, 3])
        assert out.dtype == np.uint64

    def test_rejects_floats(self):
        with pytest.raises(TypeError):
            as_key_array([1.0, 2.0])

    def test_flattens(self):
        out = as_key_array(np.arange(6, dtype=np.uint64).reshape(2, 3))
        assert out.shape == (6,)

    def test_no_copy_for_uint64(self):
        arr = np.arange(4, dtype=np.uint64)
        assert as_key_array(arr) is arr
