"""Round-trip tests for sketch serialisation."""

import numpy as np
import pytest

from repro.persist import PersistFormatError, load_sketch, save_sketch
from repro.core import (
    SheBitmap,
    SheBloomFilter,
    SheCountMin,
    SheHyperLogLog,
    SheMinHash,
)

from helpers import zipf_stream


@pytest.fixture(params=["hardware", "software"])
def frame(request):
    return request.param


class TestRoundTrip:
    def test_bloom_filter(self, tmp_path, frame):
        bf = SheBloomFilter(128, 1024, frame=frame, seed=9)
        stream = zipf_stream(700, 200, seed=1)
        bf.insert_many(stream)
        path = tmp_path / "bf.npz"
        save_sketch(bf, path)
        bf2 = load_sketch(path)
        probes = np.arange(300, dtype=np.uint64)
        assert np.array_equal(bf.contains_many(probes), bf2.contains_many(probes))
        # resumed sketch keeps ingesting identically
        more = zipf_stream(100, 200, seed=2)
        bf.insert_many(more)
        bf2.insert_many(more)
        assert np.array_equal(bf.frame.cells, bf2.frame.cells)

    def test_bitmap(self, tmp_path, frame):
        bm = SheBitmap(128, 1024, frame=frame, seed=3)
        bm.insert_many(zipf_stream(600, 300, seed=3))
        path = tmp_path / "bm.npz"
        save_sketch(bm, path)
        bm2 = load_sketch(path)
        assert bm.cardinality() == bm2.cardinality()

    def test_hyperloglog(self, tmp_path, frame):
        h = SheHyperLogLog(128, 256, frame=frame, seed=4)
        h.insert_many(zipf_stream(600, 400, seed=4))
        path = tmp_path / "hll.npz"
        save_sketch(h, path)
        h2 = load_sketch(path)
        assert h.cardinality() == h2.cardinality()
        more = zipf_stream(100, 400, seed=5)
        h.insert_many(more)
        h2.insert_many(more)
        assert np.array_equal(h.frame.cells, h2.frame.cells)

    def test_count_min(self, tmp_path, frame):
        cm = SheCountMin(128, 512, frame=frame, seed=5)
        cm.insert_many(zipf_stream(600, 100, seed=6))
        path = tmp_path / "cm.npz"
        save_sketch(cm, path)
        cm2 = load_sketch(path)
        keys = np.arange(50, dtype=np.uint64)
        assert np.array_equal(cm.frequency_many(keys), cm2.frequency_many(keys))

    def test_minhash(self, tmp_path, frame):
        mh = SheMinHash(128, 64, frame=frame, seed=6)
        a = zipf_stream(500, 150, seed=7)
        b = zipf_stream(500, 150, seed=8)
        mh.insert_many(0, a)
        mh.insert_many(1, b)
        path = tmp_path / "mh.npz"
        save_sketch(mh, path)
        mh2 = load_sketch(path)
        assert mh.similarity() == mh2.similarity()
        mh.insert_many(0, b[:50])
        mh2.insert_many(0, b[:50])
        assert np.array_equal(mh.frames[0].cells, mh2.frames[0].cells)


class TestAtomicity:
    def test_crash_mid_write_keeps_old_archive(self, tmp_path, monkeypatch):
        """A failure while writing never corrupts the existing archive."""
        import repro.persist as persist

        bf = SheBloomFilter(128, 1024, seed=9)
        bf.insert_many(zipf_stream(500, 200, seed=1))
        path = tmp_path / "bf.npz"
        save_sketch(bf, path)
        probes = np.arange(300, dtype=np.uint64)
        before = bf.contains_many(probes)

        def dying_savez(fh, **arrays):
            fh.write(b"PK\x03\x04 truncated garbage")  # partial write...
            raise OSError("disk full")  # ...then the crash

        monkeypatch.setattr(persist.np, "savez_compressed", dying_savez)
        with pytest.raises(OSError, match="disk full"):
            save_sketch(bf, path)
        monkeypatch.undo()

        # the old complete archive survives, and no temp litter remains
        bf2 = load_sketch(path)
        assert np.array_equal(bf2.contains_many(probes), before)
        assert [p.name for p in tmp_path.iterdir()] == ["bf.npz"]

    def test_suffixless_target_gains_npz(self, tmp_path):
        bm = SheBitmap(64, 512, seed=3)
        save_sketch(bm, tmp_path / "bm")
        assert (tmp_path / "bm.npz").exists()
        assert load_sketch(tmp_path / "bm.npz").cardinality() == bm.cardinality()


class TestErrors:
    def test_unsupported_type(self, tmp_path):
        with pytest.raises(TypeError):
            save_sketch(object(), tmp_path / "x.npz")

    def test_bad_format_version(self, tmp_path):
        import json

        bf = SheBloomFilter(64, 128)
        path = tmp_path / "bf.npz"
        save_sketch(bf, path)
        data = dict(np.load(path))
        meta = json.loads(bytes(data["__meta__"]).decode())
        meta["format"] = 99
        data["__meta__"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8).copy()
        np.savez(path, **data)
        with pytest.raises(ValueError):
            load_sketch(path)


class TestPersistFormatError:
    """Typed load-path failures: every bad archive is a
    :class:`PersistFormatError` carrying the path and supported kinds."""

    def _rewrite_meta(self, path, mutate):
        import json

        data = dict(np.load(path))
        meta = json.loads(bytes(data["__meta__"]).decode())
        mutate(meta)
        data["__meta__"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        ).copy()
        np.savez(path, **data)

    def _saved(self, tmp_path):
        bf = SheBloomFilter(64, 128, seed=2)
        bf.insert_many(zipf_stream(200, 50, seed=1))
        path = tmp_path / "bf.npz"
        save_sketch(bf, path)
        return path

    def test_is_a_value_error(self):
        assert issubclass(PersistFormatError, ValueError)

    def test_missing_file_stays_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_sketch(tmp_path / "absent.npz")

    def test_truncated_archive(self, tmp_path):
        path = self._saved(tmp_path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(PersistFormatError, match="not a readable"):
            load_sketch(path)

    def test_non_archive_file(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this was never an npz archive")
        with pytest.raises(PersistFormatError):
            load_sketch(path)

    def test_missing_meta_entry(self, tmp_path):
        path = tmp_path / "bare.npz"
        np.savez(path, cells=np.zeros(8, dtype=np.uint8))
        with pytest.raises(PersistFormatError, match="__meta__"):
            load_sketch(path)

    def test_bad_format_version_is_typed(self, tmp_path):
        path = self._saved(tmp_path)
        self._rewrite_meta(path, lambda m: m.update(format=99))
        with pytest.raises(PersistFormatError, match="unsupported archive format"):
            load_sketch(path)

    def test_unknown_kind_names_registry(self, tmp_path):
        path = self._saved(tmp_path)
        self._rewrite_meta(path, lambda m: m.update(kind="SheFromTheFuture"))
        with pytest.raises(PersistFormatError, match="unknown sketch kind") as exc:
            load_sketch(path)
        assert "SheBloomFilter" in str(exc.value.supported_kinds) or (
            "bf" in exc.value.supported_kinds
        )

    def test_error_carries_path_and_supported_kinds(self, tmp_path):
        path = self._saved(tmp_path)
        self._rewrite_meta(path, lambda m: m.update(format=99))
        with pytest.raises(PersistFormatError) as exc:
            load_sketch(path)
        err = exc.value
        assert err.path == path
        assert {"bf", "bm", "hll", "cm", "mh"} <= set(err.supported_kinds)
        assert str(path) in str(err)
