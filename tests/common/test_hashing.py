"""Tests for the hashing substrate."""

import numpy as np
import pytest

from repro.common.hashing import (
    BobHash,
    HashFamily,
    canonical_key,
    canonical_keys,
    fingerprints,
    leading_zeros_32,
    splitmix64,
)


class TestSplitmix64:
    def test_scalar_matches_array(self):
        xs = np.array([0, 1, 2, 12345, 2**63], dtype=np.uint64)
        arr = splitmix64(xs)
        for i, x in enumerate(xs):
            assert splitmix64(int(x)) == int(arr[i])

    def test_deterministic(self):
        assert splitmix64(42) == splitmix64(42)

    def test_distinct_inputs_distinct_outputs(self):
        xs = np.arange(10_000, dtype=np.uint64)
        assert len(np.unique(splitmix64(xs))) == 10_000

    def test_scalar_returns_python_int(self):
        assert isinstance(splitmix64(7), int)

    def test_output_range(self):
        out = splitmix64(np.arange(1000, dtype=np.uint64))
        assert out.dtype == np.uint64

    def test_avalanche(self):
        # flipping one input bit flips ~half the output bits
        a = splitmix64(0x123456789ABCDEF)
        b = splitmix64(0x123456789ABCDEE)
        diff = bin(a ^ b).count("1")
        assert 16 <= diff <= 48


class TestHashFamily:
    def test_requires_positive_k(self):
        with pytest.raises(ValueError):
            HashFamily(0)

    def test_values_shape(self):
        fam = HashFamily(4)
        out = fam.values(np.arange(10, dtype=np.uint64))
        assert out.shape == (10, 4)

    def test_scalar_values_shape(self):
        fam = HashFamily(4)
        assert fam.values(7).shape == (4,)

    def test_indices_range(self):
        fam = HashFamily(3)
        idx = fam.indices(np.arange(1000, dtype=np.uint64), 97)
        assert idx.max() < 97
        assert idx.min() >= 0

    def test_index_scalar_matches_batch(self):
        fam = HashFamily(3, seed=9)
        keys = np.arange(20, dtype=np.uint64)
        idx = fam.indices(keys, 101)
        for i, k in enumerate(keys):
            for j in range(3):
                assert fam.index(int(k), j, 101) == idx[i, j]

    def test_different_seeds_differ(self):
        a = HashFamily(1, seed=1).values(np.arange(100, dtype=np.uint64))
        b = HashFamily(1, seed=2).values(np.arange(100, dtype=np.uint64))
        assert not np.array_equal(a, b)

    def test_functions_independent(self):
        fam = HashFamily(2, seed=5)
        v = fam.values(np.arange(5000, dtype=np.uint64))
        # the two columns should not be correlated
        assert not np.array_equal(v[:, 0], v[:, 1])
        agreement = np.mean((v[:, 0] % 64) == (v[:, 1] % 64))
        assert agreement < 0.05

    def test_uniformity_chi_squared(self):
        fam = HashFamily(1, seed=3)
        m = 64
        idx = fam.indices(np.arange(64_000, dtype=np.uint64), m)
        counts = np.bincount(idx[:, 0].astype(np.int64), minlength=m)
        expected = 64_000 / m
        chi2 = float(np.sum((counts - expected) ** 2 / expected))
        # 63 dof: mean 63, std ~11; allow generous headroom
        assert chi2 < 63 + 6 * 11.2

    def test_seeds_property_read_only(self):
        fam = HashFamily(2)
        with pytest.raises(ValueError):
            fam.seeds[0] = 0

    def test_modulus_validation(self):
        with pytest.raises(ValueError):
            HashFamily(1).indices(np.asarray([1], dtype=np.uint64), 0)


class TestLeadingZeros:
    def test_known_values(self):
        assert leading_zeros_32(0) == 32
        assert leading_zeros_32(1) == 31
        assert leading_zeros_32(0x80000000) == 0
        assert leading_zeros_32(0xFFFFFFFF) == 0
        assert leading_zeros_32(0x00010000) == 15

    def test_matches_bit_length(self):
        vals = np.random.default_rng(0).integers(0, 2**32, size=1000, dtype=np.uint64)
        out = leading_zeros_32(vals)
        for v, o in zip(vals.tolist(), out.tolist()):
            assert o == 32 - int(v).bit_length()

    def test_only_low_32_bits_counted(self):
        assert leading_zeros_32((1 << 40) | 1) == 31

    def test_geometric_distribution(self):
        vals = splitmix64(np.arange(100_000, dtype=np.uint64))
        lz = leading_zeros_32(vals)
        # P(lz >= 1) should be ~1/2
        assert abs(np.mean(lz >= 1) - 0.5) < 0.02


class TestFingerprints:
    def test_width(self):
        fps = fingerprints(np.arange(1000, dtype=np.uint64), 8)
        assert fps.max() < 256

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            fingerprints(np.asarray([1], dtype=np.uint64), 0)
        with pytest.raises(ValueError):
            fingerprints(np.asarray([1], dtype=np.uint64), 65)

    def test_deterministic(self):
        keys = np.arange(50, dtype=np.uint64)
        assert np.array_equal(fingerprints(keys, 16), fingerprints(keys, 16))


class TestCanonicalKey:
    def test_int_passthrough(self):
        assert canonical_key(5) == 5

    def test_int_wraps(self):
        assert canonical_key(2**64 + 3) == 3

    def test_negative_wraps(self):
        assert canonical_key(-1) == 2**64 - 1

    def test_string_deterministic(self):
        assert canonical_key("10.0.0.1") == canonical_key("10.0.0.1")
        assert canonical_key("10.0.0.1") != canonical_key("10.0.0.2")

    def test_bytes_equals_str_utf8(self):
        assert canonical_key("abc") == canonical_key(b"abc")

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            canonical_key(3.14)

    def test_canonical_keys_array_passthrough(self):
        arr = np.arange(5, dtype=np.int32)
        out = canonical_keys(arr)
        assert out.dtype == np.uint64
        assert np.array_equal(out, arr.astype(np.uint64))

    def test_canonical_keys_mixed(self):
        out = canonical_keys(["a", 5, b"z"])
        assert out.shape == (3,)


class TestBobHash:
    def test_deterministic(self):
        h = BobHash(seed=1)
        assert h(12345) == h(12345)

    def test_seed_changes_output(self):
        assert BobHash(seed=1)(99) != BobHash(seed=2)(99)

    def test_32bit_range(self):
        h = BobHash()
        for k in [0, 1, 2**40, "hello", b"\x00" * 20]:
            v = h(k)
            assert 0 <= v < 2**32

    def test_long_input_blocks(self):
        # exercises the 12-byte body loop
        h = BobHash(seed=7)
        assert h(b"x" * 40) != h(b"x" * 41)

    def test_uniform_enough_for_sketches(self):
        h = BobHash(seed=3)
        m = 32
        counts = np.bincount([h(i) % m for i in range(8000)], minlength=m)
        expected = 8000 / m
        chi2 = float(np.sum((counts - expected) ** 2 / expected))
        assert chi2 < 31 + 6 * 7.9
