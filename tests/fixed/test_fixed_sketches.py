"""Tests for the fixed-window original sketches."""

import numpy as np
import pytest

from repro.fixed import Bitmap, BloomFilter, CountMinSketch, HyperLogLog, MinHash

from helpers import zipf_stream


class TestBloomFilter:
    def test_no_false_negatives(self):
        bf = BloomFilter(4096, 8)
        keys = np.arange(200, dtype=np.uint64)
        bf.insert_many(keys)
        assert np.all(bf.contains_many(keys))

    def test_empty_all_negative(self):
        bf = BloomFilter(1024)
        assert not np.any(bf.contains_many(np.arange(100, dtype=np.uint64)))

    def test_fpr_scales_with_load(self):
        light = BloomFilter(1 << 14, 8, seed=1)
        heavy = BloomFilter(1 << 10, 8, seed=1)
        keys = np.arange(500, dtype=np.uint64)
        light.insert_many(keys)
        heavy.insert_many(keys)
        probes = np.arange(10_000, 20_000, dtype=np.uint64)
        assert light.contains_many(probes).mean() < heavy.contains_many(probes).mean()

    def test_scalar_matches_batch(self):
        bf = BloomFilter(1024, 4)
        bf.insert(42)
        assert bf.contains(42)
        assert bf.contains_many(np.asarray([42], dtype=np.uint64))[0]

    def test_memory(self):
        assert BloomFilter(1024).memory_bytes == 128

    def test_reset(self):
        bf = BloomFilter(256)
        bf.insert(1)
        bf.reset()
        assert not bf.contains(1)


class TestBitmap:
    def test_estimate_accuracy(self):
        bm = Bitmap(1 << 14)
        keys = np.unique(zipf_stream(5000, 3000, seed=2))
        bm.insert_many(keys)
        assert abs(bm.cardinality() - keys.size) / keys.size < 0.1

    def test_empty(self):
        assert Bitmap(64).cardinality() == 0.0

    def test_saturation_finite(self):
        bm = Bitmap(32)
        bm.insert_many(np.arange(10_000, dtype=np.uint64))
        assert np.isfinite(bm.cardinality())

    def test_duplicates_do_not_inflate(self):
        bm = Bitmap(4096)
        bm.insert_many(np.full(1000, 9, dtype=np.uint64))
        assert bm.cardinality() < 3


class TestHyperLogLog:
    def test_estimate_accuracy_large(self):
        hll = HyperLogLog(1024)
        keys = np.random.default_rng(3).integers(0, 1 << 50, size=50_000, dtype=np.uint64)
        hll.insert_many(keys)
        true = len(np.unique(keys))
        assert abs(hll.cardinality() - true) / true < 0.15

    def test_linear_counting_small(self):
        hll = HyperLogLog(1024)
        hll.insert_many(np.arange(100, dtype=np.uint64))
        assert abs(hll.cardinality() - 100) < 25

    def test_empty(self):
        assert HyperLogLog(64).cardinality() == 0.0

    def test_memory_five_bits_per_register(self):
        assert HyperLogLog(1024).memory_bytes == 640


class TestCountMin:
    def test_never_underestimates(self):
        cm = CountMinSketch(1 << 12, 8)
        stream = zipf_stream(3000, 200, seed=4)
        cm.insert_many(stream)
        for k in range(50):
            true = int(np.count_nonzero(stream == k))
            assert cm.frequency(k) >= true

    def test_exact_when_sparse(self):
        cm = CountMinSketch(1 << 14, 4)
        cm.insert_many(np.full(7, 3, dtype=np.uint64))
        assert cm.frequency(3) == 7

    def test_batch_matches_scalar(self):
        cm = CountMinSketch(1024, 4)
        cm.insert_many(zipf_stream(500, 50, seed=5))
        keys = np.arange(20, dtype=np.uint64)
        batch = cm.frequency_many(keys)
        assert all(cm.frequency(int(k)) == batch[i] for i, k in enumerate(keys))


class TestMinHash:
    def test_identical_sets(self):
        mh = MinHash(256)
        keys = np.arange(100, dtype=np.uint64)
        mh.insert_many(0, keys)
        mh.insert_many(1, keys)
        assert mh.similarity() == 1.0

    def test_disjoint_sets(self):
        mh = MinHash(256)
        mh.insert_many(0, np.arange(100, dtype=np.uint64))
        mh.insert_many(1, np.arange(1000, 1100, dtype=np.uint64))
        assert mh.similarity() < 0.05

    def test_estimates_jaccard(self):
        mh = MinHash(1024)
        a = np.arange(0, 150, dtype=np.uint64)
        b = np.arange(50, 200, dtype=np.uint64)
        mh.insert_many(0, a)
        mh.insert_many(1, b)
        assert abs(mh.similarity() - 100 / 200) < 0.08

    def test_rejects_bad_side(self):
        with pytest.raises(ValueError):
            MinHash(16).insert(5, 1)

    def test_order_invariant(self):
        a = MinHash(128, seed=6)
        b = MinHash(128, seed=6)
        keys = np.arange(60, dtype=np.uint64)
        a.insert_many(0, keys)
        b.insert_many(0, keys[::-1].copy())
        assert np.array_equal(a.minima[0], b.minima[0])
