"""Tests for the "ideal goal" replay wrappers."""

import numpy as np

from repro.fixed import (
    IdealCardinalityBitmap,
    IdealCardinalityHLL,
    IdealFrequency,
    IdealMembership,
    IdealSimilarity,
)

from helpers import zipf_stream


class TestIdealMembership:
    def test_window_members_found(self):
        im = IdealMembership(64, 1 << 12)
        stream = zipf_stream(300, 100, seed=1)
        im.insert_many(stream)
        members = im.oracle.distinct_keys()
        assert np.all(im.contains_many(members))

    def test_expired_not_found(self):
        im = IdealMembership(8, 1 << 12)
        im.insert(999)
        im.insert_many(np.arange(20, dtype=np.uint64))
        assert not im.contains(999)

    def test_ideal_tracks_window_exactly(self):
        """The ideal rebuilds from the window — no aged/young error."""
        im = IdealMembership(16, 1 << 14)
        im.insert_many(np.arange(1000, dtype=np.uint64))
        # only the last 16 keys are present
        assert im.contains(999)
        assert not im.contains(900)


class TestIdealCardinality:
    def test_bitmap_matches_truth(self):
        ic = IdealCardinalityBitmap(128, 1 << 14)
        stream = zipf_stream(500, 300, seed=2)
        ic.insert_many(stream)
        true = ic.oracle.cardinality()
        assert abs(ic.cardinality() - true) / true < 0.15

    def test_hll_matches_truth(self):
        ic = IdealCardinalityHLL(256, 1024)
        ic.insert_many(np.arange(200, dtype=np.uint64))
        assert abs(ic.cardinality() - 200) < 60

    def test_expiry(self):
        ic = IdealCardinalityBitmap(4, 1 << 12)
        ic.insert_many(np.arange(100, dtype=np.uint64))
        assert ic.cardinality() < 10


class TestIdealFrequency:
    def test_replays_multiset(self):
        f = IdealFrequency(32, 1 << 12)
        f.insert_many(np.full(10, 5, dtype=np.uint64))
        assert f.frequency(5) >= 10

    def test_window_bounded(self):
        f = IdealFrequency(8, 1 << 12)
        f.insert_many(np.full(100, 5, dtype=np.uint64))
        assert f.frequency(5) == 8


class TestIdealSimilarity:
    def test_identical(self):
        s = IdealSimilarity(32, 256)
        keys = np.arange(20, dtype=np.uint64)
        s.insert_many(0, keys)
        s.insert_many(1, keys)
        assert s.similarity() == 1.0

    def test_reset(self):
        s = IdealSimilarity(32, 64)
        s.insert(0, 1)
        s.insert(1, 1)
        s.reset()
        assert s.sides[0].cardinality() == 0
