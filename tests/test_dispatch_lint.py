"""Dispatch lint: algorithm dispatch lives in the registry, nowhere else.

The registry refactor's structural guarantee — adding an algorithm means
one ``register_algorithm()`` call, never editing per-kind branches — only
holds while no ``isinstance(x, She...)`` type-switching creeps back into
the framework.  This lint walks every Python file under ``src/`` and
fails on such a check outside ``core/registry.py`` (the one module
allowed to know the concrete classes).

Uses the AST, not a regex, so strings/docstrings/comments mentioning the
pattern don't trip it and aliased tuple forms ``isinstance(x, (SheA,
SheB))`` do.
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src"

#: the one module allowed to dispatch on concrete sketch classes
ALLOWED = {SRC / "repro" / "core" / "registry.py"}

#: class-name prefixes whose isinstance checks count as algorithm dispatch
DISPATCH_PREFIXES = ("She", "GenericShe")


def _names_in(node: ast.expr):
    """Bare names mentioned in an isinstance() second argument."""
    if isinstance(node, ast.Name):
        yield node.id
    elif isinstance(node, ast.Attribute):
        yield node.attr
    elif isinstance(node, ast.Tuple):
        for elt in node.elts:
            yield from _names_in(elt)


def _violations(path: Path) -> list[str]:
    tree = ast.parse(path.read_text(), filename=str(path))
    found = []
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "isinstance"
            and len(node.args) == 2
        ):
            continue
        hits = [
            name
            for name in _names_in(node.args[1])
            if name.startswith(DISPATCH_PREFIXES)
        ]
        if hits:
            found.append(f"{path}:{node.lineno}: isinstance on {', '.join(hits)}")
    return found


def test_no_isinstance_dispatch_outside_registry():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if path in ALLOWED:
            continue
        offenders.extend(_violations(path))
    assert not offenders, (
        "algorithm dispatch belongs in repro/core/registry.py "
        "(register an AlgoDescriptor instead):\n" + "\n".join(offenders)
    )


def test_lint_actually_detects_dispatch(tmp_path):
    """The lint is live: a synthetic violation is caught."""
    bad = tmp_path / "bad.py"
    bad.write_text(
        "def f(x):\n"
        "    if isinstance(x, (SheMinHash, SheCountMin)):\n"
        "        return 2\n"
        "    # isinstance(x, SheBloomFilter) in a comment is fine\n"
        "    s = 'isinstance(x, SheBitmap) in a string is fine'\n"
        "    return 1\n"
    )
    found = _violations(bad)
    assert len(found) == 1 and "SheMinHash" in found[0]
