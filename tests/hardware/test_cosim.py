"""Co-simulation: the RTL pipeline models vs the Python frames.

The keystone of the hardware claim: the four-stage SHE-BM pipeline of
§6, executed over logged SRAM regions, must be bit-exact with
``HardwareFrame`` under identical parameters.
"""

import numpy as np
import pytest

from repro.core import SheBitmap, SheBloomFilter
from repro.hardware import SheBfRtl, SheBmRtl, check_constraints


@pytest.mark.parametrize("alpha", [0.2, 1.0])
@pytest.mark.parametrize("seed", [0, 1])
def test_she_bm_rtl_bit_exact(alpha, seed):
    window = 200
    rtl = SheBmRtl(window, 1024, alpha=alpha, seed=2)
    ref = SheBitmap(window, 1024, alpha=alpha, frame="hardware", seed=2)
    stream = np.random.default_rng(seed).integers(0, 4096, size=1500, dtype=np.uint64)
    rtl.insert_stream(stream)
    ref.insert_many(stream)
    assert np.array_equal(rtl.cell_bits(), ref.frame.cells)
    assert np.array_equal(rtl.mark_bits(), ref.frame.marks)


def test_she_bm_rtl_satisfies_constraints():
    rtl = SheBmRtl(128, 1024, alpha=0.2)
    run = rtl.insert_stream(np.arange(512, dtype=np.uint64))
    report = check_constraints(rtl.pipeline, run)
    assert report.hardware_friendly, report.violations


def test_she_bm_rtl_one_item_per_cycle():
    rtl = SheBmRtl(128, 1024)
    run = rtl.insert_stream(np.arange(2000, dtype=np.uint64))
    assert run.cycles == 2000 + 4 - 1


def test_stage_access_discipline():
    """Each stage touches one region, one address, <= 1 RMW per item."""
    rtl = SheBmRtl(128, 1024)
    run = rtl.insert_stream(np.arange(500, dtype=np.uint64))
    for st in run.stage_stats:
        assert st.max_distinct_addresses_per_item <= 1


def test_she_bf_rtl_agrees_with_membership_semantics():
    """Each BF lane is an independent SHE-BM; presence = AND of lanes."""
    window = 128
    bf = SheBfRtl(window, 1024, num_lanes=4, alpha=1.0, seed=1)
    stream = np.random.default_rng(3).integers(0, 256, size=300, dtype=np.uint64)
    bf.insert_stream(stream)
    # recently inserted keys are found (no false negatives)
    for k in stream[-50:]:
        assert bf.contains(int(k))


def test_she_bf_rtl_rejects_ancient_distinct_key():
    window = 64
    bf = SheBfRtl(window, 2048, num_lanes=8, alpha=1.0, seed=1)
    probe = 1 << 45
    bf.insert_stream(np.asarray([probe], dtype=np.uint64))
    bf.insert_stream(np.arange(10 * window, dtype=np.uint64))
    assert not bf.contains(probe)


def test_rtl_validates_geometry():
    with pytest.raises(ValueError):
        SheBmRtl(100, 1000, group_width=64)  # not a multiple
