"""Co-simulation tests for the SHE-CM and SHE-HLL pipeline models."""

import numpy as np
import pytest

from repro.core import SheCountMin, SheHyperLogLog
from repro.hardware import SheCmRtl, SheHllRtl, check_constraints


@pytest.mark.parametrize("alpha", [0.5, 1.0])
@pytest.mark.parametrize("seed", [0, 1])
def test_she_cm_rtl_bit_exact(alpha, seed):
    window = 150
    rtl = SheCmRtl(window, 256, group_width=8, alpha=alpha, seed=4)
    ref = SheCountMin(
        window, 256, num_hashes=1, group_width=8, alpha=alpha, frame="hardware", seed=4
    )
    stream = np.random.default_rng(seed).integers(0, 1500, size=1200, dtype=np.uint64)
    rtl.insert_stream(stream)
    ref.insert_many(stream)
    assert np.array_equal(rtl.counters_array(), ref.frame.cells)


@pytest.mark.parametrize("alpha", [0.2, 1.0])
def test_she_hll_rtl_bit_exact(alpha):
    window = 150
    rtl = SheHllRtl(window, 128, alpha=alpha, seed=3)
    ref = SheHyperLogLog(window, 128, alpha=alpha, frame="hardware", seed=3)
    stream = np.random.default_rng(7).integers(0, 5000, size=1500, dtype=np.uint64)
    rtl.insert_stream(stream)
    ref.insert_many(stream)
    assert np.array_equal(rtl.registers_array(), ref.frame.cells)


def test_cm_rtl_constraints():
    rtl = SheCmRtl(128, 256, group_width=8)
    run = rtl.insert_stream(np.arange(600, dtype=np.uint64))
    report = check_constraints(rtl.pipeline, run)
    assert report.hardware_friendly, report.violations


def test_hll_rtl_constraints():
    rtl = SheHllRtl(128, 128)
    run = rtl.insert_stream(np.arange(600, dtype=np.uint64))
    report = check_constraints(rtl.pipeline, run)
    assert report.hardware_friendly, report.violations


def test_cm_rtl_one_item_per_cycle():
    rtl = SheCmRtl(128, 256, group_width=8)
    run = rtl.insert_stream(np.arange(500, dtype=np.uint64))
    assert run.cycles == 500 + 4 - 1


def test_cm_rtl_geometry_validation():
    with pytest.raises(ValueError):
        SheCmRtl(100, 100, group_width=8)
    with pytest.raises(ValueError):
        SheCmRtl(100, 256, group_width=8, counter_bits=16)
