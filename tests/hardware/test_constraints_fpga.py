"""Tests for the constraint checker, SWAMP infeasibility, and Tables 2-3."""

import numpy as np
import pytest

from repro.hardware import (
    SHE_BF_DESIGN,
    SHE_BM_DESIGN,
    FpgaDesign,
    Pipeline,
    SramRegion,
    Stage,
    check_constraints,
    estimate_clock_mhz,
    estimate_resources,
    swamp_pipeline_report,
    throughput_mips,
)
from repro.harness import PAPER_TABLE2, PAPER_TABLE3


class TestConstraintChecker:
    def _pipeline(self, share_region=False, multi_addr=False):
        mem = SramRegion("mem", 64, 8)

        def s1(ctx):
            mem.write("s1", ctx["item"] % 64, 1)
            if multi_addr:
                mem.write("s1", (ctx["item"] + 7) % 64, 1)

        def s2(ctx):
            if share_region:
                mem.read("s2", ctx["item"] % 64)

        regions2 = (mem,) if share_region else ()
        return Pipeline([Stage("s1", s1, (mem,)), Stage("s2", s2, regions2)])

    def test_clean_pipeline_passes(self):
        p = self._pipeline()
        report = check_constraints(p, p.process(range(100)))
        assert report.hardware_friendly

    def test_shared_region_fails_constraint2(self):
        p = self._pipeline(share_region=True)
        report = check_constraints(p, p.process(range(100)))
        assert not report.single_stage_ok
        assert any("constraint 2" in v for v in report.violations)

    def test_multi_address_fails_constraint3(self):
        p = self._pipeline(multi_addr=True)
        report = check_constraints(p, p.process(range(100)))
        assert not report.concurrent_ok

    def test_sram_budget(self):
        p = self._pipeline()
        report = check_constraints(p, p.process(range(10)), sram_budget_bits=100)
        assert not report.sram_ok
        assert report.total_bits == 512


class TestSwampInfeasibility:
    def test_swamp_fails(self):
        report = swamp_pipeline_report(256, 2048)
        assert not report.hardware_friendly

    def test_swamp_fails_constraint2(self):
        report = swamp_pipeline_report(256, 2048)
        assert not report.single_stage_ok

    def test_swamp_domino_effect_fails_constraint3(self):
        # long run so buckets fill and chaining spills occur
        report = swamp_pipeline_report(512, 8192)
        assert not report.concurrent_ok


class TestResourceModel:
    def test_table2_bm_exact(self):
        est = estimate_resources(SHE_BM_DESIGN)
        assert est.lut == PAPER_TABLE2["SHE-BM"]["lut"]
        assert est.register == PAPER_TABLE2["SHE-BM"]["register"]
        assert est.bram36 == 0

    def test_table2_bf_within_half_percent(self):
        est = estimate_resources(SHE_BF_DESIGN)
        for field in ("lut", "register"):
            model = getattr(est, field)
            paper = PAPER_TABLE2["SHE-BF"][field]
            assert abs(model - paper) / paper < 0.005
        assert est.bram36 == 0

    def test_bf_to_bm_logic_ratio(self):
        bm = estimate_resources(SHE_BM_DESIGN)
        bf = estimate_resources(SHE_BF_DESIGN)
        assert 7 < bf.lut / bm.lut < 9

    def test_utilisation_fractions(self):
        util = estimate_resources(SHE_BM_DESIGN).utilisation()
        assert util["lut"] == pytest.approx(0.0038, abs=3e-4)

    def test_large_array_spills_to_bram(self):
        big = FpgaDesign("big", array_bits=1 << 20, group_width=64)
        est = estimate_resources(big)
        assert est.bram36 > 0

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            FpgaDesign("bad", array_bits=1000, group_width=64)


class TestClockModel:
    def test_table3_bm_exact(self):
        assert estimate_clock_mhz(SHE_BM_DESIGN) == pytest.approx(
            PAPER_TABLE3["SHE-BM"], abs=0.01
        )

    def test_table3_bf_close(self):
        assert estimate_clock_mhz(SHE_BF_DESIGN) == pytest.approx(
            PAPER_TABLE3["SHE-BF"], rel=0.002
        )

    def test_bm_faster_than_bf(self):
        assert estimate_clock_mhz(SHE_BM_DESIGN) > estimate_clock_mhz(SHE_BF_DESIGN)

    def test_bram_penalty_slows_clock(self):
        small = FpgaDesign("s", array_bits=1024, group_width=64)
        big = FpgaDesign("b", array_bits=1 << 20, group_width=64)
        assert estimate_clock_mhz(big) < estimate_clock_mhz(small)

    def test_throughput_equals_clock(self):
        assert throughput_mips(SHE_BM_DESIGN) == estimate_clock_mhz(SHE_BM_DESIGN)
