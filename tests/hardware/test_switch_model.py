"""Tests for the programmable-switch placement model."""

import pytest

from repro.hardware.switch_model import (
    TOFINO_LIKE,
    RegionRequirement,
    SketchRequirements,
    SwitchProfile,
    plan,
    plan_she,
    plan_swamp,
)


class TestPlanShe:
    def test_she_bm_fits(self):
        report = plan_she(num_cells=1 << 20, cell_bits=1, group_width=64)
        assert report.feasible, report.reasons
        assert report.stages_used <= TOFINO_LIKE.stages

    def test_she_bf_eight_lanes_fits(self):
        report = plan_she(num_cells=1 << 17, cell_bits=1, group_width=64, num_hashes=8)
        # 8 lanes = 17 regions: more stages than a 12-stage pipe offers,
        # so a single pass cannot host full SHE-BF — the realistic P4
        # deployment uses fewer hashes (k=4 fits) or both pipe passes
        assert report.stages_used >= len(report.placements)
        assert not report.feasible
        four = plan_she(num_cells=1 << 17, cell_bits=1, group_width=64, num_hashes=4)
        assert four.feasible, four.reasons

    def test_she_cm_wide_words_respect_salu(self):
        # 64 x 32-bit counters per group = 2048-bit access: too wide
        report = plan_she(num_cells=1 << 16, cell_bits=32, group_width=64)
        assert not report.feasible
        assert any("SALU width" in r for r in report.reasons)

    def test_she_cm_narrow_groups_fit(self):
        # 4 x 32-bit counters = 128-bit access: exactly the SALU width
        report = plan_she(num_cells=1 << 16, cell_bits=32, group_width=4)
        assert report.feasible, report.reasons

    def test_oversized_array_rejected(self):
        report = plan_she(num_cells=1 << 27, cell_bits=1, group_width=64)
        assert not report.feasible
        assert any("stage holds" in r for r in report.reasons)


class TestPlanSwamp:
    def test_swamp_infeasible(self):
        report = plan_swamp(window=65536)
        assert not report.feasible

    def test_swamp_fails_for_the_paper_reasons(self):
        report = plan_swamp(window=65536)
        text = " ".join(report.reasons)
        assert "addresses per packet" in text  # constraint 3
        assert "writer phases" in text         # constraint 2


class TestPlanGeneric:
    def test_stage_budget_enforced(self):
        tiny = SwitchProfile("tiny", stages=2, sram_bits_per_stage=1 << 20, salu_width_bits=128)
        req = SketchRequirements(
            "three-region",
            tuple(
                RegionRequirement(f"r{i}", 1024, 32) for i in range(3)
            ),
        )
        report = plan(req, tiny)
        assert not report.feasible
        assert any("stages" in r for r in report.reasons)

    def test_total_sram_budget(self):
        tiny = SwitchProfile("tiny", stages=4, sram_bits_per_stage=1024, salu_width_bits=128)
        req = SketchRequirements(
            "fat", (RegionRequirement("r", 100_000, 32),)
        )
        report = plan(req, tiny)
        assert not report.feasible

    def test_placements_are_distinct_stages(self):
        report = plan_she(num_cells=1 << 12, cell_bits=1, group_width=64, num_hashes=2)
        stages = list(report.placements.values())
        assert len(set(stages)) == len(stages)


class TestPlanMinhash:
    def test_useful_m_infeasible(self):
        from repro.hardware import plan_minhash

        report = plan_minhash(num_counters=128)
        assert not report.feasible
        assert report.stages_used > 12

    def test_tiny_m_places(self):
        from repro.hardware import plan_minhash

        assert plan_minhash(num_counters=8).feasible
