"""Scaling behaviour of the FPGA resource/clock model beyond Table 2/3."""

import pytest

from repro.hardware import (
    FpgaDesign,
    estimate_clock_mhz,
    estimate_resources,
)


class TestResourceScaling:
    def test_lut_grows_with_group_count(self):
        a = estimate_resources(FpgaDesign("a", 1024, 64))
        b = estimate_resources(FpgaDesign("b", 4096, 64))
        assert b.lut > a.lut

    def test_lut_grows_with_group_width(self):
        a = estimate_resources(FpgaDesign("a", 1024, 32))
        b = estimate_resources(FpgaDesign("b", 1024, 128))
        assert b.lut > a.lut

    def test_registers_track_array_bits_when_small(self):
        a = estimate_resources(FpgaDesign("a", 1024, 64))
        b = estimate_resources(FpgaDesign("b", 2048, 64))
        assert b.register - a.register == pytest.approx(1024 + 16, abs=8)

    def test_register_spill_to_bram(self):
        small = estimate_resources(FpgaDesign("s", 4096, 64))
        big = estimate_resources(FpgaDesign("b", 8192, 64))
        assert small.bram36 == 0
        assert big.bram36 > 0
        assert big.register < small.register  # array left the registers

    def test_lanes_scale_lut_linearly(self):
        one = estimate_resources(FpgaDesign("1", 1024, 64, lanes=1))
        four = estimate_resources(FpgaDesign("4", 1024, 64, lanes=4))
        # minus the shared counter/glue, lanes are linear
        assert four.lut == pytest.approx(4 * (one.lut - 49) + 40 + 18, abs=30)

    def test_utilisation_keys(self):
        util = estimate_resources(FpgaDesign("u", 1024, 64)).utilisation()
        assert set(util) == {"lut", "register", "bram36"}
        assert all(0 <= v < 1 for v in util.values())


class TestClockScaling:
    def test_monotone_in_lanes(self):
        clocks = [
            estimate_clock_mhz(FpgaDesign("d", 1024, 64, lanes=l))
            for l in (1, 2, 4, 8, 16)
        ]
        assert clocks == sorted(clocks, reverse=True)

    def test_bram_designs_slower(self):
        reg = estimate_clock_mhz(FpgaDesign("r", 2048, 64))
        bram = estimate_clock_mhz(FpgaDesign("b", 1 << 16, 64))
        assert bram < reg

    def test_geometry_validated(self):
        with pytest.raises(ValueError):
            FpgaDesign("bad", 1000, 64)
        with pytest.raises(ValueError):
            FpgaDesign("bad", 0, 64)
