"""Behavioural tests for the SWAMP pipeline model itself."""

import numpy as np
import pytest

from repro.hardware import SwampRtl, check_constraints


class TestSwampRtl:
    def test_queue_wraps_and_evicts(self):
        rtl = SwampRtl(8, 12)
        rtl.insert_stream(np.arange(20, dtype=np.uint64))
        # table mirror holds exactly the window's worth of fingerprints
        total = sum(sum(b.values()) for b in rtl._buckets)
        assert total == 8

    def test_spill_accesses_recorded(self):
        # tiny table: chaining must show up as multi-address accesses
        rtl = SwampRtl(64, 12)
        run = rtl.insert_stream(np.arange(512, dtype=np.uint64))
        insert_stats = next(s for s in run.stage_stats if s.name == "s3_insert")
        assert insert_stats.max_distinct_addresses_per_item >= 1

    def test_memory_regions_sized_o_w(self):
        small = SwampRtl(64, 16)
        big = SwampRtl(1024, 16)
        assert (
            sum(r.total_bits for r in big.pipeline.regions.values())
            > 10 * sum(r.total_bits for r in small.pipeline.regions.values())
        )

    def test_constraint2_always_fails(self):
        """Any run long enough to evict must trip the shared-table check."""
        for window in (16, 128):
            rtl = SwampRtl(window, 12)
            run = rtl.insert_stream(np.arange(4 * window, dtype=np.uint64))
            report = check_constraints(rtl.pipeline, run)
            assert not report.single_stage_ok

    def test_short_run_before_eviction(self):
        """Before the queue fills there is nothing to remove — the
        remove stage stays silent and only the insert side runs."""
        rtl = SwampRtl(100, 12)
        run = rtl.insert_stream(np.arange(10, dtype=np.uint64))
        remove_stats = next(s for s in run.stage_stats if s.name == "s2_remove")
        assert remove_stats.max_accesses_per_item == 0

    def test_items_per_cycle(self):
        rtl = SwampRtl(32, 12)
        run = rtl.insert_stream(np.arange(100, dtype=np.uint64))
        assert run.cycles == 100 + 3 - 1
