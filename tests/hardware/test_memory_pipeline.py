"""Tests for the SRAM model and pipeline executor."""

import numpy as np
import pytest

from repro.hardware import Pipeline, SramRegion, Stage


class TestSramRegion:
    def test_read_write_roundtrip(self):
        r = SramRegion("m", 8, 16)
        r.write("s1", 3, 42)
        assert r.read("s1", 3) == 42

    def test_access_log(self):
        r = SramRegion("m", 8, 16)
        r.write("s1", 0, 1)
        r.read("s2", 0)
        assert len(r.accesses) == 2
        assert r.accesses[0].kind == "write"
        assert r.touching_stages == {"s1", "s2"}

    def test_address_bounds(self):
        r = SramRegion("m", 4, 8)
        with pytest.raises(IndexError):
            r.read("s", 4)

    def test_width_bounds(self):
        r = SramRegion("m", 4, 8)
        with pytest.raises(ValueError):
            r.write("s", 0, 1, width_bits=16)

    def test_wide_words_use_lanes(self):
        r = SramRegion("m", 4, 128)
        assert r.words.shape == (4, 2)

    def test_total_bits(self):
        assert SramRegion("m", 16, 64).total_bits == 1024

    def test_clear_log_keeps_state(self):
        r = SramRegion("m", 4, 8)
        r.write("s", 1, 5)
        r.clear_log()
        assert len(r.accesses) == 0
        assert int(r.words[1]) == 5

    def test_reset(self):
        r = SramRegion("m", 4, 8)
        r.write("s", 1, 5)
        r.reset()
        assert int(r.words[1]) == 0
        assert not r.touching_stages


class TestPipeline:
    def _simple(self):
        mem = SramRegion("mem", 16, 8)

        def s1(ctx):
            ctx["v"] = ctx["item"] * 2

        def s2(ctx):
            mem.write("s2", ctx["item"] % 16, ctx["v"])

        return Pipeline([Stage("s1", s1), Stage("s2", s2, (mem,))]), mem

    def test_cycles_formula(self):
        p, _ = self._simple()
        run = p.process(range(100))
        assert run.cycles == 100 + 2 - 1

    def test_items_per_cycle_near_one(self):
        p, _ = self._simple()
        run = p.process(range(1000))
        assert run.items_per_cycle > 0.99

    def test_stage_stats(self):
        p, mem = self._simple()
        run = p.process(range(10))
        stats = {s.name: s for s in run.stage_stats}
        assert stats["s1"].max_accesses_per_item == 0
        assert stats["s2"].max_accesses_per_item == 1
        assert stats["s2"].max_bits_per_item == 8

    def test_empty_stream(self):
        p, _ = self._simple()
        run = p.process([])
        assert run.cycles == 0

    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(ValueError):
            Pipeline([Stage("a", lambda c: None), Stage("a", lambda c: None)])

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            Pipeline([])

    def test_regions_collected(self):
        p, mem = self._simple()
        assert p.regions == {"mem": mem}
