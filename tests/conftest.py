"""Shared fixtures for the test suite."""

import sys
from pathlib import Path

import numpy as np
import pytest

# make tests/helpers.py importable from every test package
sys.path.insert(0, str(Path(__file__).parent))


@pytest.fixture
def rng():
    """Deterministic RNG for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_stream(rng):
    """A short skewed stream (2048 items, 500 distinct keys)."""
    return rng.choice(np.arange(500, dtype=np.uint64), size=2048)
