"""End-to-end tests for the repro.tools CLI."""

import json

import numpy as np
import pytest

from repro.tools.__main__ import main


@pytest.fixture
def trace_file(tmp_path):
    path = tmp_path / "trace.npy"
    assert main(["generate", "caida", "--items", "20000", "--distinct", "2000", "--out", str(path)]) == 0
    return path


class TestGenerate:
    def test_writes_npy(self, trace_file):
        arr = np.load(trace_file)
        assert arr.size == 20000

    def test_distinct_stream(self, tmp_path, capsys):
        path = tmp_path / "d.npy"
        assert main(["generate", "distinct", "--items", "500", "--out", str(path)]) == 0
        arr = np.load(path)
        assert len(np.unique(arr)) == 500


class TestBuildAndQuery:
    def test_bf_roundtrip(self, tmp_path, trace_file, capsys):
        out = tmp_path / "bf.npz"
        assert main([
            "build", "bf", "--window", "4096", "--memory", "32768",
            "--trace", str(trace_file), "--out", str(out),
        ]) == 0
        trace = np.load(trace_file)
        member = int(trace[-1])
        assert main(["query", str(out), "--contains", str(member)]) == 0
        reply = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
        assert reply["contains"] is True

    def test_bm_cardinality(self, tmp_path, trace_file, capsys):
        out = tmp_path / "bm.npz"
        main([
            "build", "bm", "--window", "4096", "--memory", "4096",
            "--trace", str(trace_file), "--out", str(out),
        ])
        assert main(["query", str(out), "--cardinality"]) == 0
        reply = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
        assert reply["cardinality"] > 100

    def test_cm_frequency(self, tmp_path, trace_file, capsys):
        out = tmp_path / "cm.npz"
        main([
            "build", "cm", "--window", "4096", "--memory", "65536",
            "--trace", str(trace_file), "--out", str(out),
        ])
        trace = np.load(trace_file)
        hot = int(trace[-1])
        assert main(["query", str(out), "--frequency", str(hot)]) == 0
        reply = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
        assert reply["frequency"] >= 1

    def test_query_wrong_capability(self, tmp_path, trace_file, capsys):
        out = tmp_path / "bm.npz"
        main([
            "build", "bm", "--window", "4096", "--memory", "4096",
            "--trace", str(trace_file), "--out", str(out),
        ])
        assert main(["query", str(out), "--contains", "5"]) == 2

    def test_query_nothing(self, tmp_path, trace_file):
        out = tmp_path / "bm.npz"
        main([
            "build", "bm", "--window", "4096", "--memory", "4096",
            "--trace", str(trace_file), "--out", str(out),
        ])
        assert main(["query", str(out)]) == 2


class TestInspect:
    def test_inspect_reports_metadata(self, tmp_path, trace_file, capsys):
        out = tmp_path / "hll.npz"
        main([
            "build", "hll", "--window", "4096", "--memory", "2048",
            "--trace", str(trace_file), "--out", str(out),
        ])
        capsys.readouterr()
        assert main(["inspect", str(out)]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["kind"] == "SheHyperLogLog"
        assert info["archive_bytes"] > 0


class TestMergeCommand:
    def test_merge_archives(self, tmp_path, trace_file, capsys):
        import numpy as np

        trace = np.load(trace_file)
        half = trace.size // 2
        # two monitors over consecutive time spans of the same stream
        from repro.core import SheBloomFilter
        from repro.core.timebase import TimedStream
        from repro.persist import save_sketch

        times = np.arange(trace.size, dtype=np.int64)
        a = SheBloomFilter(4096, 1 << 14, seed=1)
        b = SheBloomFilter(4096, 1 << 14, seed=1)
        TimedStream(a).insert_many(trace[:half], times[:half])
        TimedStream(b).insert_many(trace[half:], times[half:])
        pa, pb = tmp_path / "a.npz", tmp_path / "b.npz"
        save_sketch(a, pa)
        save_sketch(b, pb)
        out = tmp_path / "all.npz"
        assert main(["merge", str(pa), str(pb), "--out", str(out), "--at", str(trace.size)]) == 0
        assert main(["query", str(out), "--contains", str(int(trace[-1]))]) == 0
        reply = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
        assert reply["contains"] is True

    def test_merge_incompatible(self, tmp_path, trace_file):
        from repro.core import SheBloomFilter
        from repro.persist import save_sketch

        a = SheBloomFilter(4096, 1 << 14, seed=1)
        b = SheBloomFilter(4096, 1 << 14, seed=2)
        pa, pb = tmp_path / "a.npz", tmp_path / "b.npz"
        save_sketch(a, pa)
        save_sketch(b, pb)
        with pytest.raises(ValueError):
            main(["merge", str(pa), str(pb), "--out", str(tmp_path / "x.npz")])
