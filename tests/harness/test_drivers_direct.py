"""Direct unit tests for every figure driver at tiny scale.

The benchmarks exercise these at reporting scale; here we pin their
*interfaces*: series counts, labels, axis metadata, and basic sanity of
the values, fast enough for the regular test run.
"""

import numpy as np
import pytest

from repro.harness import (
    Scale,
    fig5_stability,
    fig6_window_sizes,
    fig8a_fpr_vs_item_age,
    fig8b_fpr_vs_num_hashes,
    fig9_accuracy,
    fig10_throughput,
    fig11_throughput,
)

TINY = Scale(window=512, n_windows=2, warm_windows=1)


class TestFig5:
    @pytest.mark.parametrize("task", ["bm", "hll", "cm", "bf", "mh"])
    def test_every_task_runs(self, task):
        r = fig5_stability(task, TINY)
        assert len(r.series) == 3
        for s in r.series:
            assert len(s.x) == len(s.y) > 0
            assert all(np.isfinite(v) or v is None for v in s.y)

    def test_unknown_task(self):
        with pytest.raises(ValueError):
            fig5_stability("nope", TINY)

    def test_checkpoints_in_windows(self):
        r = fig5_stability("bm", TINY)
        xs = r.series[0].x
        assert xs == sorted(xs)
        assert xs[0] > TINY.warm_windows  # measurement starts after warm-up


class TestFig6:
    def test_window_sweep_axis(self):
        r = fig6_window_sizes("bm", TINY, window_factors=(1, 4))
        # base window floors at 256
        assert r.series[0].x == [256, 1024]

    def test_unknown_task(self):
        with pytest.raises(ValueError):
            fig6_window_sizes("zzz", TINY)


class TestFig8:
    def test_fig8a_series_shape(self):
        r = fig8a_fpr_vs_item_age(TINY, ages=(1.0, 2.0), trials=1)
        assert r.series[0].x == [1.0, 2.0]
        assert all(0 <= v <= 1 for v in r.series[0].y)

    def test_fig8b_two_strategies(self):
        r = fig8b_fpr_vs_num_hashes(TINY, hash_counts=(2, 4))
        labels = [s.label for s in r.series]
        assert labels == ["alpha=3", "optimal alpha"]


class TestFig9:
    def test_hll_panel_uses_bigger_window(self):
        r = fig9_accuracy("b", TINY, memories=[4096])
        assert f"N={TINY.window * 8}" in r.notes[0]

    def test_custom_memories_respected(self):
        r = fig9_accuracy("a", TINY, memories=[2048, 4096])
        assert r.series[0].x == [2.0, 4.0]

    def test_software_frame_variant(self):
        r = fig9_accuracy("a", TINY, memories=[4096], frame="software")
        assert any(s.label == "SHE-BM" for s in r.series)


class TestThroughputDrivers:
    def test_fig10_both_variants(self):
        for variant in ("a", "b"):
            r = fig10_throughput(variant, TINY, n_items=20_000)
            assert len(r.series) == 3
            assert r.series[0].x == ["CAIDA", "Campus", "Webpage"]
            assert all(v > 0 for s in r.series for v in s.y)

    def test_fig10_bad_variant(self):
        with pytest.raises(ValueError):
            fig10_throughput("z", TINY)

    def test_fig11_labels(self):
        r = fig11_throughput(TINY, n_items=15_000)
        assert r.series[0].x == ["BM", "CM-sketch", "BF", "HLL", "MH"]
        assert [s.label for s in r.series] == ["Ideal", "SHE"]
