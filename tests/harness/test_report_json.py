"""Tests for FigureResult JSON export and the CLI --json flag."""

import json

import numpy as np
import pytest

from repro.harness.report import FigureResult, Series


def make_result():
    r = FigureResult("Fig T", "json test", "memory", "RE")
    r.series.append(Series("a", [1, 2], [0.5, float("nan")]))
    r.series.append(Series("b", ["x"], [np.float64(0.25)]))
    r.notes.append("note")
    return r


class TestToJson:
    def test_round_trips_through_json(self):
        d = json.loads(make_result().to_json())
        assert d["name"] == "Fig T"
        assert d["series"][0]["label"] == "a"
        assert d["notes"] == ["note"]

    def test_nan_becomes_null(self):
        d = json.loads(make_result().to_json())
        assert d["series"][0]["y"][1] is None

    def test_numpy_scalars_coerced(self):
        d = json.loads(make_result().to_json())
        assert d["series"][1]["y"][0] == 0.25

    def test_to_dict_is_plain_data(self):
        d = make_result().to_dict()
        json.dumps(d)  # must not raise


class TestCliJsonFlag:
    def test_writes_json_file(self, tmp_path, capsys):
        from repro.harness.__main__ import main

        rc = main(["fig7b", "--window", "512", "--json", str(tmp_path)])
        assert rc == 0
        data = json.loads((tmp_path / "fig7b.json").read_text())
        assert data["name"] == "Figure 7b"
        assert len(data["series"]) == 3


class TestYerr:
    def test_series_yerr_validation(self):
        with pytest.raises(ValueError):
            Series("s", [1, 2], [0.1, 0.2], yerr=[0.01])

    def test_table_shows_spread(self):
        r = FigureResult("F", "t", "x", "y")
        r.series.append(Series("s", [1], [0.5], yerr=[0.1]))
        assert "±" in r.table()

    def test_json_includes_yerr(self):
        r = FigureResult("F", "t", "x", "y")
        r.series.append(Series("s", [1], [0.5], yerr=[0.1]))
        d = json.loads(r.to_json())
        assert d["series"][0]["yerr"] == [0.1]

    def test_nan_yerr_hidden_in_table(self):
        r = FigureResult("F", "t", "x", "y")
        r.series.append(Series("s", [1], [0.5], yerr=[float("nan")]))
        assert "±" not in r.table()

    def test_fig9_trials_populate_yerr(self):
        from repro.harness import Scale, fig9_accuracy

        r = fig9_accuracy(
            "a", Scale(window=512, n_windows=2, warm_windows=1, trials=2),
            memories=[4096],
        )
        she = next(s for s in r.series if s.label == "SHE-BM")
        assert she.yerr is not None and np.isfinite(she.yerr[0])
