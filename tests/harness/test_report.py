"""Tests for result containers and table rendering."""

import pytest

from repro.harness.report import FigureResult, Series, fmt, render_table


class TestFmt:
    def test_none(self):
        assert fmt(None) == "--"

    def test_string_passthrough(self):
        assert fmt("abc") == "abc"

    def test_zero(self):
        assert fmt(0) == "0"

    def test_scientific_for_tiny(self):
        assert "e" in fmt(1.5e-6)

    def test_scientific_for_huge(self):
        assert "e" in fmt(2.5e7)

    def test_bool(self):
        assert fmt(True) == "yes"

    def test_nan(self):
        assert fmt(float("nan")) == "--"

    def test_mid_range(self):
        assert fmt(0.1234) == "0.1234"


class TestSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Series("x", [1, 2], [1])


class TestRenderTable:
    def test_alignment(self):
        out = render_table("T", ["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "---" in lines[2]
        assert all(len(l) == len(lines[1]) for l in lines[3:])

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table("T", ["a"], [["1", "2"]])


class TestFigureResult:
    def test_table_merges_x_values(self):
        r = FigureResult("F", "t", "x", "y")
        r.series.append(Series("s1", [1, 2], [0.1, 0.2]))
        r.series.append(Series("s2", [2, 3], [0.3, 0.4]))
        out = r.table()
        assert "s1" in out and "s2" in out
        assert "--" in out  # missing cells

    def test_notes_rendered(self):
        r = FigureResult("F", "t", "x", "y", notes=["hello"])
        r.series.append(Series("s", [1], [1.0]))
        assert "note: hello" in r.table()
