"""Tests for scales, runners, builders and the experiment drivers.

Experiment drivers run at a deliberately tiny Scale here — these tests
check plumbing (series shapes, metric sanity), not paper-level numbers;
the shape claims live in tests/integration/test_paper_claims.py.
"""

import numpy as np
import pytest

from repro.harness import (
    Scale,
    absent_keys,
    build_cardinality_bitmap,
    build_cardinality_hll,
    build_frequency,
    build_membership,
    build_similarity,
    run_cardinality,
    run_membership,
)
from repro.harness.common import stream_checkpoints
from repro.harness.experiments_accuracy import (
    fig5_stability,
    fig7b_bm_alpha,
    fig9_accuracy,
)
from repro.harness.experiments_system import (
    fig11_throughput,
    table2_resources,
    table3_frequency,
)

TINY = Scale(window=512, n_windows=2, warm_windows=1)


class TestScale:
    def test_memory_scaling(self):
        s = Scale(window=1 << 12)
        assert s.memory(1024) == 64

    def test_memory_floor(self):
        s = Scale(window=256)
        assert s.memory(100) == 24

    def test_stream_items(self):
        s = Scale(window=100, n_windows=3, warm_windows=2)
        assert s.stream_items == 500

    def test_paper_scale(self):
        assert Scale.paper().window == 1 << 16

    def test_checkpoints_cover_stream(self):
        s = Scale(window=100, n_windows=2, warm_windows=1)
        spans = list(stream_checkpoints(s))
        assert spans[0][0] == 0
        assert spans[-1][1] == s.stream_items
        measured = [m for _, _, m in spans]
        assert not measured[0] and measured[-1]


class TestAbsentKeys:
    def test_disjoint_from_trace_space(self):
        keys = absent_keys(100)
        assert np.all(keys >= np.uint64(1) << np.uint64(60))

    def test_deterministic(self):
        assert np.array_equal(absent_keys(10, seed=1), absent_keys(10, seed=1))


class TestBuilders:
    def test_membership_panel_contents(self):
        panel = build_membership(512, 4096)
        assert "SHE-BF" in panel and "Ideal" in panel
        assert "TOBF" in panel and "TBF" in panel

    def test_swamp_absent_below_floor(self):
        panel = build_membership(1 << 14, 256)
        assert "SWAMP" not in panel
        assert "SHE-BF" in panel  # SHE survives tiny budgets

    def test_cardinality_bitmap_panel(self):
        panel = build_cardinality_bitmap(512, 2048)
        assert {"SHE-BM", "TSV", "CVS", "Ideal"} <= set(panel)

    def test_hll_panel(self):
        panel = build_cardinality_hll(512, 2048)
        assert {"SHE-HLL", "SHLL", "Ideal"} <= set(panel)

    def test_frequency_panel(self):
        panel = build_frequency(512, 65536)
        assert {"SHE-CM", "ECM", "Ideal"} <= set(panel)

    def test_similarity_panel(self):
        panel = build_similarity(512, 4096)
        assert {"SHE-MH", "Straw", "Ideal"} <= set(panel)

    def test_no_baselines_flag(self):
        panel = build_membership(512, 4096, include_baselines=False)
        assert set(panel) == {"SHE-BF", "Ideal"}


class TestRunners:
    def test_membership_runner_output_shape(self, rng):
        stream = rng.integers(0, 1000, size=TINY.stream_items, dtype=np.uint64)
        panel = build_membership(TINY.window, 2048, include_baselines=False)
        out = run_membership(panel, stream, TINY, n_queries=200)
        n_checkpoints = len(out["_checkpoint"])
        assert n_checkpoints >= 2
        for name in panel:
            assert len(out[name]) == n_checkpoints
            assert all(0 <= v <= 1 for v in out[name])

    def test_cardinality_runner(self, rng):
        stream = rng.integers(0, 400, size=TINY.stream_items, dtype=np.uint64)
        panel = build_cardinality_bitmap(TINY.window, 2048, include_baselines=False)
        out = run_cardinality(panel, stream, TINY)
        assert all(v >= 0 for v in out["SHE-BM"])


class TestDrivers:
    def test_fig5_series_per_memory(self):
        r = fig5_stability("bm", TINY)
        assert len(r.series) == 3
        assert r.table()

    def test_fig7b_alpha_series(self):
        r = fig7b_bm_alpha(TINY, memories=(1024,), alphas=(0.2, 0.4))
        assert [s.label for s in r.series] == ["alpha=0.2", "alpha=0.4"]

    def test_fig9_panel_validation(self):
        with pytest.raises(ValueError):
            fig9_accuracy("z", TINY)

    def test_fig9_returns_she_first(self):
        r = fig9_accuracy("a", TINY, memories=[100 * 1024])
        assert r.series[0].label.startswith("SHE")
        assert r.series[-1].label == "Ideal"

    def test_fig11_has_five_sketches(self):
        r = fig11_throughput(TINY, n_items=20_000)
        assert len(r.series[0].x) == 5
        assert all(y > 0 for y in r.series[0].y)

    def test_tables_render(self):
        assert "SHE-BM" in table2_resources()
        assert "544" in table3_frequency()


class TestCli:
    def test_list_target(self, capsys):
        from repro.harness.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig9a" in out and "table2" in out

    def test_unknown_target(self):
        from repro.harness.__main__ import main

        assert main(["nope"]) == 2

    def test_table2_target(self, capsys):
        from repro.harness.__main__ import main

        assert main(["table2"]) == 0
        assert "LUT" in capsys.readouterr().out
