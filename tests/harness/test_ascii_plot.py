"""Tests for the ASCII chart renderer."""

import pytest

from repro.harness.ascii_plot import ascii_chart
from repro.harness.report import FigureResult, Series


def make_result(xs, ys, label="s1", x_label="memory", y_label="FPR"):
    r = FigureResult("Fig X", "test figure", x_label, y_label)
    r.series.append(Series(label, xs, ys))
    return r


class TestAsciiChart:
    def test_contains_title_and_legend(self):
        out = ascii_chart(make_result([1, 2, 3], [0.1, 0.2, 0.3]))
        assert "Fig X" in out
        assert "legend: o s1" in out

    def test_log_y_auto_for_decades(self):
        out = ascii_chart(make_result([1, 2, 3], [1e-4, 1e-2, 1.0]))
        assert "y: FPR (log)" in out

    def test_linear_y_for_narrow_range(self):
        out = ascii_chart(make_result([1, 2, 3], [0.2, 0.25, 0.3]))
        assert "(log)" not in out.split("y:")[1].split("\n")[0]

    def test_log_x_auto(self):
        out = ascii_chart(make_result([1, 10, 100], [0.1, 0.2, 0.3]))
        assert "x: memory (log)" in out

    def test_categorical_x(self):
        r = make_result(["CAIDA", "Campus", "Webpage"], [1.0, 2.0, 3.0])
        out = ascii_chart(r)
        assert "CAIDA" in out and "Webpage" in out

    def test_multiple_series_distinct_markers(self):
        r = make_result([1, 2], [0.1, 0.2])
        r.series.append(Series("s2", [1, 2], [0.3, 0.4]))
        out = ascii_chart(r)
        assert "o s1" in out and "x s2" in out

    def test_handles_nan_and_zero_on_log(self):
        out = ascii_chart(
            make_result([1, 2, 3, 4], [float("nan"), 0.0, 1e-3, 1.0])
        )
        assert "Fig X" in out  # no crash

    def test_all_nan_series(self):
        out = ascii_chart(make_result([1, 2], [float("nan"), float("nan")]))
        assert "Fig X" in out

    def test_dimensions_respected(self):
        out = ascii_chart(make_result([1, 2], [0.1, 0.2]), width=30, height=6)
        plot_rows = [l for l in out.splitlines() if l.rstrip().endswith("|")]
        assert len(plot_rows) == 6
        assert all(len(l.split("|")[1]) == 30 for l in plot_rows)

    def test_figure_result_chart_method(self):
        r = make_result([1, 2], [0.1, 0.2])
        assert r.chart() == ascii_chart(r)


class TestCliChartFlag:
    def test_chart_flag(self, capsys):
        from repro.harness.__main__ import main

        assert main(["table2", "--chart"]) == 0  # string targets ignore flag
        out = capsys.readouterr().out
        assert "LUT" in out
