"""Tests for the membership baselines: TOBF, TBF."""

import numpy as np
import pytest

from repro.baselines import TimeOutBloomFilter, TimingBloomFilter
from repro.exact import ExactWindow

from helpers import zipf_stream


class TestTOBF:
    def test_no_false_negatives(self):
        n = 128
        tobf = TimeOutBloomFilter(n, 1 << 12)
        ew = ExactWindow(n)
        stream = zipf_stream(600, 150, seed=1)
        tobf.insert_many(stream)
        ew.insert_many(stream)
        assert np.all(tobf.contains_many(ew.distinct_keys()))

    def test_exact_expiry(self):
        tobf = TimeOutBloomFilter(4, 1 << 12)
        tobf.insert(777)
        tobf.insert_many(np.arange(10, dtype=np.uint64))
        assert not tobf.contains(777)

    def test_window_boundary(self):
        n = 8
        tobf = TimeOutBloomFilter(n, 1 << 12)
        tobf.insert(42)  # arrival time 0
        tobf.insert_many(np.arange(100, 100 + n - 1, dtype=np.uint64))
        assert tobf.contains(42)  # still the oldest window item
        tobf.insert(200)
        assert not tobf.contains(42)  # now expired

    def test_empty_negative(self):
        tobf = TimeOutBloomFilter(8, 256)
        assert not tobf.contains(1)

    def test_from_memory(self):
        tobf = TimeOutBloomFilter.from_memory(64, 800)
        assert tobf.num_slots == 100

    def test_fpr_vs_she_at_same_memory(self):
        """The 64-bit slots cost TOBF dearly: FPR far above SHE-BF."""
        from repro.core import SheBloomFilter

        n, mem = 256, 1024
        tobf = TimeOutBloomFilter.from_memory(n, mem)
        bf = SheBloomFilter.from_memory(n, mem)
        stream = zipf_stream(4 * n, 400, seed=2)
        tobf.insert_many(stream)
        bf.insert_many(stream)
        probes = (np.uint64(1) << np.uint64(52)) + np.arange(3000, dtype=np.uint64)
        assert tobf.contains_many(probes).mean() > bf.contains_many(probes).mean()


class TestTBF:
    def test_no_false_negatives(self):
        n = 128
        tbf = TimingBloomFilter(n, 1 << 12)
        ew = ExactWindow(n)
        stream = zipf_stream(600, 150, seed=3)
        tbf.insert_many(stream)
        ew.insert_many(stream)
        assert np.all(tbf.contains_many(ew.distinct_keys()))

    def test_scrubber_clears_expired(self):
        n = 64
        tbf = TimingBloomFilter(n, 512)
        tbf.insert(999)
        tbf.insert_many(np.arange(5 * n, dtype=np.uint64))
        assert not tbf.contains(999)
        # the scrubber should also have zeroed the stale slots it passed
        ages = tbf._age(tbf.slots[tbf.slots != 0], tbf.t)
        assert np.all(ages <= 2 * n)

    def test_wrap_requires_headroom(self):
        with pytest.raises(ValueError):
            TimingBloomFilter(1 << 17, 64, counter_bits=18)

    def test_wrapped_times_unambiguous(self):
        # push far past the wrap range; freshness must stay correct
        n = 32
        tbf = TimingBloomFilter(n, 256, counter_bits=8)  # wrap = 256
        stream = zipf_stream(3000, 40, seed=4)
        ew = ExactWindow(n)
        tbf.insert_many(stream)
        ew.insert_many(stream)
        assert np.all(tbf.contains_many(ew.distinct_keys()))

    def test_memory_counter_bits(self):
        assert TimingBloomFilter(64, 100, counter_bits=18).memory_bytes == (1800 + 7) // 8

    def test_from_memory(self):
        tbf = TimingBloomFilter.from_memory(64, 1024)
        assert tbf.memory_bytes <= 1024

    def test_reset(self):
        tbf = TimingBloomFilter(64, 256)
        tbf.insert(5)
        tbf.reset()
        assert not tbf.contains(5)
        assert tbf.t == 0
