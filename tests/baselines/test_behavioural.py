"""Cross-baseline behavioural comparisons on shared streams.

These tests pin down *relative* behaviours the paper's narrative relies
on, independent of the figure harness: exact-expiry structures have no
aged error; timestamp structures cost more per slot; SHE trades a
bounded aged error for memory.
"""

import numpy as np
import pytest

from repro.baselines import (
    CounterVectorSketch,
    SlidingHyperLogLog,
    Swamp,
    TimeOutBloomFilter,
    TimestampVector,
    TimingBloomFilter,
)
from repro.core import SheBitmap, SheBloomFilter, SheHyperLogLog
from repro.exact import ExactWindow

from helpers import zipf_stream


@pytest.fixture(scope="module")
def shared():
    window = 1024
    stream = zipf_stream(5 * 1024, 900, seed=44)
    ew = ExactWindow(window)
    ew.insert_many(stream)
    return window, stream, ew


class TestMembershipFamily:
    def test_all_filters_have_no_false_negatives(self, shared):
        window, stream, ew = shared
        members = ew.distinct_keys()
        filters = [
            SheBloomFilter(window, 1 << 14, seed=1),
            TimeOutBloomFilter(window, 1 << 12, seed=2),
            TimingBloomFilter(window, 1 << 12, seed=3),
            Swamp(window, 16, seed=4),
        ]
        for f in filters:
            f.insert_many(stream)
            assert np.all(f.contains_many(members)), type(f).__name__

    def test_timestamp_filters_expire_exactly(self, shared):
        """TOBF flips an expired distinct key to absent at N exactly;
        SHE-BF only after up to (1+alpha)N — the accuracy/memory trade."""
        window, _, _ = shared
        probe = 999_999_999
        tobf = TimeOutBloomFilter(window, 1 << 14)
        bf = SheBloomFilter(window, 1 << 16, alpha=3.0)
        filler = (np.uint64(1) << np.uint64(45)) + np.arange(window, dtype=np.uint64)
        for f in (tobf, bf):
            f.insert(probe)
            f.insert_many(filler)
        assert not tobf.contains(probe)  # exactly expired
        # SHE-BF may legitimately still answer True here (aged cells)

    def test_per_slot_cost_ordering(self, shared):
        window, _, _ = shared
        budget = 2048
        she = SheBloomFilter.from_memory(window, budget)
        tobf = TimeOutBloomFilter.from_memory(window, budget)
        tbf = TimingBloomFilter.from_memory(window, budget)
        # slots per byte: SHE-BF bits >> TBF 18-bit >> TOBF 64-bit
        assert she.num_bits > tbf.num_slots > tobf.num_slots


class TestCardinalityFamily:
    def test_all_reasonable_with_generous_memory(self, shared):
        window, stream, ew = shared
        true_c = ew.cardinality()
        estimators = [
            SheBitmap(window, 1 << 13, seed=5),
            SheHyperLogLog(window, 4096, seed=6),
            TimestampVector(window, 1 << 13, seed=7),
            CounterVectorSketch(window, 1 << 13, seed=8),
            SlidingHyperLogLog(window, 1024, seed=9),
            Swamp(window, 20, seed=10),
        ]
        for est in estimators:
            est.insert_many(stream)
            rel = abs(est.cardinality() - true_c) / true_c
            assert rel < 0.5, (type(est).__name__, rel)

    def test_memory_per_accuracy_ordering(self, shared):
        """At equal byte budgets, SHE-BM tracks truth better than TSV."""
        window, stream, ew = shared
        budget = 256
        she = SheBitmap.from_memory(window, budget, seed=11)
        tsv = TimestampVector.from_memory(window, budget, seed=12)
        she.insert_many(stream)
        tsv.insert_many(stream)
        true_c = ew.cardinality()
        err_she = abs(she.cardinality() - true_c) / true_c
        err_tsv = abs(tsv.cardinality() - true_c) / true_c
        assert err_she < err_tsv

    def test_swamp_exact_with_wide_fingerprints(self, shared):
        window, stream, ew = shared
        sw = Swamp(window, 40, seed=13)  # collisions ~ 2^-40
        sw.insert_many(stream)
        assert sw.cardinality() == pytest.approx(ew.cardinality(), abs=1)


class TestMemoryAccountingConsistency:
    def test_from_memory_respects_budget_everywhere(self, shared):
        window, _, _ = shared
        budget = 4096
        builders = [
            lambda: SheBloomFilter.from_memory(window, budget),
            lambda: SheBitmap.from_memory(window, budget),
            lambda: SheHyperLogLog.from_memory(window, budget),
            lambda: TimestampVector.from_memory(window, budget),
            lambda: TimeOutBloomFilter.from_memory(window, budget),
            lambda: TimingBloomFilter.from_memory(window, budget),
            lambda: CounterVectorSketch.from_memory(window, budget),
            lambda: Swamp.from_memory(window, budget),
        ]
        for build in builders:
            sk = build()
            assert sk.memory_bytes <= budget * 1.02, type(sk).__name__
