"""Tests for SWAMP and its TinyTable substrate."""

import numpy as np
import pytest

from repro.baselines import Swamp, TinyTable
from repro.exact import ExactWindow

from helpers import zipf_stream


class TestTinyTable:
    def test_add_count_remove(self):
        t = TinyTable(64, 16)
        t.add(5)
        t.add(5)
        assert t.count(5) == 2
        t.remove(5)
        assert t.count(5) == 1
        assert 5 in t

    def test_remove_missing_raises(self):
        t = TinyTable(64, 16)
        with pytest.raises(KeyError):
            t.remove(3)

    def test_distinct_tracking(self):
        t = TinyTable(64, 16)
        for fp in [1, 1, 2, 3]:
            t.add(fp)
        assert t.distinct == 3
        assert t.size == 4
        t.remove(1)
        assert t.distinct == 3
        t.remove(1)
        assert t.distinct == 2

    def test_matches_counter_model(self):
        from collections import Counter

        rng = np.random.default_rng(1)
        t = TinyTable(128, 12)
        model = Counter()
        for _ in range(2000):
            fp = int(rng.integers(0, 200))
            if model[fp] > 0 and rng.random() < 0.4:
                t.remove(fp)
                model[fp] -= 1
                if model[fp] == 0:
                    del model[fp]
            else:
                t.add(fp)
                model[fp] += 1
            assert t.size == sum(model.values())
            assert t.distinct == len(model)

    def test_spill_events_recorded(self):
        t = TinyTable(16, 12, num_buckets=1)  # everything in one bucket
        for fp in range(10):
            t.add(fp)
        assert t.spill_events > 0

    def test_memory_bytes_positive(self):
        assert TinyTable(64, 16).memory_bytes > 0

    def test_reset(self):
        t = TinyTable(64, 16)
        t.add(1)
        t.reset()
        assert t.size == 0 and t.distinct == 0


class TestSwamp:
    def test_ismember_no_false_negatives(self):
        n = 128
        sw = Swamp(n, 16)
        ew = ExactWindow(n)
        stream = zipf_stream(600, 150, seed=2)
        sw.insert_many(stream)
        ew.insert_many(stream)
        assert np.all(sw.contains_many(ew.distinct_keys()))

    def test_expired_items_removed(self):
        sw = Swamp(4, 20)
        sw.insert(12345)
        sw.insert_many(np.arange(10, dtype=np.uint64))
        assert not sw.contains(12345)

    def test_fpr_close_to_d_over_space(self):
        n = 512
        sw = Swamp(n, 12, seed=3)
        sw.insert_many(np.arange(2 * n, dtype=np.uint64))
        probes = np.arange(10**6, 10**6 + 4000, dtype=np.uint64)
        fpr = float(sw.contains_many(probes).mean())
        expected = sw.table.distinct / 2**12
        assert abs(fpr - expected) < 0.05

    def test_distinct_mle_unbiased(self):
        n = 256
        sw = Swamp(n, 14)
        ew = ExactWindow(n)
        stream = zipf_stream(1024, 400, seed=4)
        sw.insert_many(stream)
        ew.insert_many(stream)
        true = ew.cardinality()
        assert abs(sw.cardinality() - true) / true < 0.1

    def test_frequency_exact_modulo_collisions(self):
        n = 256
        sw = Swamp(n, 20)  # wide fingerprints: collisions negligible
        ew = ExactWindow(n)
        stream = zipf_stream(1024, 60, seed=5)
        sw.insert_many(stream)
        ew.insert_many(stream)
        keys = ew.distinct_keys()
        assert np.array_equal(sw.frequency_many(keys), ew.frequency_many(keys))

    def test_from_memory_floor(self):
        # far below W*(f+...) bits SWAMP cannot exist
        with pytest.raises(ValueError):
            Swamp.from_memory(1 << 16, 64)

    def test_from_memory_fits_budget(self):
        sw = Swamp.from_memory(1024, 8192)
        assert sw.memory_bytes <= 8192 * 1.1

    def test_queue_wraps(self):
        sw = Swamp(8, 16)
        sw.insert_many(np.arange(100, dtype=np.uint64))
        assert sw.table.size == 8

    def test_fingerprint_bits_bounds(self):
        with pytest.raises(ValueError):
            Swamp(16, 0)
        with pytest.raises(ValueError):
            Swamp(16, 61)

    def test_reset(self):
        sw = Swamp(8, 16)
        sw.insert(5)
        sw.reset()
        assert sw.t == 0
        assert sw.table.size == 0
