"""Tests for the cardinality baselines: SHLL, CVS, TSV."""

import numpy as np
import pytest

from repro.baselines import CounterVectorSketch, SlidingHyperLogLog, TimestampVector
from repro.exact import ExactWindow

from helpers import zipf_stream


class TestSlidingHLL:
    def test_tracks_window_cardinality(self):
        n = 512
        sh = SlidingHyperLogLog(n, 512)
        ew = ExactWindow(n)
        stream = np.random.default_rng(1).integers(0, 1 << 40, size=3 * n, dtype=np.uint64)
        sh.insert_many(stream)
        ew.insert_many(stream)
        true = ew.cardinality()
        assert abs(sh.cardinality() - true) / true < 0.35

    def test_perfect_expiry(self):
        """Unlike SHE, the LPFM expires exactly at the window edge."""
        n = 64
        sh = SlidingHyperLogLog(n, 128)
        sh.insert_many(np.arange(500, dtype=np.uint64))
        # feed one repeated key for exactly one window: all other keys expire
        sh.insert_many(np.full(n, 7, dtype=np.uint64))
        assert sh.cardinality() < 20

    def test_lpfm_invariant(self):
        """Per register: timestamps increase, ranks strictly decrease."""
        sh = SlidingHyperLogLog(128, 32)
        sh.insert_many(np.random.default_rng(2).integers(0, 1 << 40, size=2000, dtype=np.uint64))
        for q in sh._lpfm:
            ts = [e[0] for e in q]
            rk = [e[1] for e in q]
            assert ts == sorted(ts)
            assert all(rk[i] > rk[i + 1] for i in range(len(rk) - 1))

    def test_memory_grows_with_entries(self):
        sh = SlidingHyperLogLog(256, 64)
        m0 = sh.memory_bytes
        sh.insert_many(np.arange(1000, dtype=np.uint64))
        assert sh.memory_bytes > m0

    def test_empty(self):
        assert SlidingHyperLogLog(64, 32).cardinality() == 0.0

    def test_reset(self):
        sh = SlidingHyperLogLog(64, 32)
        sh.insert(1)
        sh.reset()
        assert sh.t == 0
        assert sh.memory_bytes == 0


class TestCVS:
    def test_tracks_cardinality(self):
        n = 512
        cvs = CounterVectorSketch(n, 1 << 13)
        ew = ExactWindow(n)
        stream = zipf_stream(4 * n, 700, seed=3)
        cvs.insert_many(stream)
        ew.insert_many(stream)
        true = ew.cardinality()
        assert abs(cvs.cardinality() - true) / true < 0.4

    def test_decay_drains_counters(self):
        n = 64
        cvs = CounterVectorSketch(n, 256, max_value=5)
        cvs.insert_many(np.arange(64, dtype=np.uint64))
        # one hot key for many windows: old counters decay to zero
        cvs.insert_many(np.full(20 * n, 3, dtype=np.uint64))
        assert int(np.count_nonzero(cvs.counters)) < 20

    def test_counters_bounded(self):
        cvs = CounterVectorSketch(64, 128, max_value=7)
        cvs.insert_many(zipf_stream(2000, 100, seed=4))
        assert cvs.counters.max() <= 7
        assert cvs.counters.min() >= 0

    def test_from_memory(self):
        cvs = CounterVectorSketch.from_memory(64, 100, max_value=10)
        # 4-bit counters: 200 of them
        assert cvs.num_counters == 200

    def test_reset(self):
        cvs = CounterVectorSketch(64, 128)
        cvs.insert(1)
        cvs.reset()
        assert cvs.cardinality() == 0.0


class TestTSV:
    def test_exact_expiry(self):
        n = 128
        tsv = TimestampVector(n, 1 << 12)
        ew = ExactWindow(n)
        stream = zipf_stream(512, 150, seed=5)
        tsv.insert_many(stream)
        ew.insert_many(stream)
        true = ew.cardinality()
        assert abs(tsv.cardinality() - true) / true < 0.15

    def test_unwritten_slots_inactive(self):
        tsv = TimestampVector(64, 128)
        assert tsv.cardinality() == 0.0

    def test_early_stream_not_all_active(self):
        # regression: before the first window fills, unwritten slots
        # (stamp -1) must not count as active
        tsv = TimestampVector(1000, 256)
        tsv.insert(5)
        assert tsv.cardinality() < 10

    def test_memory_64_bits_per_slot(self):
        assert TimestampVector(64, 100).memory_bytes == 800

    def test_from_memory(self):
        tsv = TimestampVector.from_memory(64, 800)
        assert tsv.num_slots == 100

    def test_stale_slots_drop_out(self):
        n = 32
        tsv = TimestampVector(n, 512)
        tsv.insert_many(np.arange(200, dtype=np.uint64))
        tsv.insert_many(np.full(3 * n, 9, dtype=np.uint64))
        assert tsv.cardinality() < 15
