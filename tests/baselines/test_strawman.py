"""Tests for the straw-man timestamped MinHash."""

import numpy as np
import pytest

from repro.baselines import StrawmanMinHash
from repro.exact import ExactJaccard


class TestStrawmanMinHash:
    def test_identical_streams(self):
        sm = StrawmanMinHash(64, 128)
        keys = np.arange(50, dtype=np.uint64)
        sm.insert_many(0, keys)
        sm.insert_many(1, keys)
        assert sm.similarity() == 1.0

    def test_disjoint_streams(self):
        sm = StrawmanMinHash(64, 256)
        sm.insert_many(0, np.arange(50, dtype=np.uint64))
        sm.insert_many(1, np.arange(1000, 1050, dtype=np.uint64))
        assert sm.similarity() < 0.1

    def test_rough_tracking(self):
        n = 256
        rng = np.random.default_rng(1)
        pool = np.arange(200, dtype=np.uint64)
        a = rng.choice(pool[:150], size=2 * n).astype(np.uint64)
        b = rng.choice(pool[50:], size=2 * n).astype(np.uint64)
        sm = StrawmanMinHash(n, 512)
        ej = ExactJaccard(n)
        sm.insert_many(0, a)
        sm.insert_many(1, b)
        ej.insert_many(0, a)
        ej.insert_many(1, b)
        assert abs(sm.similarity() - ej.similarity()) < 0.3

    def test_sticky_minima_bias(self):
        """The documented flaw: a departed minimum lingers a full window."""
        n = 64
        sm = StrawmanMinHash(n, 256)
        shared = np.arange(40, dtype=np.uint64)
        sm.insert_many(0, shared)
        sm.insert_many(1, shared)
        # half a window of disjoint traffic: exact similarity is 0 for
        # the *shared* content fraction but stale minima keep matching
        sm.insert_many(0, np.arange(1000, 1000 + n // 2, dtype=np.uint64))
        sm.insert_many(1, np.arange(2000, 2000 + n // 2, dtype=np.uint64))
        assert sm.similarity() > 0.3  # still remembers the shared phase

    def test_expired_counters_invalid(self):
        sm = StrawmanMinHash(8, 64)
        sm.insert_many(0, np.arange(4, dtype=np.uint64))
        # side 1 never fed: no valid pairs
        assert sm.similarity() == 0.0

    def test_rejects_bad_side(self):
        with pytest.raises(ValueError):
            StrawmanMinHash(8, 16).insert(9, 1)

    def test_memory_includes_timestamps(self):
        sm = StrawmanMinHash(8, 100)
        assert sm.memory_bytes == (2 * 100 * (24 + 64) + 7) // 8

    def test_from_memory(self):
        sm = StrawmanMinHash.from_memory(8, 2200)
        assert sm.num_counters == 2200 * 8 // (2 * 88)

    def test_reset(self):
        sm = StrawmanMinHash(8, 16)
        sm.insert(0, 1)
        sm.reset()
        assert sm.counts == [0, 0]
