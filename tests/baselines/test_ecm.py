"""Tests for the Exponential Histogram and the ECM-sketch."""

import numpy as np
import pytest

from repro.baselines import EcmSketch, ExponentialHistogram
from repro.exact import ExactWindow

from helpers import zipf_stream


class TestExponentialHistogram:
    def test_exact_when_few_events(self):
        eh = ExponentialHistogram(100, k=8)
        for t in [1, 5, 9]:
            eh.add(t)
        assert eh.query(10) == 3

    def test_window_expiry(self):
        eh = ExponentialHistogram(10, k=8)
        eh.add(0)
        eh.add(1)
        assert eh.query(50) == 0.0

    def test_relative_error_bound(self):
        # DGIM guarantees error <= 1/k-ish (1/(k/2+1) classically)
        for k in (4, 8, 16):
            eh = ExponentialHistogram(1000, k=k)
            rng = np.random.default_rng(k)
            t = 0
            for _ in range(5000):
                t += int(rng.integers(1, 3))
                eh.add(t)
            true = sum(1 for _ in range(1))  # placeholder, computed below
            # replay to count the true in-window events
            eh2 = ExponentialHistogram(1000, k=k)
            times = []
            rng = np.random.default_rng(k)
            tt = 0
            for _ in range(5000):
                tt += int(rng.integers(1, 3))
                times.append(tt)
                eh2.add(tt)
            true = sum(1 for x in times if x > tt - 1000)
            est = eh2.query(tt)
            assert abs(est - true) / true <= 1.0 / k + 0.05

    def test_rejects_decreasing_time(self):
        eh = ExponentialHistogram(10)
        eh.add(5)
        with pytest.raises(ValueError):
            eh.add(4)

    def test_bucket_counts_bounded(self):
        eh = ExponentialHistogram(10_000, k=8)
        for t in range(20_000):
            eh.add(t)
        # k/2+2 buckets per class, ~log2(N) classes
        assert eh.num_buckets <= (8 // 2 + 2) * (int(np.log2(10_000)) + 3)

    def test_amount_parameter(self):
        eh = ExponentialHistogram(100)
        eh.add(1, amount=5)
        assert eh.query(2) >= 4

    def test_memory_tracks_buckets(self):
        eh = ExponentialHistogram(1000)
        m0 = eh.memory_bytes
        for t in range(100):
            eh.add(t)
        assert eh.memory_bytes > m0

    def test_reset(self):
        eh = ExponentialHistogram(100)
        eh.add(1)
        eh.reset()
        assert eh.query(2) == 0.0


class TestEcmSketch:
    def test_tracks_window_frequencies(self):
        n = 256
        ecm = EcmSketch(n, 512, 4)
        ew = ExactWindow(n)
        stream = zipf_stream(1024, 100, seed=1)
        ecm.insert_many(stream)
        ew.insert_many(stream)
        keys = ew.distinct_keys()[:50]
        est = ecm.frequency_many(keys)
        true = ew.frequency_many(keys).astype(float)
        are = np.mean(np.abs(est - true) / np.maximum(true, 1))
        assert are < 0.6

    def test_rarely_underestimates_much(self):
        # CM is an overestimator; EH adds +-1/k per counter
        n = 256
        ecm = EcmSketch(n, 1024, 4, eh_k=16)
        ew = ExactWindow(n)
        stream = zipf_stream(768, 60, seed=2)
        ecm.insert_many(stream)
        ew.insert_many(stream)
        keys = ew.distinct_keys()
        est = ecm.frequency_many(keys)
        true = ew.frequency_many(keys).astype(float)
        assert np.mean(est < 0.8 * true) < 0.1

    def test_expiry(self):
        n = 64
        ecm = EcmSketch(n, 256, 4)
        ecm.insert_many(np.full(n, 9, dtype=np.uint64))
        ecm.insert_many(np.arange(100, 100 + 3 * n, dtype=np.uint64))
        assert ecm.frequency(9) < n / 2

    def test_from_memory_counter_sizing(self):
        ecm = EcmSketch.from_memory(256, 100_000)
        assert ecm.budgeted_memory_bytes <= 100_000 * 1.05

    def test_from_memory_too_small(self):
        with pytest.raises(ValueError):
            EcmSketch.from_memory(1 << 16, 100)

    def test_reset(self):
        ecm = EcmSketch(64, 128)
        ecm.insert(1)
        ecm.reset()
        assert ecm.frequency(1) == 0.0
