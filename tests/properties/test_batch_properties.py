"""Property-based tests: batch cleaning semantics vs Algorithm 1.

Hypothesis drives random touch sequences through the vectorised batch
path and the literal per-item reference; they must agree bit for bit on
cells (and marks for the hardware frame) under every update kind,
window, alpha, group width and touch pattern.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import make_frame
from repro.core.batch import apply_batch
from repro.core.config import SheConfig
from repro.core.csm import UpdateKind

from helpers import NaiveHardwareFrame, NaiveSoftwareFrame

KINDS = st.sampled_from(list(UpdateKind))


@st.composite
def touch_sequences(draw):
    window = draw(st.integers(5, 60))
    alpha = draw(st.floats(0.1, 3.0))
    w = draw(st.sampled_from([1, 2, 4, 8]))
    groups = draw(st.integers(1, 6))
    m = w * groups
    cfg = SheConfig(window=window, alpha=alpha, group_width=w)
    n = draw(st.integers(1, 120))
    span = draw(st.integers(1, 5 * cfg.t_cycle))
    times = sorted(draw(st.lists(st.integers(0, span), min_size=n, max_size=n)))
    cells = draw(st.lists(st.integers(0, m - 1), min_size=n, max_size=n))
    values = draw(st.lists(st.integers(0, 40), min_size=n, max_size=n))
    return cfg, m, times, cells, values


@given(touch_sequences(), KINDS)
@settings(max_examples=120, deadline=None)
def test_hardware_batch_equals_algorithm1(seq, kind):
    cfg, m, times, cells, values = seq
    empty = 999 if kind is UpdateKind.MIN_HASH else 0
    fast = make_frame("hardware", cfg, m, dtype=np.int64, empty_value=empty, cell_bits=8)
    naive = NaiveHardwareFrame(cfg, m, empty_value=empty)

    t_arr = np.asarray(times, dtype=np.int64)
    c_arr = np.asarray(cells, dtype=np.int64)
    v_arr = np.asarray(values, dtype=np.int64)
    apply_batch(fast, t_arr, c_arr, v_arr, kind)
    for t, c, v in zip(times, cells, values):
        naive.touch(c, t, kind, v)

    assert fast.cells.tolist() == naive.cells
    assert fast.marks.tolist() == naive.marks


@given(touch_sequences(), KINDS)
@settings(max_examples=120, deadline=None)
def test_software_batch_equals_sweep(seq, kind):
    cfg, m, times, cells, values = seq
    empty = 999 if kind is UpdateKind.MIN_HASH else 0
    fast = make_frame("software", cfg, m, dtype=np.int64, empty_value=empty, cell_bits=8)
    naive = NaiveSoftwareFrame(cfg, m, empty_value=empty)

    apply_batch(
        fast,
        np.asarray(times, dtype=np.int64),
        np.asarray(cells, dtype=np.int64),
        np.asarray(values, dtype=np.int64),
        kind,
    )
    for t, c, v in zip(times, cells, values):
        naive.touch(c, t, kind, v)
    naive.advance(times[-1])

    assert fast.cells.tolist() == naive.cells


@given(touch_sequences())
@settings(max_examples=60, deadline=None)
def test_hardware_ages_bounded(seq):
    cfg, m, times, cells, _ = seq
    f = make_frame("hardware", cfg, m, dtype=np.int64, empty_value=0, cell_bits=8)
    t = times[-1]
    ages = f.all_cell_ages(t)
    assert ages.min() >= 0
    assert ages.max() < cfg.t_cycle


@given(touch_sequences())
@settings(max_examples=60, deadline=None)
def test_mature_implies_legal_everywhere(seq):
    cfg, m, times, _, _ = seq
    for kind in ("hardware", "software"):
        f = make_frame(kind, cfg, m, dtype=np.int64, empty_value=0, cell_bits=8)
        t = times[-1]
        idx = np.arange(m)
        mature = f.mature_mask(idx, t)
        legal = f.legal_mask(idx, t)
        assert np.all(~mature | legal)
