"""Descriptor equivalence: the registry dispatch changes no numbers.

Two independent checks of the refactor's bit-identity promise:

* the generic lifting of ``BLOOM_FILTER_SPEC`` IS SHE-BF — identical
  frame cells (and marks / sweep position) after identical ``insert_at``
  streams, on both frame kinds;
* the registry-derived cell-merge operators reproduce the pre-registry
  hand-coded ``_COMBINE`` table for all five built-ins.
"""

import copy

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BLOOM_FILTER_SPEC,
    GenericSheSketch,
    SheBitmap,
    SheBloomFilter,
    SheCountMin,
    SheHyperLogLog,
    SheMinHash,
    merge_sketches,
)
from repro.core.registry import descriptor_of

streams = st.lists(st.integers(0, 500), min_size=4, max_size=150)

WINDOW = 64
CELLS = 256


def _sparse_times(n: int, seed: int) -> np.ndarray:
    """Non-decreasing, gappy arrival times (the sharded-substream shape)."""
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.integers(0, 4, size=n)).astype(np.int64)


@given(streams, st.integers(0, 2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_generic_bloom_lift_is_she_bf(keys, time_seed):
    arr = np.asarray(keys, dtype=np.uint64)
    times = _sparse_times(arr.size, time_seed)
    for frame in ("hardware", "software"):
        bf = SheBloomFilter(WINDOW, CELLS, alpha=3.0, seed=11, frame=frame)
        gen = GenericSheSketch(
            BLOOM_FILTER_SPEC, WINDOW, CELLS, alpha=3.0, seed=11, frame=frame
        )
        bf.insert_at(arr, times)
        gen.insert_at(arr, times)
        assert bf.t == gen.t
        assert np.array_equal(bf.frame.cells, gen.frame.cells), frame
        if frame == "hardware":
            assert np.array_equal(bf.frame.marks, gen.frame.marks)
        else:
            assert bf.frame._boundaries_done == gen.frame._boundaries_done


#: the pre-registry merge.py _COMBINE table, kept verbatim as the oracle
_OLD_COMBINE = {
    SheBloomFilter: np.maximum,
    SheBitmap: np.maximum,
    SheHyperLogLog: np.maximum,
    SheCountMin: lambda a, b: a + b,
    SheMinHash: np.minimum,
}


def _expected_merge_cells(a, b, t: int) -> np.ndarray:
    """What the pre-registry code combined: prepare both at t, apply op."""
    op = _OLD_COMBINE[type(a)]
    fa, fb = copy.deepcopy(a.frame), copy.deepcopy(b.frame)
    fa.prepare_query_all(t)
    fb.prepare_query_all(t)
    return op(fa.cells, fb.cells)


@given(streams, st.integers(0, 2**32 - 1))
@settings(max_examples=20, deadline=None)
def test_registry_merge_matches_old_combine_table(keys, split_seed):
    arr = np.asarray(keys, dtype=np.uint64)
    side = np.random.default_rng(split_seed).random(arr.size) < 0.5
    t = int(arr.size)
    for cls in (SheBloomFilter, SheBitmap, SheHyperLogLog, SheCountMin):
        a, b = cls(WINDOW, CELLS, seed=17), cls(WINDOW, CELLS, seed=17)
        a.insert_many(arr[side])
        b.insert_many(arr[~side])
        expected = _expected_merge_cells(a, b, t)
        merged = merge_sketches(a, b, t=t)
        assert np.array_equal(merged.frame.cells, expected), cls.__name__
        # the descriptor's operator is the same function family
        assert descriptor_of(cls) is not None


@given(streams, st.integers(0, 2**32 - 1))
@settings(max_examples=15, deadline=None)
def test_registry_merge_matches_old_combine_minhash(keys, split_seed):
    arr = np.asarray(keys, dtype=np.uint64)
    side = np.random.default_rng(split_seed).random(arr.size) < 0.5
    a, b = SheMinHash(WINDOW, 64, seed=17), SheMinHash(WINDOW, 64, seed=17)
    a.insert_many(0, arr[side])
    a.insert_many(1, arr[~side])
    b.insert_many(0, arr[~side])
    b.insert_many(1, arr[side])
    t = int(arr.size)
    expected = [
        np.minimum(
            _prepared(a.frames[s], t), _prepared(b.frames[s], t)
        )
        for s in (0, 1)
    ]
    merged = merge_sketches(a, b, t=t)
    for s in (0, 1):
        assert np.array_equal(merged.frames[s].cells, expected[s]), s


def _prepared(frame, t: int) -> np.ndarray:
    f = copy.deepcopy(frame)
    f.prepare_query_all(t)
    return f.cells
