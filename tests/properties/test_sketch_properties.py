"""Property-based tests on sketch-level invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import Swamp, TimeOutBloomFilter
from repro.core import SheBloomFilter, SheCountMin
from repro.exact import ExactWindow

streams = st.lists(st.integers(0, 200), min_size=1, max_size=400)


@given(streams, st.sampled_from(["hardware", "software"]))
@settings(max_examples=40, deadline=None)
def test_she_bf_never_false_negative(keys, frame):
    """§3.2: SHE-BF preserves the Bloom filter's one-sided error."""
    window = 64
    bf = SheBloomFilter(window, 512, num_hashes=4, frame=frame)
    ew = ExactWindow(window)
    arr = np.asarray(keys, dtype=np.uint64)
    bf.insert_many(arr)
    ew.insert_many(arr)
    members = ew.distinct_keys()
    assert np.all(bf.contains_many(members))


@given(streams, st.sampled_from(["hardware", "software"]))
@settings(max_examples=40, deadline=None)
def test_she_cm_overestimates_on_mature(keys, frame):
    """SHE-CM never underestimates when a mature counter exists."""
    window = 64
    cm = SheCountMin(window, 512, num_hashes=4, alpha=1.0, frame=frame)
    ew = ExactWindow(window)
    arr = np.asarray(keys, dtype=np.uint64)
    cm.insert_many(arr)
    ew.insert_many(arr)
    kset = ew.distinct_keys()
    idx = cm.hashes.indices(kset, cm.num_counters)
    mature = cm.frame.mature_mask(idx.reshape(-1), cm.now()).reshape(idx.shape)
    has_mature = np.any(mature, axis=1)
    est = cm.frequency_many(kset)
    true = ew.frequency_many(kset)
    assert np.all(est[has_mature] >= true[has_mature])


@given(streams)
@settings(max_examples=40, deadline=None)
def test_swamp_window_size_invariant(keys):
    sw = Swamp(16, 12)
    sw.insert_many(np.asarray(keys, dtype=np.uint64))
    assert sw.table.size == min(len(keys), 16)


@given(streams)
@settings(max_examples=40, deadline=None)
def test_tobf_no_false_negative(keys):
    window = 32
    tobf = TimeOutBloomFilter(window, 512, 4)
    ew = ExactWindow(window)
    arr = np.asarray(keys, dtype=np.uint64)
    tobf.insert_many(arr)
    ew.insert_many(arr)
    assert np.all(tobf.contains_many(ew.distinct_keys()))


@given(streams, st.integers(1, 50))
@settings(max_examples=40, deadline=None)
def test_exact_window_matches_bruteforce(keys, window):
    w = ExactWindow(window)
    w.insert_many(np.asarray(keys, dtype=np.uint64))
    tail = keys[-window:]
    assert w.cardinality() == len(set(tail))
    assert sorted(w.items().tolist()) == sorted(tail)
    for probe in set(keys[:5]):
        assert w.frequency(probe) == tail.count(probe)


@given(st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=200, unique=True))
@settings(max_examples=30, deadline=None)
def test_bloom_filter_no_false_negative_fixed(keys):
    from repro.fixed import BloomFilter

    bf = BloomFilter(2048, 4)
    arr = np.asarray(keys, dtype=np.uint64)
    bf.insert_many(arr)
    assert np.all(bf.contains_many(arr))


@given(st.lists(st.tuples(st.integers(0, 1000), st.integers(1, 3)), min_size=1, max_size=300))
@settings(max_examples=30, deadline=None)
def test_expohist_error_bound(events):
    """DGIM: estimate within 1/k of the true windowed count, plus the
    half-event the midpoint rule concedes."""
    from repro.baselines import ExponentialHistogram

    window, k = 100, 8
    eh = ExponentialHistogram(window, k=k)
    times = []
    t = 0
    for dt, amount in events:
        t += dt
        eh.add(t, amount)
        times.extend([t] * amount)
    true = sum(1 for x in times if x > t - window)
    est = eh.query(t)
    assert abs(est - true) <= max(1.0, true / k + 0.5)
