"""Algebraic properties: merge semantics and persistence round-trips."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SheBitmap, SheBloomFilter, SheCountMin
from repro.core.merge import merge_sketches
from repro.core.timebase import TimedStream
from repro.persist import load_sketch, save_sketch

streams = st.lists(st.integers(0, 150), min_size=4, max_size=200)


def _fresh(cls, **kw):
    return cls(64, 256, seed=17, **kw)


@given(streams, st.integers(0, 2**32 - 1))
@settings(max_examples=30, deadline=None)
def test_merge_commutative(keys, split_seed):
    """merge(a, b) == merge(b, a) for every partition of a stream."""
    arr = np.asarray(keys, dtype=np.uint64)
    side = np.random.default_rng(split_seed).random(arr.size) < 0.5
    times = np.arange(arr.size, dtype=np.int64)
    for cls in (SheBloomFilter, SheBitmap, SheCountMin):
        a1, b1 = _fresh(cls), _fresh(cls)
        TimedStream(a1).insert_many(arr[side], times[side])
        TimedStream(b1).insert_many(arr[~side], times[~side])
        m1 = merge_sketches(a1, b1, t=arr.size)
        m2 = merge_sketches(b1, a1, t=arr.size)
        assert np.array_equal(m1.frame.cells, m2.frame.cells), cls.__name__


@given(streams)
@settings(max_examples=30, deadline=None)
def test_merge_with_empty_is_identity(keys):
    """Merging with a never-fed sketch changes nothing (at equal time)."""
    arr = np.asarray(keys, dtype=np.uint64)
    for cls in (SheBloomFilter, SheBitmap, SheCountMin):
        full = _fresh(cls)
        full.insert_many(arr)
        empty = _fresh(cls)
        merged = merge_sketches(full, empty, t=full.now())
        full.frame.prepare_query_all(full.now())
        assert np.array_equal(merged.frame.cells, full.frame.cells), cls.__name__


@given(streams, st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1))
@settings(max_examples=20, deadline=None)
def test_merge_associative(keys, s1, s2):
    """Three-way merge is order-independent (grouped sketches)."""
    arr = np.asarray(keys, dtype=np.uint64)
    rng = np.random.default_rng(s1)
    part = rng.integers(0, 3, size=arr.size)
    times = np.arange(arr.size, dtype=np.int64)
    t = arr.size
    sketches = []
    for p in range(3):
        sk = _fresh(SheCountMin)
        sel = part == p
        TimedStream(sk).insert_many(arr[sel], times[sel])
        sketches.append(sk)
    left = merge_sketches(merge_sketches(sketches[0], sketches[1], t=t), sketches[2], t=t)
    right = merge_sketches(sketches[0], merge_sketches(sketches[1], sketches[2], t=t), t=t)
    assert np.array_equal(left.frame.cells, right.frame.cells)


@given(streams)
@settings(max_examples=25, deadline=None)
def test_save_load_identity(keys):
    """load(save(x)) continues the stream exactly as x would."""
    import tempfile
    from pathlib import Path

    arr = np.asarray(keys, dtype=np.uint64)
    tmp = tempfile.mkdtemp(prefix="she-ser-")
    path = Path(tmp) / "s.npz"
    for cls in (SheBloomFilter, SheBitmap, SheCountMin):
        orig = _fresh(cls)
        orig.insert_many(arr)
        save_sketch(orig, path)
        copy = load_sketch(path)
        more = (arr * np.uint64(3) + np.uint64(1)) % np.uint64(500)
        orig.insert_many(more)
        copy.insert_many(more)
        orig.frame.prepare_query_all(orig.now())
        copy.frame.prepare_query_all(copy.now())
        assert np.array_equal(orig.frame.cells, copy.frame.cells), cls.__name__
