"""Shared test helpers: naive reference implementations of SHE cleaning.

The vectorised batch machinery in ``repro.core.batch`` is the hardest
code in the package; these references implement Algorithm 1 and the
software sweep *literally, one touch at a time*, and the equivalence
tests assert the fast paths match them bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SheConfig
from repro.core.csm import UpdateKind


class NaiveHardwareFrame:
    """Algorithm 1, executed one touch at a time with no vectorisation."""

    def __init__(self, config: SheConfig, num_cells: int, *, empty_value: int = 0):
        self.config = config
        self.num_cells = num_cells
        self.w = config.group_width
        assert num_cells % self.w == 0
        self.g = num_cells // self.w
        self.t_cycle = config.t_cycle
        self.offsets = [-((self.t_cycle * gid) // self.g) for gid in range(self.g)]
        self.empty_value = empty_value
        self.cells = [empty_value] * num_cells
        self.marks = [self._cur_mark(gid, 0) for gid in range(self.g)]

    def _cur_mark(self, gid: int, t: int) -> int:
        return ((t + self.offsets[gid]) // self.t_cycle) % 2

    def check_group(self, gid: int, t: int) -> None:
        cur = self._cur_mark(gid, t)
        if self.marks[gid] != cur:
            self.marks[gid] = cur
            for j in range(gid * self.w, (gid + 1) * self.w):
                self.cells[j] = self.empty_value

    def age(self, gid: int, t: int) -> int:
        return (t + self.offsets[gid]) % self.t_cycle

    def touch(self, cell: int, t: int, kind: UpdateKind, value: int | None = None) -> None:
        gid = cell // self.w
        self.check_group(gid, t)
        y = self.cells[cell]
        if kind is UpdateKind.SET_ONE:
            self.cells[cell] = 1
        elif kind is UpdateKind.ADD_ONE:
            self.cells[cell] = y + 1
        elif kind is UpdateKind.MAX_RANK:
            self.cells[cell] = max(y, value)
        elif kind is UpdateKind.MIN_HASH:
            self.cells[cell] = min(y, value)
        else:  # pragma: no cover
            raise AssertionError(kind)


class NaiveSoftwareFrame:
    """The §3.2 sweep, executed cell by cell with no vectorisation."""

    def __init__(self, config: SheConfig, num_cells: int, *, empty_value: int = 0):
        self.num_cells = num_cells
        self.t_cycle = config.t_cycle
        self.empty_value = empty_value
        self.cells = [empty_value] * num_cells
        self._boundaries_done = 0

    def advance(self, t: int) -> None:
        b1 = (t * self.num_cells) // self.t_cycle
        while self._boundaries_done < b1:
            self._boundaries_done += 1
            self.cells[self._boundaries_done % self.num_cells] = self.empty_value

    def touch(self, cell: int, t: int, kind: UpdateKind, value: int | None = None) -> None:
        self.advance(t)
        y = self.cells[cell]
        if kind is UpdateKind.SET_ONE:
            self.cells[cell] = 1
        elif kind is UpdateKind.ADD_ONE:
            self.cells[cell] = y + 1
        elif kind is UpdateKind.MAX_RANK:
            self.cells[cell] = max(y, value)
        elif kind is UpdateKind.MIN_HASH:
            self.cells[cell] = min(y, value)
        else:  # pragma: no cover
            raise AssertionError(kind)


def zipf_stream(n: int, universe: int, seed: int = 0, skew: float = 1.1) -> np.ndarray:
    """Small deterministic skewed stream for tests."""
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, universe + 1, dtype=np.float64)
    p = ranks**-skew
    p /= p.sum()
    return rng.choice(np.arange(universe, dtype=np.uint64), size=n, p=p)
