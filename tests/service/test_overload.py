"""Admission control & backpressure: bounded buffers, typed policies.

The acceptance bar (ISSUE 5): with a permanently stalled shard and
sustained ingest, total buffered items never exceed the configured
budget under *every* overload policy; ``"raise"`` rejects batches with
:class:`EngineOverloadedError` without advancing the union-stream clock
for the rejected keys; shed counts exactly satisfy the conservation
identity; and the default unbounded config preserves the pre-budget
behaviour.  The soak test pins a down shard, drives two hundred bursts
through each policy, and asserts both the item bound and a tracemalloc
memory ceiling.
"""

import itertools
import tracemalloc

import numpy as np
import pytest

from repro.service import (
    OVERLOAD_POLICIES,
    ChaosExecutor,
    EngineConfig,
    EngineOverloadedError,
    ProcessExecutor,
    ShardError,
    StreamEngine,
)
from repro.service.sharding import shard_ids


def cfg(**kw):
    base = dict(
        window=4096, size=1024, num_shards=4,
        flush_batch_size=64, flush_interval_s=None,
        sketch_kwargs={"seed": 3},
    )
    base.update(kw)
    return EngineConfig("cm", **base)


def keys_for_shard(shard, config, n=4000):
    """Keys that all hash to ``shard`` under ``config``'s partitioner."""
    pool = np.arange(n * config.num_shards * 2, dtype=np.uint64)
    sids = shard_ids(pool, config.num_shards, config.shard_seed)
    owned = pool[sids == shard]
    assert owned.size >= n
    return owned[:n]


def assert_conserved(engine):
    snap = engine.stats_snapshot(tick=False)
    assert snap["items_ingested"] == (
        snap["items_flushed"] + snap["items_buffered"]
        + snap["items_shed"] + snap["items_retained_down"]
    ), snap
    return snap


class TestUnboundedDefault:
    def test_default_config_is_unbounded(self):
        c = cfg()
        assert not c.bounded
        assert c.max_buffered_items is None
        assert c.max_buffered_total is None
        assert c.overload_policy == "raise"

    def test_unbounded_engine_admits_everything(self):
        eng = StreamEngine(cfg(flush_batch_size=10**9))
        eng._down.add(0)  # even a down shard retains without limit
        stream = np.arange(5000, dtype=np.uint64)
        eng.ingest(stream)
        assert eng.now() == 5000
        snap = assert_conserved(eng)
        assert snap["items_shed"] == 0 and snap["items_rejected"] == 0


class TestConfigValidation:
    @pytest.mark.parametrize("field", [
        "max_buffered_items", "max_buffered_total", "down_retention_items",
    ])
    def test_budgets_must_be_positive(self, field):
        with pytest.raises((ValueError, TypeError)):
            cfg(**{field: 0})

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="overload_policy"):
            cfg(overload_policy="drop_table")

    def test_block_timeout_positive(self):
        with pytest.raises(ValueError, match="block_timeout_s"):
            cfg(block_timeout_s=0.0)

    def test_budget_fields_round_trip_via_json(self):
        c = cfg(max_buffered_items=32, overload_policy="shed_oldest",
                down_retention_items=8)
        again = EngineConfig.from_json(c.to_json())
        assert again == c and again.bounded


class TestRaisePolicy:
    def test_rejects_atomically_without_clock_ticks(self):
        c = cfg(max_buffered_items=64, overload_policy="raise")
        eng = StreamEngine(c)
        eng._down.add(1)
        hot = keys_for_shard(1, c)
        admitted = rejected = 0
        saw_error = None
        for lo in range(0, 2000, 50):
            batch = hot[lo:lo + 50]
            try:
                eng.ingest(batch)
                admitted += batch.size
            except EngineOverloadedError as err:
                rejected += batch.size
                saw_error = err
        assert rejected > 0
        # the clock advanced exactly once per admitted arrival: no
        # rejected key consumed a tick
        assert eng.now() == admitted
        assert eng.queue_depths()[1] <= 64
        assert saw_error.shard_ids == (1,)
        assert saw_error.depths[1] <= 64
        assert saw_error.limit == 64
        assert saw_error.policy == "raise"
        snap = assert_conserved(eng)
        assert snap["items_rejected"] == rejected
        assert snap["items_ingested"] == admitted

    def test_engine_wide_budget(self):
        c = cfg(max_buffered_total=100, overload_policy="raise")
        eng = StreamEngine(c)
        eng._down.update(range(c.num_shards))  # nothing can drain
        with pytest.raises(EngineOverloadedError) as exc:
            eng.ingest(np.arange(500, dtype=np.uint64))
        assert exc.value.total_limit == 100
        assert eng.now() == 0

    def test_relief_flush_avoids_false_overload(self):
        # live shards drain on demand: a budget smaller than the burst
        # never fires as long as every shard can flush
        c = cfg(max_buffered_total=128, flush_batch_size=10**9,
                overload_policy="raise")
        eng = StreamEngine(c)
        for lo in range(0, 4000, 100):
            eng.ingest(np.arange(lo, lo + 100, dtype=np.uint64))
        snap = assert_conserved(eng)
        assert snap["items_rejected"] == 0
        assert snap["items_flushed"] > 0


class TestShedPolicies:
    @pytest.mark.parametrize("policy", ["shed_oldest", "shed_newest"])
    def test_bounded_and_conserved(self, policy):
        c = cfg(max_buffered_items=64, overload_policy=policy)
        eng = StreamEngine(c)
        eng._down.add(2)
        hot = keys_for_shard(2, c)
        for lo in range(0, 3000, 77):
            eng.ingest(hot[lo:lo + 77])
        assert eng.queue_depths()[2] <= 64
        snap = assert_conserved(eng)
        assert snap["items_shed"] > 0
        assert snap["items_rejected"] == 0
        assert eng.overload_snapshot()["items_shed_per_shard"][2] == snap["items_shed"]

    def test_shed_newest_door_drops_never_tick(self):
        c = cfg(max_buffered_items=64, overload_policy="shed_newest")
        eng = StreamEngine(c)
        eng._down.add(2)
        hot = keys_for_shard(2, c)
        for lo in range(0, 3000, 77):
            eng.ingest(hot[lo:lo + 77])
        snap = eng.stats_snapshot(tick=False)
        # every tick belongs to an arrival that is flushed, buffered or
        # retained — the door-dropped remainder consumed none
        assert eng.now() == snap["items_ingested"] - snap["items_shed"]

    def test_shed_oldest_keeps_newest(self):
        c = cfg(max_buffered_items=10, overload_policy="shed_oldest")
        eng = StreamEngine(c)
        eng._down.add(2)
        hot = keys_for_shard(2, c)
        eng.ingest(hot[:30])
        buf = eng._buffers[2, 0]
        kept_times = np.concatenate(buf.times)
        assert kept_times.size == 10
        # the survivors are the 10 *newest* stamps
        assert kept_times.min() == 20 and kept_times.max() == 29

    def test_shed_newest_keeps_oldest(self):
        c = cfg(max_buffered_items=10, overload_policy="shed_newest")
        eng = StreamEngine(c)
        eng._down.add(2)
        hot = keys_for_shard(2, c)
        eng.ingest(hot[:30])
        buf = eng._buffers[2, 0]
        kept_times = np.concatenate(buf.times)
        assert kept_times.size == 10
        assert kept_times.min() == 0 and kept_times.max() == 9

    def test_degraded_answer_carries_shed_caveat(self):
        c = cfg(max_buffered_items=32, overload_policy="shed_oldest")
        eng = StreamEngine(c)
        eng._down.add(0)
        hot = keys_for_shard(0, c)
        for lo in range(0, 1000, 50):
            eng.ingest(hot[lo:lo + 50])
        eng._down.clear()  # "recovered": the shard answers again
        ans = eng.frequency_many(hot[:4], strict=False)
        assert ans.degraded
        assert ans.shed_shards == (0,)
        assert ans.missing_shards == ()
        assert "shed" in ans.caveat
        assert 0 in eng.overload_snapshot()["shed_in_window"]

    def test_shed_caveat_expires_with_the_window(self):
        c = cfg(window=64, max_buffered_items=32,
                overload_policy="shed_oldest")
        eng = StreamEngine(c)
        eng._down.add(0)
        hot = keys_for_shard(0, c)
        for lo in range(0, 500, 50):
            eng.ingest(hot[lo:lo + 50])
        eng._down.clear()
        assert eng.frequency_many(hot[:2], strict=False).shed_shards == (0,)
        # slide the window fully past the shed event with clean traffic
        cold = keys_for_shard(1, c, n=200)
        eng.ingest(cold[:100])
        ans = eng.frequency_many(hot[:2], strict=False)
        assert ans.shed_shards == ()
        assert not ans.degraded and ans.caveat is None


class TestBlockPolicy:
    def test_blocks_then_escalates(self):
        fake = itertools.count(0.0, 0.25)
        sleeps = []
        c = cfg(max_buffered_items=16, overload_policy="block",
                block_timeout_s=1.0)
        eng = StreamEngine(
            c, clock=lambda: next(fake), sleep=sleeps.append,
        )
        eng._down.add(3)
        hot = keys_for_shard(3, c)
        with pytest.raises(EngineOverloadedError) as exc:
            eng.ingest(hot[:40])
        assert exc.value.policy == "block"
        assert sleeps  # it waited before escalating
        assert eng.now() == 0  # still no ticks for the rejected batch

    def test_block_admits_when_room_opens(self):
        # live shards: the in-loop relief flush makes room immediately,
        # so block never sleeps and everything is admitted
        c = cfg(max_buffered_items=16, flush_batch_size=10**9,
                overload_policy="block", block_timeout_s=0.05)
        eng = StreamEngine(c, sleep=lambda s: pytest.fail("should not sleep"))
        for lo in range(0, 1000, 40):
            eng.ingest(np.arange(lo, lo + 40, dtype=np.uint64))
        assert eng.stats_snapshot(tick=False)["items_rejected"] == 0


class TestDownRetentionCap:
    def test_down_cap_overrides_per_shard_budget(self):
        c = cfg(max_buffered_items=500, down_retention_items=20,
                overload_policy="shed_oldest")
        eng = StreamEngine(c)
        eng._down.add(1)
        hot = keys_for_shard(1, c)
        for lo in range(0, 1000, 50):
            eng.ingest(hot[lo:lo + 50])
        assert eng.queue_depths()[1] <= 20
        assert_conserved(eng)

    def test_live_shard_keeps_the_big_budget(self):
        c = cfg(max_buffered_items=500, down_retention_items=20,
                flush_batch_size=10**9, overload_policy="raise")
        eng = StreamEngine(c)
        eng.ingest(np.arange(300, dtype=np.uint64))  # all live: no limit hit
        assert eng.stats_snapshot(tick=False)["items_rejected"] == 0


class TestTick:
    def test_tick_drains_idle_engine(self):
        t = [0.0]
        c = cfg(flush_batch_size=10**9, flush_interval_s=1.0)
        eng = StreamEngine(c, clock=lambda: t[0])
        eng.ingest(np.arange(100, dtype=np.uint64))
        assert sum(eng.queue_depths()) > 0  # clock pinned: no time trigger
        t[0] = 10.0  # the stream goes quiet; the deadline passes
        eng.tick()
        assert sum(eng.queue_depths()) == 0

    def test_stats_snapshot_ticks_serial_engines(self):
        t = [0.0]
        c = cfg(flush_batch_size=10**9, flush_interval_s=1.0)
        eng = StreamEngine(c, clock=lambda: t[0])
        eng.ingest(np.arange(100, dtype=np.uint64))
        t[0] = 10.0
        snap = eng.stats_snapshot()
        assert snap["items_flushed"] == 100 and snap["items_buffered"] == 0

    def test_tick_is_noop_before_deadline(self):
        c = cfg(flush_batch_size=10**9, flush_interval_s=3600.0)
        eng = StreamEngine(c)
        eng.ingest(np.arange(100, dtype=np.uint64))
        eng.tick()
        assert sum(eng.queue_depths()) == 100


class TestHighWaterAndObs:
    def test_high_water_tracks_deepest_queue(self):
        c = cfg(flush_batch_size=10**9, flush_interval_s=None)
        eng = StreamEngine(c)
        eng.ingest(np.arange(400, dtype=np.uint64))
        depths = eng.queue_depths()
        hw = eng.overload_snapshot()["queue_high_water"]
        assert hw == depths
        eng.flush()
        assert eng.overload_snapshot()["queue_high_water"] == hw  # sticky

    def test_shed_metrics_exported(self):
        c = cfg(max_buffered_items=32, overload_policy="shed_oldest")
        eng = StreamEngine(c, obs=True)
        eng._down.add(0)
        hot = keys_for_shard(0, c)
        for lo in range(0, 500, 50):
            eng.ingest(hot[lo:lo + 50])
        eng.update_probe_gauges()
        text = eng.obs.registry.render()
        assert "engine_items_shed_total" in text
        assert 'engine_shard_items_shed_total{shard="0"}' in text
        assert "engine_queue_depth_high_water" in text
        shed = eng.stats_snapshot(tick=False)["items_shed"]
        assert f"engine_items_shed_total {shed}" in text


SOAK_BURSTS = 200
SOAK_BURST_SIZE = 256


class TestSoakBoundedMemory:
    """Sustained bursts into a permanently stalled shard: items *and*
    bytes stay bounded under every policy (raise callers back off)."""

    @pytest.mark.parametrize("policy", OVERLOAD_POLICIES)
    def test_stalled_shard_soak(self, policy):
        c = cfg(
            max_buffered_items=512, max_buffered_total=2048,
            down_retention_items=512, overload_policy=policy,
            block_timeout_s=0.01, flush_batch_size=128,
        )
        eng = StreamEngine(c, sleep=lambda s: None)
        eng._down.add(0)  # permanently stalled: never recovers
        rng = np.random.default_rng(11)
        stream = rng.integers(0, 1 << 20, size=SOAK_BURSTS * SOAK_BURST_SIZE,
                              dtype=np.uint64)
        tracemalloc.start()
        baseline, _ = tracemalloc.get_traced_memory()
        for i in range(SOAK_BURSTS):
            burst = stream[i * SOAK_BURST_SIZE:(i + 1) * SOAK_BURST_SIZE]
            try:
                eng.ingest(burst)
            except EngineOverloadedError:
                pass  # raise/block: the caller backs off
            assert sum(eng.queue_depths()) <= 2048
            assert eng.queue_depths()[0] <= 512
        current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # the bound in bytes: 2048 buffered items is ~32 KiB of key+time
        # payload; give generous headroom for allocator noise and numpy
        # temporaries, but stay far below the ~80 MB an unbounded run
        # of 51k retained items-per-policy sequence would approach
        assert current - baseline < 8 * 1024 * 1024, (baseline, current, peak)
        assert_conserved(eng)

    def test_unbounded_comparison_grows(self):
        # the control: without budgets the stalled shard's buffer grows
        # with the stream, which is exactly what the budgets prevent
        eng = StreamEngine(cfg(flush_batch_size=128))
        eng._down.add(0)
        hot = keys_for_shard(0, cfg(), n=4000)
        for lo in range(0, 4000, 200):
            eng.ingest(hot[lo:lo + 200])
        assert eng.queue_depths()[0] == 4000


class TestSlowWorkerChaos:
    def test_slow_worker_completes_inside_deadline(self):
        c = cfg(num_shards=2, flush_batch_size=8, rpc_timeout_s=5.0)
        chaos_holder = {}

        def factory(shards):
            chaos_holder["exec"] = ChaosExecutor(
                ProcessExecutor(shards, num_workers=2, timeout_s=5.0),
                slow_workers={0: 0.05},
            )
            return chaos_holder["exec"]

        eng = StreamEngine(c, executor=factory, obs=True)
        try:
            eng.ingest(np.arange(64, dtype=np.uint64))
            eng.flush()
            # slow is not a fault: nothing timed out, nothing is down
            assert eng.down_shards == ()
            assert eng.stats_snapshot(tick=False)["rpc_timeouts"] == 0
            chaos = chaos_holder["exec"]
            assert chaos._chaos_events.labels("slow").value >= 1
            assert 'chaos_events_total{event="slow"}' in eng.obs.registry.render()
        finally:
            eng.close()

    def test_slow_must_stay_below_deadline(self):
        import types
        inner = types.SimpleNamespace(timeout_s=1.0)
        with pytest.raises(ValueError, match="slow_workers"):
            ChaosExecutor(inner, slow_workers={0: 2.0})

    def test_slow_seconds_must_be_positive(self):
        from repro.service import SerialExecutor
        with pytest.raises(ValueError, match="positive"):
            ChaosExecutor(SerialExecutor([]), slow_workers={0: 0.0})
