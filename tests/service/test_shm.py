"""Shared-memory flush transport: ring lifecycle + bit-equivalence.

The shm data plane must be invisible to correctness: every executor ×
transport combination produces bit-identical shard state, oversized or
ring-exhausted batches fall back to pickle transparently, a SIGKILLed
worker never leaks ring slots or segments, and closing an engine leaves
``/dev/shm`` exactly as it found it (no resource-tracker leak warnings).
"""

import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.core import SheCountMin
from repro.core.registry import descriptor_of
from repro.service import (
    ChaosExecutor,
    EngineConfig,
    ProcessExecutor,
    SerialExecutor,
    ShardDeadError,
    ShardError,
    StreamEngine,
)
from repro.service.shm import SlotRing


def _shm_segments() -> set[str]:
    try:
        return {f for f in os.listdir("/dev/shm") if f.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


@pytest.fixture
def stream():
    return np.random.default_rng(23).integers(
        0, 900, size=20_000, dtype=np.uint64
    )


def cfg(transport, **kw):
    base = dict(
        window=2048, size=1024, num_shards=4,
        flush_batch_size=900, flush_interval_s=None,
        transport=transport, sketch_kwargs={"seed": 7},
    )
    base.update(kw)
    return EngineConfig("cm", **base)


def _shard_states(engine):
    """Canonical per-shard state arrays, for bit-level comparison."""
    out = []
    for sketch in engine.snapshots():
        desc = descriptor_of(sketch)
        _meta, arrays = desc.to_state(desc, sketch)
        out.append(arrays)
    return out


class TestSlotRing:
    def test_acquire_release_exhaustion(self):
        with SlotRing(16, 3) as ring:
            slots = [ring.acquire() for _ in range(3)]
            assert sorted(slots) == [0, 1, 2]
            assert ring.in_use() == 3
            assert ring.acquire() is None  # exhausted, no blocking
            ring.release(slots[1])
            assert ring.in_use() == 2
            assert ring.acquire() == slots[1]

    def test_write_and_views_round_trip(self):
        with SlotRing(8, 2) as ring:
            keys = np.arange(5, dtype=np.uint64) * 3
            times = np.arange(5, dtype=np.int64) + 100
            slot = ring.acquire()
            n = ring.write(slot, keys, times)
            assert n == 5
            assert np.array_equal(ring.keys_view(slot, n), keys)
            assert np.array_equal(ring.times_view(slot, n), times)

    def test_oversized_write_raises(self):
        with SlotRing(4, 1) as ring:
            slot = ring.acquire()
            with pytest.raises(ValueError, match="exceeds slot capacity"):
                ring.write(slot, np.zeros(5, dtype=np.uint64),
                           np.zeros(5, dtype=np.int64))

    def test_release_out_of_range_raises(self):
        with SlotRing(4, 2) as ring:
            with pytest.raises(ValueError, match="out of range"):
                ring.release(7)

    def test_attach_sees_owner_writes(self):
        with SlotRing(8, 2) as owner:
            keys = np.asarray([11, 22, 33], dtype=np.uint64)
            times = np.asarray([1, 2, 3], dtype=np.int64)
            slot = owner.acquire()
            owner.write(slot, keys, times)
            reader = SlotRing(8, 2, name=owner.name)
            try:
                assert np.array_equal(reader.keys_view(slot, 3), keys)
                assert np.array_equal(reader.times_view(slot, 3), times)
            finally:
                reader.close()

    def test_attach_geometry_mismatch_raises(self):
        with SlotRing(4, 2) as owner:
            with pytest.raises(ValueError, match="ring geometry"):
                SlotRing(1024, 64, name=owner.name)

    def test_close_unlinks_segment_and_is_idempotent(self):
        before = _shm_segments()
        ring = SlotRing(16, 2)
        assert _shm_segments() - before  # segment exists while open
        ring.close()
        ring.close()  # idempotent
        assert _shm_segments() == before


class TestTransportEquivalence:
    def test_all_executor_transport_combinations_bit_identical(self, stream):
        states = {}
        answers = {}
        for executor in ("serial", "process"):
            for transport in ("pickle", "shm"):
                with StreamEngine(
                    cfg(transport), executor=executor, num_workers=2
                ) as eng:
                    for lo in range(0, stream.size, 2048):
                        eng.ingest(stream[lo:lo + 2048])
                    eng.flush()
                    states[executor, transport] = _shard_states(eng)
                    probes = np.unique(stream)[:200]
                    answers[executor, transport] = eng.frequency_many(probes)
        base_state = states["serial", "pickle"]
        base_ans = answers["serial", "pickle"]
        for combo, state in states.items():
            assert np.array_equal(answers[combo], base_ans), combo
            for got, want in zip(state, base_state):
                assert set(got) == set(want), combo
                for name in want:
                    assert np.array_equal(got[name], want[name]), (combo, name)

    def test_two_stream_kind_identical_across_transports(self):
        left = np.random.default_rng(9).integers(0, 300, 6000, dtype=np.uint64)
        right = np.random.default_rng(10).integers(0, 300, 6000, dtype=np.uint64)
        sims = []
        for transport in ("pickle", "shm"):
            conf = EngineConfig(
                "mh", window=1024, size=64, num_shards=2,
                flush_batch_size=500, flush_interval_s=None,
                transport=transport, sketch_kwargs={"seed": 5},
            )
            with StreamEngine(conf, executor="process") as eng:
                for lo in range(0, 6000, 1500):
                    eng.ingest(left[lo:lo + 1500], side=0)
                    eng.ingest(right[lo:lo + 1500], side=1)
                eng.flush()
                sims.append(eng.similarity())
        assert sims[0] == sims[1]


class TestFallbacks:
    def test_oversized_batch_falls_back_to_pickle(self, stream):
        shards = [SheCountMin(2048, 1024, seed=7) for _ in range(2)]
        mirror = [SheCountMin(2048, 1024, seed=7) for _ in range(2)]
        ex = ProcessExecutor(
            shards, num_workers=1, transport="shm", ring_slot_items=64
        )
        try:
            keys = stream[:1000]  # 1000 > 64-item slots: must fall back
            times = np.arange(1000, dtype=np.int64)
            ex.flush(0, keys, times)
            mirror[0].insert_at(keys, times)
            snap = ex.snapshot(0)
            assert np.array_equal(snap.frame.cells, mirror[0].frame.cells)
        finally:
            ex.close()

    def test_exhausted_ring_falls_back_to_pickle(self, stream):
        shards = [SheCountMin(2048, 1024, seed=7) for _ in range(2)]
        mirror = SheCountMin(2048, 1024, seed=7)
        ex = ProcessExecutor(shards, num_workers=1, transport="shm")
        try:
            held = []
            while True:  # drain the free list from under the executor
                slot = ex._ring.acquire()
                if slot is None:
                    break
                held.append(slot)
            keys = stream[:500]
            times = np.arange(500, dtype=np.int64)
            ex.flush(1, keys, times)  # no slot free -> pickle path
            mirror.insert_at(keys, times)
            snap = ex.snapshot(1)
            assert np.array_equal(snap.frame.cells, mirror.frame.cells)
            for slot in held:
                ex._ring.release(slot)
        finally:
            ex.close()


class TestLifecycle:
    def test_engine_close_leaves_no_segments(self, stream):
        before = _shm_segments()
        with StreamEngine(cfg("shm"), executor="process") as eng:
            eng.ingest(stream)
            eng.flush()
        assert _shm_segments() == before

    def test_sigkilled_worker_releases_in_flight_slots(self, stream):
        shards = [SheCountMin(2048, 1024, seed=7) for _ in range(2)]
        ex = ProcessExecutor(
            shards, num_workers=2, transport="shm", timeout_s=5.0
        )
        try:
            keys = stream[:500]
            times = np.arange(500, dtype=np.int64)
            ex.flush(0, keys, times)
            assert ex._ring.in_use() == 0
            os.kill(ex._procs[0].pid, signal.SIGKILL)
            deadline = time.monotonic() + 5.0
            while ex.is_worker_alive(0) and time.monotonic() < deadline:
                time.sleep(0.01)
            with pytest.raises(ShardDeadError):
                ex.flush(0, keys, times)
            # the parent's error path reclaimed the descriptor's slot
            assert ex._ring.in_use() == 0
            # the untouched worker still flushes over shm
            ex.flush(1, keys, times)
            assert ex._ring.in_use() == 0
        finally:
            ex.close()

    def test_chaos_sigkill_mid_flush_under_shm(self, stream):
        """A real SIGKILL between shm sends must surface as a typed
        ShardError while the parent reclaims every in-flight slot."""
        before = _shm_segments()
        inner_holder = {}

        def factory(shards):
            inner = ProcessExecutor(
                shards, num_workers=2, transport="shm", timeout_s=5.0
            )
            inner_holder["ex"] = inner
            return ChaosExecutor(inner, kill_worker_after_ops=3)

        with StreamEngine(cfg("shm"), executor=factory) as eng:
            with pytest.raises(ShardError):
                for lo in range(0, stream.size, 2048):
                    eng.ingest(stream[lo:lo + 2048])
                    eng.flush()
            assert inner_holder["ex"]._ring.in_use() == 0
        assert _shm_segments() == before

    def test_no_resource_tracker_warnings_on_clean_exit(self):
        """A fresh interpreter that runs an shm engine end-to-end must
        exit without resource_tracker leak warnings on stderr."""
        code = (
            "import numpy as np\n"
            "from repro.service import EngineConfig, StreamEngine\n"
            "cfg = EngineConfig('cm', window=2048, size=1024, num_shards=2,\n"
            "                   flush_batch_size=500, flush_interval_s=None,\n"
            "                   transport='shm', sketch_kwargs={'seed': 7})\n"
            "eng = StreamEngine(cfg, executor='process')\n"
            "eng.ingest(np.arange(4000, dtype=np.uint64) % 700)\n"
            "eng.flush()\n"
            "print(eng.frequency(13))\n"
            "eng.close()\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = env.get("PYTHONPATH", "src")
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, timeout=120, env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert "resource_tracker" not in proc.stderr, proc.stderr
        assert "leaked shared_memory" not in proc.stderr, proc.stderr


class TestConfig:
    def test_transport_rejected_when_unknown(self):
        with pytest.raises(ValueError, match="transport"):
            EngineConfig("cm", window=2048, size=1024, transport="carrier-pigeon")

    def test_transport_default_reads_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRANSPORT", "shm")
        assert EngineConfig("cm", window=2048, size=1024).transport == "shm"
        monkeypatch.delenv("REPRO_TRANSPORT")
        assert EngineConfig("cm", window=2048, size=1024).transport == "pickle"

    def test_transport_round_trips_through_json(self):
        conf = cfg("shm")
        back = EngineConfig.from_json(conf.to_json())
        assert back.transport == "shm"

    def test_serial_executor_validates_transport(self):
        with pytest.raises(ValueError, match="transport"):
            SerialExecutor([SheCountMin(256, 512, seed=7)], transport="nope")
