"""Deterministic fault injection: ChaosExecutor semantics.

Chaos here is *scripted*, not random: faults fire at exact operation
indices, and since the op sequence is a pure function of the ingested
stream, every failure reproduces under ``pytest -x`` with no seeds or
sleeps.  These tests pin the injector itself — kills, stalls, dropped
acks, corrupted checkpoint files — so the recovery tests in
``test_supervisor.py`` can trust their fault source.
"""

import time

import numpy as np
import pytest

from repro.core import SheBloomFilter, SheCountMin
from repro.service import (
    ChaosExecutor,
    EngineConfig,
    ProcessExecutor,
    SerialExecutor,
    ShardDeadError,
    ShardTimeoutError,
    StreamEngine,
    recover_engine,
    save_checkpoint,
)


def make_shards(n=2):
    return [SheCountMin(256, 512, seed=7) for _ in range(n)]


def keys_times(n, t0=0):
    return (
        np.arange(n, dtype=np.uint64),
        np.arange(t0, t0 + n, dtype=np.int64),
    )


class TestKillInjection:
    def test_kill_fires_exactly_once_at_op_index(self):
        ex = ChaosExecutor(SerialExecutor(make_shards()),
                           kill_worker_after_ops=3, kill_worker_id=0)
        keys, times = keys_times(8)
        try:
            ex.flush(0, keys, times)      # op 1
            ex.flush(1, keys, times)      # op 2
            with pytest.raises(ShardDeadError):
                ex.flush(0, keys, np.arange(8, 16, dtype=np.int64))  # op 3: kill
            assert ex.kills == [(3, 0)]
            with pytest.raises(ShardDeadError):
                ex.snapshot(0)            # stays dead until restarted
        finally:
            ex.close()

    def test_kill_defaults_to_the_op_target_worker(self):
        ex = ChaosExecutor(SerialExecutor(make_shards()), kill_worker_after_ops=1)
        keys, times = keys_times(4)
        try:
            with pytest.raises(ShardDeadError):
                ex.flush(1, keys, times)
            assert ex.kills == [(1, 0)]   # serial: everything is worker 0
        finally:
            ex.close()

    def test_restart_revives_a_killed_serial_worker(self):
        ex = ChaosExecutor(SerialExecutor(make_shards()),
                           kill_worker_after_ops=1, kill_worker_id=0)
        keys, times = keys_times(4)
        try:
            with pytest.raises(ShardDeadError):
                ex.flush(0, keys, times)
            ex.restart_worker(0, dict(enumerate(make_shards())))
            ex.flush(0, keys, times)
            assert ex.snapshot(0).frequency(1, 3) >= 1
        finally:
            ex.close()

    def test_kill_is_a_real_sigkill_for_process_workers(self):
        ex = ChaosExecutor(ProcessExecutor(make_shards(), num_workers=2,
                                           timeout_s=10.0),
                           kill_worker_after_ops=1, kill_worker_id=1)
        keys, times = keys_times(4)
        try:
            with pytest.raises(ShardDeadError):
                ex.flush(1, keys, times)
            assert not ex.is_worker_alive(1)
            assert ex.is_worker_alive(0)
            ex.flush(0, keys, times)      # surviving worker unaffected
        finally:
            ex.close()


class TestDelayAndDropAck:
    def test_delay_must_exceed_the_rpc_deadline(self):
        inner = ProcessExecutor(make_shards(), timeout_s=5.0)
        try:
            with pytest.raises(ValueError, match="delay"):
                ChaosExecutor(inner, delay_ops={1: 1.0})
        finally:
            inner.close()

    def test_stall_trips_the_deadline_within_bounded_wall_time(self):
        ex = ChaosExecutor(ProcessExecutor(make_shards(), num_workers=1,
                                           timeout_s=0.3),
                           delay_ops={1: 2.0})
        keys, times = keys_times(4)
        try:
            t0 = time.monotonic()
            with pytest.raises(ShardTimeoutError) as exc_info:
                ex.flush(0, keys, times)
            elapsed = time.monotonic() - t0
            assert elapsed < 1.5, f"deadline not enforced: {elapsed:.2f}s"
            assert exc_info.value.timeout_s == pytest.approx(0.3)
        finally:
            ex.close()

    def test_missed_deadline_poisons_the_worker(self):
        ex = ChaosExecutor(ProcessExecutor(make_shards(), num_workers=1,
                                           timeout_s=0.3),
                           delay_ops={1: 2.0})
        keys, times = keys_times(4)
        try:
            with pytest.raises(ShardTimeoutError):
                ex.flush(0, keys, times)
            # the stale ack may still be in the pipe: nothing this worker
            # says can be trusted until it is restarted
            with pytest.raises(ShardDeadError, match="untrusted"):
                ex.snapshot(0)
        finally:
            ex.close()

    def test_drop_ack_raises_timeout_but_the_op_applied(self):
        ex = ChaosExecutor(ProcessExecutor(make_shards(), num_workers=2,
                                           timeout_s=10.0),
                           drop_ack_ops=(1,))
        keys, times = keys_times(4)
        try:
            with pytest.raises(ShardTimeoutError):
                ex.flush(0, keys, times)  # applied server-side, ack dropped
            with pytest.raises(ShardDeadError):
                ex.snapshot(0)            # worker 0 poisoned
            ex.restart_worker(0, {0: make_shards()[0]})
            ex.flush(0, keys, times)      # rebuilt from scratch: one insert
            assert ex.snapshot(0).frequency(1, 3) == 1
        finally:
            ex.close()


class TestCorruptCheckpoint:
    def test_corrupted_shard_file_falls_back_to_older_checkpoint(self, tmp_path):
        config = EngineConfig("cm", window=2048, size=1024, num_shards=2,
                              flush_batch_size=500, flush_interval_s=None,
                              sketch_kwargs={"seed": 7})
        stream = np.random.default_rng(3).integers(0, 300, size=4_000,
                                                   dtype=np.uint64)
        chaos = {}

        def factory(shards):
            chaos["x"] = ChaosExecutor(SerialExecutor(shards))
            return chaos["x"]

        eng = StreamEngine(config, executor=factory)
        eng.ingest(stream[:2000])
        good = save_checkpoint(eng, tmp_path)
        probes = np.unique(stream)[:100]
        at_good = eng.frequency_many(probes)

        eng.ingest(stream[2000:])
        # arm corruption for every op in the upcoming save: only the
        # checkpoint writes honour it, so both shard files get mangled
        chaos["x"]._corrupt_ops = set(range(chaos["x"].ops + 1,
                                            chaos["x"].ops + 50))
        bad = save_checkpoint(eng, tmp_path)
        assert bad != good
        assert b"chaos" in (bad / "shard-00.npz").read_bytes()
        eng.close()

        # recovery skips the newest (corrupt) checkpoint for the older one
        back = recover_engine(tmp_path)
        try:
            assert back.stats.recovered_from == str(good)
            assert np.array_equal(back.frequency_many(probes), at_good)
        finally:
            back.close()


class TestDeterminism:
    def test_same_script_same_stream_same_kill_point(self):
        stream = np.random.default_rng(9).integers(0, 400, size=6_000,
                                                   dtype=np.uint64)
        config = EngineConfig("bf", window=2048, size=4096, num_shards=4,
                              flush_batch_size=600, flush_interval_s=None,
                              sketch_kwargs={"seed": 1})

        def run_once():
            chaos = {}

            def factory(shards):
                chaos["x"] = ChaosExecutor(SerialExecutor(shards),
                                           kill_worker_after_ops=5)
                return chaos["x"]

            eng = StreamEngine(config, executor=factory)
            try:
                with pytest.raises(ShardDeadError) as exc_info:
                    for lo in range(0, stream.size, 1000):
                        eng.ingest(stream[lo:lo + 1000])
                return chaos["x"].kills, exc_info.value.shard_ids
            finally:
                eng.close()

        assert run_once() == run_once()
