"""Supervised recovery: restart-from-checkpoint + replay, degradation.

The acceptance bar for the fault-tolerance layer (ISSUE): a worker
SIGKILLed mid-stream under supervision recovers so completely that
strict queries are *bit-identical* to a run that never failed; with
recovery disabled the engine degrades honestly (``strict=False``
answers carry shard coverage, strict calls raise typed errors) and no
executor call blocks past its configured deadline.  All chaos is
scheduled by deterministic op index — no sleeps, no retries, no flaky
reruns.
"""

import time

import numpy as np
import pytest

from repro.service import (
    ChaosExecutor,
    DegradedAnswer,
    EngineConfig,
    ProcessExecutor,
    ReplayBuffer,
    RetryPolicy,
    SerialExecutor,
    ShardError,
    ShardUnrecoverableError,
    StreamEngine,
    Supervisor,
    save_checkpoint,
)


@pytest.fixture
def stream():
    return np.random.default_rng(5).integers(0, 500, size=8_000, dtype=np.uint64)


def cfg(kind="cm", **kw):
    base = dict(
        window=2048, size=1024, num_shards=4,
        flush_batch_size=700, flush_interval_s=None,
        rpc_timeout_s=5.0, sketch_kwargs={"seed": 7},
    )
    base.update(kw)
    return EngineConfig(kind, **base)


def reference_run(config, stream):
    ref = StreamEngine(config)
    ref.ingest(stream)
    return ref


def chunked_ingest(engine, stream, chunk=1500):
    for lo in range(0, stream.size, chunk):
        engine.ingest(stream[lo:lo + chunk])


class TestRetryPolicy:
    def test_backoff_grows_then_caps(self):
        p = RetryPolicy(backoff_base_s=0.1, backoff_factor=2.0, backoff_max_s=0.5)
        assert [p.backoff_s(a) for a in range(4)] == [0.1, 0.2, 0.4, 0.5]


class TestReplayBuffer:
    def batch(self, shard, n):
        return (shard, np.arange(n, dtype=np.uint64),
                np.arange(n, dtype=np.int64), None)

    def test_records_and_filters_by_shard(self):
        buf = ReplayBuffer(limit_items=100)
        buf.record([self.batch(0, 5), self.batch(1, 7), self.batch(0, 3)])
        assert buf.items == 15 and len(buf) == 3
        mine = buf.batches_for({0})
        assert [b[0] for b in mine] == [0, 0]
        assert [b[1].size for b in mine] == [5, 3]

    def test_overflow_drops_the_log_until_reset(self):
        buf = ReplayBuffer(limit_items=10)
        buf.record([self.batch(0, 11)])
        assert buf.overflowed and len(buf) == 0 and buf.items == 0
        buf.record([self.batch(0, 1)])  # ignored: already unrecoverable
        assert len(buf) == 0
        buf.reset()
        assert not buf.overflowed
        buf.record([self.batch(0, 1)])
        assert len(buf) == 1


class TestSupervisedRecovery:
    """A killed worker comes back bit-identical to one that never died."""

    def test_serial_kill_restart_replay_is_bit_identical(self, tmp_path, stream):
        config = cfg("cm")
        chaos = {}

        def factory(shards):
            chaos["x"] = ChaosExecutor(SerialExecutor(shards),
                                       kill_worker_after_ops=15)
            return chaos["x"]

        eng = StreamEngine(config, executor=factory)
        sup = Supervisor(eng, tmp_path, policy=RetryPolicy(backoff_base_s=0.0))
        try:
            chunked_ingest(eng, stream)      # kill + recovery happen inline
            assert chaos["x"].kills, "chaos never fired"
            assert eng.stats.worker_restarts >= 1
            assert eng.stats.items_replayed > 0
            assert eng.down_shards == ()
            ref = reference_run(config, stream)
            probes = np.unique(stream)[:200]
            assert np.array_equal(eng.frequency_many(probes),
                                  ref.frequency_many(probes))
        finally:
            eng.close()

    @pytest.mark.parametrize("kind", ["bf", "bm"])
    def test_sigkill_process_worker_state_bit_identical(self, tmp_path,
                                                        stream, kind):
        config = cfg(kind, size=4096, sketch_kwargs={"seed": 1})
        chaos = {}

        def factory(shards):
            chaos["x"] = ChaosExecutor(
                ProcessExecutor(shards, num_workers=2, timeout_s=5.0),
                kill_worker_after_ops=15)
            return chaos["x"]

        eng = StreamEngine(config, executor=factory)
        sup = Supervisor(eng, tmp_path, policy=RetryPolicy(backoff_base_s=0.0))
        try:
            chunked_ingest(eng, stream)
            assert chaos["x"].kills, "chaos never fired"
            assert eng.stats.worker_restarts >= 1
            ref = reference_run(config, stream)
            assert np.array_equal(eng.merged().frame.cells,
                                  ref.merged().frame.cells)
        finally:
            eng.close()

    def test_checkpoint_trims_replay_and_refills_breaker(self, tmp_path, stream):
        eng = StreamEngine(cfg("cm"))
        sup = Supervisor(eng, tmp_path)
        try:
            eng.ingest(stream[:4000])
            assert len(sup.replay) > 0
            sup._restarts[0] = 2
            save_checkpoint(eng, tmp_path)
            assert len(sup.replay) == 0 and sup.replay.items == 0
            assert sup.restarts(0) == 0
            assert sup.snapshot()["base_checkpoint"].startswith(str(tmp_path))
        finally:
            eng.close()

    def test_heartbeat_check_recovers_a_dead_worker(self, tmp_path, stream):
        chaos = {}

        def factory(shards):
            chaos["x"] = ChaosExecutor(
                ProcessExecutor(shards, num_workers=2, timeout_s=5.0))
            return chaos["x"]

        eng = StreamEngine(cfg("cm"), executor=factory)
        sup = Supervisor(eng, tmp_path, policy=RetryPolicy(backoff_base_s=0.0))
        try:
            eng.ingest(stream[:4000])
            chaos["x"]._kill(1)              # out-of-band death, no RPC in flight
            assert not eng._exec.is_worker_alive(1)
            result = sup.check()
            assert result == {0: True, 1: True}
            assert eng.stats.worker_deaths >= 1
            assert eng.stats.worker_restarts >= 1
        finally:
            eng.close()

    def test_replay_overflow_is_unrecoverable(self, tmp_path, stream):
        chaos = {}

        def factory(shards):
            chaos["x"] = ChaosExecutor(SerialExecutor(shards),
                                       kill_worker_after_ops=15)
            return chaos["x"]

        eng = StreamEngine(cfg("cm"), executor=factory)
        sup = Supervisor(eng, tmp_path, replay_limit_items=100,
                         policy=RetryPolicy(backoff_base_s=0.0))
        try:
            with pytest.raises(ShardError):
                chunked_ingest(eng, stream)  # buffer overflowed before the kill
            assert sup.replay.overflowed
            assert eng.down_shards != ()
        finally:
            eng.close()


class TestDegradedQueries:
    """Recovery disabled: the engine keeps answering from survivors."""

    def run_to_degraded(self, tmp_path, stream, config):
        chaos = {}

        def factory(shards):
            chaos["x"] = ChaosExecutor(
                ProcessExecutor(shards, num_workers=2, timeout_s=5.0),
                kill_worker_after_ops=15)
            return chaos["x"]

        eng = StreamEngine(config, executor=factory)
        sup = Supervisor(eng, tmp_path, policy=RetryPolicy(max_restarts=0))
        failures = 0
        for lo in range(0, stream.size, 1500):
            chunk = stream[lo:lo + 1500]
            try:
                eng.ingest(chunk)            # items buffer before any flush,
            except ShardError:               # so a raised flush loses nothing
                failures += 1
        assert failures == 1 and eng.down_shards != ()
        return eng, sup, chaos["x"]

    def test_strict_raises_then_degraded_answers_with_coverage(
            self, tmp_path, stream):
        config = cfg("cm")
        eng, sup, chaos = self.run_to_degraded(tmp_path, stream, config)
        try:
            probes = np.unique(stream)[:50]
            with pytest.raises(ShardUnrecoverableError, match="down"):
                eng.frequency_many(probes)
            res = eng.frequency_many(probes, strict=False)
            assert isinstance(res, DegradedAnswer) and res.degraded
            assert res.shards_total == 4
            assert res.shards_answered == 4 - len(res.missing_shards)
            assert set(res.missing_shards) == set(eng.down_shards)
            assert "underestimated" in res.caveat
            assert res.value.shape == probes.shape
            single = eng.frequency(int(probes[0]), strict=False)
            assert single.coverage == res.shards_answered / 4
            assert eng.stats.degraded_queries == 2
            assert eng.stats_snapshot()["shards_down"] == list(eng.down_shards)
        finally:
            eng.close()

    def test_late_recovery_after_breaker_reset_is_bit_identical(
            self, tmp_path, stream):
        config = cfg("cm")
        eng, sup, chaos = self.run_to_degraded(tmp_path, stream, config)
        try:
            # operator intervention: refill the budget, bring shards back
            sup.policy = RetryPolicy(max_restarts=2, backoff_base_s=0.0)
            sup.reset_breaker()
            assert sup.recover_down()
            assert eng.down_shards == ()
            ref = reference_run(config, stream)
            probes = np.unique(stream)[:200]
            assert np.array_equal(eng.frequency_many(probes),
                                  ref.frequency_many(probes))
        finally:
            eng.close()

    def test_stalled_worker_degrades_within_the_deadline(self, tmp_path):
        """No executor call may block past its deadline (acceptance)."""
        config = cfg("cm", num_shards=2, rpc_timeout_s=0.3)
        chaos = {}

        def factory(shards):
            chaos["x"] = ChaosExecutor(
                ProcessExecutor(shards, num_workers=2, timeout_s=0.3))
            return chaos["x"]

        eng = StreamEngine(config, executor=factory)
        sup = Supervisor(eng, tmp_path, policy=RetryPolicy(max_restarts=0))
        try:
            eng.ingest(np.arange(500, dtype=np.uint64))
            eng.flush()
            # stall worker 0 on its next op (the query's advance)
            chaos["x"]._delay_ops = {chaos["x"].ops + 1: 1.0}
            t0 = time.monotonic()
            res = eng.frequency_many(np.arange(10, dtype=np.uint64),
                                     strict=False)
            elapsed = time.monotonic() - t0
            assert elapsed < 1.0, f"query blocked {elapsed:.2f}s past deadline"
            assert res.degraded and len(res.missing_shards) == 1
            assert eng.stats.rpc_timeouts >= 1
        finally:
            eng.close()
