"""Acceptance: chaos-injected latency drives ``/alertz`` to firing.

ChaosExecutor slow mode degrades the flush RPC past a latency
objective's threshold; the burn-rate alert must go firing on
``/alertz`` within two fast-window evaluations, ``repro.tools slo
status`` must exit non-zero while it burns, and recovery (slowness
removed, clean evaluations rotating the burst out of the fast window)
must clear the alert back to ``ok``.
"""

import json
import urllib.request

import numpy as np

from repro.obs.exporter import MetricsExporter
from repro.obs.slo import BurnRateRule, SloEngine, SloObjective
from repro.service import EngineConfig, StreamEngine
from repro.service.executor import SerialExecutor
from repro.service.faults import ChaosExecutor
from repro.tools.__main__ import main as tools_main


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return json.loads(resp.read().decode("utf-8"))


class TestChaosDrivenBurnRate:
    def test_slow_executor_fires_and_recovery_clears(self, capsys):
        chaos = {}

        def factory(shards):
            chaos["x"] = ChaosExecutor(SerialExecutor(shards))
            return chaos["x"]

        cfg = EngineConfig("cm", window=65536, size=1024, num_shards=2,
                           flush_batch_size=100_000, flush_interval_s=None,
                           sketch_kwargs={"seed": 11})
        clk = [10_000.0]
        rng = np.random.default_rng(0)

        eng = StreamEngine(cfg, executor=factory, obs=True)
        SloEngine(
            eng,
            objectives=(SloObjective(name="flush-latency", target=0.99,
                                     kind="latency", threshold_s=0.15,
                                     stage="flush_rpc"),),
            rules=(BurnRateRule("5m", "1h", 10.0, "page"),),
            clock=lambda: clk[0],
        )

        def round_trip():
            eng.ingest(rng.integers(0, 1000, size=512, dtype=np.uint64))
            eng.flush()  # exactly one flush_rpc sample per round

        try:
            with MetricsExporter(eng) as exp:
                round_trip()  # healthy baseline seeds the burn rings
                p0 = _get(exp.url + "/alertz")
                assert p0["enabled"] and p0["firing"] == []

                # inject: every op on both (serial) workers pays 0.2 s,
                # so each flush RPC lands far above the 0.15 s threshold
                chaos["x"]._slow_workers.update({0: 0.2, 1: 0.2})
                clk[0] += 30.0
                round_trip()
                p1 = _get(exp.url + "/alertz")  # first fast-window evaluation
                assert p1["alerts"][0]["state"] == "pending"

                clk[0] += 30.0
                round_trip()
                p2 = _get(exp.url + "/alertz")  # second: must be firing
                assert p2["alerts"][0]["state"] == "firing"
                assert p2["firing"][0]["slo"] == "flush-latency"
                assert tools_main(["slo", "status", exp.url]) == 1
                assert "FIRING: flush-latency/page" in capsys.readouterr().err

                # recovery: remove the slowness, rotate clean windows in
                chaos["x"]._slow_workers.clear()
                state = None
                for _ in range(9):
                    clk[0] += 60.0
                    round_trip()
                    state = _get(exp.url + "/alertz")["alerts"][0]["state"]
                assert state == "ok"
                assert tools_main(["slo", "status", exp.url]) == 0

                statusz = _get(exp.url + "/statusz")
                transitions = [e["to"] for e in statusz["slo"]["timeline"]]
                assert "firing" in transitions
                assert transitions[-1] == "ok"
                assert statusz["slo"]["states"]["flush-latency/page"] == "ok"
        finally:
            eng.close()


class TestExporterWithoutSlo:
    def test_alertz_reports_disabled_and_cli_exits_zero(self, capsys):
        cfg = EngineConfig("cm", window=256, size=256, num_shards=1)
        with StreamEngine(cfg, obs=True) as eng, MetricsExporter(eng) as exp:
            payload = _get(exp.url + "/alertz")
            assert payload == {"enabled": False, "alerts": [], "firing": []}
            assert tools_main(["slo", "status", exp.url]) == 0
            assert "no SLO engine" in capsys.readouterr().err

    def test_cli_exits_two_when_exporter_unreachable(self, capsys):
        rc = tools_main(
            ["slo", "status", "http://127.0.0.1:1", "--timeout", "0.5"]
        )
        assert rc == 2
