"""Engine-level observability: per-shard metrics, cross-process spans,
probe gauges, chaos-event counters, and the disabled fast path."""

import os

import numpy as np
import pytest

from repro.obs import Observability
from repro.service import (
    ChaosExecutor,
    EngineConfig,
    SerialExecutor,
    StreamEngine,
)

WINDOW = 1 << 12


def _cfg(**over):
    base = dict(
        kind="cm",
        window=WINDOW,
        size=1 << 11,
        num_shards=4,
        flush_batch_size=512,
        flush_interval_s=None,
    )
    base.update(over)
    return EngineConfig(**base)


def _keys(n, seed=0):
    return np.random.default_rng(seed).integers(0, 1 << 40, size=n, dtype=np.uint64)


class TestEngineMetrics:
    def test_per_shard_counters_cover_the_stream(self):
        with StreamEngine(_cfg(), obs=True) as eng:
            eng.ingest(_keys(20_000))
            eng.flush()
            snap = eng.obs.registry.snapshot()
            per_shard = [
                snap[f'engine_shard_items_total{{shard="{s}"}}']
                for s in range(4)
            ]
            assert sum(per_shard) == 20_000
            assert all(n > 0 for n in per_shard), "hash partitioning spreads keys"
            assert snap["engine_items_ingested_total"] == 20_000
            assert all(
                snap[f'engine_shard_flushes_total{{shard="{s}"}}'] > 0
                for s in range(4)
            )

    def test_stats_and_registry_share_storage(self):
        with StreamEngine(_cfg(), obs=True) as eng:
            eng.ingest(_keys(1000))
            assert (
                eng.obs.registry.snapshot()["engine_items_ingested_total"]
                == eng.stats.items_ingested
                == 1000
            )

    def test_probe_gauges_refresh(self):
        with StreamEngine(_cfg(), obs=True) as eng:
            eng.ingest(_keys(3 * WINDOW))
            eng.flush()
            eng.update_probe_gauges()
            snap = eng.obs.registry.snapshot()
            for s in range(4):
                assert snap[f'she_fill_ratio{{shard="{s}"}}'] > 0
                assert snap[f'engine_shard_down{{shard="{s}"}}'] == 0
            assert snap["engine_memory_bytes"] == eng.memory_bytes
            assert snap['she_cell_age_le{shard="0",le="1"}'] > 0

    def test_minhash_probes_aggregate_both_sides(self):
        with StreamEngine(_cfg(kind="mh", size=256), obs=True) as eng:
            eng.ingest(_keys(2000, seed=1), side=0)
            eng.ingest(_keys(2000, seed=2), side=1)
            eng.flush()
            eng.update_probe_gauges()
            probes = eng.probe_shards()
            assert all(len(p["frames"]) == 2 for p in probes)
            snap = eng.obs.registry.snapshot()
            # two frames of `size` counters each, fully aged or not
            assert snap['she_occupied_cells{shard="0"}'] <= 2 * 256


class TestSpans:
    def test_serial_flush_chain_shares_a_trace(self):
        with StreamEngine(_cfg(), obs=True) as eng:
            eng.ingest(_keys(5000))
            eng.flush()
            spans = eng.obs.tracer.spans()
            roots = [s for s in spans if s.name == "engine.flush"]
            assert roots
            applies = [s for s in spans if s.name == "shard.apply"]
            root_ids = {r.span_id for r in roots}
            assert applies
            assert all(a.parent_id in root_ids for a in applies)
            assert {s.name for s in spans} >= {"engine.flush", "shard.apply"}

    def test_process_worker_spans_cross_the_rpc_boundary(self):
        with StreamEngine(_cfg(), executor="process", num_workers=2, obs=True) as eng:
            eng.ingest(_keys(5000))
            eng.flush()
            spans = eng.obs.tracer.spans()
            workers = [s for s in spans if s.name == "worker.apply"]
            assert workers, "worker apply spans must ride back on the ack"
            assert all(w.pid != os.getpid() for w in workers)
            roots = {s.span_id for s in spans if s.name == "engine.flush"}
            assert all(w.parent_id in roots for w in workers)
            assert all(w.duration_ms is not None for w in workers)
            # rpc timing histogram observed per op
            snap = eng.obs.registry.snapshot()
            flush_counts = [
                v for k, v in snap.items()
                if k.startswith("rpc_seconds_count") and "flush" in k
            ]
            assert sum(flush_counts) > 0

    def test_query_sync_span_recorded(self):
        with StreamEngine(_cfg(), obs=True) as eng:
            eng.ingest(_keys(1000))
            eng.frequency(int(_keys(1)[0]))
            assert any(
                s.name == "engine.sync" for s in eng.obs.tracer.spans()
            )


class TestChaosMetrics:
    def test_chaos_events_become_counters(self):
        obs = Observability()

        def factory(shards):
            return ChaosExecutor(SerialExecutor(shards), drop_ack_ops={1})

        with StreamEngine(_cfg(num_shards=2), executor=factory, obs=obs) as eng:
            eng.ingest(_keys(600))
            with pytest.raises(Exception):
                eng.flush()
            snap = obs.registry.snapshot()
            assert snap['chaos_events_total{event="drop_ack"}'] == 1
            # the failed shard's failure counter moved too
            failures = [
                v for k, v in snap.items()
                if k.startswith("engine_shard_flush_failures_total")
            ]
            assert sum(failures) >= 1


class TestDisabledPath:
    def test_disabled_engine_pays_no_state(self):
        with StreamEngine(_cfg()) as eng:
            eng.ingest(_keys(5000))
            eng.flush()
            eng.update_probe_gauges()  # no-op, must not raise
            assert not eng.obs.enabled
            assert eng.obs.registry.render() == ""
            assert len(eng.obs.tracer) == 0
            # the stats surface still works (private registry)
            assert eng.stats.items_ingested == 5000
            assert eng.stats_snapshot()["flush_count"] >= 1

    def test_obs_argument_coercion(self):
        obs = Observability()
        with StreamEngine(_cfg(), obs=obs) as eng:
            assert eng.obs is obs
        with pytest.raises(TypeError):
            StreamEngine(_cfg(), obs="yes")

    def test_probe_shards_skips_down_shards(self):
        with StreamEngine(_cfg(num_shards=2), obs=True) as eng:
            eng.ingest(_keys(1000))
            eng.flush()
            eng._down.add(0)
            try:
                probes = eng.probe_shards()
                assert probes[0] is None
                assert probes[1] is not None
            finally:
                eng._down.clear()
