"""Checkpoint atomicity, recovery, periodic policy and pruning."""

import json

import numpy as np
import pytest

from repro.service import (
    Checkpointer,
    EngineConfig,
    StreamEngine,
    latest_checkpoint,
    recover_engine,
    save_checkpoint,
)


def cm_engine(**overrides):
    cfg = EngineConfig(
        "cm",
        window=2048,
        size=1024,
        num_shards=3,
        flush_batch_size=500,
        flush_interval_s=None,
        sketch_kwargs={"seed": 7},
        **overrides,
    )
    return StreamEngine(cfg)


@pytest.fixture
def stream():
    return np.random.default_rng(3).integers(0, 400, size=9000, dtype=np.uint64)


class TestKillAndRecover:
    def test_recovered_engine_matches_pre_kill_snapshot(self, tmp_path, stream):
        """The ISSUE's acceptance test: checkpoint, discard, recover,
        verify queries match the pre-kill answers."""
        eng = cm_engine()
        eng.ingest(stream)
        probes = np.unique(stream)[:300]
        before = eng.frequency_many(probes)
        clock = eng.now()
        save_checkpoint(eng, tmp_path)
        eng.close()
        del eng

        back = recover_engine(tmp_path)
        assert back.now() == clock
        assert np.array_equal(back.frequency_many(probes), before)
        # and it keeps ingesting exactly like an engine that never died
        ref = cm_engine()
        ref.ingest(stream)
        more = np.random.default_rng(4).integers(0, 400, size=2000, dtype=np.uint64)
        back.ingest(more)
        ref.ingest(more)
        assert np.array_equal(back.frequency_many(probes), ref.frequency_many(probes))

    def test_recover_two_stream_engine(self, tmp_path):
        cfg = EngineConfig(
            "mh", window=1024, size=64, num_shards=2,
            flush_batch_size=500, flush_interval_s=None,
            sketch_kwargs={"seed": 5},
        )
        eng = StreamEngine(cfg)
        rng = np.random.default_rng(6)
        eng.ingest(rng.integers(0, 200, size=3000, dtype=np.uint64), side=0)
        eng.ingest(rng.integers(0, 200, size=2500, dtype=np.uint64), side=1)
        sim = eng.similarity()
        save_checkpoint(eng, tmp_path)
        back = recover_engine(tmp_path)
        assert back.now(0) == 3000 and back.now(1) == 2500
        assert back.similarity() == sim

    def test_recover_includes_buffered_items(self, tmp_path):
        """Checkpointing drains the queues first — nothing buffered is lost."""
        eng = cm_engine()
        eng.ingest(np.full(17, 9, dtype=np.uint64))  # below flush threshold
        assert sum(eng.queue_depths()) == 17
        save_checkpoint(eng, tmp_path)
        back = recover_engine(tmp_path)
        assert back.frequency(9) >= 17

    def test_recover_empty_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            recover_engine(tmp_path)

    def test_recover_marks_stats(self, tmp_path, stream):
        eng = cm_engine()
        eng.ingest(stream[:1000])
        save_checkpoint(eng, tmp_path)
        back = recover_engine(tmp_path)
        assert "ckpt-" in back.stats_snapshot()["recovered_from"]


class TestAtomicity:
    def test_torn_checkpoint_is_ignored(self, tmp_path, stream):
        """Recovery skips a newer checkpoint missing shard files or its
        manifest and falls back to the newest complete one."""
        eng = cm_engine()
        eng.ingest(stream)
        good = save_checkpoint(eng, tmp_path)
        probes = np.unique(stream)[:100]
        before = eng.frequency_many(probes)

        # torn attempt #1: manifest never written
        torn1 = tmp_path / "ckpt-00000001"
        torn1.mkdir()
        (torn1 / "shard-00.npz").write_bytes(b"partial")
        # torn attempt #2: manifest present but a shard file missing
        torn2 = tmp_path / "ckpt-00000002"
        torn2.mkdir()
        manifest = json.loads((good / "MANIFEST.json").read_text())
        (torn2 / "MANIFEST.json").write_text(json.dumps(manifest))

        assert latest_checkpoint(tmp_path) == good
        back = recover_engine(tmp_path)
        assert np.array_equal(back.frequency_many(probes), before)

    def test_crash_mid_checkpoint_leaves_no_published_dir(self, tmp_path, stream, monkeypatch):
        eng = cm_engine()
        eng.ingest(stream[:2000])
        calls = {"n": 0}
        real = eng._exec.checkpoint

        def dying(shard_id, path):
            calls["n"] += 1
            if calls["n"] == 2:
                raise OSError("disk full")
            real(shard_id, path)

        monkeypatch.setattr(eng._exec, "checkpoint", dying)
        with pytest.raises(OSError):
            save_checkpoint(eng, tmp_path)
        # nothing published, staging cleaned up
        assert latest_checkpoint(tmp_path) is None
        assert list(tmp_path.iterdir()) == []


class TestPolicy:
    def test_checkpointer_interval_items_and_prune(self, tmp_path, stream):
        eng = cm_engine()
        cp = Checkpointer(eng, tmp_path, interval_items=1000, keep=2)
        for lo in range(0, 9000, 500):
            eng.ingest(stream[lo : lo + 500])
            cp.maybe()
        kept = sorted(p.name for p in tmp_path.iterdir())
        assert len(kept) == 2  # pruned down to keep=2
        assert eng.stats.checkpoint_count >= 4
        assert eng.stats_snapshot()["checkpoint_age_s"] is not None
        back = recover_engine(tmp_path)
        assert back.now() == eng.now()

    def test_checkpointer_interval_seconds(self, tmp_path):
        fake = [0.0]
        cfg = EngineConfig(
            "cm", window=512, size=512, num_shards=2,
            flush_batch_size=10**9, flush_interval_s=None,
            sketch_kwargs={"seed": 7},
        )
        eng = StreamEngine(cfg, clock=lambda: fake[0])
        cp = Checkpointer(eng, tmp_path, interval_s=10.0)
        eng.ingest(np.arange(50, dtype=np.uint64))
        assert cp.maybe() is None
        fake[0] = 11.0
        assert cp.maybe() is not None

    def test_checkpointer_needs_an_interval(self, tmp_path):
        with pytest.raises(ValueError):
            Checkpointer(cm_engine(), tmp_path)
