"""Every arrival is accounted for, across faults and recovery.

The conservation identity the stats layer promises (ISSUE 5)::

    items_ingested == items_flushed + items_buffered
                      + items_shed + items_retained_down

must hold at *every* observable moment — mid-burst, with a shard down,
after shedding, after kill + restart + replay.  These tests walk an
engine through stall, kill and recover sequences (deterministic chaos,
op-indexed) and assert the identity after each step.  ``items_rejected``
(raise/block policy) sits outside the identity by design: rejected
batches never enter the system at all.
"""

import numpy as np
import pytest

from repro.service import (
    ChaosExecutor,
    EngineConfig,
    EngineOverloadedError,
    ProcessExecutor,
    RetryPolicy,
    SerialExecutor,
    ShardError,
    StreamEngine,
    Supervisor,
)
from repro.service.sharding import shard_ids


def cfg(**kw):
    base = dict(
        window=2048, size=1024, num_shards=4,
        flush_batch_size=500, flush_interval_s=None,
        rpc_timeout_s=5.0, sketch_kwargs={"seed": 7},
    )
    base.update(kw)
    return EngineConfig("cm", **base)


def conserved(engine) -> dict:
    snap = engine.stats_snapshot(tick=False)
    lhs = snap["items_ingested"]
    rhs = (
        snap["items_flushed"] + snap["items_buffered"]
        + snap["items_shed"] + snap["items_retained_down"]
    )
    assert lhs == rhs, snap
    return snap


@pytest.fixture
def stream():
    return np.random.default_rng(17).integers(
        0, 1000, size=12_000, dtype=np.uint64
    )


class TestSteadyState:
    def test_identity_holds_every_step_of_a_clean_run(self, stream):
        eng = StreamEngine(cfg())
        for lo in range(0, stream.size, 997):
            eng.ingest(stream[lo:lo + 997])
            conserved(eng)
        eng.flush()
        snap = conserved(eng)
        assert snap["items_flushed"] == stream.size
        assert snap["items_buffered"] == 0

    def test_identity_with_time_trigger_ticks(self, stream):
        t = [0.0]
        eng = StreamEngine(
            cfg(flush_batch_size=10**9, flush_interval_s=1.0),
            clock=lambda: t[0],
        )
        for i, lo in enumerate(range(0, 6000, 500)):
            eng.ingest(stream[lo:lo + 500])
            if i % 3 == 2:
                t[0] += 2.0
                eng.tick()
            conserved(eng)


class TestDownShardRetention:
    def test_identity_across_mark_down_and_recover(self, stream):
        eng = StreamEngine(cfg())
        eng.ingest(stream[:3000])
        conserved(eng)
        eng._down.add(1)  # stalled: its buffer is retained, not flushed
        eng.ingest(stream[3000:6000])
        snap = conserved(eng)
        down_held = snap["items_retained_down"]
        assert down_held > 0
        eng._down.clear()  # recovered: retained items become flushable
        eng.flush()
        snap = conserved(eng)
        assert snap["items_retained_down"] == 0
        assert snap["items_flushed"] == 6000

    @pytest.mark.parametrize("policy", ["shed_oldest", "shed_newest"])
    def test_identity_with_bounded_down_shard(self, stream, policy):
        eng = StreamEngine(cfg(
            max_buffered_items=200, overload_policy=policy,
        ))
        eng._down.add(2)
        for lo in range(0, 9000, 300):
            eng.ingest(stream[lo:lo + 300])
            snap = conserved(eng)
        assert snap["items_shed"] > 0
        eng._down.clear()
        eng.flush()
        snap = conserved(eng)
        assert snap["items_buffered"] == 0 and snap["items_retained_down"] == 0
        # everything admitted either flushed or was shed — nothing vanished
        assert snap["items_ingested"] == snap["items_flushed"] + snap["items_shed"]

    def test_rejected_batches_stay_outside_the_identity(self, stream):
        c = cfg(max_buffered_items=100, overload_policy="raise")
        eng = StreamEngine(c)
        eng._down.add(0)
        hot_pool = np.arange(60_000, dtype=np.uint64)
        hot = hot_pool[shard_ids(hot_pool, 4, c.shard_seed) == 0]
        rejected = 0
        for lo in range(0, 2000, 100):
            try:
                eng.ingest(hot[lo:lo + 100])
            except EngineOverloadedError:
                rejected += 100
            snap = conserved(eng)
        assert rejected > 0
        assert snap["items_rejected"] == rejected
        assert eng.now() == snap["items_ingested"]  # ticks = admitted only


class TestKillAndRecover:
    def test_identity_across_kill_restart_replay(self, tmp_path, stream):
        config = cfg()
        chaos = {}

        def factory(shards):
            chaos["x"] = ChaosExecutor(
                SerialExecutor(shards), kill_worker_after_ops=9
            )
            return chaos["x"]

        eng = StreamEngine(config, executor=factory)
        Supervisor(eng, tmp_path, policy=RetryPolicy(backoff_base_s=0.0))
        for lo in range(0, stream.size, 1200):
            eng.ingest(stream[lo:lo + 1200])
            conserved(eng)
        assert chaos["x"].kills, "chaos never fired"
        assert eng.stats.worker_restarts >= 1
        eng.flush()
        snap = conserved(eng)
        # replayed items are not double counted as ingested
        assert snap["items_ingested"] == stream.size
        assert snap["items_flushed"] == stream.size

    def test_identity_across_unrecovered_kill(self, stream):
        config = cfg()
        chaos = {}

        def factory(shards):
            chaos["x"] = ChaosExecutor(
                SerialExecutor(shards), kill_worker_after_ops=9
            )
            return chaos["x"]

        eng = StreamEngine(config, executor=factory)  # no supervisor
        for lo in range(0, stream.size, 1200):
            try:
                eng.ingest(stream[lo:lo + 1200])
            except ShardError:
                pass  # the kill surfaces once; buffers retain the batch
            conserved(eng)
        assert chaos["x"].kills
        snap = conserved(eng)
        assert eng.down_shards != ()
        assert snap["items_retained_down"] > 0

    def test_identity_across_process_kill_with_supervision(
        self, tmp_path, stream
    ):
        config = cfg(num_shards=2)
        chaos = {}

        def factory(shards):
            chaos["x"] = ChaosExecutor(
                ProcessExecutor(shards, num_workers=2, timeout_s=5.0),
                kill_worker_after_ops=5,
            )
            return chaos["x"]

        eng = StreamEngine(config, executor=factory)
        Supervisor(eng, tmp_path, policy=RetryPolicy(backoff_base_s=0.0))
        try:
            for lo in range(0, 6000, 1100):
                eng.ingest(stream[lo:lo + 1100])
                conserved(eng)
            assert chaos["x"].kills
            eng.flush()
            snap = conserved(eng)
            assert snap["items_flushed"] == snap["items_ingested"]
        finally:
            eng.close()
