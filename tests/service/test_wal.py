"""WAL unit surface: format, fsync policies, tail recovery, corruption.

The end-to-end crash→recover property tests live in
``test_crash_recovery.py``; this file pins the log itself — byte
format, rotation, the durable horizon under each fsync policy, and the
torn-tail / mid-log-corruption distinction the recovery path builds on.
"""

import json
import os

import numpy as np
import pytest

from repro.service import (
    EngineConfig,
    StreamEngine,
    WalCorruptionError,
    WalPosition,
    WalWriteError,
    WriteAheadLog,
    flip_bit,
    inspect_wal,
    iter_records,
    tear_tail,
    verify_wal,
)
from repro.tools.__main__ import main as tools_main


def keys_of(n, seed=0):
    return np.random.default_rng(seed).integers(0, 1 << 40, size=n, dtype=np.uint64)


class TestRoundTrip:
    def test_append_then_iter_yields_the_same_records(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        batches = [(0, keys_of(100, 1)), (1, keys_of(57, 2)), (0, keys_of(1, 3))]
        for side, ks in batches:
            wal.append(side, ks)
        wal.close()
        got = list(iter_records(tmp_path))
        assert len(got) == 3
        for (pos, side, ks), (want_side, want_ks) in zip(got, batches):
            assert side == want_side
            assert np.array_equal(ks, want_ks)
        # positions are strictly increasing and end at the write position
        positions = [pos for pos, _s, _k in got]
        assert positions == sorted(positions)

    def test_iter_from_position_yields_the_suffix(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(0, keys_of(10, 1))
        mid = wal.position()
        wal.append(0, keys_of(20, 2))
        wal.append(0, keys_of(30, 3))
        wal.close()
        got = list(iter_records(tmp_path, start=mid))
        assert [k.size for _p, _s, k in got] == [20, 30]

    def test_empty_log_iterates_nothing(self, tmp_path):
        WriteAheadLog(tmp_path).close()
        assert list(iter_records(tmp_path)) == []

    def test_reopen_continues_the_log(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(0, keys_of(5, 1))
        wal.close()
        wal2 = WriteAheadLog(tmp_path)
        wal2.append(0, keys_of(7, 2))
        wal2.close()
        assert [k.size for _p, _s, k in iter_records(tmp_path)] == [5, 7]


class TestRotation:
    def test_segments_rotate_and_iterate_in_order(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_max_bytes=600)
        for i in range(10):
            wal.append(0, keys_of(30, i))
        assert wal.segment_count() > 1
        wal.close()
        sizes = [k.size for _p, _s, k in iter_records(tmp_path)]
        assert sizes == [30] * 10

    def test_prune_to_keeps_the_needed_suffix(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_max_bytes=600)
        for i in range(6):
            wal.append(0, keys_of(30, i))
        cut = wal.position()
        for i in range(6, 10):
            wal.append(0, keys_of(30, i))
        deleted = wal.prune_to(cut)
        assert deleted  # old segments really went away
        # the suffix from the cut is fully replayable
        assert [k.size for _p, _s, k in iter_records(tmp_path, start=cut)] == [30] * 4
        wal.close()

    def test_iter_from_pruned_position_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_max_bytes=600)
        start = wal.position()
        for i in range(10):
            wal.append(0, keys_of(30, i))
        wal.prune_to(wal.position())
        wal.close()
        with pytest.raises(WalCorruptionError, match="pruned"):
            list(iter_records(tmp_path, start=start))

    def test_missing_middle_segment_is_a_gap(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_max_bytes=600)
        for i in range(10):
            wal.append(0, keys_of(30, i))
        wal.close()
        segments = sorted(tmp_path.glob("wal-*.log"))
        assert len(segments) >= 3
        segments[1].unlink()
        with pytest.raises(WalCorruptionError, match="gap"):
            list(iter_records(tmp_path))


class TestFsyncPolicies:
    def test_always_keeps_durable_at_position(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="always")
        for i in range(3):
            wal.append(0, keys_of(10, i))
            assert wal.durable_position() == wal.position()
            assert wal.pending_items == 0
        assert wal.fsyncs >= 3
        wal.close()

    def test_off_never_advances_durable_until_sync(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off")
        base = wal.durable_position()
        wal.append(0, keys_of(10, 1))
        wal.append(0, keys_of(10, 2))
        assert wal.durable_position() == base
        assert wal.pending_items == 20
        wal.sync()
        assert wal.durable_position() == wal.position()
        assert wal.pending_items == 0
        wal.close()

    def test_interval_syncs_once_the_clock_passes(self, tmp_path):
        fake = [0.0]
        wal = WriteAheadLog(
            tmp_path, fsync="interval", fsync_interval_s=5.0,
            clock=lambda: fake[0],
        )
        base = wal.durable_position()
        wal.append(0, keys_of(10, 1))
        assert wal.durable_position() == base  # interval not yet up
        fake[0] = 6.0
        wal.append(0, keys_of(10, 2))
        assert wal.durable_position() == wal.position()
        wal.close()

    def test_simulate_crash_drops_exactly_the_unsynced_tail(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off")
        wal.append(0, keys_of(10, 1))
        wal.sync()
        wal.append(0, keys_of(99, 2))  # never synced
        wal.simulate_crash()
        assert [k.size for _p, _s, k in iter_records(tmp_path)] == [10]

    def test_simulate_crash_loses_nothing_under_always(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="always")
        wal.append(0, keys_of(10, 1))
        wal.append(0, keys_of(20, 2))
        wal.simulate_crash()
        assert [k.size for _p, _s, k in iter_records(tmp_path)] == [10, 20]

    def test_fsync_failure_raises_typed_and_records_error(self, tmp_path, monkeypatch):
        wal = WriteAheadLog(tmp_path, fsync="always")
        real_fsync = os.fsync

        def broken(fd):
            raise OSError("device error")

        monkeypatch.setattr(os, "fsync", broken)
        with pytest.raises(WalWriteError):
            wal.append(0, keys_of(10, 1))
        assert wal.last_error is not None
        monkeypatch.setattr(os, "fsync", real_fsync)
        wal.sync()
        assert wal.last_error is None  # a later sync clears the condition
        wal.close()

    def test_append_after_close_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.close()
        with pytest.raises(WalWriteError):
            wal.append(0, keys_of(1))


class TestTornAndCorrupt:
    def test_torn_tail_is_truncated_on_open(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(0, keys_of(10, 1))
        wal.append(0, keys_of(10, 2))
        wal.close()
        tear_tail(tmp_path, 5)  # partial final record
        wal2 = WriteAheadLog(tmp_path)
        assert wal2.torn_bytes_dropped > 0
        assert [k.size for _p, _s, k in iter_records(tmp_path)] == [10]
        # and the log accepts appends where the tear was
        wal2.append(0, keys_of(3, 3))
        wal2.close()
        assert [k.size for _p, _s, k in iter_records(tmp_path)] == [10, 3]

    def test_iter_records_tolerates_torn_tail(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(0, keys_of(10, 1))
        wal.append(0, keys_of(10, 2))
        wal.close()
        tear_tail(tmp_path, 5)
        assert [k.size for _p, _s, k in iter_records(tmp_path)] == [10]

    def test_midlog_bitflip_raises_on_open(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(0, keys_of(10, 1))
        wal.append(0, keys_of(10, 2))
        wal.close()
        seg = sorted(tmp_path.glob("wal-*.log"))[0]
        flip_bit(seg, 40)  # inside the first record's payload
        with pytest.raises(WalCorruptionError, match="bit rot"):
            WriteAheadLog(tmp_path)
        with pytest.raises(WalCorruptionError):
            list(iter_records(tmp_path))
        with pytest.raises(WalCorruptionError):
            verify_wal(tmp_path)

    def test_bitflip_in_nonfinal_segment_raises_on_read(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_max_bytes=600)
        for i in range(10):
            wal.append(0, keys_of(30, i))
        wal.close()
        seg = sorted(tmp_path.glob("wal-*.log"))[0]
        flip_bit(seg, 40)
        with pytest.raises(WalCorruptionError):
            list(iter_records(tmp_path))

    def test_final_record_bitflip_is_truncated_as_torn(self, tmp_path):
        # a flip in the very last record is indistinguishable from a
        # torn append — tail recovery truncates it (documented loss)
        wal = WriteAheadLog(tmp_path)
        wal.append(0, keys_of(10, 1))
        wal.append(0, keys_of(10, 2))
        wal.close()
        seg = sorted(tmp_path.glob("wal-*.log"))[0]
        flip_bit(seg, -4)
        wal2 = WriteAheadLog(tmp_path)
        assert wal2.torn_bytes_dropped > 0
        wal2.close()
        assert [k.size for _p, _s, k in iter_records(tmp_path)] == [10]

    def test_bad_segment_header_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(0, keys_of(5, 1))
        wal.close()
        seg = sorted(tmp_path.glob("wal-*.log"))[0]
        flip_bit(seg, 0)
        with pytest.raises(WalCorruptionError, match="header"):
            list(iter_records(tmp_path))


class TestVerifyInspect:
    def test_verify_summary(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_max_bytes=600)
        for i in range(6):
            wal.append(i % 2, keys_of(30, i))
        wal.close()
        summary = verify_wal(tmp_path)
        assert summary["records"] == 6
        assert summary["items"] == 180
        assert summary["segments"] == wal.segment_count()
        assert summary["torn_tail_bytes"] == 0

    def test_inspect_reports_torn_and_corrupt_segments(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_max_bytes=600)
        for i in range(10):
            wal.append(0, keys_of(30, i))
        wal.close()
        segments = sorted(tmp_path.glob("wal-*.log"))
        flip_bit(segments[0], 40)
        tear_tail(tmp_path, 5)
        report = inspect_wal(tmp_path)
        assert report["ok"] is False
        statuses = {e["segment"]: e["status"] for e in report["segments"]}
        assert statuses[1] == "corrupt"
        assert statuses[max(statuses)] == "torn-tail"


class TestEngineIntegration:
    def cfg(self, tmp_path, **over):
        kw = dict(
            window=2048, size=1024, num_shards=3,
            flush_batch_size=500, flush_interval_s=None,
            wal_dir=str(tmp_path / "wal"), sketch_kwargs={"seed": 7},
        )
        kw.update(over)
        return EngineConfig("cm", **kw)

    def test_config_validation(self, tmp_path):
        with pytest.raises(ValueError, match="wal_fsync"):
            self.cfg(tmp_path, wal_fsync="sometimes")
        with pytest.raises(ValueError, match="wal_fsync_interval_s"):
            self.cfg(tmp_path, wal_fsync_interval_s=0)
        with pytest.raises(ValueError, match="wal_segment_bytes"):
            self.cfg(tmp_path, wal_segment_bytes=-1)
        # a Path wal_dir is coerced so the config JSON round-trips
        cfg = self.cfg(tmp_path)
        assert EngineConfig.from_json(cfg.to_json()) == cfg

    def test_admitted_batches_are_logged(self, tmp_path):
        eng = StreamEngine(self.cfg(tmp_path))
        eng.ingest(keys_of(100, 1))
        eng.ingest(keys_of(50, 2))
        eng.close()
        assert sum(
            k.size for _p, _s, k in iter_records(tmp_path / "wal")
        ) == 150

    def test_rejected_batches_never_reach_the_log(self, tmp_path):
        eng = StreamEngine(
            self.cfg(tmp_path, max_buffered_items=64, overload_policy="raise")
        )
        from repro.service import EngineOverloadedError

        with pytest.raises(EngineOverloadedError):
            eng.ingest(keys_of(5000, 1))
        status = eng.wal_status()
        assert status["appends_total"] == 0
        assert eng.now() == 0
        eng.close()
        assert list(iter_records(tmp_path / "wal")) == []

    def test_shed_newest_logs_only_the_admitted_subset(self, tmp_path):
        eng = StreamEngine(
            self.cfg(
                tmp_path,
                max_buffered_total=128,
                overload_policy="shed_newest",
                flush_batch_size=10**9,  # nothing drains: forces shedding
            )
        )
        eng.ingest(keys_of(5000, 1))
        admitted = eng.now()
        assert admitted < 5000
        eng.close()
        logged = sum(k.size for _p, _s, k in iter_records(tmp_path / "wal"))
        assert logged == admitted

    def test_wal_status_shape(self, tmp_path):
        eng = StreamEngine(self.cfg(tmp_path))
        eng.ingest(keys_of(10, 1))
        status = eng.wal_status()
        assert status["enabled"] is True
        assert status["fsync"] == "always"
        assert status["lag_items"] == 0
        assert status["last_error"] is None
        assert status["appends_total"] == 1
        eng.close()
        assert StreamEngine(
            EngineConfig("cm", window=64, size=64)
        ).wal_status() == {"enabled": False}

    def test_wal_metrics_exported(self, tmp_path):
        eng = StreamEngine(self.cfg(tmp_path), obs=True)
        eng.ingest(keys_of(10, 1))
        text = eng.obs.registry.render()
        for name in (
            "engine_wal_appends_total",
            "engine_wal_fsyncs_total",
            "engine_wal_bytes",
            "engine_wal_lag_items",
        ):
            assert name in text
        eng.close()


class TestCli:
    def test_wal_inspect_and_verify(self, tmp_path, capsys):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.append(0, keys_of(10, 1))
        wal.close()
        assert tools_main(["wal", "inspect", str(tmp_path / "wal")]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True and report["segments"][0]["records"] == 1
        assert tools_main(["wal", "verify", str(tmp_path / "wal")]) == 0
        assert json.loads(capsys.readouterr().out)["wal"]["records"] == 1

    def test_wal_verify_fails_on_corruption(self, tmp_path, capsys):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.append(0, keys_of(10, 1))
        wal.append(0, keys_of(10, 2))
        wal.close()
        flip_bit(sorted((tmp_path / "wal").glob("wal-*.log"))[0], 40)
        assert tools_main(["wal", "verify", str(tmp_path / "wal")]) == 1

    def test_wal_verify_checkpoints(self, tmp_path, capsys):
        from repro.service import save_checkpoint

        eng = StreamEngine(EngineConfig(
            "cm", window=512, size=256, num_shards=2,
            flush_batch_size=100, flush_interval_s=None,
            wal_dir=str(tmp_path / "wal"), sketch_kwargs={"seed": 3},
        ))
        eng.ingest(keys_of(300, 1))
        ckpt = save_checkpoint(eng, tmp_path / "ckpt")
        eng.close()
        argv = ["wal", "verify", str(tmp_path / "wal"),
                "--checkpoints", str(tmp_path / "ckpt")]
        assert tools_main(argv) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["checkpoints"][0]["status"] == "ok"
        # flip a bit in a shard file: verify must fail loudly
        flip_bit(ckpt / "shard-00.npz", 100)
        assert tools_main(argv) == 1


class TestWalPosition:
    def test_ordering_across_segments(self):
        assert WalPosition(1, 500) < WalPosition(2, 16)
        assert WalPosition(2, 16) < WalPosition(2, 17)
