"""Crash→recover acceptance: the ISSUE's durability criteria.

A simulated SIGKILL (``CrashHarness``) at ≥ 20 distinct op indices
followed by ``recover_engine`` must yield shard state *bit-identical*
to a crash-free run under ``fsync=always``, lose at most the un-fsynced
tail otherwise, and every bit-flip in a checkpoint shard file or
non-tail WAL record must surface as a typed error — never be silently
ingested.  The hypothesis property test extends the same invariant to
every registered sketch kind and a random kill point.
"""

import json
import os
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.registry import descriptor_of
from repro.obs import MetricsExporter
from repro.service import (
    ChaosExecutor,
    CheckpointCorruptionError,
    CrashHarness,
    EngineConfig,
    SerialExecutor,
    SimulatedCrash,
    StreamEngine,
    Supervisor,
    RetryPolicy,
    WalCorruptionError,
    WalWriteError,
    flip_bit,
    latest_checkpoint,
    prune_checkpoints,
    recover_engine,
    save_checkpoint,
    simulate_process_kill,
)

KINDS = {
    "cm": dict(window=2048, size=1024, num_shards=3,
               sketch_kwargs={"seed": 7}),
    "bf": dict(window=2048, size=4096, num_shards=4,
               sketch_kwargs={"seed": 3, "num_hashes": 4}),
    "bm": dict(window=256, size=512, num_shards=2,
               sketch_kwargs={"seed": 2}),
    "hll": dict(window=2048, size=256, num_shards=4,
                sketch_kwargs={"seed": 5}),
    "mh": dict(window=1024, size=64, num_shards=2,
               sketch_kwargs={"seed": 5}),
}
TWO_STREAM = {"mh"}
N_OPS = 24  # parametrised kills cover indices 1..25 (> the 20 required)


def build_engine(kind, root, **over):
    kw = dict(KINDS[kind])
    kw.update(flush_batch_size=500, flush_interval_s=None,
              wal_dir=str(Path(root) / "wal"))
    kw.update(over)
    return StreamEngine(EngineConfig(kind, **kw))


def script(kind, n_ops=N_OPS, chunk=300, seed=11):
    """Deterministic op list: ingests with two mid-stream checkpoints."""
    rng = np.random.default_rng(seed)
    ops = []
    for i in range(n_ops):
        if i in (8, 17):
            ops.append(("checkpoint",))
        else:
            keys = rng.integers(0, 800, size=chunk, dtype=np.uint64)
            side = (i % 2) if kind in TWO_STREAM else None
            ops.append(("ingest", keys, side))
    return ops


def run_ops(harness, ops, ckpt_dir):
    for op in ops:
        if op[0] == "checkpoint":
            harness.checkpoint(ckpt_dir)
        else:
            harness.ingest(op[1], side=op[2])


def state_of(engine):
    """Canonical bit-level state: every shard's (meta, arrays)."""
    out = []
    for snap in engine.snapshots():
        meta, arrays = descriptor_of(snap).sketch_state(snap)
        out.append((json.dumps(meta, sort_keys=True, default=repr),
                    {k: np.asarray(v) for k, v in arrays.items()}))
    return out


def assert_same_state(got, want):
    assert len(got) == len(want)
    for (gm, ga), (wm, wa) in zip(got, want):
        assert gm == wm
        assert sorted(ga) == sorted(wa)
        for k in wa:
            assert np.array_equal(ga[k], wa[k]), k


def reference_state(kind, root, ops):
    """Bit-level state of a crash-free run over exactly ``ops``."""
    ref_root = Path(root) / "ref"
    ref_root.mkdir(exist_ok=True)
    eng = build_engine(kind, ref_root)
    run_ops(CrashHarness(eng), ops, ref_root / "ckpt")
    state = state_of(eng)
    clock = eng.now()
    eng.close()
    return state, clock


def crash_then_recover(kind, root, ops, crash_at, *, fsync="always"):
    """Kill before op ``crash_at`` executes, then recover from disk."""
    crash_root = Path(root) / "crash"
    crash_root.mkdir(exist_ok=True)
    eng = build_engine(kind, crash_root, wal_fsync=fsync)
    # op-0 baseline: recovery needs a manifest to carry the config
    save_checkpoint(eng, crash_root / "ckpt")
    harness = CrashHarness(eng, crash_at_op=crash_at)
    with pytest.raises(SimulatedCrash):
        run_ops(harness, ops, crash_root / "ckpt")
        harness.kill()  # crash_at beyond the script: kill at the end
    return recover_engine(crash_root / "ckpt")


class TestKillAnywhereBitIdentical:
    """fsync=always: nothing admitted is ever lost."""

    @pytest.mark.parametrize("crash_at", range(1, 26))
    def test_cm_recovery_is_bit_identical(self, tmp_path, crash_at):
        ops = script("cm")
        want, clock = reference_state("cm", tmp_path, ops[: crash_at - 1])
        rec = crash_then_recover("cm", tmp_path, ops, crash_at)
        try:
            assert rec.now() == clock
            assert_same_state(state_of(rec), want)
        finally:
            rec.close()

    @settings(max_examples=25, deadline=None)
    @given(kind=st.sampled_from(sorted(KINDS)),
           crash_at=st.integers(min_value=1, max_value=N_OPS + 1))
    def test_any_kind_any_kill_point(self, kind, crash_at):
        with tempfile.TemporaryDirectory() as td:
            ops = script(kind)
            want, clock = reference_state(kind, td, ops[: crash_at - 1])
            rec = crash_then_recover(kind, td, ops, crash_at)
            try:
                assert rec.now() == clock
                assert_same_state(state_of(rec), want)
            finally:
                rec.close()

    def test_recovered_engine_reports_replayed_items(self, tmp_path):
        ops = script("cm")
        rec = crash_then_recover("cm", tmp_path, ops, len(ops) + 1)
        try:
            status = rec.wal_status()
            # everything after the last mid-stream checkpoint replays
            assert status["replayed_items"] > 0
            assert rec.now() == sum(
                op[1].size for op in ops if op[0] == "ingest"
            )
        finally:
            rec.close()


class TestWeakerFsyncLosesAtMostTheTail:
    """fsync=off/interval: recovery lands on a record-aligned prefix."""

    @pytest.mark.parametrize("fsync", ["off", "interval"])
    def test_recovery_is_a_clean_prefix(self, tmp_path, fsync):
        crash_at = 22
        ops = script("cm")
        ingests = [op for op in ops[: crash_at - 1] if op[0] == "ingest"]
        rec = crash_then_recover("cm", tmp_path, ops, crash_at, fsync=fsync)
        try:
            recovered = rec.now()
            prefix_sums = np.cumsum(
                [0] + [op[1].size for op in ingests]
            ).tolist()
            # record-aligned: exactly some prefix of the admitted chunks
            assert recovered in prefix_sums
            # checkpoints fsync the log, so at least the suffix base holds
            n_at_last_ckpt = sum(
                op[1].size for op in ops[:17] if op[0] == "ingest"
            )
            assert recovered >= n_at_last_ckpt
            # and the recovered state is bit-identical to a crash-free
            # run over exactly that prefix — never a torn mid-chunk mix
            n_chunks = prefix_sums.index(recovered)
            want, _ = reference_state("cm", tmp_path, ingests[:n_chunks])
            assert_same_state(state_of(rec), want)
        finally:
            rec.close()


class TestCorruptionIsNeverSilent:
    def seeded(self, tmp_path, n_ckpts=2, **over):
        eng = build_engine("cm", tmp_path, **over)
        rng = np.random.default_rng(1)
        paths = []
        for _ in range(n_ckpts):
            eng.ingest(rng.integers(0, 800, size=500, dtype=np.uint64))
            paths.append(save_checkpoint(eng, tmp_path / "ckpt"))
        return eng, paths

    def test_shard_bitflip_falls_back_to_older_checkpoint(self, tmp_path):
        eng, paths = self.seeded(tmp_path)
        total = eng.now()
        simulate_process_kill(eng)
        flip_bit(paths[-1] / "shard-00.npz", 100)
        rec = recover_engine(tmp_path / "ckpt")
        try:
            # fell back to the older checkpoint, then replayed the WAL
            # suffix from its position: nothing lost, nothing corrupt
            assert rec.stats.recovered_from == str(paths[0])
            assert rec.now() == total
        finally:
            rec.close()

    def test_sole_corrupt_checkpoint_raises_typed(self, tmp_path):
        eng, paths = self.seeded(tmp_path, n_ckpts=1)
        simulate_process_kill(eng)
        flip_bit(paths[0] / "shard-00.npz", 100)
        with pytest.raises(CheckpointCorruptionError):
            recover_engine(tmp_path / "ckpt")

    def test_manifest_bitflip_is_detected(self, tmp_path):
        eng, paths = self.seeded(tmp_path, n_ckpts=1)
        simulate_process_kill(eng)
        flip_bit(paths[0] / "MANIFEST.json", 200)
        with pytest.raises(CheckpointCorruptionError):
            recover_engine(tmp_path / "ckpt")

    def test_nontail_wal_bitflip_raises_during_recovery(self, tmp_path):
        # tiny segments force a multi-segment log so the flip lands in
        # a fully-sealed (non-final) segment — unambiguous bit rot
        eng = build_engine("cm", tmp_path, wal_segment_bytes=2048)
        save_checkpoint(eng, tmp_path / "ckpt")
        rng = np.random.default_rng(1)
        for _ in range(10):
            eng.ingest(rng.integers(0, 800, size=100, dtype=np.uint64))
        simulate_process_kill(eng)
        segments = sorted((tmp_path / "wal").glob("wal-*.log"))
        assert len(segments) >= 2
        flip_bit(segments[0], 40)
        with pytest.raises(WalCorruptionError):
            recover_engine(tmp_path / "ckpt")


class TestCheckpointHygiene:
    def test_truncated_shard_file_skips_the_checkpoint(self, tmp_path):
        eng, paths = TestCorruptionIsNeverSilent().seeded(tmp_path)
        eng.close()
        shard = paths[-1] / "shard-00.npz"
        shard.write_bytes(shard.read_bytes()[:-10])
        # size mismatch vs the manifest's shard_meta → not complete
        assert latest_checkpoint(tmp_path / "ckpt") == paths[0]

    def test_prune_unlinks_manifest_before_rmtree(self, tmp_path, monkeypatch):
        eng, paths = TestCorruptionIsNeverSilent().seeded(tmp_path, n_ckpts=3)
        eng.close()
        import shutil as _shutil

        real_rmtree = _shutil.rmtree
        manifest_present = []

        def spying_rmtree(path, *args, **kwargs):
            manifest_present.append((Path(path) / "MANIFEST.json").exists())
            return real_rmtree(path, *args, **kwargs)

        monkeypatch.setattr(
            "repro.service.checkpoint.shutil.rmtree", spying_rmtree
        )
        prune_checkpoints(tmp_path / "ckpt", keep=1)
        # the manifest must already be gone when the dir is torn down:
        # a crash mid-prune can never leave a complete-looking ghost
        assert manifest_present and not any(manifest_present)
        assert latest_checkpoint(tmp_path / "ckpt") == paths[-1]


class TestHealthzDurability:
    def test_degraded_while_wal_fsync_errors(self, tmp_path, monkeypatch):
        eng = build_engine("cm", tmp_path)
        exporter = MetricsExporter(eng)  # _health() needs no server
        code, _body = exporter._health()
        assert code == 200
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (_ for _ in ()).throw(OSError("disk gone"))
        )
        with pytest.raises(WalWriteError):
            eng.ingest(np.arange(10, dtype=np.uint64))
        code, body = exporter._health()
        assert code == 503
        assert body["status"] == "degraded"
        assert "disk gone" in body["wal"]["last_error"]
        # the disk comes back: one clean sync restores service
        monkeypatch.setattr(os, "fsync", real_fsync)
        eng._wal.sync()
        code, body = exporter._health()
        assert code == 200 and body["status"] == "ok"
        eng.close()


class TestSupervisorWalFallback:
    def test_overflowed_replay_buffer_recovers_from_wal(self, tmp_path):
        stream = np.random.default_rng(5).integers(
            0, 500, size=8_000, dtype=np.uint64
        )
        config = EngineConfig(
            "cm", window=2048, size=1024, num_shards=4,
            flush_batch_size=700, flush_interval_s=None,
            sketch_kwargs={"seed": 7}, wal_dir=str(tmp_path / "wal"),
        )
        chaos = {}

        def factory(shards):
            chaos["x"] = ChaosExecutor(
                SerialExecutor(shards), kill_worker_after_ops=15
            )
            return chaos["x"]

        eng = StreamEngine(config, executor=factory)
        # replay_limit_items far below the stream: without the WAL this
        # exact setup is test_replay_overflow_is_unrecoverable
        sup = Supervisor(eng, tmp_path / "sup", replay_limit_items=100,
                         policy=RetryPolicy(backoff_base_s=0.0))
        try:
            for lo in range(0, stream.size, 1500):
                eng.ingest(stream[lo:lo + 1500])
            assert chaos["x"].kills, "chaos never fired"
            assert sup.replay.overflowed
            assert sup.snapshot()["wal_fallback_available"]
            assert eng.down_shards == ()
            ref_cfg = EngineConfig(
                "cm", window=2048, size=1024, num_shards=4,
                flush_batch_size=700, flush_interval_s=None,
                sketch_kwargs={"seed": 7},
            )
            ref = StreamEngine(ref_cfg)
            ref.ingest(stream)
            probes = np.unique(stream)[:200]
            assert np.array_equal(eng.frequency_many(probes),
                                  ref.frequency_many(probes))
            ref.close()
        finally:
            eng.close()
