"""Multiprocessing executor: bit-equivalence with serial, lifecycle."""

import numpy as np
import pytest

from repro.core import SheCountMin
from repro.service import EngineConfig, ProcessExecutor, StreamEngine, save_checkpoint, recover_engine


@pytest.fixture
def stream():
    return np.random.default_rng(11).integers(0, 600, size=15_000, dtype=np.uint64)


def cfg(kind="cm", **kw):
    base = dict(
        window=2048, size=1024, num_shards=4,
        flush_batch_size=900, flush_interval_s=None,
        sketch_kwargs={"seed": 7},
    )
    base.update(kw)
    return EngineConfig(kind, **base)


class TestProcessEquivalence:
    def test_frequency_identical_to_serial(self, stream):
        with StreamEngine(cfg(), executor="process", num_workers=2) as proc:
            serial = StreamEngine(cfg())
            for lo in range(0, stream.size, 4096):
                chunk = stream[lo : lo + 4096]
                proc.ingest(chunk)
                serial.ingest(chunk)
            probes = np.unique(stream)[:200]
            assert np.array_equal(
                proc.frequency_many(probes), serial.frequency_many(probes)
            )

    def test_merged_membership_identical_to_serial(self, stream):
        with StreamEngine(cfg("bf", size=8192, sketch_kwargs={"seed": 1}),
                          executor="process") as proc:
            serial = StreamEngine(cfg("bf", size=8192, sketch_kwargs={"seed": 1}))
            proc.ingest(stream)
            serial.ingest(stream)
            assert np.array_equal(
                proc.merged().frame.cells, serial.merged().frame.cells
            )

    def test_checkpoint_and_recover_through_workers(self, tmp_path, stream):
        with StreamEngine(cfg(), executor="process", num_workers=3) as proc:
            proc.ingest(stream)
            probes = np.unique(stream)[:100]
            before = proc.frequency_many(probes)
            save_checkpoint(proc, tmp_path)
        back = recover_engine(tmp_path, executor="process", num_workers=2)
        try:
            assert np.array_equal(back.frequency_many(probes), before)
        finally:
            back.close()


class TestLifecycle:
    def test_worker_error_propagates(self):
        shards = [SheCountMin(256, 512, seed=7) for _ in range(2)]
        ex = ProcessExecutor(shards, num_workers=2)
        try:
            keys = np.arange(10, dtype=np.uint64)
            ex.flush(0, keys, np.arange(10, dtype=np.int64))
            with pytest.raises(RuntimeError, match="shard worker failed"):
                # rewinding times is invalid -> the worker reports it
                ex.flush(0, keys, np.arange(10, dtype=np.int64))
        finally:
            ex.close()

    def test_close_is_idempotent(self):
        ex = ProcessExecutor([SheCountMin(256, 512, seed=7)])
        ex.close()
        ex.close()

    def test_workers_capped_by_shards(self):
        ex = ProcessExecutor([SheCountMin(256, 512, seed=7)], num_workers=8)
        try:
            assert ex.num_workers == 1
        finally:
            ex.close()
