"""Multiprocessing executor: bit-equivalence with serial, lifecycle."""

import os
import signal

import numpy as np
import pytest

from repro.core import SheCountMin
from repro.service import (
    EngineConfig,
    ProcessExecutor,
    ShardDeadError,
    ShardFailedError,
    StreamEngine,
    recover_engine,
    save_checkpoint,
)


@pytest.fixture
def stream():
    return np.random.default_rng(11).integers(0, 600, size=15_000, dtype=np.uint64)


def cfg(kind="cm", **kw):
    base = dict(
        window=2048, size=1024, num_shards=4,
        flush_batch_size=900, flush_interval_s=None,
        sketch_kwargs={"seed": 7},
    )
    base.update(kw)
    return EngineConfig(kind, **base)


class TestProcessEquivalence:
    def test_frequency_identical_to_serial(self, stream):
        with StreamEngine(cfg(), executor="process", num_workers=2) as proc:
            serial = StreamEngine(cfg())
            for lo in range(0, stream.size, 4096):
                chunk = stream[lo : lo + 4096]
                proc.ingest(chunk)
                serial.ingest(chunk)
            probes = np.unique(stream)[:200]
            assert np.array_equal(
                proc.frequency_many(probes), serial.frequency_many(probes)
            )

    def test_merged_membership_identical_to_serial(self, stream):
        with StreamEngine(cfg("bf", size=8192, sketch_kwargs={"seed": 1}),
                          executor="process") as proc:
            serial = StreamEngine(cfg("bf", size=8192, sketch_kwargs={"seed": 1}))
            proc.ingest(stream)
            serial.ingest(stream)
            assert np.array_equal(
                proc.merged().frame.cells, serial.merged().frame.cells
            )

    def test_checkpoint_and_recover_through_workers(self, tmp_path, stream):
        with StreamEngine(cfg(), executor="process", num_workers=3) as proc:
            proc.ingest(stream)
            probes = np.unique(stream)[:100]
            before = proc.frequency_many(probes)
            save_checkpoint(proc, tmp_path)
        back = recover_engine(tmp_path, executor="process", num_workers=2)
        try:
            assert np.array_equal(back.frequency_many(probes), before)
        finally:
            back.close()


class TestLifecycle:
    def test_worker_error_propagates(self):
        shards = [SheCountMin(256, 512, seed=7) for _ in range(2)]
        ex = ProcessExecutor(shards, num_workers=2)
        try:
            keys = np.arange(10, dtype=np.uint64)
            ex.flush(0, keys, np.arange(10, dtype=np.int64))
            with pytest.raises(RuntimeError, match="shard worker failed"):
                # rewinding times is invalid -> the worker reports it
                ex.flush(0, keys, np.arange(10, dtype=np.int64))
        finally:
            ex.close()

    def test_close_is_idempotent(self):
        ex = ProcessExecutor([SheCountMin(256, 512, seed=7)])
        ex.close()
        ex.close()

    def test_workers_capped_by_shards(self):
        ex = ProcessExecutor([SheCountMin(256, 512, seed=7)], num_workers=8)
        try:
            assert ex.num_workers == 1
        finally:
            ex.close()

    def test_worker_error_is_typed_and_attributed(self):
        ex = ProcessExecutor([SheCountMin(256, 512, seed=7) for _ in range(2)],
                             num_workers=2)
        try:
            keys = np.arange(10, dtype=np.uint64)
            ex.flush(1, keys, np.arange(10, dtype=np.int64))
            with pytest.raises(ShardFailedError) as exc_info:
                ex.flush(1, keys, np.arange(10, dtype=np.int64))
            assert exc_info.value.shard_ids == (1,)
            assert exc_info.value.worker_id == 1
            # a data error left the worker alive and trustworthy
            assert ex.ping(1)
        finally:
            ex.close()


class TestFailureSurface:
    def make(self, num_workers=2, **kw):
        shards = [SheCountMin(256, 512, seed=7) for _ in range(4)]
        return ProcessExecutor(shards, num_workers=num_workers, **kw)

    def test_topology_helpers(self):
        ex = self.make(num_workers=2)
        try:
            assert ex.worker_of(0) == 0 and ex.worker_of(3) == 1
            assert ex.shards_of(0) == [0, 2] and ex.shards_of(1) == [1, 3]
            assert all(ex.is_worker_alive(w) for w in range(2))
        finally:
            ex.close()

    def test_dead_worker_raises_shard_dead_error(self):
        ex = self.make(num_workers=2)
        try:
            proc = ex._procs[1]
            os.kill(proc.pid, signal.SIGKILL)
            proc.join(timeout=5)
            assert not ex.is_worker_alive(1)
            keys = np.arange(4, dtype=np.uint64)
            with pytest.raises(ShardDeadError) as exc_info:
                ex.flush(1, keys, np.arange(4, dtype=np.int64))
            assert 1 in exc_info.value.worker_ids
            ex.flush(0, keys, np.arange(4, dtype=np.int64))  # others fine
        finally:
            ex.close()

    def test_close_reaps_workers_even_after_sigkill(self):
        ex = self.make(num_workers=2)
        procs = [p for p in ex._procs]
        os.kill(procs[0].pid, signal.SIGKILL)
        procs[0].join(timeout=5)
        ex.close()  # must not hang or leak the dead worker
        assert ex._procs == [None, None]
        for p in procs:
            # a reaped Process raises on further use: the handle was closed
            with pytest.raises(ValueError):
                p.is_alive()

    def test_restart_worker_validates_the_shard_set(self):
        ex = self.make(num_workers=2)
        try:
            with pytest.raises(ValueError, match="owns shards"):
                ex.restart_worker(0, {0: SheCountMin(256, 512, seed=7)})
        finally:
            ex.close()

    def test_restart_worker_installs_fresh_state(self):
        ex = self.make(num_workers=2)
        try:
            keys = np.arange(8, dtype=np.uint64)
            times = np.arange(8, dtype=np.int64)
            ex.flush(0, keys, times)
            ex.restart_worker(
                0, {s: SheCountMin(256, 512, seed=7) for s in (0, 2)}
            )
            assert ex.snapshot(0).frequency(1, 7) == 0  # state was replaced
            ex.flush(0, keys, times)
            assert ex.snapshot(0).frequency(1, 7) == 1
        finally:
            ex.close()
