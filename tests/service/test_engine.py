"""Engine semantics: shard invariance, fan-in, triggers, rejections."""

import numpy as np
import pytest

from repro.core import (
    SheBitmap,
    SheBloomFilter,
    SheCountMin,
    SheHyperLogLog,
    SheMinHash,
    TimedStream,
    merge_many,
)
from repro.exact import ExactWindow
from repro.service import EngineConfig, StreamEngine, shard_ids
from repro.service.sharding import partition


def make_engine(kind, window, size, shards, **sketch_kwargs):
    cfg = EngineConfig(
        kind,
        window=window,
        size=size,
        num_shards=shards,
        flush_batch_size=777,  # deliberately unaligned with batch sizes
        flush_interval_s=None,
        sketch_kwargs=sketch_kwargs,
    )
    return StreamEngine(cfg)


@pytest.fixture
def stream():
    return np.random.default_rng(42).integers(0, 500, size=12_000, dtype=np.uint64)


class TestShardInvariance:
    """Engine answers are invariant to the shard count where theory says
    they must be (the ISSUE's acceptance criteria)."""

    @pytest.mark.parametrize("shards", [1, 2, 4, 8])
    def test_bf_bit_exact_vs_unsharded(self, stream, shards):
        """Merged BF fan-in == one unsharded sketch, bit for bit."""
        eng = make_engine("bf", 2048, 1 << 13, shards, seed=3, num_hashes=4)
        eng.ingest(stream)
        whole = SheBloomFilter(2048, 1 << 13, seed=3, num_hashes=4)
        whole.insert_many(stream)
        merged = eng.merged()
        whole.frame.prepare_query_all(whole.now())
        assert np.array_equal(merged.frame.cells, whole.frame.cells)
        # and the query surface agrees
        probes = np.unique(stream)[:256]
        assert np.array_equal(
            eng.contains_many(probes), whole.contains_many(probes)
        )

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_bm_bit_exact_vs_unsharded(self, stream, shards):
        eng = make_engine("bm", 2048, 1 << 12, shards, seed=2)
        eng.ingest(stream)
        whole = SheBitmap(2048, 1 << 12, seed=2)
        whole.insert_many(stream)
        assert eng.cardinality() == whole.cardinality()

    def test_hll_superset_and_close(self, stream):
        """w = 1 registers merge one-sidedly (see core/merge.py): the
        fan-in can only retain *stale extra* content, so merged cells
        dominate the unsharded sketch and estimates stay close."""
        eng = make_engine("hll", 2048, 256, 4, seed=5)
        eng.ingest(stream)
        whole = SheHyperLogLog(2048, 256, seed=5)
        whole.insert_many(stream)
        merged = eng.merged()
        whole.frame.prepare_query_all(whole.now())
        assert np.all(merged.frame.cells >= whole.frame.cells)
        assert abs(eng.cardinality() - whole.cardinality()) <= 0.3 * whole.cardinality()

    def test_bf_no_false_negatives(self, stream):
        eng = make_engine("bf", 2048, 1 << 13, 4, seed=3)
        eng.ingest(stream)
        ew = ExactWindow(2048)
        ew.insert_many(stream)
        assert np.all(eng.contains_many(ew.distinct_keys()))

    @pytest.mark.parametrize("shards", [1, 2, 4, 8])
    def test_cm_fan_in_sum_and_error_envelope(self, stream, shards):
        """CM property test: the engine's frequency equals the sum of
        per-shard estimates, never dips below the true windowed count
        (mature-counter guarantee, preserved by summation), and stays
        inside the unsharded sketch's error envelope."""
        window, m = 2048, 1024
        eng = make_engine("cm", window, m, shards, seed=7)
        eng.ingest(stream)
        single = SheCountMin(window, m, seed=7)
        single.insert_many(stream)
        ew = ExactWindow(window)
        ew.insert_many(stream)
        probes = ew.distinct_keys()
        true = ew.frequency_many(probes)

        est = eng.frequency_many(probes)
        # (a) fan-in sum: engine == sum over aligned shard snapshots
        per_shard = np.sum(
            [s.frequency_many(probes, eng.now()) for s in eng.snapshots()],
            axis=0,
        )
        assert np.array_equal(est, per_shard)
        # (b) never underestimates through mature counters; the only
        # legal dip is SHE-CM's documented all-young fallback (§4.4),
        # which at alpha=1, k=8 affects ~(1/2)^8 of point queries
        under = np.count_nonzero(est < true)
        assert under <= max(2, int(0.02 * probes.size))
        # (c) within the single unsharded sketch's error envelope: the
        # sharded engine has S disjoint key sets on S arrays, so its
        # aggregate overestimate should not exceed the single sketch's
        # (generously slackened for hash luck at fixed seeds)
        single_err = np.mean(single.frequency_many(probes) - true)
        engine_err = np.mean(est - true)
        assert engine_err <= max(1.5 * single_err, 2.0)

    def test_single_shard_equals_plain_sketch(self, stream):
        eng = make_engine("cm", 2048, 1024, 1, seed=7)
        eng.ingest(stream)
        single = SheCountMin(2048, 1024, seed=7)
        single.insert_many(stream)
        probes = np.arange(200, dtype=np.uint64)
        assert np.array_equal(eng.frequency_many(probes), single.frequency_many(probes))

    def test_engine_matches_hand_built_shards(self, stream):
        """The whole ingest path (buffering, times, flush) reproduces a
        hand-built reference partition driven through TimedStream."""
        cfg = EngineConfig(
            "bf", window=1024, size=4096, num_shards=3,
            flush_batch_size=100, flush_interval_s=None,
            sketch_kwargs={"seed": 9},
        )
        eng = StreamEngine(cfg)
        # several ingest calls to exercise multiple flush rounds
        for lo in range(0, stream.size, 1234):
            eng.ingest(stream[lo : lo + 1234])

        times = np.arange(stream.size, dtype=np.int64)
        parts = partition(stream, times, 3, cfg.shard_seed)
        hand = []
        for keys, tms in parts:
            s = SheBloomFilter(1024, 4096, seed=9)
            TimedStream(s).insert_many(keys, tms)
            s.t = stream.size
            hand.append(s)
        ref = merge_many(hand, t=stream.size, require_aligned=True)
        merged = eng.merged()
        assert np.array_equal(merged.frame.cells, ref.frame.cells)


class TestIngestOne:
    """The scalar fast path must be indistinguishable from 1-item batches."""

    def test_ingest_one_matches_batched_ingest(self, stream):
        one = make_engine("cm", 2048, 1024, 4, seed=7)
        batched = make_engine("cm", 2048, 1024, 4, seed=7)
        for k in stream[:4000]:
            one.ingest_one(int(k))
            batched.ingest(np.asarray([k], dtype=np.uint64))
        one.flush()
        batched.flush()
        probes = np.unique(stream[:4000])[:200]
        assert np.array_equal(
            one.frequency_many(probes), batched.frequency_many(probes)
        )
        assert one.stats_snapshot(tick=False)["items_ingested"] == 4000
        assert one.now() == batched.now() == 4000

    def test_ingest_one_interleaves_with_batches(self, stream):
        mixed = make_engine("cm", 2048, 1024, 4, seed=7)
        batched = make_engine("cm", 2048, 1024, 4, seed=7)
        for lo in range(0, 6000, 1500):
            chunk = stream[lo:lo + 1500]
            for k in chunk[:100]:
                mixed.ingest_one(int(k))
            mixed.ingest(chunk[100:])
            batched.ingest(chunk)
        mixed.flush()
        batched.flush()
        probes = np.unique(stream[:6000])[:200]
        assert np.array_equal(
            mixed.frequency_many(probes), batched.frequency_many(probes)
        )

    def test_ingest_one_two_stream_sides(self):
        eng = make_engine("mh", 1024, 64, 2, seed=5)
        for k in range(500):
            eng.ingest_one(k, side=k % 2)
        eng.flush()
        assert eng.now(0) == 250 and eng.now(1) == 250
        with pytest.raises(ValueError, match="side"):
            eng.ingest_one(3)

    def test_ingest_one_rejects_non_integers(self):
        eng = make_engine("cm", 2048, 1024, 2, seed=7)
        with pytest.raises(TypeError, match="integers"):
            eng.ingest_one("seven")

    def test_insert_alias_uses_fast_path(self, stream):
        via_insert = make_engine("cm", 2048, 1024, 4, seed=7)
        via_batch = make_engine("cm", 2048, 1024, 4, seed=7)
        for k in stream[:2000]:
            via_insert.insert(int(k))
        via_batch.ingest(stream[:2000])
        via_insert.flush()
        via_batch.flush()
        probes = np.unique(stream[:2000])[:100]
        assert np.array_equal(
            via_insert.frequency_many(probes),
            via_batch.frequency_many(probes),
        )


class TestTwoStream:
    def test_mh_similarity_matches_unsharded(self):
        rng = np.random.default_rng(8)
        a = rng.integers(0, 300, size=5000, dtype=np.uint64)
        b = np.where(rng.random(5000) < 0.5, a, rng.integers(300, 600, size=5000, dtype=np.uint64))
        eng = make_engine("mh", 2048, 128, 2, seed=5)
        eng.ingest(a, side=0)
        eng.ingest(b, side=1)
        whole = SheMinHash(2048, 128, seed=5)
        whole.insert_many(0, a)
        whole.insert_many(1, b)
        assert eng.similarity() == pytest.approx(whole.similarity(), abs=0.1)

    def test_side_required_and_rejected(self):
        mh = make_engine("mh", 256, 64, 2, seed=5)
        with pytest.raises(ValueError, match="side"):
            mh.ingest(np.arange(4, dtype=np.uint64))
        bf = make_engine("bf", 256, 512, 2, seed=1)
        with pytest.raises(ValueError, match="side"):
            bf.ingest(np.arange(4, dtype=np.uint64), side=1)


class TestBufferingAndTriggers:
    def test_size_trigger_flushes_only_full_queues(self):
        cfg = EngineConfig(
            "cm", window=1024, size=512, num_shards=2,
            flush_batch_size=50, flush_interval_s=None,
            sketch_kwargs={"seed": 7},
        )
        eng = StreamEngine(cfg)
        # keys all landing on one shard: find them via the partitioner
        keys = np.arange(4000, dtype=np.uint64)
        sids = shard_ids(keys, 2, cfg.shard_seed)
        one_shard = keys[sids == 0][:60]
        eng.ingest(one_shard)
        assert eng.stats.items_flushed == 60
        assert eng.queue_depths() == [0, 0]

    def test_below_threshold_buffers(self):
        eng = make_engine("cm", 1024, 512, 2, seed=7)
        eng.ingest(np.arange(100, dtype=np.uint64))
        assert eng.stats.items_flushed == 0
        assert sum(eng.queue_depths()) == 100
        assert eng.stats_snapshot()["items_buffered"] == 100

    def test_time_trigger(self):
        fake = [0.0]
        cfg = EngineConfig(
            "cm", window=1024, size=512, num_shards=2,
            flush_batch_size=10**9, flush_interval_s=5.0,
            sketch_kwargs={"seed": 7},
        )
        eng = StreamEngine(cfg, clock=lambda: fake[0])
        eng.ingest(np.arange(100, dtype=np.uint64))
        assert eng.stats.items_flushed == 0
        fake[0] = 6.0
        eng.ingest(np.arange(5, dtype=np.uint64))
        assert eng.stats.items_flushed == 105

    def test_queries_see_buffered_items(self):
        eng = make_engine("cm", 1024, 512, 2, seed=7)
        eng.ingest(np.full(10, 42, dtype=np.uint64))
        assert eng.frequency(42) >= 10

    def test_closed_engine_rejects_work(self):
        eng = make_engine("cm", 256, 512, 2, seed=7)
        eng.close()
        with pytest.raises(RuntimeError, match="closed"):
            eng.ingest(np.arange(3, dtype=np.uint64))


class TestFanInRejections:
    """merge_sketches rejection paths exercised through engine queries."""

    def test_drifted_clock_rejected(self, stream):
        eng = make_engine("bm", 1024, 2048, 3, seed=2)
        eng.ingest(stream[:4000])
        eng.flush()
        # a shard that silently fell behind the union clock must not be
        # merged: poke one shard's clock backwards behind the others
        eng._exec._shards[1].t -= 7
        with pytest.raises(ValueError, match="drifted"):
            merge_many(eng._exec.peeks(), require_aligned=True)
        # the query fan-in advances shards to the global clock first,
        # healing a *behind* shard; a shard AHEAD of the union clock
        # cannot be healed and is rejected end to end
        eng._exec._shards[1].t = eng.now() + 99
        with pytest.raises(ValueError, match="drifted|rewind"):
            eng.cardinality()

    def test_mismatched_seed_rejected_through_fan_in(self, stream):
        eng = make_engine("bm", 1024, 2048, 2, seed=2)
        eng.ingest(stream[:3000])
        eng._exec._shards[1] = SheBitmap(1024, 2048, seed=99)
        eng._exec._shards[1].advance_to(eng.now())
        with pytest.raises(ValueError, match="seeds must all match"):
            eng.cardinality()

    def test_mismatched_window_rejected_through_fan_in(self, stream):
        eng = make_engine("bf", 1024, 4096, 2, seed=1)
        eng.ingest(stream[:3000])
        eng._exec._shards[1] = SheBloomFilter(2048, 4096, seed=1)
        eng._exec._shards[1].advance_to(eng.now())
        with pytest.raises(ValueError, match="must all match"):
            eng.contains(5)

    def test_mismatched_alpha_rejected_through_fan_in(self, stream):
        eng = make_engine("bm", 1024, 2048, 2, seed=2)
        eng.ingest(stream[:3000])
        eng._exec._shards[1] = SheBitmap(1024, 2048, seed=2, alpha=0.4)
        eng._exec._shards[1].advance_to(eng.now())
        with pytest.raises(ValueError, match="must all match"):
            eng.cardinality()

    def test_wrong_kind_query_rejected(self):
        eng = make_engine("bf", 256, 512, 2, seed=1)
        with pytest.raises(TypeError, match="frequency"):
            eng.frequency(1)
        with pytest.raises(TypeError, match="cardinality"):
            eng.cardinality()


class TestEngineConfigJson:
    """to_json/from_json round-trips: the checkpoint manifest contract."""

    def test_round_trip_defaults(self):
        cfg = EngineConfig("bf", window=1024, size=2048)
        assert EngineConfig.from_json(cfg.to_json()) == cfg

    def test_round_trip_with_sketch_kwargs(self):
        import json

        cfg = EngineConfig(
            "cm",
            window=4096,
            size=1 << 13,
            num_shards=6,
            flush_batch_size=512,
            flush_interval_s=None,
            rpc_timeout_s=2.5,
            sketch_kwargs={"seed": 7, "alpha": 3.0, "frame": "software"},
        )
        # through actual JSON text, as the checkpoint manifest does
        back = EngineConfig.from_json(json.loads(json.dumps(cfg.to_json())))
        assert back == cfg
        assert back.sketch_kwargs == {"seed": 7, "alpha": 3.0, "frame": "software"}

    def test_unknown_keys_rejected_by_name(self):
        data = EngineConfig("bm", window=256, size=512).to_json()
        data["shard_count"] = 4  # typo'd / future-version key
        with pytest.raises(ValueError, match="shard_count"):
            EngineConfig.from_json(data)

    def test_unknown_key_error_lists_known_keys(self):
        data = EngineConfig("bm", window=256, size=512).to_json()
        data["nope"] = 1
        with pytest.raises(ValueError, match="known keys") as exc:
            EngineConfig.from_json(data)
        assert "num_shards" in str(exc.value)

    def test_unregistered_kind_rejected(self):
        with pytest.raises(ValueError, match="kind must be one of"):
            EngineConfig.from_json(
                {"kind": "not-a-kind", "window": 256, "size": 512}
            )


class TestApplications:
    def test_heavy_hitters_over_engine(self):
        """HeavyHitters drives a sharded engine as its CM backend."""
        from repro.applications import HeavyHitters

        rng = np.random.default_rng(17)
        window = 2048
        hot = np.full(600, 7, dtype=np.uint64)
        noise = rng.integers(100, 4000, size=3000, dtype=np.uint64)
        stream = rng.permutation(np.concatenate([hot, noise]))
        eng = make_engine("cm", window, 4096, 4, seed=7)
        hh = HeavyHitters(window, threshold=200.0, sketch=eng)
        hh.insert_many(stream[-window:])
        top = hh.heavy_hitters()
        assert top and top[0][0] == 7
        assert hh.is_heavy(7)
        assert hh.memory_bytes > 0


class TestStats:
    def test_counters_and_percentiles(self):
        fake = [0.0]
        cfg = EngineConfig(
            "cm", window=1024, size=512, num_shards=2,
            flush_batch_size=64, flush_interval_s=None,
            sketch_kwargs={"seed": 7},
        )
        eng = StreamEngine(cfg, clock=lambda: fake[0])
        for _ in range(5):
            eng.ingest(np.arange(200, dtype=np.uint64))
        eng.frequency(3)
        snap = eng.stats_snapshot()
        assert snap["items_ingested"] == 1000
        assert snap["items_flushed"] == 1000
        assert snap["flush_count"] >= 5
        assert snap["query_count"] == 1
        assert "flush_p99_ms" in snap
        report = eng.stats_report()
        assert "items_ingested" in report and "1000" in report
