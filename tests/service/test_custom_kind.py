"""A user-registered CSM algorithm served end-to-end by the engine.

The acceptance test of the registry refactor: define a custom sketch
(a generic-lift subclass with its own ⟨C, K, F⟩ spec and query logic),
register it with :func:`register_algorithm`, and drive it through every
layer that used to hard-code the five paper algorithms — sharded
ingestion on the multiprocess executor, merge-based query fan-in,
checkpointing, a hard worker kill, and bit-identical recovery.
"""

import zipfile
from pathlib import Path

import numpy as np
import pytest

from repro.core import GenericSheSketch, UpdateKind, mergeable
from repro.core.base import sized_from_memory
from repro.core.csm import CellType, CsmSpec
from repro.core.registry import (
    AlgoDescriptor,
    get_descriptor,
    register_algorithm,
    unregister_algorithm,
)
from repro.persist import load_sketch, save_sketch
from repro.service import (
    EngineConfig,
    StreamEngine,
    recover_engine,
    save_checkpoint,
)

#: a bitmap-style CSM sketch with two probe locations per key — not one
#: of the five paper rows, so nothing in the framework special-cases it
TWO_PROBE_SPEC = CsmSpec(
    name="two-probe presence bitmap",
    cell_type=CellType.BIT,
    locations=2,
    update=UpdateKind.SET_ONE,
    default_cell_bits=1,
    empty_value=0,
    one_sided=False,
)


class TwoProbeBitmap(GenericSheSketch):
    """Custom windowed sketch: 2-probe bitmap with a cardinality query.

    Module-level (not nested in a test) so multiprocessing can pickle
    shard snapshots by reference.
    """

    cell_bits = 1
    from_memory = classmethod(sized_from_memory)

    def __init__(self, window, num_cells, **kwargs):
        super().__init__(TWO_PROBE_SPEC, window, num_cells, **kwargs)

    def cardinality(self, t=None):
        """Linear-counting estimate over the mature cells, scaled to M."""
        t = self._resolve_time(t)
        self.frame.prepare_query_all(t)
        m = self.num_cells_total
        zeros = int(np.count_nonzero(self.frame.cells == 0))
        if zeros == 0:
            return float(m)
        # each key sets 2 cells: halve the classic linear-counting count
        return float(m * np.log(m / zeros) / 2.0)


KIND = "two-probe-bm"


@pytest.fixture
def registered_kind():
    register_algorithm(
        AlgoDescriptor(
            kind=KIND,
            cls=TwoProbeBitmap,
            size_arg="num_cells",
            spec=TWO_PROBE_SPEC,
            queries=frozenset({"cardinality"}),
            degraded_caveat=(
                "cardinality is a lower bound: missing shards' keys are uncounted"
            ),
        ),
        replace_existing=True,
    )
    yield KIND
    unregister_algorithm(KIND)


def _archive_entries(path: Path) -> dict[str, bytes]:
    with zipfile.ZipFile(path) as z:
        return {n: z.read(n) for n in z.namelist()}


class TestCustomSketchStandalone:
    def test_merge_and_persist(self, registered_kind, tmp_path):
        a = TwoProbeBitmap(256, 512, seed=5)
        b = TwoProbeBitmap(256, 512, seed=5)
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 1 << 20, size=400, dtype=np.uint64)
        a.insert_many(keys[:200])
        b.advance_to(200)
        b.insert_many(keys[200:])
        assert mergeable(a, b)
        from repro.core import merge_sketches

        merged = merge_sketches(a, b)
        assert merged.t == 400
        save_sketch(merged, tmp_path / "custom.npz")
        back = load_sketch(tmp_path / "custom.npz")
        assert isinstance(back, TwoProbeBitmap)
        assert np.array_equal(back.frame.cells, merged.frame.cells)
        assert back.cardinality() == merged.cardinality()

    def test_from_memory_budget(self, registered_kind):
        sketch = get_descriptor(KIND).from_memory(1 << 12, 4096, seed=5)
        assert isinstance(sketch, TwoProbeBitmap)
        assert sketch.memory_bytes <= 4096

    def test_unregistered_custom_class_cannot_persist(self, tmp_path):
        class Unregistered(GenericSheSketch):
            def __init__(self):
                super().__init__(TWO_PROBE_SPEC, 64, 64)

        with pytest.raises(TypeError, match="cannot serialise"):
            save_sketch(Unregistered(), tmp_path / "nope.npz")


class TestCustomKindServed:
    def test_engine_rejects_unregistered_kind(self):
        with pytest.raises(ValueError, match="kind must be one of"):
            EngineConfig("two-probe-bm-not-registered", window=256, size=512)

    def test_serial_engine_end_to_end(self, registered_kind):
        cfg = EngineConfig(KIND, window=4096, size=2048, num_shards=3,
                           sketch_kwargs={"seed": 5})
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 2000, size=6000, dtype=np.uint64)
        with StreamEngine(cfg) as eng:
            eng.ingest(keys)
            est = eng.cardinality()
            # linear counting over a 3-shard merge: right order of magnitude
            assert 0.5 * 2000 < est < 2.0 * 2000
            with pytest.raises(TypeError, match="frequency"):
                eng.frequency(1)

    def test_process_engine_checkpoint_kill_recover(
        self, registered_kind, tmp_path
    ):
        """The acceptance scenario: multiprocess serve, checkpoint,
        kill, recover bit-identically."""
        cfg = EngineConfig(KIND, window=4096, size=2048, num_shards=2,
                           flush_batch_size=512, flush_interval_s=None,
                           sketch_kwargs={"seed": 5})
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 3000, size=8000, dtype=np.uint64)
        ckpt_dir = tmp_path / "ckpts"

        eng = StreamEngine(cfg, executor="process", num_workers=2)
        try:
            eng.ingest(keys)
            answer = eng.cardinality()
            cells_before = [s.frame.cells.copy() for s in eng.snapshots()]
            path = save_checkpoint(eng, ckpt_dir)
        finally:
            eng.close()  # the "kill": worker processes are gone

        manifest = (path / "MANIFEST.json").read_text()
        assert KIND in manifest  # versioned algorithm identity recorded

        rec = recover_engine(ckpt_dir, executor="process", num_workers=2)
        try:
            assert rec.config.kind == KIND
            assert rec.now() == len(keys)
            cells_after = [s.frame.cells.copy() for s in rec.snapshots()]
            for before, after in zip(cells_before, cells_after):
                assert np.array_equal(before, after)
            assert rec.cardinality() == answer
            # re-checkpointing unchanged state reproduces the archives
            # byte-for-byte (zip entry contents; envelope mtimes differ)
            path2 = save_checkpoint(rec, ckpt_dir)
            for shard in ("shard-00.npz", "shard-01.npz"):
                assert _archive_entries(path / shard) == _archive_entries(
                    path2 / shard
                )
            # recovered engines keep serving
            rec.ingest(keys[:100])
            assert rec.now() == len(keys) + 100
        finally:
            rec.close()

    def test_recover_without_registration_fails_loudly(
        self, registered_kind, tmp_path
    ):
        cfg = EngineConfig(KIND, window=256, size=256, num_shards=2,
                           sketch_kwargs={"seed": 5})
        ckpt_dir = tmp_path / "ckpts"
        with StreamEngine(cfg) as eng:
            eng.ingest(np.arange(500, dtype=np.uint64))
            save_checkpoint(eng, ckpt_dir)
        unregister_algorithm(KIND)
        try:
            with pytest.raises(KeyError, match="no algorithm registered"):
                recover_engine(ckpt_dir)
        finally:
            register_algorithm(
                AlgoDescriptor(
                    kind=KIND,
                    cls=TwoProbeBitmap,
                    size_arg="num_cells",
                    spec=TWO_PROBE_SPEC,
                    queries=frozenset({"cardinality"}),
                ),
                replace_existing=True,
            )
