"""EngineStats edge cases: percentile keys, snapshot clock reads, formatting."""

import pytest

from repro.obs.registry import Registry
from repro.service.stats import EngineStats, format_stats


class _CountingClock:
    """Monotone fake clock that counts how often it is read."""

    def __init__(self):
        self.t = 0.0
        self.calls = 0

    def __call__(self) -> float:
        self.calls += 1
        self.t += 1.0
        return self.t


class TestFlushLatency:
    def test_empty_ring_returns_empty_dict(self):
        assert EngineStats().flush_latency_ms() == {}

    def test_single_sample_all_percentiles_equal(self):
        st = EngineStats()
        st.record_flush(10, 0.002)
        lat = st.flush_latency_ms()
        assert set(lat) == {"p50", "p90", "p99"}
        assert all(v == pytest.approx(2.0) for v in lat.values())

    def test_non_integer_percentile_keeps_decimal_key(self):
        st = EngineStats()
        for ms in (1, 2, 3, 4):
            st.record_flush(1, ms / 1e3)
        lat = st.flush_latency_ms(percentiles=(50, 99.9))
        assert set(lat) == {"p50", "p99.9"}
        assert lat["p50"] == pytest.approx(2.5)

    def test_integer_valued_float_percentile_key_is_integral(self):
        st = EngineStats()
        st.record_flush(1, 0.001)
        assert set(st.flush_latency_ms(percentiles=(75.0,))) == {"p75"}


class TestSnapshot:
    def test_checkpoint_age_read_once_per_snapshot(self):
        clock = _CountingClock()
        st = EngineStats(clock=clock)  # 1 call: started_at
        st.record_checkpoint()  # 1 call: last_checkpoint_at
        clock.calls = 0
        snap = st.snapshot()
        # uptime_s + one checkpoint_age_s — a second age read under an
        # injected clock could disagree with the first
        assert clock.calls == 2
        # started_at=1, checkpoint=2, age read=3 -> 3-2 (uptime reads 4th)
        assert snap["checkpoint_age_s"] == pytest.approx(1.0)

    def test_snapshot_without_checkpoint_has_none_age(self):
        assert EngineStats().snapshot()["checkpoint_age_s"] is None

    def test_counters_round_trip_via_properties(self):
        st = EngineStats()
        st.record_ingest(7)
        st.record_flush(5, 0.01)
        st.record_query()
        st.record_timeout()
        st.record_worker_death()
        st.record_restart()
        st.record_replay(9, 2)
        st.record_degraded_query()
        snap = st.snapshot(queue_depths=[2, 0], down_shards=[1])
        assert snap["items_ingested"] == 7
        assert snap["items_flushed"] == 5
        assert snap["items_buffered"] == 2
        assert snap["flush_count"] == 1
        assert snap["query_count"] == 1
        assert snap["rpc_timeouts"] == 1
        assert snap["worker_deaths"] == 1
        assert snap["worker_restarts"] == 1
        assert snap["items_replayed"] == 9
        assert snap["batches_replayed"] == 2
        assert snap["degraded_queries"] == 1
        assert snap["queue_depth_max"] == 2
        assert snap["shards_down"] == [1]

    def test_shared_registry_serves_the_same_values(self):
        reg = Registry()
        st = EngineStats(registry=reg)
        st.record_ingest(42)
        assert reg.snapshot()["engine_items_ingested_total"] == 42
        assert "engine_items_ingested_total 42" in reg.render()

    def test_private_registry_by_default(self):
        a, b = EngineStats(), EngineStats()
        a.record_ingest(5)
        assert b.items_ingested == 0


class TestFormatStats:
    def test_empty_snapshot_renders_empty_string(self):
        assert format_stats({}) == ""

    def test_alignment_and_values(self):
        text = format_stats({"a": 1, "longer_key": "x"})
        lines = text.splitlines()
        assert lines[0] == "a           1"
        assert lines[1] == "longer_key  x"

    def test_round_trips_snapshot(self):
        st = EngineStats()
        st.record_ingest(3)
        text = format_stats(st.snapshot())
        assert "items_ingested" in text and "3" in text
