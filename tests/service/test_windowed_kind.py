"""The "wq" windowed-quantile kind served end-to-end by the engine.

Same contract as ``tests/service/test_custom_kind.py``, but for the
telemetry sketch that ships in-tree: :class:`SheWindowedQuantile` is
registered through ``repro.core.registry`` like any algorithm, so the
engine shards it, answers ``quantile`` by merge-based fan-in, and
checkpoints / recovers it bit-identically — gamma included, since the
bucket mapping is part of the sketch's identity.
"""

import zipfile
from pathlib import Path

import numpy as np
import pytest

from repro.core import merge_sketches, mergeable
from repro.obs.windows import SheWindowedQuantile
from repro.persist import load_sketch, save_sketch
from repro.service import (
    EngineConfig,
    StreamEngine,
    recover_engine,
    save_checkpoint,
)

GAMMA = 0.02


def _measurements(n, seed):
    rng = np.random.default_rng(seed)
    return np.maximum(
        np.exp(rng.normal(5.0, 1.0, size=n)), 1.0
    ).astype(np.uint64)


def _archive_entries(path: Path) -> dict[str, bytes]:
    with zipfile.ZipFile(path) as z:
        return {n: z.read(n) for n in z.namelist()}


class TestStandalone:
    def test_merge_matches_single_stream(self, tmp_path):
        a = SheWindowedQuantile(1024, 512, gamma=GAMMA, seed=5)
        b = a.clone_empty()
        whole = SheWindowedQuantile(1024, 512, gamma=GAMMA, seed=5)
        vals = _measurements(600, seed=0)
        a.insert_many(vals[:300])
        b.advance_to(300)
        b.insert_many(vals[300:])
        whole.insert_many(vals)
        assert mergeable(a, b)
        merged = merge_sketches(a, b)
        qs = [0.1, 0.5, 0.9, 0.99]
        assert merged.quantiles(qs) == pytest.approx(whole.quantiles(qs))
        save_sketch(merged, tmp_path / "wq.npz")
        back = load_sketch(tmp_path / "wq.npz")
        assert isinstance(back, SheWindowedQuantile)
        assert back.gamma == GAMMA
        assert np.array_equal(back.frame.cells, merged.frame.cells)
        assert back.quantile(0.5) == merged.quantile(0.5)


class TestServedByEngine:
    def test_serial_engine_quantiles(self):
        cfg = EngineConfig("wq", window=8192, size=2048, num_shards=3,
                           sketch_kwargs={"gamma": GAMMA, "seed": 5})
        vals = _measurements(4000, seed=1)
        reference = SheWindowedQuantile(8192, 2048, gamma=GAMMA, seed=5)
        reference.insert_many(vals)
        with StreamEngine(cfg) as eng:
            eng.ingest(vals)
            est = eng.quantile(0.5)
            # nothing expired (4000 < window): the 3-shard merge fan-in
            # holds exactly the counts of one sketch fed the whole stream
            assert est == pytest.approx(reference.quantile(0.5))
            truth = float(np.quantile(vals, 0.5))
            assert abs(est - truth) / truth < 0.1  # sanity vs ground truth
            with pytest.raises(TypeError, match="frequency"):
                eng.frequency(1)

    def test_process_engine_checkpoint_kill_recover(self, tmp_path):
        """The acceptance scenario: multiprocess serve, checkpoint,
        kill, recover bit-identically — gamma riding in the params."""
        cfg = EngineConfig("wq", window=4096, size=2048, num_shards=2,
                           flush_batch_size=512, flush_interval_s=None,
                           sketch_kwargs={"gamma": GAMMA, "seed": 5})
        vals = _measurements(8000, seed=2)
        ckpt_dir = tmp_path / "ckpts"

        eng = StreamEngine(cfg, executor="process", num_workers=2)
        try:
            eng.ingest(vals)
            answer = eng.quantile(0.95)
            cells_before = [s.frame.cells.copy() for s in eng.snapshots()]
            path = save_checkpoint(eng, ckpt_dir)
        finally:
            eng.close()  # the "kill": worker processes are gone

        manifest = (path / "MANIFEST.json").read_text()
        assert "wq" in manifest  # versioned algorithm identity recorded

        rec = recover_engine(ckpt_dir, executor="process", num_workers=2)
        try:
            assert rec.config.kind == "wq"
            assert rec.now() == len(vals)
            snapshots = rec.snapshots()
            for snap in snapshots:
                assert isinstance(snap, SheWindowedQuantile)
                assert snap.gamma == GAMMA
            for before, snap in zip(cells_before, snapshots):
                assert np.array_equal(before, snap.frame.cells)
            assert rec.quantile(0.95) == answer
            # re-checkpointing unchanged state reproduces the archives
            # byte-for-byte (zip entry contents; envelope mtimes differ)
            path2 = save_checkpoint(rec, ckpt_dir)
            for shard in ("shard-00.npz", "shard-01.npz"):
                assert _archive_entries(path / shard) == _archive_entries(
                    path2 / shard
                )
            # recovered engines keep serving
            rec.ingest(vals[:100])
            assert rec.now() == len(vals) + 100
            assert np.isfinite(rec.quantile(0.5))
        finally:
            rec.close()

    def test_recover_with_different_gamma_is_a_different_sketch(
        self, tmp_path
    ):
        """The signature covers gamma: a checkpoint taken at one gamma
        recovers at that gamma, not whatever the default is."""
        cfg = EngineConfig("wq", window=512, size=256, num_shards=1,
                           sketch_kwargs={"gamma": 0.11, "seed": 5})
        ckpt_dir = tmp_path / "ckpts"
        with StreamEngine(cfg) as eng:
            eng.ingest(_measurements(300, seed=3))
            save_checkpoint(eng, ckpt_dir)
        rec = recover_engine(ckpt_dir)
        try:
            (snap,) = rec.snapshots()
            assert snap.gamma == 0.11
        finally:
            rec.close()
