"""Tests for the trace loaders."""

import numpy as np
import pytest

from repro.common.hashing import canonical_key
from repro.datasets.loaders import load_csv, load_npy, load_text, load_trace


class TestLoadNpy:
    def test_roundtrip(self, tmp_path):
        arr = np.arange(100, dtype=np.uint64)
        np.save(tmp_path / "t.npy", arr)
        assert np.array_equal(load_npy(tmp_path / "t.npy"), arr)

    def test_int32_upcast(self, tmp_path):
        np.save(tmp_path / "t.npy", np.arange(10, dtype=np.int32))
        out = load_npy(tmp_path / "t.npy")
        assert out.dtype == np.uint64

    def test_rejects_floats(self, tmp_path):
        np.save(tmp_path / "t.npy", np.ones(3))
        with pytest.raises(TypeError):
            load_npy(tmp_path / "t.npy")


class TestLoadText:
    def test_integers(self, tmp_path):
        p = tmp_path / "t.txt"
        p.write_text("1\n2\n42\n")
        assert load_text(p).tolist() == [1, 2, 42]

    def test_ip_strings_hash(self, tmp_path):
        p = tmp_path / "t.txt"
        p.write_text("10.0.0.1\n10.0.0.2\n10.0.0.1\n")
        out = load_text(p)
        assert out[0] == out[2] != out[1]
        assert out[0] == canonical_key("10.0.0.1")

    def test_blank_lines_skipped(self, tmp_path):
        p = tmp_path / "t.txt"
        p.write_text("1\n\n2\n")
        assert load_text(p).size == 2

    def test_blank_strict(self, tmp_path):
        p = tmp_path / "t.txt"
        p.write_text("1\n\n2\n")
        with pytest.raises(ValueError):
            load_text(p, skip_blank=False)

    def test_preserves_order(self, tmp_path):
        p = tmp_path / "t.txt"
        p.write_text("3\n1\n2\n")
        assert load_text(p).tolist() == [3, 1, 2]


class TestLoadCsv:
    def test_by_index_no_header(self, tmp_path):
        p = tmp_path / "t.csv"
        p.write_text("5,a\n6,b\n")
        assert load_csv(p, 0).tolist() == [5, 6]

    def test_by_name(self, tmp_path):
        p = tmp_path / "t.csv"
        p.write_text("src,dst\n10.0.0.1,x\n10.0.0.2,y\n")
        out = load_csv(p, "src")
        assert out[0] == canonical_key("10.0.0.1")

    def test_missing_column_name(self, tmp_path):
        p = tmp_path / "t.csv"
        p.write_text("a,b\n1,2\n")
        with pytest.raises(KeyError):
            load_csv(p, "zz")

    def test_short_row(self, tmp_path):
        p = tmp_path / "t.csv"
        p.write_text("1,2\n3\n")
        with pytest.raises(ValueError):
            load_csv(p, 1)

    def test_name_requires_header(self, tmp_path):
        with pytest.raises(ValueError):
            load_csv(tmp_path / "t.csv", "src", has_header=False)

    def test_header_with_index(self, tmp_path):
        p = tmp_path / "t.csv"
        p.write_text("src,dst\n7,x\n")
        assert load_csv(p, 0, has_header=True).tolist() == [7]


class TestLoadTrace:
    def test_dispatch(self, tmp_path):
        np.save(tmp_path / "a.npy", np.arange(3, dtype=np.uint64))
        (tmp_path / "b.txt").write_text("1\n")
        (tmp_path / "c.csv").write_text("9\n")
        assert load_trace(tmp_path / "a.npy").size == 3
        assert load_trace(tmp_path / "b.txt").size == 1
        assert load_trace(tmp_path / "c.csv").tolist() == [9]

    def test_end_to_end_into_sketch(self, tmp_path):
        """A text log of IPs flows straight into SHE-BF."""
        from repro.core import SheBloomFilter

        p = tmp_path / "gateway.log"
        p.write_text("".join(f"10.0.{i % 4}.{i % 7}\n" for i in range(500)))
        keys = load_trace(p)
        bf = SheBloomFilter(128, 4096)
        bf.insert_many(keys)
        assert bf.contains(canonical_key("10.0.1.1"))
