"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    BoundedZipf,
    caida_like,
    campus_like,
    distinct_stream,
    relevant_pair,
    webpage_like,
    zipf_probabilities,
)


class TestZipfProbabilities:
    def test_sums_to_one(self):
        p = zipf_probabilities(1000, 1.1)
        assert abs(p.sum() - 1.0) < 1e-12

    def test_monotone_decreasing(self):
        p = zipf_probabilities(100, 1.2)
        assert np.all(np.diff(p) <= 0)

    def test_uniform_at_zero_skew(self):
        p = zipf_probabilities(10, 0.0)
        assert np.allclose(p, 0.1)

    def test_rejects_negative_skew(self):
        with pytest.raises(ValueError):
            zipf_probabilities(10, -1.0)


class TestBoundedZipf:
    def test_sample_within_universe(self):
        z = BoundedZipf(100, 1.0, seed=1)
        s = z.sample(1000)
        assert np.all(np.isin(s, z.keys))

    def test_deterministic_with_seed(self):
        a = BoundedZipf(50, 1.0, seed=7).sample(100)
        b = BoundedZipf(50, 1.0, seed=7).sample(100)
        assert np.array_equal(a, b)

    def test_head_heavier_than_tail(self):
        z = BoundedZipf(1000, 1.3, seed=2)
        s = z.sample(50_000)
        ranks = z.rank_of(s)
        assert np.mean(ranks < 10) > np.mean((ranks >= 500) & (ranks < 510)) * 5

    def test_unique_keys(self):
        z = BoundedZipf(10_000, 1.0, seed=3)
        assert len(np.unique(z.keys)) == 10_000

    def test_rank_of_unknown_key(self):
        z = BoundedZipf(10, 1.0, seed=4)
        probe = np.asarray([1 << 60], dtype=np.uint64)
        assert z.rank_of(probe)[0] == -1


class TestTraces:
    @pytest.mark.parametrize("gen", [caida_like, campus_like, webpage_like])
    def test_size_and_universe(self, gen):
        tr = gen(10_000, 500, seed=1)
        assert tr.num_items == 10_000
        assert len(np.unique(tr.items)) <= 500

    def test_caida_ratio(self):
        tr = caida_like(100_000, 2000, seed=2)
        # roughly 50 items per distinct key
        distinct = len(np.unique(tr.items))
        assert 30 < tr.num_items / distinct < 80

    def test_campus_heavier_skew_than_webpage(self):
        c = campus_like(50_000, 5000, seed=3)
        w = webpage_like(50_000, 5000, seed=3)
        top_c = np.max(np.unique(c.items, return_counts=True)[1])
        top_w = np.max(np.unique(w.items, return_counts=True)[1])
        assert top_c > top_w

    def test_distinct_stream_all_unique(self):
        tr = distinct_stream(10_000, seed=4)
        assert len(np.unique(tr.items)) == 10_000

    def test_distinct_stream_deterministic(self):
        assert np.array_equal(distinct_stream(100, seed=5).items, distinct_stream(100, seed=5).items)


class TestRelevantPair:
    def test_overlap_controls_jaccard(self):
        lo_a, lo_b = relevant_pair(40_000, 5000, overlap=0.1, seed=6)
        hi_a, hi_b = relevant_pair(40_000, 5000, overlap=0.9, seed=6)

        def jac(x, y):
            sx, sy = set(x.items.tolist()), set(y.items.tolist())
            return len(sx & sy) / len(sx | sy)

        assert jac(hi_a, hi_b) > jac(lo_a, lo_b) + 0.2

    def test_zero_overlap_disjoint(self):
        a, b = relevant_pair(10_000, 2000, overlap=0.0, seed=7)
        assert not (set(a.items.tolist()) & set(b.items.tolist()))

    def test_rejects_bad_overlap(self):
        with pytest.raises(ValueError):
            relevant_pair(100, 10, overlap=1.5)

    def test_drift_changes_window_similarity(self):
        a, b = relevant_pair(40_000, 4000, overlap=0.8, drift_period=10_000, seed=8)
        from repro.exact import ExactJaccard

        sims = []
        ej = ExactJaccard(5000)
        for lo in range(0, 40_000, 5000):
            ej.insert_many(0, a.items[lo : lo + 5000])
            ej.insert_many(1, b.items[lo : lo + 5000])
            sims.append(ej.similarity())
        assert max(sims) - min(sims) > 0.1
