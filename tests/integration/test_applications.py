"""Tests for the applications layer (heavy hitters, anomaly detection)."""

import numpy as np
import pytest

from repro.applications import CardinalityAnomalyDetector, HeavyHitters
from repro.core import SheBitmap, SheCountMin
from repro.datasets import caida_like
from repro.exact import ExactWindow


class TestHeavyHitters:
    def make_stream(self, window, hot_keys, hot_share=0.4, seed=0):
        rng = np.random.default_rng(seed)
        n = 6 * window
        cold = rng.integers(1 << 30, 1 << 31, size=n, dtype=np.uint64)
        hot_mask = rng.random(n) < hot_share
        cold[hot_mask] = rng.choice(
            np.asarray(hot_keys, dtype=np.uint64), size=int(hot_mask.sum())
        )
        return cold

    def test_finds_planted_heavy_hitters(self):
        window = 4096
        hot = [11, 22, 33]
        stream = self.make_stream(window, hot)
        hh = HeavyHitters(window, threshold=window * 0.05)
        for lo in range(0, stream.size, window // 2):
            hh.insert_many(stream[lo : lo + window // 2])
        found = {k for k, _ in hh.heavy_hitters()}
        assert set(hot) <= found

    def test_no_false_dismissal_of_true_hitters(self):
        window = 2048
        hh = HeavyHitters(window, threshold=100)
        ew = ExactWindow(window)
        stream = self.make_stream(window, [7], hot_share=0.2, seed=1)
        for lo in range(0, stream.size, window // 2):
            hh.insert_many(stream[lo : lo + window // 2])
            ew.insert_many(stream[lo : lo + window // 2])
        truly_heavy = [
            int(k) for k in ew.distinct_keys() if ew.frequency(int(k)) >= 100
        ]
        reported = {k for k, _ in hh.heavy_hitters()}
        for k in truly_heavy:
            assert k in reported

    def test_cooled_keys_expire(self):
        window = 1024
        hh = HeavyHitters(window, threshold=50)
        hh.insert_many(np.full(200, 5, dtype=np.uint64))
        assert 5 in {k for k, _ in hh.heavy_hitters()}
        # flood with other traffic for several windows
        hh.insert_many(np.arange(1000, 1000 + 6 * window, dtype=np.uint64) % np.uint64(10**6))
        assert 5 not in {k for k, _ in hh.heavy_hitters()}

    def test_candidate_cap(self):
        window = 1024
        hh = HeavyHitters(window, threshold=1, max_candidates=10)
        hh.insert_many(np.arange(500, dtype=np.uint64))
        assert len(hh.heavy_hitters()) <= 10

    def test_custom_sketch_window_mismatch(self):
        with pytest.raises(ValueError):
            HeavyHitters(100, 5, sketch=SheCountMin(200, 256))

    def test_memory_accounting(self):
        hh = HeavyHitters(256, 5, num_counters=256)
        assert hh.memory_bytes > hh.sketch.memory_bytes

    def test_reset(self):
        hh = HeavyHitters(256, 2)
        hh.insert_many(np.full(10, 3, dtype=np.uint64))
        hh.reset()
        assert hh.heavy_hitters() == []


class TestAnomalyDetector:
    def test_flags_cardinality_spike(self):
        window = 2048
        base = caida_like(8 * window, window, seed=5).items.copy()
        # inject a scan: a burst of unique keys mid-stream
        burst = (np.uint64(1) << np.uint64(50)) + np.arange(window, dtype=np.uint64)
        base[5 * window : 6 * window] = burst
        det = CardinalityAnomalyDetector(
            SheBitmap(window, 1 << 13, seed=6),
            check_every=window // 4,
            score_threshold=4.0,
        )
        events = det.insert_many(base)
        assert events, "the scan burst must be flagged"
        first = events[0]
        assert 5 * window <= first.t <= 7 * window
        assert first.estimate > first.baseline

    def test_quiet_stream_stays_quiet(self):
        window = 2048
        stream = caida_like(8 * window, window, seed=7).items
        det = CardinalityAnomalyDetector(
            SheBitmap(window, 1 << 13, seed=8),
            check_every=window // 4,
            score_threshold=6.0,
        )
        events = det.insert_many(stream)
        assert len(events) <= 1  # estimator noise may blip once at most

    def test_baseline_not_poisoned_by_anomaly(self):
        window = 1024
        det = CardinalityAnomalyDetector(
            SheBitmap(window, 1 << 12, seed=9),
            check_every=window // 2,
            score_threshold=3.0,
            warmup_checks=2,
        )
        steady = (np.arange(6 * window, dtype=np.uint64) % np.uint64(50))
        det.insert_many(steady)
        baseline_before = det.baseline
        burst = (np.uint64(1) << np.uint64(51)) + np.arange(window, dtype=np.uint64)
        det.insert_many(burst)
        # flagged checks do not move the baseline
        assert det.baseline == pytest.approx(baseline_before, rel=0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            CardinalityAnomalyDetector(SheBitmap(64, 128), check_every=0)
