"""Integration tests asserting the paper's headline *shapes*.

Absolute numbers differ from the paper (different substrate, reduced
scale); these tests pin down the qualitative results §7 reports: who
wins, by roughly what factor, and where the memory floors bite.
Marked slow-ish: each runs a real multi-window experiment.
"""

import numpy as np
import pytest

from repro.datasets import caida_like, distinct_stream, relevant_pair
from repro.harness import Scale
from repro.harness.builders import (
    build_cardinality_bitmap,
    build_frequency,
    build_membership,
    build_similarity,
)
from repro.harness.runners import (
    run_cardinality,
    run_frequency,
    run_membership,
    run_similarity,
)

SCALE = Scale(window=1 << 12, n_windows=3, warm_windows=2)


def _trace(seed=42):
    return caida_like(SCALE.stream_items, 2 * SCALE.window, seed=seed).items


class TestFig9dMembership:
    """SHE-BF's FPR is orders of magnitude below the timestamp filters."""

    def test_she_bf_beats_tobf_by_10x_at_low_memory(self):
        budget = SCALE.memory(128 * 1024)
        panel = build_membership(SCALE.window, budget)
        out = run_membership(panel, _trace(), SCALE, n_queries=4000)
        she = np.mean(out["SHE-BF"])
        tobf = np.mean(out["TOBF"])
        assert she * 10 < tobf + 1e-9

    def test_she_bf_no_false_negatives_end_to_end(self):
        from repro.exact import ExactWindow

        budget = SCALE.memory(256 * 1024)
        bf = build_membership(SCALE.window, budget)["SHE-BF"]
        ew = ExactWindow(SCALE.window)
        tr = _trace(7)
        bf.insert_many(tr)
        ew.insert_many(tr)
        assert np.all(bf.contains_many(ew.distinct_keys()))


class TestFig9aCardinality:
    """SHE-BM beats TSV/CVS at small memory; SWAMP can't even exist."""

    def test_swamp_has_memory_floor(self):
        budget = SCALE.memory(2 * 1024)
        panel = build_cardinality_bitmap(SCALE.window, budget)
        assert "SWAMP" not in panel

    def test_she_bm_beats_tsv_at_small_memory(self):
        budget = SCALE.memory(2 * 1024)
        panel = build_cardinality_bitmap(SCALE.window, budget)
        out = run_cardinality(panel, _trace(), SCALE)
        assert np.mean(out["SHE-BM"]) < 0.5 * np.mean(out["TSV"])

    def test_she_bm_usable_where_others_fail(self):
        budget = SCALE.memory(1024)
        panel = build_cardinality_bitmap(SCALE.window, budget)
        out = run_cardinality(panel, _trace(), SCALE)
        assert np.mean(out["SHE-BM"]) < 0.35  # a usable estimate


class TestFig9cFrequency:
    """SHE-CM usable at budgets where ECM collapses."""

    def test_she_cm_beats_ecm_at_small_memory(self):
        budget = SCALE.memory(512 * 1024)
        panel = build_frequency(SCALE.window, budget)
        assert "SHE-CM" in panel
        out = run_frequency(panel, _trace(), SCALE, n_queries=200)
        she = np.mean(out["SHE-CM"])
        if "ECM" in panel:
            assert she < np.mean(out["ECM"])
        assert she < 2.0


class TestFig9eSimilarity:
    """SHE-MH beats the straw-man at equal memory."""

    def test_she_mh_beats_strawman(self):
        # unscaled 4 KB: at this window the scaled budget leaves too few
        # counters for either estimator to be meaningful
        budget = 4 * 1024
        errs = {"SHE-MH": [], "Straw": []}
        for seed in range(3):
            a, b = relevant_pair(SCALE.stream_items, SCALE.window, overlap=0.5, seed=3 + seed)
            panel = build_similarity(SCALE.window, budget, seed=seed)
            out = run_similarity(panel, (a.items, b.items), SCALE)
            for k in errs:
                errs[k].extend(out[k])
        assert np.mean(errs["SHE-MH"]) < np.mean(errs["Straw"])


class TestFig8Ages:
    """FPR decays with item age until the relaxed window, then floors."""

    def test_fpr_monotone_decay_with_age(self):
        from repro.core import SheBloomFilter

        n = 2048
        alpha = 1.0
        stream = distinct_stream(8 * n, seed=9).items
        bf = SheBloomFilter(n, 1 << 15, alpha=alpha, num_hashes=8)
        bf.insert_many(stream)
        t = bf.now()
        rates = []
        for age_windows in (1.1, 1.6, 2.4):
            back = int(age_windows * n)
            sample = stream[t - back : t - back + 400]
            rates.append(float(bf.contains_many(sample).mean()))
        # within the relaxed window (1+alpha)N = 2N the FPR decays
        assert rates[0] > rates[1] > rates[2] - 0.05
        # beyond the relaxed window it sits at the hash-collision floor
        assert rates[2] < 0.2


class TestThroughputOrdering:
    """Fig. 10/11: SHE stays near the fixed-window original's speed."""

    def test_she_bm_within_5x_of_ideal(self):
        from repro.core import SheBitmap
        from repro.fixed import Bitmap
        from repro.metrics import measure_throughput

        trace = _trace(11)
        she = measure_throughput(SheBitmap(SCALE.window, 1 << 13), trace)
        ideal = measure_throughput(Bitmap(1 << 13), trace)
        assert she.mips > ideal.mips / 5

    def test_she_hll_faster_than_shll(self):
        from repro.baselines import SlidingHyperLogLog
        from repro.core import SheHyperLogLog
        from repro.metrics import measure_throughput

        trace = _trace(12)
        she = measure_throughput(SheHyperLogLog(SCALE.window, 1024), trace)
        shll = measure_throughput(SlidingHyperLogLog(SCALE.window, 1024), trace)
        assert she.mips > shll.mips
