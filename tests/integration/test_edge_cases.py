"""Edge cases and failure injection across the package.

Adversarial streams (single hot key, all-distinct floods, long
silences), extreme key values, degenerate sizes, and clock jumps —
the conditions a production deployment hits that benchmarks do not.
"""

import numpy as np
import pytest

from repro.baselines import Swamp, TimingBloomFilter
from repro.core import (
    SheBitmap,
    SheBloomFilter,
    SheCountMin,
    SheHyperLogLog,
    SheMinHash,
)
from repro.exact import ExactWindow

ALL_FRAMES = ["hardware", "software"]


class TestExtremeKeys:
    @pytest.mark.parametrize("frame", ALL_FRAMES)
    def test_max_uint64_keys(self, frame):
        bf = SheBloomFilter(64, 1024, frame=frame)
        keys = np.asarray([0, 1, 2**64 - 1, 2**63], dtype=np.uint64)
        bf.insert_many(keys)
        assert np.all(bf.contains_many(keys))

    def test_key_zero_everywhere(self):
        for cls, args in [
            (SheBloomFilter, (64, 1024)),
            (SheBitmap, (64, 1024)),
            (SheHyperLogLog, (64, 64)),
            (SheCountMin, (64, 128)),
        ]:
            sk = cls(*args)
            sk.insert(0)  # must not crash or alias strangely
            assert sk.now() == 1


class TestDegenerateSizes:
    def test_single_group_bloom(self):
        bf = SheBloomFilter(16, 64, group_width=64)
        bf.insert_many(np.arange(10, dtype=np.uint64))
        assert bf.frame.num_groups == 1
        assert bf.contains(5)

    def test_window_of_one(self):
        bf = SheBloomFilter(1, 1024, alpha=3.0)
        bf.insert(7)
        assert bf.contains(7)

    def test_one_register_hll(self):
        h = SheHyperLogLog(16, 1)
        h.insert_many(np.arange(100, dtype=np.uint64))
        assert np.isfinite(h.cardinality())

    def test_minhash_single_counter(self):
        mh = SheMinHash(16, 1)
        mh.insert(0, 5)
        mh.insert(1, 5)
        assert mh.similarity() in (0.0, 1.0)


class TestAdversarialStreams:
    @pytest.mark.parametrize("frame", ALL_FRAMES)
    def test_single_hot_key_forever(self, frame):
        """One key repeated for many windows: cardinality stays ~1."""
        bm = SheBitmap(256, 4096, frame=frame)
        bm.insert_many(np.full(4096, 42, dtype=np.uint64))
        assert bm.cardinality() < 20

    @pytest.mark.parametrize("frame", ALL_FRAMES)
    def test_distinct_flood_then_silence_of_inserts(self, frame):
        """CM under an all-distinct flood: hot key count stays honest."""
        cm = SheCountMin(256, 1 << 14, frame=frame, alpha=1.0)
        cm.insert_many(np.full(64, 7, dtype=np.uint64))
        flood = (np.uint64(1) << np.uint64(40)) + np.arange(192, dtype=np.uint64)
        cm.insert_many(flood)
        est = cm.frequency(7)
        assert 64 <= est <= 64 + 30  # overestimate only by collisions

    def test_alternating_bursts(self):
        """Window alternates between two disjoint populations."""
        n = 512
        bm = SheBitmap(n, 1 << 13)
        ew = ExactWindow(n)
        a = np.arange(0, 400, dtype=np.uint64)
        b = np.arange(10_000, 10_400, dtype=np.uint64)
        for phase in range(8):
            block = a if phase % 2 == 0 else b
            sel = np.resize(block, n // 2)
            bm.insert_many(sel)
            ew.insert_many(sel)
        est, true = bm.cardinality(), ew.cardinality()
        assert abs(est - true) / true < 0.5

    def test_all_keys_same_group(self):
        """Keys engineered into one group: SHE still answers sanely."""
        bf = SheBloomFilter(64, 4096, num_hashes=2, group_width=64, seed=1)
        # brute-force keys whose both hashes land in group 0
        keys = []
        k = 0
        while len(keys) < 20 and k < 200_000:
            idx = bf.hashes.indices(np.asarray([k], dtype=np.uint64), bf.num_bits)[0]
            if np.all(idx // 64 == 0):
                keys.append(k)
            k += 1
        if len(keys) >= 5:
            arr = np.asarray(keys, dtype=np.uint64)
            bf.insert_many(arr)
            assert np.all(bf.contains_many(arr))


class TestClockJumps:
    @pytest.mark.parametrize("frame", ALL_FRAMES)
    def test_huge_gap_between_batches(self, frame):
        """A sketch idle for 1000 windows then resumed stays correct."""
        from repro.core.timebase import TimedStream

        bf = SheBloomFilter(100, 2048, alpha=1.0, frame=frame)
        ts = TimedStream(bf)
        ts.insert_many(np.arange(50, dtype=np.uint64), np.arange(50, dtype=np.int64))
        # resume after 1000 windows of silence
        late_keys = 1000 + np.arange(50, dtype=np.uint64)
        late_times = 100_000 + np.arange(50, dtype=np.int64)
        ts.insert_many(late_keys, late_times)
        assert np.all(bf.contains_many(late_keys))

    def test_query_far_future(self):
        bm = SheBitmap(128, 2048)
        bm.insert_many(np.arange(100, dtype=np.uint64))
        # as-of a far-future instant everything has expired (with the
        # known caveat that untouched marks may wrap; query-time ages
        # still classify every group, so the estimate must be finite)
        assert np.isfinite(bm.cardinality(t=10**9))


class TestBaselineEdges:
    def test_swamp_window_one(self):
        sw = Swamp(1, 16)
        sw.insert(5)
        sw.insert(6)
        assert not sw.contains(5)
        assert sw.contains(6)

    def test_tbf_minimum_viable_wrap(self):
        # smallest counter width that satisfies wrap > 2N
        tbf = TimingBloomFilter(10, 64, counter_bits=5)  # wrap 32 > 20
        tbf.insert_many(np.arange(100, dtype=np.uint64))
        assert tbf.contains(99)

    def test_exact_window_uint64_range(self):
        w = ExactWindow(4)
        w.insert(2**64 - 1)
        assert w.contains(2**64 - 1)


class TestResetReuse:
    @pytest.mark.parametrize("frame", ALL_FRAMES)
    def test_reset_gives_fresh_behaviour(self, frame):
        """After reset, a sketch behaves exactly like a new one."""
        stream = np.random.default_rng(3).integers(0, 300, size=500, dtype=np.uint64)
        a = SheBloomFilter(64, 1024, frame=frame, seed=2)
        a.insert_many(np.arange(100, dtype=np.uint64))
        a.reset()
        b = SheBloomFilter(64, 1024, frame=frame, seed=2)
        a.insert_many(stream)
        b.insert_many(stream)
        assert np.array_equal(a.frame.cells, b.frame.cells)
