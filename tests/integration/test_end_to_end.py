"""End-to-end integration: whole-package flows a user would run."""

import numpy as np
import pytest

import repro
from repro import (
    ExactJaccard,
    ExactWindow,
    SheBitmap,
    SheBloomFilter,
    SheCountMin,
    SheHyperLogLog,
    SheMinHash,
)
from repro.datasets import caida_like, relevant_pair


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestFourTasksOneStream:
    """All single-stream sketches digest the same trace coherently."""

    @pytest.fixture(scope="class")
    def state(self):
        window = 1 << 12
        trace = caida_like(6 * window, 2 * window, seed=17).items
        sketches = {
            "bf": SheBloomFilter(window, 1 << 16),
            "bm": SheBitmap(window, 1 << 13),
            "hll": SheHyperLogLog(window, 2048),
            "cm": SheCountMin(window, 1 << 14),
        }
        oracle = ExactWindow(window)
        step = window // 2
        for lo in range(0, trace.size, step):
            chunk = trace[lo : lo + step]
            oracle.insert_many(chunk)
            for sk in sketches.values():
                sk.insert_many(chunk)
        return window, trace, sketches, oracle

    def test_clocks_agree(self, state):
        window, trace, sketches, oracle = state
        for sk in sketches.values():
            assert sk.now() == trace.size

    def test_membership_consistent(self, state):
        _, _, sketches, oracle = state
        members = oracle.distinct_keys()
        assert np.all(sketches["bf"].contains_many(members))

    def test_cardinalities_agree_with_oracle(self, state):
        _, _, sketches, oracle = state
        true_c = oracle.cardinality()
        for name in ("bm", "hll"):
            est = sketches[name].cardinality()
            assert abs(est - true_c) / true_c < 0.5, name

    def test_frequencies_sane(self, state):
        _, _, sketches, oracle = state
        keys = oracle.distinct_keys()[:100]
        est = sketches["cm"].frequency_many(keys)
        true = oracle.frequency_many(keys)
        assert np.mean(est >= true) > 0.9

    def test_memory_reporting(self, state):
        _, _, sketches, _ = state
        for sk in sketches.values():
            assert sk.memory_bytes > 0


class TestSimilarityFlow:
    def test_tracks_exact_jaccard(self):
        window = 1 << 11
        a, b = relevant_pair(5 * window, window, overlap=0.6, seed=23)
        mh = SheMinHash(window, 512)
        ej = ExactJaccard(window)
        step = window // 2
        for lo in range(0, a.items.size, step):
            for side, s in ((0, a.items), (1, b.items)):
                mh.insert_many(side, s[lo : lo + step])
                ej.insert_many(side, s[lo : lo + step])
        assert abs(mh.similarity() - ej.similarity()) < 0.15


class TestFrameAgreement:
    """Hardware and software frames give statistically similar answers."""

    def test_bf_answers_mostly_agree(self):
        window = 1 << 10
        trace = caida_like(4 * window, window, seed=29).items
        hw = SheBloomFilter(window, 1 << 14, frame="hardware", seed=3)
        sw = SheBloomFilter(window, 1 << 14, frame="software", seed=3)
        hw.insert_many(trace)
        sw.insert_many(trace)
        probes = np.unique(trace)[:500]
        agree = np.mean(hw.contains_many(probes) == sw.contains_many(probes))
        assert agree > 0.95


class TestSoftwareVsHardwareAccuracy:
    def test_bm_estimates_close(self):
        window = 1 << 11
        trace = caida_like(5 * window, window, seed=31).items
        hw = SheBitmap(window, 1 << 13, frame="hardware", seed=4)
        sw = SheBitmap(window, 1 << 13, frame="software", seed=4)
        hw.insert_many(trace)
        sw.insert_many(trace)
        a, b = hw.cardinality(), sw.cardinality()
        assert abs(a - b) / max(a, b) < 0.3
