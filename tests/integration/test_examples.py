"""Smoke tests: every example script runs end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).resolve().parents[2] / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must narrate what they show"


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "network_monitoring",
        "cardinality_dashboard",
        "similarity_drift",
        "fpga_pipeline_demo",
        "persistent_timed_monitor",
    } <= names
