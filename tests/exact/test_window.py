"""Tests for the exact sliding-window oracle."""

import numpy as np
import pytest

from repro.exact import ExactWindow


class TestExactWindow:
    def test_below_capacity(self):
        w = ExactWindow(10)
        w.insert_many([1, 2, 2, 3])
        assert w.cardinality() == 3
        assert w.frequency(2) == 2
        assert w.contains(1)
        assert not w.contains(9)

    def test_eviction(self):
        w = ExactWindow(3)
        w.insert_many([1, 2, 3, 4])
        assert not w.contains(1)
        assert w.contains(2)
        assert w.cardinality() == 3

    def test_duplicate_eviction_keeps_count(self):
        w = ExactWindow(3)
        w.insert_many([5, 5, 5, 5])
        assert w.frequency(5) == 3

    def test_matches_bruteforce(self):
        rng = np.random.default_rng(0)
        stream = rng.integers(0, 20, size=500, dtype=np.uint64)
        w = ExactWindow(37)
        for i, k in enumerate(stream):
            w.insert(int(k))
            lo = max(0, i + 1 - 37)
            window = stream[lo : i + 1].tolist()
            assert w.cardinality() == len(set(window))
            if i % 50 == 0:
                for probe in range(0, 20, 5):
                    assert w.frequency(probe) == window.count(probe)

    def test_items_order(self):
        w = ExactWindow(4)
        w.insert_many([1, 2, 3, 4, 5, 6])
        assert w.items().tolist() == [3, 4, 5, 6]

    def test_items_before_full(self):
        w = ExactWindow(10)
        w.insert_many([1, 2, 3])
        assert w.items().tolist() == [1, 2, 3]

    def test_distinct_keys_match_key_set(self):
        w = ExactWindow(8)
        w.insert_many([1, 1, 2, 3])
        assert set(w.distinct_keys().tolist()) == w.key_set() == {1, 2, 3}

    def test_contains_many(self):
        w = ExactWindow(4)
        w.insert_many([10, 11])
        out = w.contains_many(np.asarray([10, 11, 12], dtype=np.uint64))
        assert out.tolist() == [True, True, False]

    def test_frequency_many(self):
        w = ExactWindow(6)
        w.insert_many([1, 1, 2])
        out = w.frequency_many(np.asarray([1, 2, 3], dtype=np.uint64))
        assert out.tolist() == [2, 1, 0]

    def test_reset(self):
        w = ExactWindow(4)
        w.insert_many([1, 2])
        w.reset()
        assert w.cardinality() == 0
        assert w.t == 0

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            ExactWindow(0)

    def test_memory_grows_with_content(self):
        w = ExactWindow(100)
        empty = w.memory_bytes
        w.insert_many(np.arange(100, dtype=np.uint64))
        assert w.memory_bytes > empty
