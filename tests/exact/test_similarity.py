"""Tests for the exact Jaccard oracle."""

import numpy as np
import pytest

from repro.exact import ExactJaccard, jaccard


class TestJaccardFunction:
    def test_identical(self):
        assert jaccard({1, 2}, {1, 2}) == 1.0

    def test_disjoint(self):
        assert jaccard({1}, {2}) == 0.0

    def test_half(self):
        assert jaccard({1, 2}, {2, 3}) == pytest.approx(1 / 3)

    def test_empty_sets(self):
        assert jaccard(set(), set()) == 0.0

    def test_one_empty(self):
        assert jaccard({1}, set()) == 0.0


class TestExactJaccard:
    def test_windowed_similarity(self):
        ej = ExactJaccard(4)
        ej.insert_many(0, [1, 2, 3, 4])
        ej.insert_many(1, [3, 4, 5, 6])
        assert ej.similarity() == pytest.approx(2 / 6)

    def test_expiry_changes_similarity(self):
        ej = ExactJaccard(2)
        ej.insert_many(0, [1, 2])
        ej.insert_many(1, [1, 2])
        assert ej.similarity() == 1.0
        ej.insert_many(0, [7, 8])
        assert ej.similarity() == 0.0

    def test_rejects_bad_side(self):
        ej = ExactJaccard(4)
        with pytest.raises(ValueError):
            ej.insert(3, 1)
        with pytest.raises(ValueError):
            ej.insert_many(-1, [1])

    def test_reset(self):
        ej = ExactJaccard(4)
        ej.insert(0, 1)
        ej.insert(1, 1)
        ej.reset()
        assert ej.similarity() == 0.0
