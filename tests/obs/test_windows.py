"""Sliding-window telemetry: quantile sketch, stage recorder, views.

The telemetry layer eats what the repo serves: the windowed quantile
sketch is a SHE frame (expiry by the union-stream clock, merge by cell
addition) under a DDSketch-style log-bucket mapping, the stage recorder
attributes engine hot-path latency through it, and the registry view
derives last-1m/5m/1h rates and quantiles from scrape-time snapshots.
These tests pin each piece in isolation with injected clocks; the
end-to-end serving contract lives in
``tests/service/test_windowed_kind.py`` and the alerting acceptance in
``tests/service/test_slo_alerts.py``.
"""

import math

import numpy as np
import pytest

from repro.core import merge_sketches, mergeable
from repro.core.registry import get_descriptor, registered_kinds
from repro.obs.registry import Registry
from repro.obs.windows import (
    ENGINE_STAGES,
    NULL_STAGES,
    ExemplarReservoir,
    SheWindowedQuantile,
    StageLatencyRecorder,
    WindowedRegistryView,
    _bucket_quantile,
)
from repro.persist import load_sketch, save_sketch

GAMMA = 0.05


class TestBucketMapping:
    def test_small_values_share_bucket_zero(self):
        wq = SheWindowedQuantile(256, 128, gamma=GAMMA)
        assert list(wq.bucket_of([0, 1])) == [0, 0]
        assert wq.representative(0) == 1.0

    def test_round_trip_is_gamma_relative(self):
        wq = SheWindowedQuantile(256, 256, gamma=GAMMA)
        values = np.geomspace(2, 1e5, num=200)
        buckets = wq.bucket_of(values)
        # nearest-bucket rounding: representative within sqrt(base) of
        # the value, i.e. gamma + O(gamma^2) relative error
        bound = math.sqrt((1 + GAMMA) / (1 - GAMMA)) - 1 + 1e-9
        for v, b in zip(values, buckets):
            rep = wq.representative(int(b))
            assert abs(rep - v) / v <= bound

    def test_huge_values_saturate_into_the_top_bucket(self):
        wq = SheWindowedQuantile(256, 64, gamma=GAMMA)
        assert int(wq.bucket_of([1e30])[0]) == wq.num_cells_total - 1

    def test_gamma_validation(self):
        with pytest.raises(ValueError, match="gamma"):
            SheWindowedQuantile(256, 128, gamma=0.0)
        with pytest.raises(ValueError, match="gamma"):
            SheWindowedQuantile(256, 128, gamma=1.0)


class TestWindowedQuantile:
    def test_matches_exact_quantiles_within_gamma(self):
        wq = SheWindowedQuantile(1 << 12, 256, gamma=GAMMA)
        rng = np.random.default_rng(0)
        values = rng.lognormal(mean=8.0, sigma=1.0, size=2000).astype(np.uint64)
        values = np.maximum(values, 2)
        wq.insert_many(values)
        for q in (0.5, 0.95, 0.99):
            exact = float(np.quantile(values, q))
            est = wq.quantile(q)
            # one gamma band for the bucket representative plus one for
            # the rank landing at a bucket boundary
            assert abs(est - exact) / exact <= 3 * GAMMA

    def test_empty_window_is_nan(self):
        wq = SheWindowedQuantile(256, 128)
        assert math.isnan(wq.quantile(0.5))
        assert wq.quantiles([0.5, 0.99]) == pytest.approx(
            [float("nan")] * 2, nan_ok=True
        )
        assert wq.sample_count() == 0

    def test_q_out_of_range_raises(self):
        wq = SheWindowedQuantile(256, 128)
        wq.insert_many(np.asarray([10], dtype=np.uint64))
        with pytest.raises(ValueError, match="q must be"):
            wq.quantile(1.5)
        with pytest.raises(ValueError, match="q must be"):
            wq.quantiles([0.5, -0.1])

    def test_old_samples_expire_with_the_window(self):
        window = 256
        wq = SheWindowedQuantile(window, 128, gamma=GAMMA)
        wq.insert_many(np.full(window, 10, dtype=np.uint64))
        assert wq.quantile(0.5) < 100
        # push three windows of large samples: the small ones are far
        # outside the legality band and must be cleaned out
        wq.insert_many(np.full(3 * window, 100_000, dtype=np.uint64))
        assert wq.quantile(0.01) > 1000
        assert wq.sample_count() <= 3 * window

    def test_merge_equals_single_observer(self):
        a = SheWindowedQuantile(1024, 256, gamma=GAMMA, seed=5)
        b = a.clone_empty()
        rng = np.random.default_rng(1)
        values = rng.integers(2, 1 << 20, size=400, dtype=np.uint64)
        a.insert_many(values[:200])
        b.advance_to(200)
        b.insert_many(values[200:])
        assert mergeable(a, b)
        merged = merge_sketches(a, b)
        whole = SheWindowedQuantile(1024, 256, gamma=GAMMA, seed=5)
        whole.insert_many(values)
        for q in (0.5, 0.9, 0.99):
            assert merged.quantile(q) == pytest.approx(whole.quantile(q))


class TestRegisteredKind:
    def test_wq_is_registered(self):
        assert "wq" in registered_kinds()
        desc = get_descriptor("wq")
        assert desc.cls is SheWindowedQuantile
        assert "quantile" in desc.queries

    def test_from_memory_budget(self):
        wq = get_descriptor("wq").from_memory(1 << 12, 2048, gamma=0.02)
        assert isinstance(wq, SheWindowedQuantile)
        assert wq.memory_bytes <= 2048
        assert wq.gamma == 0.02

    def test_persist_round_trip_keeps_gamma_and_cells(self, tmp_path):
        wq = SheWindowedQuantile(512, 128, gamma=0.03, seed=9)
        wq.insert_many(np.arange(2, 300, dtype=np.uint64))
        save_sketch(wq, tmp_path / "wq.npz")
        back = load_sketch(tmp_path / "wq.npz")
        assert isinstance(back, SheWindowedQuantile)
        assert back.gamma == 0.03
        assert np.array_equal(back.frame.cells, wq.frame.cells)
        assert back.quantile(0.9) == wq.quantile(0.9)


class TestExemplarReservoir:
    def test_none_trace_ids_are_skipped(self):
        res = ExemplarReservoir(lambda v: int(v))
        res.offer(3.0, None, now=0.0)
        assert res.read(now=0.0) == []

    def test_highest_buckets_first_with_limit(self):
        res = ExemplarReservoir(lambda v: int(v))
        for v in (1.0, 5.0, 9.0):
            res.offer(v, f"trace-{int(v)}", now=0.0)
        out = res.read(now=1.0, limit=2)
        assert [e["trace_id"] for e in out] == ["trace-9", "trace-5"]

    def test_min_bucket_filters_the_body_of_the_distribution(self):
        res = ExemplarReservoir(lambda v: int(v))
        res.offer(1.0, "low", now=0.0)
        res.offer(9.0, "high", now=0.0)
        out = res.read(min_bucket=5, now=0.0)
        assert [e["trace_id"] for e in out] == ["high"]

    def test_stale_exemplars_age_out(self):
        res = ExemplarReservoir(lambda v: int(v), max_age_s=10.0)
        res.offer(5.0, "old", now=0.0)
        assert res.read(now=5.0)[0]["trace_id"] == "old"
        assert res.read(now=11.0) == []

    def test_reservoir_counts_every_offer(self):
        res = ExemplarReservoir(lambda v: int(v), seed=1)
        ids = [f"t{i}" for i in range(50)]
        for tid in ids:
            res.offer(5.0, tid, now=0.0)
        (entry,) = res.read(now=0.0)
        assert entry["samples_seen"] == 50
        assert entry["trace_id"] in ids


class TestStageLatencyRecorder:
    def _recorder(self, reg=None, **kwargs):
        reg = reg if reg is not None else Registry()
        kwargs.setdefault("batch", 4)
        kwargs.setdefault("window", 512)
        return StageLatencyRecorder(reg, **kwargs), reg

    def test_unknown_stage_raises(self):
        rec, _ = self._recorder()
        with pytest.raises(ValueError, match="unknown stage"):
            rec.observe("warp", 0.001)

    def test_quantile_reads_back_in_seconds(self):
        rec, _ = self._recorder()
        for _ in range(32):
            rec.observe("admit", 0.002)
        est = rec.quantile("admit", 0.5)
        assert est == pytest.approx(0.002, rel=3 * GAMMA)
        assert rec.quantile("flush_rpc", 0.5) is None

    def test_threshold_totals_count_bad_samples(self):
        rec, _ = self._recorder()
        rec.track_threshold("flush_rpc", 0.01)
        for s in (0.001, 0.002, 0.05, 0.2):
            rec.observe("flush_rpc", s)
        assert rec.threshold_totals("flush_rpc", 0.01) == (2, 4)
        with pytest.raises(ValueError, match="unknown stage"):
            rec.track_threshold("warp", 0.01)

    def test_refresh_publishes_quantile_and_exemplar_gauges(self):
        clk = [100.0]
        rec, reg = self._recorder(clock=lambda: clk[0])
        for i in range(16):
            rec.observe("stamp", 0.001, trace_id=f"aa{i:02d}")
        rec.observe("stamp", 0.5, trace_id="deadbeef")  # the tail outlier
        rec.refresh()
        snap = reg.snapshot()
        assert snap['engine_stage_latency_seconds{stage="stamp",quantile="0.5"}'] == (
            pytest.approx(0.001, rel=3 * GAMMA)
        )
        assert snap['engine_stage_latency_seconds{stage="stamp",quantile="0.99"}'] == (
            pytest.approx(0.5, rel=3 * GAMMA)
        )
        # the p99 outlier's trace id is advertised as an exemplar
        assert any(
            'engine_stage_exemplar_seconds{stage="stamp",trace_id="deadbeef"}' in k
            for k in snap
        )
        # refresh re-publishes: churned trace-id children do not pile up
        rec.refresh()
        families = {m.name: m for m in reg.metrics()}
        n_children = len(list(families["engine_stage_exemplar_seconds"].children()))
        assert n_children <= len(ENGINE_STAGES) * 3

    def test_statusz_section_shape(self):
        rec, _ = self._recorder()
        rec.observe("apply", 0.004, trace_id="cafe0001")
        section = rec.statusz_section()
        assert section["window_samples"] == 512
        apply = section["stages"]["apply"]
        assert apply["samples_total"] == 1
        assert apply["samples_in_window"] == 1
        assert apply["quantiles_s"]["0.5"] == pytest.approx(0.004, rel=3 * GAMMA)
        assert apply["exemplars"][0]["trace_id"] == "cafe0001"
        empty = section["stages"]["wal_append"]
        assert empty["quantiles_s"]["0.5"] is None

    def test_null_recorder_is_inert(self):
        assert NULL_STAGES.enabled is False
        NULL_STAGES.observe("anything", 1.0)
        NULL_STAGES.track_threshold("anything", 1.0)
        assert NULL_STAGES.threshold_totals("anything", 1.0) == (0, 0)
        assert NULL_STAGES.quantile("anything", 0.5) is None
        NULL_STAGES.refresh()
        assert NULL_STAGES.statusz_section() == {}


class TestWindowedRegistryView:
    def test_counter_rates_per_horizon(self):
        reg = Registry()
        clk = [1000.0]
        view = WindowedRegistryView(
            reg, horizons=(("1m", 60.0),), slots=6, clock=lambda: clk[0]
        )
        c = reg.counter("reqs_total", "requests")
        c.inc(100)
        view.refresh()  # first pass only seeds the ring
        assert 'reqs_rate{window="1m"}' not in reg.snapshot()
        c.inc(30)
        clk[0] += 30.0
        view.refresh()
        snap = reg.snapshot()
        assert snap['reqs_rate{window="1m"}'] == pytest.approx(1.0)
        assert view.statusz_section()["rates"]["reqs_total"]["1m"] == (
            pytest.approx(1.0)
        )

    def test_histogram_windowed_quantiles_see_only_the_delta(self):
        reg = Registry()
        clk = [2000.0]
        view = WindowedRegistryView(
            reg, horizons=(("1m", 60.0),), slots=6,
            quantiles=(0.5,), clock=lambda: clk[0]
        )
        h = reg.histogram("op_seconds", "ops", buckets=(0.1, 1.0))
        for _ in range(8):
            h.observe(0.05)  # old traffic, before the window
        view.refresh()
        for _ in range(4):
            h.observe(0.5)  # the windowed delta lives in (0.1, 1.0]
        clk[0] += 30.0
        view.refresh()
        snap = reg.snapshot()
        est = snap['op_windowed_seconds{window="1m",quantile="0.5"}']
        assert 0.1 < est <= 1.0  # old 0.05s samples are outside the window
        assert view.statusz_section()["quantiles"]["op_seconds"]["1m"]["0.5"] == (
            pytest.approx(est)
        )

    def test_rates_age_out_of_the_horizon(self):
        reg = Registry()
        clk = [3000.0]
        view = WindowedRegistryView(
            reg, horizons=(("1m", 60.0),), slots=6, clock=lambda: clk[0]
        )
        c = reg.counter("burst_total")
        c.inc(600)
        view.refresh()
        for _ in range(6):  # rotate the whole ring past the burst
            clk[0] += 20.0
            view.refresh()
        assert reg.snapshot()['burst_rate{window="1m"}'] == pytest.approx(0.0)

    def test_derived_gauges_are_never_windowed_again(self):
        reg = Registry()
        clk = [4000.0]
        view = WindowedRegistryView(
            reg, horizons=(("1m", 60.0),), slots=6, clock=lambda: clk[0]
        )
        reg.counter("x_total").inc(5)
        for _ in range(3):
            clk[0] += 10.0
            view.refresh()
        names = {m.name for m in reg.metrics()}
        assert "x_rate" in names
        assert "x_rate_rate" not in names

    def test_labelled_families_window_per_child(self):
        reg = Registry()
        clk = [5000.0]
        view = WindowedRegistryView(
            reg, horizons=(("1m", 60.0),), slots=6, clock=lambda: clk[0]
        )
        c = reg.counter("shard_items_total", labels=("shard",))
        c.labels("0").inc(10)
        c.labels("1").inc(20)
        view.refresh()
        c.labels("0").inc(60)
        clk[0] += 30.0
        view.refresh()
        snap = reg.snapshot()
        assert snap['shard_items_rate{shard="0",window="1m"}'] == pytest.approx(2.0)
        assert snap['shard_items_rate{shard="1",window="1m"}'] == pytest.approx(0.0)

    def test_naming_rules(self):
        assert WindowedRegistryView.rate_name("x_total") == "x_rate"
        assert WindowedRegistryView.rate_name("x") == "x_rate"
        assert WindowedRegistryView.windowed_name("f_seconds") == "f_windowed_seconds"
        assert WindowedRegistryView.windowed_name("f_bytes") == "f_windowed_bytes"
        assert WindowedRegistryView.windowed_name("f") == "f_windowed"

    def test_needs_at_least_two_slots(self):
        with pytest.raises(ValueError, match="slots"):
            WindowedRegistryView(Registry(), slots=1)


class TestBucketQuantileHelper:
    def test_interpolates_inside_a_bucket(self):
        # 4 samples in (0.1, 1.0]: the median sits halfway up the bucket
        est = _bucket_quantile((0.1, 1.0), [0, 4, 0], 0.5)
        assert est == pytest.approx(0.55)

    def test_inf_bucket_answers_with_the_top_bound(self):
        assert _bucket_quantile((0.1, 1.0), [0, 0, 3], 0.5) == pytest.approx(1.0)

    def test_empty_is_none(self):
        assert _bucket_quantile((0.1, 1.0), [0, 0, 0], 0.5) is None
