"""HTTP exporter endpoints against a live serial engine."""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.obs import MetricsExporter
from repro.service import EngineConfig, StreamEngine


def _cfg(**over):
    base = dict(
        kind="bf",
        window=1 << 12,
        size=1 << 13,
        num_shards=2,
        flush_batch_size=256,
        flush_interval_s=None,
    )
    base.update(over)
    return EngineConfig(**base)


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.headers.get("Content-Type"), resp.read()


@pytest.fixture
def engine():
    with StreamEngine(_cfg(), obs=True) as eng:
        keys = np.random.default_rng(3).integers(
            0, 1 << 40, size=5000, dtype=np.uint64
        )
        eng.ingest(keys)
        eng.flush()
        yield eng


class TestEndpoints:
    def test_metrics_text_format_and_names(self, engine):
        with MetricsExporter(engine) as exp:
            status, ctype, body = _get(exp.url + "/metrics")
        assert status == 200
        assert ctype.startswith("text/plain; version=0.0.4")
        text = body.decode()
        for name in (
            "engine_items_ingested_total",
            "engine_shard_items_total",
            "engine_flush_seconds_bucket",
            "executor_apply_seconds_bucket",
            "she_young_cells",
            "she_cell_age_le",
            "engine_queue_depth",
        ):
            assert name in text, name

    def test_healthz_ok_then_degraded(self, engine):
        with MetricsExporter(engine) as exp:
            status, _, body = _get(exp.url + "/healthz")
            assert status == 200
            assert json.loads(body)["status"] == "ok"
            engine._down.add(1)  # simulate an unrecoverable shard
            try:
                with pytest.raises(urllib.error.HTTPError) as err:
                    _get(exp.url + "/healthz")
                assert err.value.code == 503
                degraded = json.loads(err.value.read())
                assert degraded["status"] == "degraded"
                assert degraded["down_shards"] == [1]
            finally:
                engine._down.clear()

    def test_statusz_serves_stats_and_probes(self, engine):
        with MetricsExporter(engine) as exp:
            status, ctype, body = _get(exp.url + "/statusz")
        assert status == 200
        assert ctype == "application/json"
        doc = json.loads(body)
        assert doc["stats"]["items_ingested"] == 5000
        assert doc["config"]["kind"] == "bf"
        assert doc["executor"] == "serial"
        assert doc["obs_enabled"] is True
        assert len(doc["probes"]) == 2
        assert doc["probes"][0]["frame"]["num_cells"] > 0

    def test_unknown_path_is_404(self, engine):
        with MetricsExporter(engine) as exp:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(exp.url + "/nope")
            assert err.value.code == 404

    def test_port_property_requires_start(self, engine):
        exp = MetricsExporter(engine)
        with pytest.raises(RuntimeError):
            exp.port
        exp.start()
        try:
            assert exp.port > 0
            assert exp.start() is exp  # idempotent
        finally:
            exp.stop()

    def test_statusz_and_metrics_grow_drift_section(self, engine):
        from repro.applications.drift.monitor import DriftMonitor

        mon = DriftMonitor(
            engine, kinds=("cardinality",), eval_every=1 << 10
        )
        keys = np.random.default_rng(11).integers(
            0, 1 << 12, size=1 << 13, dtype=np.uint64
        )
        mon.ingest(keys)
        with MetricsExporter(engine) as exp:
            _, _, status_body = _get(exp.url + "/statusz")
            _, _, metrics_body = _get(exp.url + "/metrics")
        drift = json.loads(status_body)["drift"]
        assert drift["state"] == "stable"
        assert drift["evaluations"] >= 1
        assert drift["coverage"]["degraded"] is False
        assert "cardinality" in drift["detector"]["members"]
        text = metrics_body.decode()
        assert 'drift_score{estimator="cardinality"}' in text
        assert 'drift_alarms_total{detector="composite"}' in text
        assert "drift_evaluations_total" in text

    def test_statusz_has_no_drift_section_without_monitor(self, engine):
        with MetricsExporter(engine) as exp:
            _, _, body = _get(exp.url + "/statusz")
        assert "drift" not in json.loads(body)

    def test_refresh_defaults_off_for_process_engines(self):
        with StreamEngine(_cfg(), executor="process", num_workers=2, obs=True) as eng:
            exp = MetricsExporter(eng)
            assert exp.refresh_probes is False
        with StreamEngine(_cfg(), obs=True) as eng:
            assert MetricsExporter(eng).refresh_probes is True
