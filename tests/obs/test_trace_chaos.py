"""Trace propagation survives chaos: slow workers and stalled RPCs.

The flush root span must keep its parent/child linkage to worker-side
apply spans when a :class:`ChaosExecutor` injects latency, and a
stalled worker that trips the RPC deadline must still file the root
span, tagged with the error class — exactly the situations where an
operator reaches for the trace ring.
"""

import os

import numpy as np
import pytest

from repro.service import EngineConfig, StreamEngine
from repro.service.errors import ShardTimeoutError
from repro.service.executor import ProcessExecutor
from repro.service.faults import ChaosExecutor


def _cfg(**kw):
    kw.setdefault("flush_batch_size", 100_000)  # explicit flush only
    kw.setdefault("flush_interval_s", None)
    kw.setdefault("sketch_kwargs", {"seed": 3})
    return EngineConfig("cm", window=4096, size=1024, num_shards=2, **kw)


class TestSlowWorkerPropagation:
    def test_worker_apply_spans_link_to_flush_root(self):
        chaos = {}

        def factory(shards):
            chaos["x"] = ChaosExecutor(
                ProcessExecutor(shards, num_workers=2, timeout_s=5.0),
                slow_workers={0: 0.05},
            )
            return chaos["x"]

        eng = StreamEngine(_cfg(), executor=factory, obs=True)
        try:
            eng.ingest(np.arange(2000, dtype=np.uint64))
            eng.flush()
            spans = eng.obs.tracer.spans()
            root = [s for s in spans if s.name == "engine.flush"][-1]
            workers = [
                s for s in eng.obs.tracer.spans(root.trace_id)
                if s.name == "worker.apply"
            ]
            assert len(workers) == 2
            assert {s.tags["shard"] for s in workers} == {0, 1}
            for span in workers:
                assert span.parent_id == root.span_id
                assert span.pid != os.getpid()  # measured inside the worker
            # the chaos latency is paid on the RPC, outside the worker's
            # measured apply section: attribution separates the two
            stages = eng.obs.stages
            assert stages.quantile("apply", 0.5) is not None
            assert stages.quantile("flush_rpc", 0.5) >= 0.05
        finally:
            eng.close()


class TestStalledWorkerRootSpan:
    def test_deadline_trip_files_the_root_span_with_error(self):
        chaos = {}

        def factory(shards):
            chaos["x"] = ChaosExecutor(
                ProcessExecutor(shards, num_workers=2, timeout_s=0.3)
            )
            return chaos["x"]

        eng = StreamEngine(
            _cfg(rpc_timeout_s=0.3), executor=factory, obs=True
        )
        try:
            eng.ingest(np.arange(1000, dtype=np.uint64))
            # stall the next op's worker past the ack deadline
            chaos["x"]._delay_ops = {chaos["x"].ops + 1: 1.0}
            with pytest.raises(ShardTimeoutError):
                eng.flush()
            roots = [
                s for s in eng.obs.tracer.spans()
                if s.name == "engine.flush"
            ]
            assert roots, "root span must be filed even on failure"
            assert roots[-1].tags["error"] == "ShardTimeoutError"
        finally:
            eng.close()
