"""SHE introspection probes: invariants over live sketch state."""

import numpy as np
import pytest

from repro.core import (
    SheBitmap,
    SheBloomFilter,
    SheCountMin,
    SheHyperLogLog,
    SheMinHash,
)
from repro.obs.probes import AGE_HIST_BINS, frame_probe

WINDOW = 1 << 10


def _keys(n, seed=0):
    return np.random.default_rng(seed).integers(0, 1 << 40, size=n, dtype=np.uint64)


def _check_frame_dict(fp):
    n = fp["num_cells"]
    assert fp["young_cells"] + fp["perfect_cells"] + fp["aged_cells"] == n
    assert 0.0 <= fp["fill_ratio"] <= 1.0
    assert fp["occupied_cells"] == round(fp["fill_ratio"] * n)
    assert 0.0 <= fp["legal_group_fraction"] <= 1.0
    hist = [fp["age_hist_le"][f"{b:g}"] for b in AGE_HIST_BINS]
    assert hist == sorted(hist), "age histogram must be cumulative"
    assert hist[-1] == n, "ages are modular in [0, Tcycle)"
    assert fp["t_cycle"] > fp["window"], "Tcycle must exceed N"


@pytest.mark.parametrize("frame", ["hardware", "software"])
@pytest.mark.parametrize(
    "cls,size",
    [
        (SheBloomFilter, 1 << 12),
        (SheBitmap, 1 << 12),
        (SheHyperLogLog, 1 << 8),
        (SheCountMin, 1 << 10),
    ],
)
def test_probe_invariants_single_frame(cls, size, frame):
    sk = cls(WINDOW, size, frame=frame)
    sk.insert_many(_keys(3 * WINDOW))
    p = sk.probe()
    assert p["kind"] == cls.__name__
    assert p["t"] == 3 * WINDOW
    assert p["memory_bytes"] == sk.memory_bytes
    _check_frame_dict(p["frame"])


def test_probe_reports_sketch_geometry():
    bf = SheBloomFilter(WINDOW, 1 << 12, num_hashes=3)
    assert bf.probe()["num_bits"] == 1 << 12
    assert bf.probe()["num_hashes"] == 3
    cm = SheCountMin(WINDOW, 1 << 10)
    assert cm.probe()["num_counters"] == 1 << 10
    hll = SheHyperLogLog(WINDOW, 1 << 8)
    assert hll.probe()["num_registers"] == 1 << 8


def test_probe_is_read_only():
    bf = SheBloomFilter(WINDOW, 1 << 12)
    bf.insert_many(_keys(2 * WINDOW))
    before = bf.frame.cells.copy()
    bf.probe()
    np.testing.assert_array_equal(bf.frame.cells, before)


def test_cleaning_counters_advance_past_tcycle():
    bf = SheBloomFilter(WINDOW, 1 << 12)
    fp0 = bf.probe()["frame"]
    assert fp0["cells_cleaned"] == 0 and fp0["cleaning_checks"] == 0
    # several Tcycles of stream: group resets must have happened
    bf.insert_many(_keys(6 * WINDOW))
    fp = bf.probe()["frame"]
    assert fp["cleaning_checks"] > 0
    assert fp["groups_cleaned"] > 0
    assert fp["cells_cleaned"] >= fp["groups_cleaned"]


def test_software_frame_counts_swept_cells():
    bm = SheBitmap(WINDOW, 1 << 12, frame="software")
    bm.insert_many(_keys(4 * WINDOW))
    fp = bm.probe()["frame"]
    assert fp["cleaning_checks"] > 0
    # constant-speed sweeper: cells and groups are the same unit (w=1 sweep)
    assert fp["cells_cleaned"] == fp["groups_cleaned"] > 0


def test_minhash_probe_reports_both_sides():
    mh = SheMinHash(WINDOW, 256)
    mh.insert_many(0, _keys(2 * WINDOW, seed=1))
    mh.insert_many(1, _keys(WINDOW, seed=2))
    p = mh.probe()
    assert p["kind"] == "SheMinHash"
    assert p["num_counters"] == 256
    assert len(p["frames"]) == 2
    assert p["t"] == 2 * WINDOW  # max of the two side clocks
    for fp in p["frames"]:
        _check_frame_dict(fp)


def test_frame_probe_on_raw_frame():
    bf = SheBloomFilter(WINDOW, 1 << 12)
    bf.insert_many(_keys(WINDOW // 2))
    fp = frame_probe(bf.frame, WINDOW // 2)
    _check_frame_dict(fp)
    assert fp["occupied_cells"] > 0
