"""SLO engine unit tests: burn math and alert state stepping.

Every test drives :class:`SloEngine` with an injected wall clock over a
real (tiny, serial) engine, feeding the availability counters directly
through :class:`EngineStats` — the ring/delta arithmetic and the
pending → firing → ok state machine are what is under test, not the
ingestion path (that is ``tests/service/test_slo_alerts.py``).
"""

import pytest

from repro.obs import Observability
from repro.obs.slo import (
    DEFAULT_RULES,
    FIRING,
    OK,
    PENDING,
    BurnRateRule,
    SloEngine,
    SloObjective,
)
from repro.service import EngineConfig, StreamEngine


@pytest.fixture
def engine():
    cfg = EngineConfig("cm", window=256, size=256, num_shards=1,
                       flush_interval_s=None, sketch_kwargs={"seed": 7})
    with StreamEngine(cfg, obs=True) as eng:
        yield eng


def make_slo(engine, clk, **kwargs):
    kwargs.setdefault(
        "objectives", (SloObjective(name="avail", target=0.9),)
    )
    kwargs.setdefault(
        "rules", (BurnRateRule("5m", "1h", 2.0, "page"),)
    )
    return SloEngine(engine, clock=lambda: clk[0], **kwargs)


class TestValidation:
    def test_target_must_be_a_ratio(self):
        with pytest.raises(ValueError, match="target"):
            SloObjective(name="x", target=99.9)

    def test_kind_must_be_known(self):
        with pytest.raises(ValueError, match="kind"):
            SloObjective(name="x", target=0.99, kind="durability")

    def test_latency_needs_threshold(self):
        with pytest.raises(ValueError, match="threshold_s"):
            SloObjective(name="x", target=0.99, kind="latency")

    def test_rule_windows_must_be_known(self):
        with pytest.raises(ValueError, match="unknown window"):
            BurnRateRule("2m", "1h", 14.4, "page")

    def test_rule_factor_must_be_positive(self):
        with pytest.raises(ValueError, match="factor"):
            BurnRateRule("5m", "1h", 0.0, "page")

    def test_latency_objective_needs_windowed_telemetry(self):
        cfg = EngineConfig("cm", window=256, size=256, num_shards=1)
        with StreamEngine(
            cfg, obs=Observability(enabled=True, telemetry=False)
        ) as eng:
            with pytest.raises(ValueError, match="windowed telemetry"):
                SloEngine(eng, objectives=(
                    SloObjective(name="lat", target=0.99, kind="latency",
                                 threshold_s=0.01),
                ))


class TestAvailabilityBurn:
    def test_healthy_stream_stays_ok(self, engine):
        clk = [10_000.0]
        slo = make_slo(engine, clk)
        engine.stats.record_ingest(1000)
        for _ in range(4):
            payload = slo.evaluate()
            clk[0] += 30.0
        assert all(a["state"] == OK for a in payload["alerts"])
        assert payload["firing"] == []

    def test_burn_rate_is_ratio_over_budget(self, engine):
        clk = [10_000.0]
        slo = make_slo(engine, clk)
        engine.stats.record_ingest(900)
        slo.evaluate()  # seeds the rings with the healthy baseline
        clk[0] += 30.0
        engine.stats.record_ingest(50)
        engine.stats.record_rejected(50)
        payload = slo.evaluate()
        # delta bad=50 over delta total=100 against a 10% budget -> burn 5
        (alert,) = payload["alerts"]
        assert alert["windows"]["5m"] == pytest.approx(50 / 100 / 0.1, abs=1e-3)

    def test_pending_then_firing_then_clear(self, engine):
        clk = [10_000.0]
        slo = make_slo(engine, clk)
        engine.stats.record_ingest(1000)
        slo.evaluate()  # baseline
        clk[0] += 30.0
        engine.stats.record_rejected(500)  # the regression
        p1 = slo.evaluate()
        assert p1["alerts"][0]["state"] == PENDING
        clk[0] += 30.0
        p2 = slo.evaluate()  # second consecutive burning evaluation
        assert p2["alerts"][0]["state"] == FIRING
        assert p2["firing"][0]["slo"] == "avail"
        # recovery: no new bad events; rotate the fast window clean
        for _ in range(8):
            clk[0] += 60.0
            p3 = slo.evaluate()
        assert p3["alerts"][0]["state"] == OK
        assert p3["firing"] == []

    def test_both_windows_must_burn(self, engine):
        # a pure blip: bad events whose 5m burn is huge but whose 1h
        # window has rotated... simulate by seeding the 1h ring early so
        # its delta dilutes below the factor while 5m stays hot
        clk = [10_000.0]
        slo = make_slo(
            engine, clk,
            rules=(BurnRateRule("5m", "1h", 5.0, "page"),),
        )
        engine.stats.record_ingest(10_000)
        slo.evaluate()
        clk[0] += 30.0
        # 100 bad of 10100 total: 1h burn ~ 0.099/0.1 ~ 1 < 5, but make
        # the 5m window see only the bad tail by a fresh 5m slot
        engine.stats.record_ingest(0)
        engine.stats.record_rejected(100)
        engine.stats.record_ingest(50)
        payload = slo.evaluate()
        (alert,) = payload["alerts"]
        burn_5m = alert["windows"]["5m"]
        burn_1h = alert["windows"]["1h"]
        assert burn_5m == burn_1h  # same baseline slot here: sanity
        # now force asymmetry: advance past the 5m horizon but not 1h
        for _ in range(8):
            clk[0] += 60.0
            payload = slo.evaluate()
        (alert,) = payload["alerts"]
        assert alert["windows"]["5m"] == pytest.approx(0.0)
        assert alert["windows"]["1h"] > 0.0
        assert alert["state"] == OK  # 1h alone cannot hold the alert


class TestLatencyObjective:
    def test_latency_bad_events_come_from_the_stage_recorder(self, engine):
        clk = [20_000.0]
        slo = make_slo(
            engine, clk,
            objectives=(SloObjective(name="lat", target=0.99, kind="latency",
                                     threshold_s=0.01, stage="flush_rpc"),),
        )
        stages = engine.obs.stages
        for _ in range(10):
            stages.observe("flush_rpc", 0.001)
        slo.evaluate()  # healthy baseline
        clk[0] += 30.0
        for _ in range(5):
            stages.observe("flush_rpc", 0.1)  # all above threshold
        p1 = slo.evaluate()
        clk[0] += 30.0
        p2 = slo.evaluate()
        assert p1["alerts"][0]["state"] == PENDING
        assert p2["alerts"][0]["state"] == FIRING
        assert p2["alerts"][0]["kind"] == "latency"


class TestSurfaces:
    def test_default_objective_and_rules(self, engine):
        clk = [30_000.0]
        slo = SloEngine(engine, clock=lambda: clk[0])
        assert [o.name for o in slo.objectives] == ["availability"]
        assert slo.rules == DEFAULT_RULES
        payload = slo.evaluate()
        assert {a["severity"] for a in payload["alerts"]} == {"page", "ticket"}

    def test_transitions_feed_metrics_and_timeline(self, engine):
        clk = [40_000.0]
        slo = make_slo(engine, clk)
        engine.stats.record_ingest(100)
        slo.evaluate()
        clk[0] += 30.0
        engine.stats.record_rejected(100)
        slo.evaluate()
        clk[0] += 30.0
        slo.evaluate()
        snap = engine.obs.registry.snapshot()
        assert snap['slo_alert_state{slo="avail",severity="page"}'] == 2.0
        assert snap['slo_alert_transitions_total{slo="avail",to="pending"}'] == 1.0
        assert snap['slo_alert_transitions_total{slo="avail",to="firing"}'] == 1.0
        section = slo.statusz_section()
        assert section["states"]["avail/page"] == FIRING
        transitions = [(e["from"], e["to"]) for e in section["timeline"]]
        assert transitions == [(OK, PENDING), (PENDING, FIRING)]
        assert section["objectives"][0]["name"] == "avail"

    def test_alertz_payload_without_evaluation(self, engine):
        clk = [50_000.0]
        slo = make_slo(engine, clk)
        slo.evaluate()
        before = slo.evaluations
        payload = slo.alertz_payload(evaluate=False)
        assert payload["evaluations"] == before
        assert slo.evaluations == before

    def test_engine_gains_the_slo_attribute(self, engine):
        slo = make_slo(engine, [0.0])
        assert engine._slo_engine is slo
