"""Span lifecycle, ring bounds, worker-record ingestion, JSON export."""

import json
import os

from repro.obs.tracing import NULL_TRACER, Tracer, new_id, span_record


class TestTracer:
    def test_span_records_duration_and_tags(self):
        t = [0.0]
        tracer = Tracer(clock=lambda: t[0])
        with tracer.span("work", items=3) as sp:
            t[0] = 0.25
            sp.tag(extra="yes")
        (span,) = tracer.spans()
        assert span.name == "work"
        assert span.duration_ms == 250.0
        assert span.tags == {"items": 3, "extra": "yes"}

    def test_fresh_trace_vs_propagated_context(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            trace_id, parent = root.context
            with tracer.span("child", trace_id=trace_id, parent_id=parent):
                pass
        child, root_span = tracer.spans()  # child exits first
        assert child.trace_id == root_span.trace_id
        assert child.parent_id == root_span.span_id
        assert root_span.parent_id is None

    def test_exception_tags_error_class(self):
        tracer = Tracer()
        try:
            with tracer.span("boom"):
                raise KeyError("x")
        except KeyError:
            pass
        assert tracer.spans()[0].tags["error"] == "KeyError"

    def test_ring_is_bounded(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer) == 4
        assert [s.name for s in tracer.spans()] == ["s6", "s7", "s8", "s9"]

    def test_ingest_worker_records(self):
        tracer = Tracer()
        rec = span_record("worker.apply", "tid", "pid0", 1.0, 2.5, shard=3)
        tracer.ingest([rec])
        (span,) = tracer.spans()
        assert span.trace_id == "tid"
        assert span.parent_id == "pid0"
        assert span.duration_ms == 2.5
        assert span.pid == os.getpid()
        assert span.tags == {"shard": 3}

    def test_spans_filtered_by_trace_and_dump(self):
        tracer = Tracer()
        with tracer.span("a") as sp:
            keep = sp.trace_id
        with tracer.span("b"):
            pass
        assert [s.name for s in tracer.spans(keep)] == ["a"]
        dumped = json.loads(tracer.dump_trace(keep))
        assert len(dumped) == 1 and dumped[0]["name"] == "a"
        tracer.clear()
        assert tracer.dump_trace() == "[]"


class TestNullTracer:
    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("anything", shard=1) as sp:
            sp.tag(more=2)
        assert sp.context is None
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.spans() == []
        assert NULL_TRACER.dump_trace() == "[]"
        assert not NULL_TRACER.enabled

    def test_null_span_is_shared(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")


def test_new_ids_are_unique_hex():
    ids = {new_id() for _ in range(64)}
    assert len(ids) == 64
    assert all(len(i) == 16 and int(i, 16) >= 0 for i in ids)
