"""Acceptance: one scrape shows windowed stage quantiles + exemplars.

A process-executor engine with WAL durability on the shared-memory
transport is driven through every hot-path stage (admit -> wal_append
-> stamp -> shm_acquire -> flush_rpc -> shm_release -> apply ->
query_fanin); a single ``/metrics`` + ``/statusz`` scrape must then
expose windowed p50/p95/p99 latency per stage and exemplar trace-ids
an operator can feed straight into the trace ring.
"""

import json
import re
import urllib.request

import numpy as np

from repro.obs.exporter import MetricsExporter
from repro.obs.windows import ENGINE_STAGES
from repro.service import EngineConfig, StreamEngine

QUANTILE_LABELS = ("0.5", "0.95", "0.99")


def _fetch(url):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.read().decode("utf-8")


class TestStageScrape:
    def _drive(self, eng):
        rng = np.random.default_rng(4)
        for _ in range(6):
            eng.ingest(rng.integers(0, 5000, size=800, dtype=np.uint64))
            eng.flush()
            eng.frequency(17)

    def test_metrics_and_statusz_cover_the_hot_path(self, tmp_path):
        cfg = EngineConfig("cm", window=8192, size=2048, num_shards=2,
                           wal_dir=str(tmp_path / "wal"),
                           flush_batch_size=100_000, flush_interval_s=None,
                           transport="shm",
                           sketch_kwargs={"seed": 2})
        with StreamEngine(cfg, executor="process", obs=True) as eng, \
                MetricsExporter(eng) as exp:
            self._drive(eng)
            text = _fetch(exp.url + "/metrics")

            for stage in ENGINE_STAGES:
                for q in QUANTILE_LABELS:
                    needle = (
                        f'engine_stage_latency_seconds{{stage="{stage}"'
                        f',quantile="{q}"}}'
                    )
                    assert needle in text, f"missing {needle}"

            exemplars = re.findall(
                r'engine_stage_exemplar_seconds\{stage="(\w+)"'
                r',trace_id="([0-9a-f]{16})"\}',
                text,
            )
            assert len(exemplars) >= 4
            # exemplars attribute traces to concrete stages, not one blob
            assert len({stage for stage, _ in exemplars}) >= 3

            status = json.loads(_fetch(exp.url + "/statusz"))
            stages = status["telemetry"]["stages"]["stages"]
            assert set(stages) == set(ENGINE_STAGES)
            populated = [
                s for s in ENGINE_STAGES
                if stages[s]["quantiles_s"]["0.5"] is not None
            ]
            assert len(populated) >= 4
            for stage in populated:
                qs = stages[stage]["quantiles_s"]
                assert qs["0.5"] <= qs["0.95"] <= qs["0.99"]
            traced = [
                e["trace_id"]
                for s in populated
                for e in stages[s]["exemplars"]
            ]
            assert traced and all(
                re.fullmatch(r"[0-9a-f]{16}", t) for t in traced
            )

            # the windowed registry view rides the same scrape: derived
            # rate gauges for the engine counters appear after a second
            # scrape establishes a delta baseline
            text2 = _fetch(exp.url + "/metrics")
            assert 'window="1m"' in text2
