"""Exposition-format pinning: golden file, label escaping, name lint.

Three layers of defence for the scrape surface:

* a golden file pins the exact text exposition (HELP/TYPE lines,
  histogram buckets, label escaping) so format drift is a reviewed
  diff, not a silent change;
* ``snapshot()`` key escaping is asserted directly (the /statusz and
  test surface shares the escaper with the renderer);
* every metric a fully-instrumented engine registers is linted against
  the Prometheus naming conventions the dashboards rely on.
"""

import re
from pathlib import Path

import numpy as np
import pytest

from repro.obs.registry import Registry
from repro.obs.slo import SloEngine
from repro.service import EngineConfig, StreamEngine

GOLDEN = Path(__file__).parent / "golden" / "exposition.txt"


def _demo_registry() -> Registry:
    """A registry covering every renderer branch, deterministically."""
    reg = Registry()
    c = reg.counter(
        "demo_requests_total", "Requests by path", labels=("path", "note")
    )
    c.labels("/metrics", "plain").inc(3)
    c.labels("C:\\temp\\trace", "back\\slash").inc()
    c.labels('say "hi"', "quote").inc(2)
    c.labels("line1\nline2", "newline").inc()
    g = reg.gauge(
        "demo_temperature_celsius", "Escaped help: back\\slash\nnewline"
    )
    g.set(21.5)
    h = reg.histogram("demo_latency_seconds", "Latency", buckets=(0.1, 1.0))
    for v in (0.05, 0.5, 5.0):
        h.observe(v)
    reg.counter("demo_unlabelled_total", "No labels, never incremented")
    return reg


class TestGoldenExposition:
    def test_render_matches_golden_file(self):
        assert _demo_registry().render() == GOLDEN.read_text()

    def test_snapshot_keys_escape_label_values(self):
        snap = _demo_registry().snapshot()
        assert snap['demo_requests_total{path="/metrics",note="plain"}'] == 3.0
        assert snap[
            'demo_requests_total{path="C:\\\\temp\\\\trace",note="back\\\\slash"}'
        ] == 1.0
        assert snap[
            'demo_requests_total{path="say \\"hi\\"",note="quote"}'
        ] == 2.0
        assert snap[
            'demo_requests_total{path="line1\\nline2",note="newline"}'
        ] == 1.0
        # histograms flatten to _count/_sum; escaping identical
        assert snap["demo_latency_seconds_count"] == 3
        assert snap["demo_latency_seconds_sum"] == pytest.approx(5.55)

    def test_rendered_lines_stay_single_line(self):
        # a raw newline in a label value would corrupt the whole scrape
        for line in _demo_registry().render().splitlines():
            assert "\n" not in line
            if "line1" in line:
                assert '\\n' in line


#: gauges grandfathered with a _total suffix: they mirror cumulative
#: cleaning counters maintained inside the SHE frames
_GAUGE_TOTAL_ALLOWLIST = {
    "she_cells_cleaned_total",
    "she_groups_cleaned_total",
    "she_cleaning_checks_total",
}

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")


class TestMetricNameLint:
    def test_live_engine_metric_names_follow_conventions(self, tmp_path):
        """Walk every family a fully-loaded engine registers."""
        cfg = EngineConfig("cm", window=4096, size=1024, num_shards=2,
                           wal_dir=str(tmp_path / "wal"),
                           sketch_kwargs={"seed": 1})
        with StreamEngine(cfg, obs=True) as eng:
            SloEngine(eng).evaluate()
            eng.ingest(np.arange(3000, dtype=np.uint64))
            eng.flush()
            eng.frequency(7)
            eng.obs.refresh_telemetry()
            families = eng.obs.registry.metrics()
            assert len(families) > 20  # the walk actually saw the fleet
            for fam in families:
                name, kind = fam.name, fam.kind
                assert _NAME_RE.match(name), f"bad metric name {name!r}"
                if kind == "counter":
                    assert name.endswith("_total"), (
                        f"counter {name} must end in _total"
                    )
                elif kind == "histogram":
                    assert name.endswith(("_seconds", "_bytes")), (
                        f"histogram {name} needs a unit suffix"
                    )
                elif kind == "gauge":
                    if name not in _GAUGE_TOTAL_ALLOWLIST:
                        assert not name.endswith("_total"), (
                            f"gauge {name} must not look like a counter"
                        )
                assert fam.help, f"{name} has no HELP text"
