"""Registry semantics + Prometheus text exposition format."""

import math

import pytest

from repro.obs.registry import (
    NULL_REGISTRY,
    Histogram,
    Registry,
    render_prometheus,
)


class TestFamilies:
    def test_counter_unlabelled(self):
        reg = Registry()
        c = reg.counter("hits_total", "hits")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_gauge_set_inc_dec(self):
        g = Registry().gauge("depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7

    def test_labelled_children_are_cached(self):
        c = Registry().counter("per_shard_total", labels=("shard",))
        a, b = c.labels("0"), c.labels("1")
        a.inc(3)
        b.inc(1)
        assert c.labels("0") is a
        assert a.value == 3 and b.value == 1

    def test_label_arity_checked(self):
        c = Registry().counter("x_total", labels=("a", "b"))
        with pytest.raises(ValueError, match="takes labels"):
            c.labels("only-one")

    def test_unlabelled_use_of_labelled_family_raises(self):
        c = Registry().counter("x_total", labels=("shard",))
        with pytest.raises(ValueError, match="call .labels"):
            c.inc()

    def test_histogram_buckets_and_sum(self):
        h = Registry().histogram("lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(5.55)

    def test_histogram_rejects_empty_and_inf_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, math.inf))


class TestRegistry:
    def test_idempotent_reregistration(self):
        reg = Registry()
        assert reg.counter("n_total") is reg.counter("n_total")

    def test_kind_mismatch_raises(self):
        reg = Registry()
        reg.counter("n_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("n_total")

    def test_label_mismatch_raises(self):
        reg = Registry()
        reg.counter("n_total", labels=("a",))
        with pytest.raises(ValueError, match="already registered"):
            reg.counter("n_total", labels=("b",))

    def test_snapshot_flattens_labels(self):
        reg = Registry()
        reg.counter("n_total", labels=("shard",)).labels("2").inc(7)
        reg.gauge("depth").set(3)
        snap = reg.snapshot()
        assert snap['n_total{shard="2"}'] == 7
        assert snap["depth"] == 3

    def test_null_registry_is_inert(self):
        c = NULL_REGISTRY.counter("whatever")
        c.inc(100)
        c.labels("x").observe(1.0)  # every verb on the shared child
        assert c.value == 0
        assert NULL_REGISTRY.render() == ""
        assert NULL_REGISTRY.snapshot() == {}
        assert not NULL_REGISTRY.enabled


class TestPrometheusText:
    def test_help_type_and_values(self):
        reg = Registry()
        reg.counter("hits_total", "how many").inc(2)
        text = render_prometheus(reg)
        assert "# HELP hits_total how many" in text
        assert "# TYPE hits_total counter" in text
        assert "hits_total 2" in text.splitlines()

    def test_integers_render_without_decimal_point(self):
        reg = Registry()
        reg.gauge("g").set(4.0)
        assert "g 4" in reg.render().splitlines()

    def test_label_value_escaping(self):
        reg = Registry()
        c = reg.counter("weird_total", labels=("name",))
        c.labels('a"b\\c\nd').inc()
        line = [l for l in reg.render().splitlines() if l.startswith("weird")][0]
        assert line == 'weird_total{name="a\\"b\\\\c\\nd"} 1'

    def test_help_newline_escaping(self):
        reg = Registry()
        reg.counter("h_total", "line1\nline2")
        assert "# HELP h_total line1\\nline2" in reg.render()

    def test_histogram_exposition_is_cumulative_and_monotone(self):
        reg = Registry()
        h = reg.histogram("lat_seconds", buckets=(0.1, 0.5, 1.0))
        for v in (0.05, 0.05, 0.3, 0.7, 2.0):
            h.observe(v)
        lines = reg.render().splitlines()
        buckets = [l for l in lines if l.startswith("lat_seconds_bucket")]
        counts = [int(l.rsplit(" ", 1)[1]) for l in buckets]
        assert counts == sorted(counts), "bucket counts must be cumulative"
        assert buckets[-1] == 'lat_seconds_bucket{le="+Inf"} 5'
        assert "lat_seconds_count 5" in lines
        assert any(l.startswith("lat_seconds_sum ") for l in lines)

    def test_labelled_histogram_keeps_le_last(self):
        reg = Registry()
        h = reg.histogram("rpc_seconds", labels=("op",), buckets=(1.0,))
        h.labels("flush").observe(0.5)
        lines = [
            l for l in reg.render().splitlines()
            if l.startswith("rpc_seconds_bucket")
        ]
        assert lines[0] == 'rpc_seconds_bucket{op="flush",le="1"} 1'
        assert lines[1] == 'rpc_seconds_bucket{op="flush",le="+Inf"} 1'
