"""Drift evaluation harness + the CI smoke assertions.

The two ``TestSmoke`` cases are the contract CI runs on every push:
a stationary stream must raise zero alarms at default thresholds, and
abrupt drift must be detected within a bounded delay.
"""

import json

import numpy as np
import pytest

from repro.applications.drift.eval import (
    DRIFT_KINDS,
    DetectionResult,
    _ALT_OFFSET,
    detect,
    drift_stream,
    run_detection,
    score_series,
    sweep,
)
from repro.applications.drift.distances import DISTANCE_KINDS

WINDOW = 1 << 10


def collect(**kw):
    kw.setdefault("batch", 256)
    return np.concatenate(list(drift_stream(**kw)))


class TestDriftStream:
    def test_yields_exactly_n_uint64_keys(self):
        keys = collect(n=3000, kind="none", seed=1)
        assert keys.size == 3000
        assert keys.dtype == np.uint64

    def test_stationary_never_touches_alternate_pool(self):
        keys = collect(n=4096, kind="none", seed=2)
        assert not (keys >= _ALT_OFFSET).any()

    def test_abrupt_mixes_alternate_pool_only_after_onset(self):
        keys = collect(n=4096, kind="abrupt", onset=2048, drift_frac=0.75, seed=3)
        alt = keys >= _ALT_OFFSET
        assert not alt[:2048].any()
        # post-onset the mixture fraction is ~0.75
        frac = alt[2048:].mean()
        assert 0.6 < frac < 0.9

    def test_gradual_ramps_mixture_fraction(self):
        keys = collect(
            n=8192, kind="gradual", onset=2048, ramp=4096,
            drift_frac=0.8, seed=4,
        )
        alt = keys >= _ALT_OFFSET
        early = alt[2048:3072].mean()
        late = alt[6144:7168].mean()
        assert not alt[:2048].any()
        assert early < late
        assert late > 0.5

    def test_recurring_alternates_regimes(self):
        keys = collect(
            n=8192, kind="recurring", onset=0, period=2048,
            drift_frac=0.75, seed=5,
        )
        alt = keys >= _ALT_OFFSET
        assert alt[:2048].mean() > 0.5      # on
        assert not alt[2048:4096].any()     # off
        assert alt[4096:6144].mean() > 0.5  # on again

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            list(drift_stream(100, kind="seasonal"))

    def test_same_seed_is_reproducible(self):
        a = collect(n=2048, kind="abrupt", seed=6)
        b = collect(n=2048, kind="abrupt", seed=6)
        np.testing.assert_array_equal(a, b)


class TestScoreSeries:
    def test_series_spacing_and_warmup(self):
        series, onset = score_series(
            "cardinality", window=WINDOW, n=6 * WINDOW, drift_kind="none",
            seed=1, batch=WINDOW // 4,
        )
        assert onset == 3 * WINDOW
        ts = [t for t, _ in series]
        # trailing reference needs two windows before scores start
        assert ts[0] >= 2 * WINDOW
        spacing = set(np.diff(ts).tolist())
        assert spacing == {WINDOW // 4}
        assert all(np.isfinite(s) for _, s in series)


class TestDetect:
    def series_with_step(self, onset=1000):
        quiet = [(t, 0.1) for t in range(0, onset, 100)]
        loud = [(t, 0.9) for t in range(onset, onset + 1000, 100)]
        return quiet + loud

    def test_detects_step_and_reports_delay(self):
        res = detect(
            self.series_with_step(onset=2000),
            estimator="cardinality", drift_kind="abrupt", seed=0,
            onset=2000, alarm_sigma=6.0,
        )
        assert isinstance(res, DetectionResult)
        assert res.detected
        assert res.detection_t >= 2000
        assert res.detection_delay == res.detection_t - 2000
        assert res.false_alarms == 0

    def test_stationary_series_counts_all_alarms_as_false(self):
        # an excursion in a run declared stationary (onset=None)
        series = self.series_with_step(onset=2000) + [
            (t, 0.1) for t in range(3000, 4000, 100)
        ]
        res = detect(
            series, estimator="cardinality", drift_kind="none", seed=0,
            onset=None, alarm_sigma=6.0,
        )
        assert not res.detected
        assert res.false_alarms >= 1
        assert res.clean_evaluations == res.evaluations
        assert res.false_alarm_rate > 0.0


class TestSmoke:
    """CI contract: stationary stays silent, abrupt drift is caught."""

    @pytest.mark.parametrize("estimator", DISTANCE_KINDS)
    def test_stationary_zero_false_alarms(self, estimator):
        res = run_detection(
            estimator, drift_kind="none", window=WINDOW, seed=1,
            batch=WINDOW // 4,
        )
        assert res.false_alarms == 0

    @pytest.mark.parametrize("estimator", ("cardinality", "frequency"))
    def test_abrupt_drift_detected_within_two_windows(self, estimator):
        res = run_detection(
            estimator, drift_kind="abrupt", window=WINDOW, seed=1,
            alarm_sigma=4.0, batch=WINDOW // 4,
        )
        assert res.detected
        assert res.detection_delay <= 2 * WINDOW
        assert res.false_alarms == 0


class TestSweep:
    def test_quick_sweep_writes_full_grid(self, tmp_path):
        out = tmp_path / "BENCH_drift.json"
        payload = sweep(
            str(out), quick=True, window=WINDOW // 2, n=4 * WINDOW,
            seeds=(1,), sigmas=(4.0,),
        )
        doc = json.loads(out.read_text())
        assert doc == payload
        assert doc["bench"] == "drift"
        assert set(doc["curves"]) == set(DISTANCE_KINDS)
        for est_kind in DISTANCE_KINDS:
            assert set(doc["curves"][est_kind]) == set(DRIFT_KINDS)
            for points in doc["curves"][est_kind].values():
                assert len(points) == 1
                p = points[0]
                assert p["alarm_sigma"] == 4.0
                assert p["runs"] == 1
                assert 0.0 <= p["false_alarm_rate"] <= 1.0
