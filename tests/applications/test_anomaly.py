"""CardinalityAnomalyDetector: baseline, scoring, robustness."""

import numpy as np
import pytest

from repro.applications.anomaly import AnomalyEvent, CardinalityAnomalyDetector


class ScriptedSketch:
    """Cardinality sketch double with a scripted estimate sequence."""

    def __init__(self, estimates):
        self.estimates = list(estimates)
        self.inserted = 0
        self._calls = 0

    def insert_many(self, keys):
        self.inserted += len(keys)

    def cardinality(self):
        est = self.estimates[min(self._calls, len(self.estimates) - 1)]
        self._calls += 1
        return est

    def now(self):
        return self.inserted


def feed(det, n):
    """n items in one batch (keys are irrelevant to the stub)."""
    return det.insert_many(np.zeros(n, dtype=np.uint64))


class TestCheckCadence:
    def test_one_check_per_check_every_items(self):
        sk = ScriptedSketch([100.0])
        det = CardinalityAnomalyDetector(sk, check_every=64)
        feed(det, 64 * 5)
        assert sk._calls == 5

    def test_batches_split_at_check_boundaries(self):
        sk = ScriptedSketch([100.0])
        det = CardinalityAnomalyDetector(sk, check_every=64)
        for n in (30, 30, 30, 30, 8):  # 128 items in ragged batches
            feed(det, n)
        assert sk._calls == 2
        assert sk.inserted == 128

    def test_no_check_until_boundary(self):
        sk = ScriptedSketch([100.0])
        det = CardinalityAnomalyDetector(sk, check_every=64)
        feed(det, 63)
        assert sk._calls == 0


class TestFlagging:
    def test_stable_stream_never_flags(self):
        sk = ScriptedSketch([100.0, 101.0, 99.0, 100.0, 102.0, 98.0, 100.0])
        det = CardinalityAnomalyDetector(sk, check_every=8, warmup_checks=2)
        events = feed(det, 8 * 7)
        assert events == []
        assert det.events == []

    def test_excursion_flags_after_warmup(self):
        # stable at ~100 for warmup, then a 10x jump
        sk = ScriptedSketch([100.0] * 6 + [1000.0])
        det = CardinalityAnomalyDetector(
            sk, check_every=8, warmup_checks=4, score_threshold=4.0
        )
        events = feed(det, 8 * 7)
        assert len(events) == 1
        ev = events[0]
        assert isinstance(ev, AnomalyEvent)
        assert ev.estimate == 1000.0
        assert ev.baseline == pytest.approx(100.0)
        assert ev.score >= 4.0
        assert ev.t == sk.now()

    def test_no_flags_during_warmup(self):
        sk = ScriptedSketch([100.0, 100.0, 1000.0, 100.0])
        det = CardinalityAnomalyDetector(
            sk, check_every=8, warmup_checks=4, score_threshold=4.0
        )
        assert feed(det, 8 * 4) == []

    def test_anomalous_check_does_not_move_baseline(self):
        sk = ScriptedSketch([100.0] * 6 + [1000.0, 1000.0])
        det = CardinalityAnomalyDetector(
            sk, check_every=8, warmup_checks=4, score_threshold=4.0
        )
        feed(det, 8 * 6)
        base_before = det.baseline
        events = feed(det, 8 * 2)
        assert len(events) == 2  # both excursions flagged ...
        assert det.baseline == base_before  # ... and neither absorbed

    def test_events_accumulate_on_detector(self):
        sk = ScriptedSketch([100.0] * 6 + [1000.0])
        det = CardinalityAnomalyDetector(sk, check_every=8, warmup_checks=4)
        feed(det, 8 * 6)
        feed(det, 8)
        assert len(det.events) == 1


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"check_every": 0},
            {"check_every": 8, "score_threshold": 0.0},
            {"check_every": 8, "warmup_checks": 0},
            {"check_every": 8, "ewma": 0.0},
        ],
    )
    def test_bad_params_raise(self, kwargs):
        with pytest.raises((ValueError, TypeError)):
            CardinalityAnomalyDetector(ScriptedSketch([1.0]), **kwargs)


class TestWithRealSketch:
    def test_scan_detected_on_she_hll(self):
        from repro.core.she_hll import SheHyperLogLog

        rng = np.random.default_rng(7)
        window = 1 << 10
        det = CardinalityAnomalyDetector(
            SheHyperLogLog(window, 1024, seed=5),
            check_every=window // 4,
            warmup_checks=4,
            score_threshold=4.0,
        )
        # steady state: ~128 distinct keys per window
        for _ in range(16):
            det.insert_many(
                rng.choice(np.arange(128, dtype=np.uint64), size=window // 4)
            )
        assert det.events == []
        # scan: a burst of fresh keys floods the window
        det.insert_many(np.arange(10_000, 10_000 + window, dtype=np.uint64))
        assert len(det.events) >= 1
