"""HeavyHitters: admission, re-validation, expiry, eviction."""

import numpy as np
import pytest

from repro.applications.heavy_hitters import HeavyHitters
from repro.core.she_cm import SheCountMin

WINDOW = 1 << 10


def hot_and_tail(rng, hot_keys, copies, n_tail):
    """A shuffled batch: each hot key ``copies`` times plus unique tail."""
    hot = np.repeat(np.asarray(hot_keys, dtype=np.uint64), copies)
    tail = rng.integers(1 << 20, 1 << 32, size=n_tail, dtype=np.uint64)
    batch = np.concatenate([hot, tail])
    rng.shuffle(batch)
    return batch


class TestDetection:
    def test_hot_keys_reported_hottest_first(self):
        rng = np.random.default_rng(3)
        hh = HeavyHitters(WINDOW, threshold=40.0, num_counters=1 << 12)
        hh.insert_many(hot_and_tail(rng, [7, 11], copies=64, n_tail=512))
        found = hh.heavy_hitters()
        assert {k for k, _ in found} >= {7, 11}
        counts = [c for _, c in found]
        assert counts == sorted(counts, reverse=True)
        # CM never underestimates a mature key's windowed count
        assert all(c >= 40.0 for c in counts)

    def test_cold_keys_not_reported(self):
        rng = np.random.default_rng(4)
        hh = HeavyHitters(WINDOW, threshold=40.0, num_counters=1 << 12)
        hh.insert_many(hot_and_tail(rng, [7], copies=64, n_tail=256))
        assert all(k != 3 for k, _ in hh.heavy_hitters())
        assert hh.is_heavy(7)
        assert not hh.is_heavy(3)

    def test_single_insert_path(self):
        hh = HeavyHitters(WINDOW, threshold=2.0, num_counters=1 << 10)
        for _ in range(3):
            hh.insert(42)
        assert hh.is_heavy(42)
        assert 42 in {k for k, _ in hh.heavy_hitters()}


class TestSlidingExpiry:
    def test_hot_key_expires_with_the_window(self):
        rng = np.random.default_rng(5)
        hh = HeavyHitters(WINDOW, threshold=40.0, num_counters=1 << 12)
        hh.insert_many(hot_and_tail(rng, [7], copies=64, n_tail=128))
        assert 7 in {k for k, _ in hh.heavy_hitters()}
        # slide two full windows of pure tail past it (SHE's cleaning is
        # exponential, so one exact window still carries residual mass)
        hh.insert_many(
            rng.integers(1 << 20, 1 << 32, size=2 * WINDOW, dtype=np.uint64)
        )
        assert 7 not in {k for k, _ in hh.heavy_hitters()}


class TestCandidateBudget:
    def test_eviction_keeps_hottest(self):
        rng = np.random.default_rng(6)
        hh = HeavyHitters(
            WINDOW, threshold=2.0, num_counters=1 << 12, max_candidates=4
        )
        # 8 keys over threshold with distinct heats; budget holds 4
        batch = np.concatenate(
            [np.repeat(np.uint64(k), 4 + 4 * k) for k in range(8)]
        )
        rng.shuffle(batch)
        hh.insert_many(batch)
        found = dict(hh.heavy_hitters())
        assert len(found) <= 4
        assert 7 in found  # the hottest key survives eviction

    def test_reset_clears_sketch_and_candidates(self):
        hh = HeavyHitters(WINDOW, threshold=2.0, num_counters=1 << 10)
        hh.insert_many(np.repeat(np.uint64(9), 8))
        assert hh.heavy_hitters()
        hh.reset()
        assert hh.heavy_hitters() == []
        assert not hh.is_heavy(9)


class TestConstruction:
    def test_prebuilt_sketch_window_must_match(self):
        with pytest.raises(ValueError, match="window"):
            HeavyHitters(WINDOW, 10.0, sketch=SheCountMin(2 * WINDOW, 1 << 10))

    def test_prebuilt_sketch_is_used(self):
        sk = SheCountMin(WINDOW, 1 << 10, seed=9)
        hh = HeavyHitters(WINDOW, 2.0, sketch=sk)
        assert hh.sketch is sk

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 0, "threshold": 1.0},
            {"window": WINDOW, "threshold": 0.0},
            {"window": WINDOW, "threshold": 1.0, "max_candidates": 0},
        ],
    )
    def test_bad_params_raise(self, kwargs):
        with pytest.raises((ValueError, TypeError)):
            HeavyHitters(**kwargs)

    def test_memory_accounts_for_candidate_map(self):
        hh = HeavyHitters(WINDOW, 10.0, num_counters=1 << 10, max_candidates=64)
        assert hh.memory_bytes == hh.sketch.memory_bytes + 16 * 64
