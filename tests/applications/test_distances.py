"""Window-vs-window distance estimators and reference policies."""

import numpy as np
import pytest

from repro.applications.drift.distances import (
    DISTANCE_KINDS,
    CardinalityShiftDistance,
    FrequencyProfileDivergence,
    JaccardDistance,
    MultiResolutionBank,
    ReferenceWindow,
    _LagBuffer,
    make_estimator,
)
from repro.core.she_hll import SheHyperLogLog

WINDOW = 1 << 9


def pool(rng, lo, hi, n):
    return rng.integers(lo, hi, size=n, dtype=np.uint64)


class TestLagBuffer:
    def test_releases_nothing_until_lag_exceeded(self):
        buf = _LagBuffer(100)
        assert buf.push(np.arange(100, dtype=np.uint64)) == []

    def test_fifo_order_and_exact_split(self):
        buf = _LagBuffer(10)
        buf.push(np.arange(10, dtype=np.uint64))
        out = buf.push(np.arange(10, 17, dtype=np.uint64))
        released = np.concatenate(out)
        # 17 buffered, 10 held back -> the 7 oldest come out, in order
        np.testing.assert_array_equal(released, np.arange(7, dtype=np.uint64))

    def test_total_conservation(self):
        rng = np.random.default_rng(1)
        buf = _LagBuffer(37)
        total_out = 0
        total_in = 0
        for _ in range(50):
            n = int(rng.integers(1, 30))
            total_in += n
            total_out += sum(c.size for c in buf.push(pool(rng, 0, 100, n)))
        assert total_in - total_out == 37


class TestReferenceWindow:
    def test_trailing_reference_lags_live(self):
        live = SheHyperLogLog(WINDOW, 256, seed=2)
        ref = ReferenceWindow(live, mode="trailing")
        keys = np.arange(WINDOW, dtype=np.uint64)
        live.insert_many(keys)
        ref.observe(keys)
        assert int(ref.sketch.t) == 0  # all still inside the lag
        assert not ref.ready()
        more = np.arange(WINDOW, 3 * WINDOW, dtype=np.uint64)
        live.insert_many(more)
        ref.observe(more)
        assert int(ref.sketch.t) == 2 * WINDOW
        assert ref.ready()

    def test_pinned_reference_freezes_snapshot(self):
        live = SheHyperLogLog(WINDOW, 256, seed=2)
        ref = ReferenceWindow(live, mode="pinned")
        assert not ref.ready()
        live.insert_many(np.arange(WINDOW, dtype=np.uint64))
        ref.pin()
        assert ref.ready()
        frozen = ref.sketch.cardinality()
        live.insert_many(np.arange(10_000, 10_000 + 2 * WINDOW, dtype=np.uint64))
        assert ref.sketch.cardinality() == frozen  # never ages
        assert live.cardinality() != frozen or True  # live moved on

    def test_pin_requires_pinned_mode(self):
        live = SheHyperLogLog(WINDOW, 256)
        with pytest.raises(ValueError, match="pinned"):
            ReferenceWindow(live, mode="trailing").pin()

    def test_external_feed_and_mode_guard(self):
        live = SheHyperLogLog(WINDOW, 256)
        ref = ReferenceWindow(live, mode="external")
        ref.observe_reference(np.arange(WINDOW, dtype=np.uint64))
        assert ref.ready()
        with pytest.raises(ValueError, match="external"):
            ReferenceWindow(live, mode="trailing").observe_reference(
                np.arange(4, dtype=np.uint64)
            )

    def test_scaled_window_needs_factory(self):
        live = SheHyperLogLog(WINDOW, 256)
        with pytest.raises(ValueError, match="factory"):
            ReferenceWindow(live, window=2 * WINDOW)

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            ReferenceWindow(SheHyperLogLog(WINDOW, 256), mode="nope")


class TestJaccardDistance:
    def test_identical_windows_have_near_zero_distance(self):
        rng = np.random.default_rng(3)
        d = JaccardDistance(WINDOW, mode="external", num_counters=1024)
        for _ in range(4):
            keys = pool(rng, 0, 200, WINDOW // 2)
            d.observe(keys, reference_keys=keys)
        assert d.ready()
        assert d.distance() < 0.15

    def test_disjoint_windows_have_near_one_distance(self):
        rng = np.random.default_rng(4)
        d = JaccardDistance(WINDOW, mode="external", num_counters=1024)
        for _ in range(4):
            d.observe(
                pool(rng, 0, 1 << 16, WINDOW // 2),
                reference_keys=pool(rng, 1 << 20, 1 << 24, WINDOW // 2),
            )
        assert d.distance() > 0.9

    def test_trailing_detects_pool_swap(self):
        rng = np.random.default_rng(5)
        d = JaccardDistance(WINDOW, num_counters=1024)
        for _ in range(6):
            d.observe(pool(rng, 0, 300, WINDOW // 2))
        stationary = d.distance()
        # swap the key pool; one window later the live side is fully
        # drifted while the trailing reference still holds the old pool
        for _ in range(2):
            d.observe(pool(rng, 1 << 20, (1 << 20) + 300, WINDOW // 2))
        assert d.distance() > stationary + 0.3

    def test_pinned_mode_freezes_side_one(self):
        rng = np.random.default_rng(6)
        d = JaccardDistance(WINDOW, mode="pinned", num_counters=1024)
        for _ in range(2):
            d.observe(pool(rng, 0, 300, WINDOW // 2))
        assert not d.ready()  # pin not taken yet
        d.pin()
        assert d.ready()
        for _ in range(4):
            d.observe(pool(rng, 0, 300, WINDOW // 2))
        same_pool = d.distance()
        for _ in range(4):
            d.observe(pool(rng, 1 << 20, (1 << 20) + 300, WINDOW // 2))
        assert d.distance() > same_pool + 0.3

    def test_reference_keys_guarded_by_mode(self):
        d = JaccardDistance(WINDOW)
        with pytest.raises(ValueError, match="external"):
            d.observe(
                np.arange(4, dtype=np.uint64),
                reference_keys=np.arange(4, dtype=np.uint64),
            )


class TestCardinalityShiftDistance:
    def test_stationary_near_zero_and_shift_detected(self):
        rng = np.random.default_rng(7)
        d = CardinalityShiftDistance(WINDOW, num_registers=512)
        for _ in range(6):
            d.observe(pool(rng, 0, 200, WINDOW // 2))
        assert d.ready()
        assert d.distance() < 0.25
        # key-space explosion: every arrival now distinct
        d.observe(np.arange(1 << 20, (1 << 20) + WINDOW, dtype=np.uint64))
        assert d.distance() > 0.4

    def test_empty_windows_distance_zero(self):
        d = CardinalityShiftDistance(WINDOW, num_registers=512, mode="external")
        assert d.distance() == 0.0


class TestFrequencyProfileDivergence:
    def test_stationary_profile_low_divergence(self):
        rng = np.random.default_rng(8)
        d = FrequencyProfileDivergence(WINDOW, num_counters=2048, track_keys=32)
        hot = np.repeat(np.arange(8, dtype=np.uint64), WINDOW // 16)
        for _ in range(6):
            batch = hot.copy()
            rng.shuffle(batch)
            d.observe(batch)
        assert d.ready()
        assert d.distance() < 0.2

    def test_hot_set_swap_detected(self):
        rng = np.random.default_rng(9)
        d = FrequencyProfileDivergence(WINDOW, num_counters=2048, track_keys=32)
        hot_a = np.repeat(np.arange(8, dtype=np.uint64), WINDOW // 16)
        for _ in range(6):
            batch = hot_a.copy()
            rng.shuffle(batch)
            d.observe(batch)
        before = d.distance()
        hot_b = np.repeat(np.arange(100, 108, dtype=np.uint64), WINDOW // 16)
        for _ in range(3):
            batch = hot_b.copy()
            rng.shuffle(batch)
            d.observe(batch)
        assert d.distance() > before + 0.3

    def test_tracked_set_bounded(self):
        rng = np.random.default_rng(10)
        d = FrequencyProfileDivergence(WINDOW, num_counters=2048, track_keys=16)
        for _ in range(4):
            d.observe(pool(rng, 0, 1 << 16, WINDOW // 2))
        assert len(d.tracked()) <= 16


class TestFactoryAndBank:
    def test_make_estimator_kinds(self):
        for kind in DISTANCE_KINDS:
            est = make_estimator(kind, WINDOW)
            assert est.window == WINDOW

    def test_make_estimator_rejects_unknown(self):
        with pytest.raises(ValueError, match="kind"):
            make_estimator("wavelet", WINDOW)

    def test_bank_rejects_jaccard(self):
        with pytest.raises(ValueError, match="jaccard|window"):
            MultiResolutionBank("jaccard", WINDOW)

    def test_bank_scales_fill_coarse_to_fine(self):
        rng = np.random.default_rng(11)
        bank = MultiResolutionBank(
            "cardinality", WINDOW, scales=(1, 2), num_registers=256
        )
        # one window in: nothing ready (trailing lag = one window)
        bank.observe(pool(rng, 0, 200, WINDOW))
        d = bank.distances()
        assert all(np.isnan(v) for v in d.values())
        # 2.5 windows in: scale 1 ready, scale 2 (ref window 2N) filling
        bank.observe(pool(rng, 0, 200, 3 * WINDOW // 2))
        d = bank.distances()
        assert not np.isnan(d[1])
        assert np.isnan(d[2])
        # 4.5 windows in: both ready, stationary stream -> no drift
        bank.observe(pool(rng, 0, 200, 2 * WINDOW))
        d = bank.distances()
        assert all(not np.isnan(v) for v in d.values())
        assert bank.localize(threshold=0.5) is None

    def test_bank_localizes_fresh_drift_to_finest_scale(self):
        rng = np.random.default_rng(12)
        bank = MultiResolutionBank(
            "cardinality", WINDOW, scales=(1, 2), num_registers=256
        )
        bank.observe(pool(rng, 0, 100, 6 * WINDOW))  # warm, stationary
        bank.observe(np.arange(1 << 20, (1 << 20) + WINDOW, dtype=np.uint64))
        bound = bank.localize(threshold=0.3)
        assert bound == 1 * WINDOW + WINDOW  # finest scale + its lag
