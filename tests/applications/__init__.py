"""Tests for repro.applications."""
