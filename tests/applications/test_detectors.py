"""DriftDetector state machine and composite quorum voting."""

import pytest

from repro.applications.drift.detectors import (
    STATE_CODES,
    CompositeDriftDetector,
    DriftDetector,
    DriftState,
)


def make(**kw):
    kw.setdefault("burn_in", 8)
    kw.setdefault("hysteresis", 2)
    kw.setdefault("recovery_steps", 3)
    return DriftDetector("t", **kw)


def feed(det, scores, start_t=0, suppress=False):
    for i, s in enumerate(scores):
        det.update(s, start_t + i, suppress=suppress)
    return det


class TestCalibration:
    def test_burn_in_blocks_state_changes(self):
        det = make()
        feed(det, [0.2, 0.9, 0.1, 0.8, 0.2, 0.9, 0.3])  # 7 < burn_in
        assert det.state is DriftState.STABLE
        assert not det.calibrated or det.updates < det.burn_in

    def test_thresholds_resolve_after_burn_in(self):
        det = make()
        feed(det, [0.2] * 8)
        assert det.calibrated
        assert det.baseline == pytest.approx(0.2)
        assert det.warn_threshold > 0.2
        assert det.alarm_threshold >= det.warn_threshold

    def test_min_spread_floors_flat_burn_in(self):
        det = make(min_spread=0.05)
        feed(det, [0.3] * 8)
        assert det.spread >= 0.05

    def test_fixed_thresholds_bypass_calibration(self):
        det = make(warn_threshold=0.5, alarm_threshold=0.7)
        assert det.calibrated
        # ordering enforced up front
        with pytest.raises(ValueError, match="alarm_threshold"):
            make(warn_threshold=0.7, alarm_threshold=0.5)


class TestTransitions:
    def test_step_drift_alarms_with_hysteresis(self):
        det = make()
        feed(det, [0.2] * 10)
        det.update(0.9, 100)  # first hot score: warn, not alarm
        assert det.state is DriftState.WARN
        det.update(0.9, 101)  # second consecutive: alarm
        assert det.state is DriftState.ALARM
        assert det.alarm_count == 1
        assert [e.state_to for e in det.events] == [
            DriftState.WARN, DriftState.ALARM,
        ]

    def test_single_spike_does_not_alarm(self):
        det = make()
        feed(det, [0.2] * 10)
        det.update(0.9, 100)
        feed(det, [0.2, 0.2, 0.2], 101)  # cools back down
        assert det.state is DriftState.STABLE
        assert det.alarm_count == 0

    def test_recovery_and_rebaseline_on_new_regime(self):
        det = make()
        feed(det, [0.2] * 10)
        feed(det, [0.9, 0.9], 100)
        assert det.state is DriftState.ALARM
        # quiet scores: ALARM -> RECOVERING -> STABLE with re-anchor
        feed(det, [0.2] * 3, 200)
        assert det.state is DriftState.RECOVERING
        feed(det, [0.2] * 3, 300)
        assert det.state is DriftState.STABLE
        # re-anchored: a fresh burn-in adopts the new regime as baseline
        feed(det, [0.5] * 8, 400)
        assert det.baseline == pytest.approx(0.5, abs=0.05)

    def test_alarm_again_after_recovery(self):
        det = make()
        feed(det, [0.2] * 10)
        feed(det, [0.9, 0.9], 100)
        feed(det, [0.2] * 6, 200)   # recover to stable
        feed(det, [0.2] * 8, 300)   # re-anchor burn-in
        feed(det, [0.9, 0.9], 400)  # second drift
        assert det.alarm_count == 2

    def test_alarms_lists_unsuppressed_alarm_events(self):
        det = make()
        feed(det, [0.2] * 10)
        feed(det, [0.9, 0.9], 100)
        alarms = det.alarms()
        assert len(alarms) == 1
        assert alarms[0].t == 101
        assert alarms[0].score == pytest.approx(0.9)


class TestSuppression:
    def test_suppressed_update_cannot_enter_alarm(self):
        det = make()
        feed(det, [0.2] * 10)
        det.update(0.9, 100, suppress=True)
        det.update(0.9, 101, suppress=True)
        assert det.state is not DriftState.ALARM
        assert det.alarm_count == 0
        assert det.suppressed_count >= 1
        sup = [e for e in det.events if e.suppressed]
        assert sup and all(e.state_to is DriftState.ALARM for e in sup)

    def test_alarm_fires_once_suppression_lifts(self):
        det = make()
        feed(det, [0.2] * 10)
        feed(det, [0.9, 0.9], 100, suppress=True)
        assert det.alarm_count == 0
        feed(det, [0.9, 0.9], 200)  # coverage restored
        assert det.alarm_count == 1

    def test_suppressed_scores_do_not_adapt_baseline(self):
        det = make()
        feed(det, [0.2] * 10)
        base = det.baseline
        feed(det, [0.3] * 5, 100, suppress=True)
        assert det.baseline == base


class TestSnapshot:
    def test_snapshot_is_json_shaped(self):
        det = make()
        feed(det, [0.2] * 9)
        snap = det.snapshot()
        assert snap["name"] == "t"
        assert snap["state"] == "stable"
        assert snap["calibrated"] is True
        assert snap["updates"] == 9
        assert set(STATE_CODES.values()) == {0, 1, 2, 3}


class TestComposite:
    def two_member(self, quorum=2):
        return CompositeDriftDetector(
            {"a": make(), "b": make()}, quorum=quorum
        )

    def warm(self, comp, n=10):
        for i in range(n):
            comp.update({"a": 0.2, "b": 0.2}, i)

    def test_quorum_required_for_alarm(self):
        comp = self.two_member()
        self.warm(comp)
        for i in range(3):  # only one member sees drift
            comp.update({"a": 0.9, "b": 0.2}, 100 + i)
        assert comp.members["a"].state is DriftState.ALARM
        assert comp.state is DriftState.WARN
        assert comp.alarm_count == 0

    def test_quorum_met_alarms(self):
        comp = self.two_member()
        self.warm(comp)
        for i in range(3):
            comp.update({"a": 0.9, "b": 0.9}, 100 + i)
        assert comp.state is DriftState.ALARM
        assert comp.alarm_count == 1

    def test_missing_member_scores_keep_state(self):
        comp = self.two_member(quorum=1)
        self.warm(comp)
        for i in range(3):
            comp.update({"a": 0.9}, 100 + i)  # b not ready this eval
        assert comp.members["a"].state is DriftState.ALARM
        assert comp.members["b"].state is DriftState.STABLE
        assert comp.state is DriftState.ALARM

    def test_quorum_clamped_to_member_count(self):
        comp = CompositeDriftDetector({"a": make()}, quorum=5)
        assert comp.quorum == 1

    def test_needs_members(self):
        with pytest.raises(ValueError, match="member"):
            CompositeDriftDetector({})

    def test_snapshot_nests_members(self):
        comp = self.two_member()
        snap = comp.snapshot()
        assert set(snap["members"]) == {"a", "b"}
        assert snap["quorum"] == 2


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"burn_in": 0},
            {"ewma": 0.0},
            {"hysteresis": 0},
            {"recovery_steps": 0},
            {"min_spread": 0.0},
            {"alarm_sigma": 0.0},
        ],
    )
    def test_bad_params_raise(self, kwargs):
        with pytest.raises((ValueError, TypeError)):
            DriftDetector("t", **kwargs)
