"""DriftMonitor wired to a live StreamEngine: cadence, metrics, suppression."""

import numpy as np
import pytest

from repro.applications.drift.detectors import DriftState
from repro.applications.drift.monitor import DriftMonitor
from repro.service import EngineConfig, StreamEngine

WINDOW = 1 << 10
EVAL = WINDOW // 4


def _cfg(**over):
    base = dict(
        kind="hll",
        window=WINDOW,
        size=1 << 9,
        num_shards=2,
        flush_batch_size=EVAL,
        flush_interval_s=None,
    )
    base.update(over)
    return EngineConfig(**base)


@pytest.fixture
def engine():
    with StreamEngine(_cfg(), obs=True) as eng:
        yield eng


def make_monitor(engine, **kw):
    kw.setdefault("kinds", ("cardinality", "frequency"))
    kw.setdefault("detector_kwargs", {"burn_in": 8, "alarm_sigma": 4.0})
    return DriftMonitor(engine, **kw)


def stationary(rng, n):
    return rng.integers(0, 200, size=n, dtype=np.uint64)


def drifted(n, offset=1 << 20):
    return np.arange(offset, offset + n, dtype=np.uint64)


def feed(monitor, batches):
    for batch in batches:
        monitor.ingest(batch)
    monitor.flush()


def warm(monitor, rng, windows=6):
    """Stationary traffic long enough to fill estimators and burn in."""
    feed(monitor, [stationary(rng, EVAL) for _ in range(4 * windows)])


class TestCadence:
    def test_one_evaluation_per_eval_every_items(self, engine):
        mon = make_monitor(engine)
        rng = np.random.default_rng(1)
        feed(mon, [stationary(rng, EVAL) for _ in range(4)])
        assert mon.evaluations == 4
        assert mon.last_eval_t == 4 * EVAL

    def test_ragged_batches_do_not_double_evaluate(self, engine):
        mon = make_monitor(engine)
        rng = np.random.default_rng(2)
        # 2 * EVAL items in odd-sized pieces: cadence skips missed
        # slots instead of replaying them
        for n in (EVAL // 3, EVAL // 3, EVAL, EVAL // 3 + 2):
            mon.ingest(stationary(rng, n))
        assert mon.evaluations <= 2
        assert mon.evaluations >= 1

    def test_tick_and_flush_check_cadence(self, engine):
        mon = make_monitor(engine)
        rng = np.random.default_rng(3)
        # bypass the monitor's ingest so only tick()/flush() can evaluate
        engine.ingest(stationary(rng, 2 * EVAL))
        assert mon.evaluations == 0
        mon.tick()
        assert mon.evaluations == 1

    def test_monitor_attaches_to_engine(self, engine):
        mon = make_monitor(engine)
        assert engine._drift_monitor is mon


class TestValidation:
    def test_unknown_kind_rejected(self, engine):
        with pytest.raises(ValueError, match="wavelet"):
            DriftMonitor(engine, kinds=("wavelet",))

    def test_empty_kinds_rejected(self, engine):
        with pytest.raises(ValueError, match="kinds"):
            DriftMonitor(engine, kinds=())


class TestDetection:
    def test_abrupt_drift_alarms_composite(self, engine):
        mon = make_monitor(engine)
        rng = np.random.default_rng(4)
        warm(mon, rng)
        assert mon.state is DriftState.STABLE
        feed(mon, [drifted(EVAL, (1 << 20) + i * EVAL) for i in range(8)])
        assert mon.detector.alarm_count >= 1

    def test_stationary_stream_stays_stable(self, engine):
        mon = make_monitor(engine)
        rng = np.random.default_rng(5)
        warm(mon, rng, windows=8)
        assert mon.state is DriftState.STABLE
        assert mon.detector.alarm_count == 0


class TestSuppression:
    def test_down_shard_suppresses_alarm_until_recovery(self, engine):
        mon = make_monitor(engine)
        rng = np.random.default_rng(6)
        warm(mon, rng)
        engine._down.add(1)  # simulate a dead shard
        try:
            # only half a window of drift: long enough for the members'
            # hysteresis to want an alarm, short enough that the trailing
            # reference has not yet absorbed the new pool
            feed(mon, [drifted(EVAL, (1 << 20) + i * EVAL) for i in range(2)])
            assert mon.detector.alarm_count == 0
            assert mon.last_coverage["degraded"] is True
            assert mon.last_coverage["down_shards"] == [1]
            assert mon.last_coverage["caveat"]
            suppressed = sum(
                d.suppressed_count for d in mon.detector.members.values()
            )
            assert suppressed >= 1
        finally:
            engine._down.clear()
        # coverage restored: the still-drifting stream may now alarm
        feed(mon, [drifted(EVAL, (1 << 24) + i * EVAL) for i in range(4)])
        assert mon.detector.alarm_count >= 1
        assert mon.last_coverage["degraded"] is False

    def test_suppress_degraded_off_lets_alarms_fire(self, engine):
        mon = make_monitor(engine, suppress_degraded=False)
        rng = np.random.default_rng(7)
        warm(mon, rng)
        engine._down.add(1)
        try:
            feed(mon, [drifted(EVAL, (1 << 20) + i * EVAL) for i in range(8)])
            assert mon.detector.alarm_count >= 1
            # degradation is still *reported* even though not suppressing
            assert mon.last_coverage["degraded"] is True
        finally:
            engine._down.clear()


class TestObservability:
    def test_metric_families_registered_and_published(self, engine):
        mon = make_monitor(engine)
        rng = np.random.default_rng(8)
        warm(mon, rng, windows=2)
        text = engine.obs.registry.render()
        for name in (
            "drift_score",
            "drift_state",
            "drift_alarms_total",
            "drift_alarms_suppressed_total",
            "drift_evaluations_total",
            "drift_last_eval_t",
        ):
            assert name in text, name
        assert 'drift_state{detector="composite"}' in text
        assert 'drift_score{estimator="cardinality"}' in text

    def test_statusz_section_shape(self, engine):
        mon = make_monitor(engine)
        rng = np.random.default_rng(9)
        warm(mon, rng, windows=3)
        sec = mon.statusz_section()
        assert sec["state"] == "stable"
        assert sec["eval_every"] == EVAL
        assert sec["evaluations"] == mon.evaluations
        assert set(sec["scores"]) <= {"cardinality", "frequency"}
        assert sec["coverage"]["degraded"] is False
        assert sec["suppress_degraded"] is True
        assert sec["memory_bytes"] > 0
        assert set(sec["detector"]["members"]) == {"cardinality", "frequency"}

    def test_obs_disabled_engine_still_works(self):
        with StreamEngine(_cfg(), obs=False) as eng:
            mon = make_monitor(eng)
            rng = np.random.default_rng(10)
            feed(mon, [stationary(rng, EVAL) for _ in range(8)])
            assert mon.evaluations == 8  # null registry, no crash


class TestPinnedMode:
    def test_pin_freezes_reference_for_all_estimators(self, engine):
        mon = make_monitor(engine, mode="pinned")
        rng = np.random.default_rng(11)
        feed(mon, [stationary(rng, EVAL) for _ in range(4)])  # one window
        mon.pin()
        warm(mon, rng)  # same pool: stays calibrated/stable
        assert mon.state is DriftState.STABLE
        feed(mon, [drifted(EVAL, (1 << 20) + i * EVAL) for i in range(8)])
        assert mon.detector.alarm_count >= 1
