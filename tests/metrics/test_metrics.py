"""Tests for FPR/RE/ARE metrics and the throughput harness."""

import numpy as np
import pytest

from repro.fixed import Bitmap
from repro.metrics import (
    ThroughputResult,
    average_relative_error,
    false_positive_rate,
    measure_throughput,
    relative_error,
)


class TestFPR:
    def test_basic(self):
        pred = np.asarray([True, True, False, False])
        truth = np.asarray([True, False, False, False])
        assert false_positive_rate(pred, truth) == pytest.approx(1 / 3)

    def test_all_negatives_correct(self):
        pred = np.zeros(5, dtype=bool)
        truth = np.zeros(5, dtype=bool)
        assert false_positive_rate(pred, truth) == 0.0

    def test_no_negatives(self):
        pred = np.ones(3, dtype=bool)
        truth = np.ones(3, dtype=bool)
        assert false_positive_rate(pred, truth) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            false_positive_rate(np.zeros(3, dtype=bool), np.zeros(4, dtype=bool))


class TestRelativeError:
    def test_basic(self):
        assert relative_error(110, 100) == pytest.approx(0.1)

    def test_zero_truth_zero_estimate(self):
        assert relative_error(0, 0) == 0.0

    def test_zero_truth_nonzero_estimate(self):
        assert relative_error(5, 0) == float("inf")

    def test_symmetric_in_magnitude(self):
        assert relative_error(90, 100) == pytest.approx(relative_error(110, 100))


class TestARE:
    def test_basic(self):
        est = np.asarray([10.0, 20.0])
        true = np.asarray([10.0, 10.0])
        assert average_relative_error(est, true) == pytest.approx(0.5)

    def test_rejects_zero_truth(self):
        with pytest.raises(ValueError):
            average_relative_error(np.asarray([1.0]), np.asarray([0.0]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            average_relative_error(np.zeros(2), np.ones(3))


class TestThroughput:
    def test_measures_inserts(self):
        bm = Bitmap(1 << 12)
        stream = np.arange(10_000, dtype=np.uint64)
        res = measure_throughput(bm, stream, chunk=1000)
        assert res.items == 10_000
        assert res.seconds > 0
        assert res.mips > 0

    def test_warmup_excluded(self):
        bm = Bitmap(1 << 12)
        stream = np.arange(10_000, dtype=np.uint64)
        res = measure_throughput(bm, stream, chunk=1000, warmup=4000)
        assert res.items == 6000

    def test_two_sided_sketch(self):
        from repro.fixed import MinHash

        mh = MinHash(64)
        stream = np.arange(2000, dtype=np.uint64)
        res = measure_throughput(mh, stream, side=1, chunk=500)
        assert res.items == 2000

    def test_default_name(self):
        bm = Bitmap(256)
        res = measure_throughput(bm, np.arange(100, dtype=np.uint64))
        assert res.name == "Bitmap"

    def test_mips_infinite_guard(self):
        r = ThroughputResult("x", 10, 0.0)
        assert r.mips == float("inf")
