"""Pipeline model of SWAMP — mechanising the §2.3 infeasibility argument.

The paper argues SWAMP cannot run on pipelined hardware: every arrival
must (a) replace the oldest fingerprint in the cyclic queue, (b) remove
that fingerprint from the TinyTable and (c) insert the new fingerprint
— (b) and (c) hit *different* buckets of the same table, and a filled
bucket spills into its neighbours (the "domino effect"), so either one
stage performs an unbounded multi-address access (constraint 3) or the
table is shared between stages (constraint 2).

This module lays SWAMP out the second way (the more charitable one: a
remove stage and an insert stage) over logged SRAM regions and runs a
real stream through it.  The constraint checker then *fails* it on
constraint 2 — and, whenever chaining spills, on constraint 3 as well —
while total SRAM grows as O(W), stressing constraint 1.
"""

from __future__ import annotations

import numpy as np

from repro.common.hashing import HashFamily
from repro.common.validation import as_key_array, require_positive_int
from repro.hardware.constraints import ConstraintReport, check_constraints
from repro.hardware.memory import SramRegion
from repro.hardware.pipeline import Pipeline, PipelineRun, Stage

__all__ = ["SwampRtl", "swamp_pipeline_report"]


class SwampRtl:
    """SWAMP mapped (as far as possible) onto pipeline stages."""

    def __init__(self, window: int, fingerprint_bits: int = 16, *, seed: int = 31):
        self.window = require_positive_int("window", window)
        self.fp_bits = require_positive_int("fingerprint_bits", fingerprint_bits)
        self.fp_space = 1 << self.fp_bits
        self.hash = HashFamily(1, seed=seed)

        self.queue = SramRegion("fp_queue", self.window, self.fp_bits)
        # TinyTable: 4-slot buckets; each slot one fingerprint remainder
        self.num_buckets = max(1, (self.window + 3) // 4)
        slot_bits = 4 * (self.fp_bits + 4)
        self.table = SramRegion("tiny_table", self.num_buckets, slot_bits)
        # python-side mirror of bucket contents {bucket: {rem: count}};
        # the SramRegion records the *accesses*, the mirror the payload
        self._buckets: list[dict[int, int]] = [dict() for _ in range(self.num_buckets)]
        self.t = 0

        self.pipeline = Pipeline(
            [
                Stage("s1_queue", self._stage_queue, (self.queue,)),
                Stage("s2_remove", self._stage_remove, (self.table,)),
                Stage("s3_insert", self._stage_insert, (self.table,)),
            ]
        )

    def _fingerprint(self, key: int) -> int:
        return self.hash.value(int(key), 0) % self.fp_space

    def _bucket_of(self, fp: int) -> tuple[int, int]:
        return fp % self.num_buckets, fp // self.num_buckets

    def _stage_queue(self, ctx: dict) -> None:
        pos = self.t % self.window
        old = self.queue.read("s1_queue", pos) if self.t >= self.window else None
        fp = self._fingerprint(ctx["item"])
        self.queue.write("s1_queue", pos, fp)
        ctx["old_fp"] = old
        ctx["new_fp"] = fp
        self.t += 1

    def _touch_chain(self, stage: str, bucket: int, spill: int) -> None:
        """A bucket access, plus neighbour accesses when chained."""
        self.table.read(stage, bucket)
        self.table.write(stage, bucket, 0)
        for d in range(1, spill + 1):
            nb = (bucket + d) % self.num_buckets
            self.table.read(stage, nb)
            self.table.write(stage, nb, 0)

    def _stage_remove(self, ctx: dict) -> None:
        old = ctx["old_fp"]
        if old is None:
            return
        b, rem = self._bucket_of(int(old))
        bucket = self._buckets[b]
        spill = max(0, len(bucket) - 4)  # entries living in neighbours
        self._touch_chain("s2_remove", b, spill)
        cnt = bucket.get(rem, 0)
        if cnt <= 1:
            bucket.pop(rem, None)
        else:
            bucket[rem] = cnt - 1

    def _stage_insert(self, ctx: dict) -> None:
        b, rem = self._bucket_of(int(ctx["new_fp"]))
        bucket = self._buckets[b]
        spill = max(0, len(bucket) + 1 - 4)  # domino into neighbours
        self._touch_chain("s3_insert", b, spill)
        bucket[rem] = bucket.get(rem, 0) + 1

    def insert_stream(self, keys) -> PipelineRun:
        """Push keys through the (doomed) pipeline."""
        return self.pipeline.process(as_key_array(keys).tolist())


def swamp_pipeline_report(
    window: int = 1024,
    n_items: int = 4096,
    *,
    fingerprint_bits: int = 16,
    seed: int = 0,
) -> ConstraintReport:
    """Run SWAMP's pipeline model and return its constraint report.

    The report is expected to fail (``hardware_friendly == False``) —
    the test suite asserts that, reproducing §2.3's conclusion.
    """
    rtl = SwampRtl(window, fingerprint_bits, seed=seed)
    rng = np.random.default_rng(seed)
    stream = rng.integers(0, 1 << 32, size=n_items, dtype=np.uint64)
    run = rtl.insert_stream(stream)
    return check_constraints(rtl.pipeline, run)
