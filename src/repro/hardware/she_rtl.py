"""Register-transfer-level models of SHE-BM and SHE-BF (§6).

§6 describes the FPGA insertion pipeline in four stages:

1. read + update the 32-bit item counter (the time source);
2. hash the key to a cell index;
3. compute the group's current time mark, compare with the stored
   mark, and update it;
4. update the mapped bit (resetting the whole group word first when
   stage 3 saw a stale mark).

:class:`SheBmRtl` executes exactly those stages over
:class:`~repro.hardware.memory.SramRegion` objects, so every memory
access is logged and the §2.3 constraints can be *checked*, not
asserted.  Its cell array is bit-exact with
:class:`~repro.core.hardware_frame.HardwareFrame` under the same
parameters — the co-simulation test in
``tests/hardware/test_cosim.py`` is the keystone of the hardware claim.

:class:`SheBfRtl` is §6's SHE-BF: "the settings are the same as SHE-BM
but there are 8 identical processes" — eight independent BM lanes with
different hash functions (a partitioned Bloom filter, the standard way
to give each hash its own memory port); a key is *present* when every
lane's mature mapped bit is set.
"""

from __future__ import annotations

import numpy as np

from repro.common.hashing import HashFamily
from repro.common.validation import as_key_array, require_positive_int
from repro.hardware.memory import SramRegion
from repro.hardware.pipeline import Pipeline, PipelineRun, Stage

__all__ = ["SheBmRtl", "SheBfRtl"]


class SheBmRtl:
    """Four-stage SHE-BM insertion pipeline over logged SRAM regions.

    Args:
        window: sliding-window size N.
        num_bits: bit-array size M (default 1024, §6's setting).
        group_width: bits per group word (default 64, §6's setting).
        alpha: cleaning stretch.
        seed: hash seed (match the frame being co-simulated).
    """

    def __init__(
        self,
        window: int,
        num_bits: int = 1024,
        *,
        group_width: int = 64,
        alpha: float = 0.2,
        seed: int = 2,
    ):
        self.window = require_positive_int("window", window)
        self.num_bits = require_positive_int("num_bits", num_bits)
        self.group_width = require_positive_int("group_width", group_width)
        if num_bits % group_width != 0:
            raise ValueError(
                f"num_bits ({num_bits}) must be a multiple of group_width "
                f"({group_width})"
            )
        self.num_groups = num_bits // group_width
        self.t_cycle = max(int(round((1.0 + alpha) * window)), window + 1)
        gids = np.arange(self.num_groups, dtype=np.int64)
        self.offsets = -((self.t_cycle * gids) // self.num_groups)
        self.hash = HashFamily(1, seed=seed)

        self.counter = SramRegion("item_counter", 1, 32)
        self.marks = SramRegion("time_marks", self.num_groups, 1)
        self.cells = SramRegion("bit_array", self.num_groups, group_width)
        # initialise marks to the t=0 current marks, like HardwareFrame
        init = ((self.offsets // self.t_cycle) % 2).astype(np.uint64)
        self.marks.words[:] = init
        self.marks.clear_log()

        self.pipeline = Pipeline(
            [
                Stage("s1_counter", self._stage_counter, (self.counter,)),
                Stage("s2_hash", self._stage_hash, ()),
                Stage("s3_mark", self._stage_mark, (self.marks,)),
                Stage("s4_update", self._stage_update, (self.cells,)),
            ]
        )

    # -- stages (§6's enumeration) ------------------------------------------

    def _stage_counter(self, ctx: dict) -> None:
        t = self.counter.read("s1_counter", 0)
        self.counter.write("s1_counter", 0, t + 1)
        ctx["t"] = int(t)

    def _stage_hash(self, ctx: dict) -> None:
        idx = self.hash.index(int(ctx["item"]), 0, self.num_bits)
        ctx["gid"] = idx // self.group_width
        ctx["bit"] = idx % self.group_width

    def _stage_mark(self, ctx: dict) -> None:
        gid = ctx["gid"]
        cur = ((ctx["t"] + int(self.offsets[gid])) // self.t_cycle) % 2
        stored = self.marks.read("s3_mark", gid)
        ctx["stale"] = stored != cur
        if ctx["stale"]:
            self.marks.write("s3_mark", gid, cur)

    def _stage_update(self, ctx: dict) -> None:
        gid = ctx["gid"]
        word = int(self.cells.read("s4_update", gid))
        if ctx["stale"]:
            word = 0  # reset and bit-set land in the same word write
        word |= 1 << int(ctx["bit"])
        self.cells.write("s4_update", gid, word)

    # -- driver ----------------------------------------------------------------

    def insert_stream(self, keys) -> PipelineRun:
        """Push keys through the pipeline; returns timing + stage stats."""
        return self.pipeline.process(as_key_array(keys).tolist())

    def cell_bits(self) -> np.ndarray:
        """The bit array as a flat 0/1 vector (for co-simulation)."""
        out = np.zeros(self.num_bits, dtype=np.uint8)
        for g in range(self.num_groups):
            word = int(self.cells.words[g])
            for j in range(self.group_width):
                out[g * self.group_width + j] = (word >> j) & 1
        return out

    def mark_bits(self) -> np.ndarray:
        """Stored time marks (for co-simulation)."""
        return self.marks.words.astype(np.uint8).copy()

    @property
    def now(self) -> int:
        return int(self.counter.words[0])


class SheBfRtl:
    """§6's SHE-BF: eight parallel SHE-BM lanes, one per hash function."""

    def __init__(
        self,
        window: int,
        num_bits_per_lane: int = 1024,
        num_lanes: int = 8,
        *,
        group_width: int = 64,
        alpha: float = 3.0,
        seed: int = 1,
    ):
        self.window = require_positive_int("window", window)
        self.num_lanes = require_positive_int("num_lanes", num_lanes)
        self.lanes = [
            SheBmRtl(
                window,
                num_bits_per_lane,
                group_width=group_width,
                alpha=alpha,
                seed=seed + 1000 * i,
            )
            for i in range(num_lanes)
        ]

    def insert_stream(self, keys) -> list[PipelineRun]:
        """Feed all lanes (they run in parallel on hardware)."""
        keys = as_key_array(keys)
        return [lane.insert_stream(keys) for lane in self.lanes]

    def contains(self, key: int) -> bool:
        """AND over lanes of the SHE-BF mature-bit test."""
        present = True
        for lane in self.lanes:
            t = lane.now
            idx = lane.hash.index(int(key), 0, lane.num_bits)
            gid = idx // lane.group_width
            age = (t + int(lane.offsets[gid])) % lane.t_cycle
            cur = ((t + int(lane.offsets[gid])) // lane.t_cycle) % 2
            stale = int(lane.marks.words[gid]) != cur
            bit = 0 if stale else (int(lane.cells.words[gid]) >> (idx % lane.group_width)) & 1
            if age >= lane.window and not bit:
                present = False
        return present
