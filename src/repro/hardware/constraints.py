"""The three hardware constraints of §2.3, as a checker.

1. **Limited SRAM** — total region bits within a budget (a Virtex-7
   has < 30 MB on-chip; our default budget is far stricter, matching
   §6's "no more than 128 KB ... undoubtedly fits in SRAM").
2. **Single-stage memory access** — every region is touched by at most
   one stage, or read-write hazards appear between in-flight items.
3. **Limited concurrent memory access** — a stage touches at most one
   address per region per item, and at most one region word's worth of
   bits.

The checker consumes a :class:`~repro.hardware.pipeline.Pipeline` and a
finished :class:`~repro.hardware.pipeline.PipelineRun`; it is used both
to certify the SHE pipelines and to *fail* the SWAMP model
(:func:`repro.hardware.swamp_model.swamp_pipeline_report`), reproducing
the paper's §2.3 argument mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.pipeline import Pipeline, PipelineRun

__all__ = ["ConstraintReport", "check_constraints", "DEFAULT_SRAM_BUDGET_BITS"]

#: default budget: 4 Mbit (§6 uses at most 2 MB for SHE-CM, 128 KB else)
DEFAULT_SRAM_BUDGET_BITS = 4 * 1024 * 1024 * 8


@dataclass(frozen=True)
class ConstraintReport:
    """Outcome of checking the three §2.3 constraints."""

    sram_ok: bool
    single_stage_ok: bool
    concurrent_ok: bool
    total_bits: int
    violations: tuple[str, ...] = ()

    @property
    def hardware_friendly(self) -> bool:
        """True iff all three constraints hold."""
        return self.sram_ok and self.single_stage_ok and self.concurrent_ok


def check_constraints(
    pipeline: Pipeline,
    run: PipelineRun,
    *,
    sram_budget_bits: int = DEFAULT_SRAM_BUDGET_BITS,
    max_addresses_per_stage: int = 1,
) -> ConstraintReport:
    """Evaluate the three constraints against a pipeline and its run."""
    violations: list[str] = []

    total_bits = sum(r.total_bits for r in pipeline.regions.values())
    sram_ok = total_bits <= sram_budget_bits
    if not sram_ok:
        violations.append(
            f"constraint 1: {total_bits} bits of SRAM exceed the "
            f"{sram_budget_bits}-bit budget"
        )

    single_stage_ok = True
    for region in pipeline.regions.values():
        if len(region.touching_stages) > 1:
            single_stage_ok = False
            violations.append(
                f"constraint 2: region {region.name!r} accessed by stages "
                f"{sorted(region.touching_stages)}"
            )

    concurrent_ok = True
    region_words = {r.name: r.word_bits for r in pipeline.regions.values()}
    for st in run.stage_stats:
        if st.max_distinct_addresses_per_item > max_addresses_per_stage:
            concurrent_ok = False
            violations.append(
                f"constraint 3: stage {st.name!r} touched "
                f"{st.max_distinct_addresses_per_item} addresses for one item"
            )
        word_limit = max(
            (region_words[name] for name in st.regions), default=0
        )
        if word_limit and st.max_bits_per_item > 2 * word_limit:
            # one read + one write of the same word is the hardware norm;
            # anything beyond that cannot fit one stage-cycle
            concurrent_ok = False
            violations.append(
                f"constraint 3: stage {st.name!r} moved "
                f"{st.max_bits_per_item} bits in one item-cycle "
                f"(word width {word_limit})"
            )

    return ConstraintReport(
        sram_ok=sram_ok,
        single_stage_ok=single_stage_ok,
        concurrent_ok=concurrent_ok,
        total_bits=total_bits,
        violations=tuple(violations),
    )
