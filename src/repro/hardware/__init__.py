"""FPGA substrate: SRAM/pipeline simulator, constraint checker, models."""

from repro.hardware.constraints import (
    DEFAULT_SRAM_BUDGET_BITS,
    ConstraintReport,
    check_constraints,
)
from repro.hardware.fpga import (
    SHE_BF_DESIGN,
    SHE_BM_DESIGN,
    VIRTEX7_CAPACITY,
    FpgaDesign,
    ResourceEstimate,
    estimate_clock_mhz,
    estimate_resources,
    throughput_mips,
)
from repro.hardware.memory import AccessRecord, SramRegion
from repro.hardware.pipeline import Pipeline, PipelineRun, Stage, StageStats
from repro.hardware.she_rtl import SheBfRtl, SheBmRtl
from repro.hardware.she_rtl_ext import SheCmRtl, SheHllRtl
from repro.hardware.swamp_model import SwampRtl, swamp_pipeline_report
from repro.hardware.switch_model import (
    TOFINO_LIKE,
    PlacementReport,
    RegionRequirement,
    SketchRequirements,
    SwitchProfile,
    plan,
    plan_minhash,
    plan_she,
    plan_swamp,
)

__all__ = [
    "DEFAULT_SRAM_BUDGET_BITS",
    "ConstraintReport",
    "check_constraints",
    "SHE_BF_DESIGN",
    "SHE_BM_DESIGN",
    "VIRTEX7_CAPACITY",
    "FpgaDesign",
    "ResourceEstimate",
    "estimate_clock_mhz",
    "estimate_resources",
    "throughput_mips",
    "AccessRecord",
    "SramRegion",
    "Pipeline",
    "PipelineRun",
    "Stage",
    "StageStats",
    "SheBfRtl",
    "SheBmRtl",
    "SheCmRtl",
    "SheHllRtl",
    "SwampRtl",
    "swamp_pipeline_report",
    "TOFINO_LIKE",
    "PlacementReport",
    "RegionRequirement",
    "SketchRequirements",
    "SwitchProfile",
    "plan",
    "plan_minhash",
    "plan_she",
    "plan_swamp",
]
