"""Programmable-switch (RMT / P4) feasibility model.

§1 and §2.3 name programmable switches alongside FPGA/ASIC as SHE's
target platforms.  A Tofino-class RMT pipeline is *more* restrictive
than an FPGA: a fixed number of match-action stages, one register
array per stage with a single stateful-ALU access of bounded width,
and no recirculation budget to spare.  This module models exactly
those knobs and answers "does this sketch map onto the pipeline?"
mechanically — the switch-side counterpart of
:mod:`repro.hardware.constraints`.

The mapping logic places each memory region of a sketch description
into its own stage (regions cannot be shared between stages — the
single-stage-access constraint is structural on RMT), checks the
per-stage SALU word width against the group word, and accounts SRAM
per stage.  ``plan_she`` produces the placement for any SHE variant;
``plan_swamp`` shows SWAMP cannot be placed (its table needs either
two stages on one region or an unbounded access).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.validation import require_positive_int

__all__ = [
    "SwitchProfile",
    "TOFINO_LIKE",
    "RegionRequirement",
    "SketchRequirements",
    "PlacementReport",
    "plan",
    "plan_she",
    "plan_minhash",
    "plan_swamp",
]


@dataclass(frozen=True)
class SwitchProfile:
    """Capabilities of one RMT-style switch pipeline."""

    name: str
    stages: int
    sram_bits_per_stage: int
    salu_width_bits: int          # widest single stateful access
    salus_per_stage: int = 1
    hash_units_per_stage: int = 1


#: a Tofino-1-flavoured profile (public figures: 12 stages, ~1.3 MB
#: SRAM/stage usable for stateful objects, 128-bit SALU pairs)
TOFINO_LIKE = SwitchProfile(
    name="tofino-like",
    stages=12,
    sram_bits_per_stage=1_300_000 * 8,
    salu_width_bits=128,
    salus_per_stage=4,
    hash_units_per_stage=2,
)


@dataclass(frozen=True)
class RegionRequirement:
    """One stateful object a sketch needs."""

    name: str
    total_bits: int
    access_width_bits: int        # bits one packet touches in this region
    accesses_per_packet: int = 1  # distinct addresses one packet touches
    writers: int = 1              # pipeline phases needing to mutate it


@dataclass(frozen=True)
class SketchRequirements:
    """A sketch as the placement engine sees it."""

    name: str
    regions: tuple[RegionRequirement, ...]
    hash_computations: int = 1


@dataclass
class PlacementReport:
    """Outcome of mapping a sketch onto a switch profile."""

    sketch: str
    profile: str
    feasible: bool
    stages_used: int
    sram_bits_used: int
    placements: dict[str, int] = field(default_factory=dict)
    reasons: list[str] = field(default_factory=list)


def plan(req: SketchRequirements, profile: SwitchProfile = TOFINO_LIKE) -> PlacementReport:
    """Greedily place each region in its own stage and check the knobs."""
    report = PlacementReport(
        sketch=req.name,
        profile=profile.name,
        feasible=True,
        stages_used=0,
        sram_bits_used=sum(r.total_bits for r in req.regions),
    )
    stage = 0
    for region in req.regions:
        if region.writers > 1:
            report.feasible = False
            report.reasons.append(
                f"region {region.name!r} needs {region.writers} writer phases; "
                "RMT registers admit exactly one stateful access per packet"
            )
        if region.accesses_per_packet > 1:
            report.feasible = False
            report.reasons.append(
                f"region {region.name!r} needs {region.accesses_per_packet} "
                "addresses per packet; a SALU reaches one"
            )
        if region.access_width_bits > profile.salu_width_bits:
            report.feasible = False
            report.reasons.append(
                f"region {region.name!r} accesses {region.access_width_bits} bits; "
                f"SALU width is {profile.salu_width_bits}"
            )
        if region.total_bits > profile.sram_bits_per_stage:
            report.feasible = False
            report.reasons.append(
                f"region {region.name!r} needs {region.total_bits} bits; a stage "
                f"holds {profile.sram_bits_per_stage}"
            )
        report.placements[region.name] = stage
        stage += 1
    # hashing shares the front stages; each stage offers hash units
    hash_stages = -(-req.hash_computations // profile.hash_units_per_stage)
    report.stages_used = max(stage, hash_stages + len(req.regions) - 1)
    if report.stages_used > profile.stages:
        report.feasible = False
        report.reasons.append(
            f"needs {report.stages_used} stages; pipeline has {profile.stages}"
        )
    total_sram = profile.stages * profile.sram_bits_per_stage
    if report.sram_bits_used > total_sram:
        report.feasible = False
        report.reasons.append(
            f"needs {report.sram_bits_used} SRAM bits; device has {total_sram}"
        )
    return report


def plan_she(
    *,
    num_cells: int,
    cell_bits: int,
    group_width: int,
    num_hashes: int = 1,
    profile: SwitchProfile = TOFINO_LIKE,
) -> PlacementReport:
    """Map one SHE lane (per hash function) onto the pipeline.

    Per lane: an item counter, a 1-bit mark array (one SALU RMW at one
    address), and the cell array accessed one group word at a time.
    Lanes for extra hash functions replicate the mark/cell stages, as
    §6's SHE-BF does on FPGA.
    """
    require_positive_int("num_cells", num_cells)
    groups = max(1, num_cells // group_width)
    regions = [RegionRequirement("item_counter", 32, 32)]
    for lane in range(num_hashes):
        regions.append(RegionRequirement(f"marks_{lane}", groups, 1))
        regions.append(
            RegionRequirement(
                f"cells_{lane}", num_cells * cell_bits, group_width * cell_bits
            )
        )
    req = SketchRequirements(
        name=f"SHE({num_hashes} lane{'s' if num_hashes > 1 else ''})",
        regions=tuple(regions),
        hash_computations=num_hashes,
    )
    return plan(req, profile)


def plan_swamp(
    *,
    window: int,
    fingerprint_bits: int = 16,
    profile: SwitchProfile = TOFINO_LIKE,
) -> PlacementReport:
    """Map SWAMP onto the pipeline — §2.3 predicts (and we get) failure.

    The fingerprint queue is a single-address RMW (fine), but the
    TinyTable must be mutated twice per packet (remove the evicted
    fingerprint, insert the new one, at two different buckets) and a
    chained insertion touches a bucket neighbourhood.
    """
    cap = int(1.2 * window)
    table_bits = cap * (fingerprint_bits + 4)
    req = SketchRequirements(
        name="SWAMP",
        regions=(
            RegionRequirement("fp_queue", window * fingerprint_bits, fingerprint_bits),
            RegionRequirement(
                "tiny_table",
                table_bits,
                4 * (fingerprint_bits + 4),
                accesses_per_packet=2,  # remove bucket + insert bucket
                writers=2,              # the two phases both mutate it
            ),
        ),
        hash_computations=1,
    )
    return plan(req, profile)


def plan_minhash(
    *,
    num_counters: int,
    cell_bits: int = 24,
    profile: SwitchProfile = TOFINO_LIKE,
) -> PlacementReport:
    """Map SHE-MH onto the pipeline — infeasible for any useful M.

    MinHash touches *every* counter per item (K = "all" in the CSM),
    so one packet needs M distinct stateful accesses; on RMT that means
    one stage per counter.  This is why §6 implements only SHE-BM and
    SHE-BF on hardware: the framework makes MinHash *window-correct*,
    but its access pattern is inherently per-item-O(M) and belongs on
    the CPU path.
    """
    require_positive_int("num_counters", num_counters)
    regions = tuple(
        RegionRequirement(f"counter_{i}", cell_bits + 1, cell_bits + 1)
        for i in range(num_counters)
    )
    req = SketchRequirements(
        name=f"SHE-MH(M={num_counters})",
        regions=regions,
        hash_computations=num_counters,
    )
    return plan(req, profile)
