"""Analytic FPGA resource + timing model, calibrated to Tables 2-3.

We cannot synthesise RTL in this environment, so absolute LUT/register/
clock numbers come from a component-level analytic model of the §6
design, with constants calibrated on the two reference points the
paper publishes (SHE-BM and SHE-BF on a Virtex-7 xc7vx690t).  The model
reproduces Table 2 within 0.5 % and Table 3 exactly on those points;
what it then *predicts* — the ~8x logic ratio between BF and BM, zero
block RAM for register-file-sized arrays, the BM >= BF clock ordering,
and scaling with array size / group width / lane count — is the
reproducible content the benchmarks check.

Component model:

* per lane: a hash unit, per-group mark logic (offset add + compare),
  and a ``w``-bit group read-modify-write datapath;
* one shared 32-bit item counter + key fan-out glue growing with
  ``log2(lanes)``;
* registers: 4 pipeline latch sets + hash registers per lane, plus the
  cell array and marks (register file when <= 4 Kb, else 36 Kb BRAMs —
  the §6 configs stay in registers, hence Table 2's "Block Memory 0");
* clock: a lane-local critical path (1.838 ns = 1/544.07 MHz) plus a
  key fan-out penalty per doubling of lanes, plus a BRAM penalty when
  the array spills out of registers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.validation import require_positive_int

__all__ = [
    "FpgaDesign",
    "ResourceEstimate",
    "SHE_BM_DESIGN",
    "SHE_BF_DESIGN",
    "VIRTEX7_CAPACITY",
    "estimate_resources",
    "estimate_clock_mhz",
    "throughput_mips",
]

#: xc7vx690t capacity, for the utilisation percentages of Table 2
VIRTEX7_CAPACITY = {"lut": 433_200, "register": 866_400, "bram36": 1_470}

# calibrated constants (solved from Table 2/3's SHE-BM and SHE-BF rows)
_HASH_LUT = 402.0                 # one BOBHash-class unit
_MARK_LUT_PER_GROUP = 11.0        # offset add + mark compare, per group
_UPDATE_LUT_PER_CELLBIT = 16.03   # group-word RMW mux/decoder, per bit
_COUNTER_LUT = 40.0               # shared 32-bit item counter
_GLUE_LUT_PER_DOUBLING = 9.0      # key fan-out / lane select

_PIPELINE_REG_PER_STAGE = 93.25   # stage latches (4 stages)
_HASH_REG = 64.0                  # hashed-index registers
_COUNTER_REG = 32.0               # shared item counter

_REGISTER_ARRAY_LIMIT_BITS = 4096  # larger arrays spill to BRAM
_BRAM_BITS = 36 * 1024

_LANE_PATH_NS = 1.0 / 544.07 * 1000.0  # lane-local critical path
_FANOUT_NS = 0.0984                    # per doubling of lane count
_BRAM_PATH_NS = 0.55                   # register file -> BRAM penalty


@dataclass(frozen=True)
class FpgaDesign:
    """Parameters of a SHE design point to estimate."""

    name: str
    array_bits: int
    group_width: int
    lanes: int = 1
    counter_bits: int = 32

    def __post_init__(self) -> None:
        require_positive_int("array_bits", self.array_bits)
        require_positive_int("group_width", self.group_width)
        require_positive_int("lanes", self.lanes)
        if self.array_bits % self.group_width != 0:
            raise ValueError(
                f"array_bits ({self.array_bits}) must be a multiple of "
                f"group_width ({self.group_width})"
            )

    @property
    def groups(self) -> int:
        return self.array_bits // self.group_width


@dataclass(frozen=True)
class ResourceEstimate:
    """Estimated resource usage, with device-relative utilisation."""

    lut: int
    register: int
    bram36: int

    def utilisation(self) -> dict[str, float]:
        """Fractions of the xc7vx690t, as Table 2 reports in percent."""
        return {
            "lut": self.lut / VIRTEX7_CAPACITY["lut"],
            "register": self.register / VIRTEX7_CAPACITY["register"],
            "bram36": self.bram36 / VIRTEX7_CAPACITY["bram36"],
        }


#: §6 reference design points (the Table 2 / Table 3 rows)
SHE_BM_DESIGN = FpgaDesign("SHE-BM", array_bits=1024, group_width=64, lanes=1)
SHE_BF_DESIGN = FpgaDesign("SHE-BF", array_bits=1024, group_width=64, lanes=8)


def _array_in_registers(design: FpgaDesign) -> bool:
    return design.array_bits <= _REGISTER_ARRAY_LIMIT_BITS


def estimate_resources(design: FpgaDesign) -> ResourceEstimate:
    """Component-sum LUT/register/BRAM estimate for one design point."""
    lane_lut = (
        _HASH_LUT
        + _MARK_LUT_PER_GROUP * design.groups
        + _UPDATE_LUT_PER_CELLBIT * design.group_width
    )
    glue = _GLUE_LUT_PER_DOUBLING * max(1.0, math.log2(max(design.lanes, 2)))
    lut = design.lanes * lane_lut + _COUNTER_LUT + glue

    in_regs = _array_in_registers(design)
    lane_reg = (
        _PIPELINE_REG_PER_STAGE * 4
        + _HASH_REG
        + ((design.array_bits + design.groups) if in_regs else design.groups)
    )
    register = design.lanes * lane_reg + _COUNTER_REG

    bram = 0 if in_regs else design.lanes * math.ceil(design.array_bits / _BRAM_BITS)
    return ResourceEstimate(lut=round(lut), register=round(register), bram36=bram)


def estimate_clock_mhz(design: FpgaDesign) -> float:
    """Critical path: lane logic + lane fan-out (+ BRAM when spilled)."""
    path_ns = _LANE_PATH_NS
    if design.lanes > 1:
        path_ns += _FANOUT_NS * math.log2(design.lanes)
    if not _array_in_registers(design):
        path_ns += _BRAM_PATH_NS
    return 1000.0 / path_ns


def throughput_mips(design: FpgaDesign) -> float:
    """One item per cycle (§6): Mips equals the clock in MHz."""
    return estimate_clock_mhz(design)
