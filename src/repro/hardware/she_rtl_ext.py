"""RTL models for the counter-based SHE sketches: SHE-CM and SHE-HLL.

§6 states "the insertion process of SHE-BF and other SHE algorithms is
barely the same as SHE-BM" — same four stages, with the stage-4 ALU op
swapped per the CSM update kind (increment for CM, max-rank for HLL)
and the group word widened to counters.  These models make that claim
checkable: they run the same logged-SRAM pipeline and are co-simulated
bit-exactly against the Python frames, and the constraint checker
verifies the §2.3 discipline holds for counter words too.

SHE-CM on hardware uses one lane per hash function, like SHE-BF.
SHE-HLL has ``w = 1`` (one counter per group), so its "group word" is a
single 5-bit register and the mark array is as large as the register
array — the §4.3 layout.
"""

from __future__ import annotations

import numpy as np

from repro.common.hashing import HashFamily, leading_zeros_32
from repro.common.validation import as_key_array, require_positive_int
from repro.hardware.memory import SramRegion
from repro.hardware.pipeline import Pipeline, PipelineRun, Stage

__all__ = ["SheCmRtl", "SheHllRtl"]


class SheCmRtl:
    """One SHE-CM lane: the four-stage pipeline with ADD_ONE updates.

    Args:
        window: sliding-window size N.
        num_counters: counters M (multiple of ``group_width``).
        group_width: counters per group word.
        counter_bits: width of one counter.
        alpha: cleaning stretch (paper default 1 for SHE-CM).
        seed: hash seed (match the frame being co-simulated; one lane
            models one of the k hash functions).
    """

    def __init__(
        self,
        window: int,
        num_counters: int = 256,
        *,
        group_width: int = 8,
        counter_bits: int = 32,
        alpha: float = 1.0,
        seed: int = 4,
    ):
        self.window = require_positive_int("window", window)
        self.num_counters = require_positive_int("num_counters", num_counters)
        self.group_width = require_positive_int("group_width", group_width)
        if num_counters % group_width != 0:
            raise ValueError(
                f"num_counters ({num_counters}) must be a multiple of "
                f"group_width ({group_width})"
            )
        if counter_bits != 32:
            raise ValueError("SheCmRtl models 32-bit counters (the paper's width)")
        self.counter_bits = counter_bits
        self.num_groups = num_counters // group_width
        self.t_cycle = max(int(round((1.0 + alpha) * window)), window + 1)
        gids = np.arange(self.num_groups, dtype=np.int64)
        self.offsets = -((self.t_cycle * gids) // self.num_groups)
        self.hash = HashFamily(1, seed=seed)

        self.counter = SramRegion("item_counter", 1, 32)
        self.marks = SramRegion("time_marks", self.num_groups, 1)
        self.cells = SramRegion(
            "counter_array", self.num_groups, group_width * counter_bits
        )
        init = ((self.offsets // self.t_cycle) % 2).astype(np.uint64)
        self.marks.words[:] = init
        self.marks.clear_log()

        self.pipeline = Pipeline(
            [
                Stage("s1_counter", self._stage_counter, (self.counter,)),
                Stage("s2_hash", self._stage_hash, ()),
                Stage("s3_mark", self._stage_mark, (self.marks,)),
                Stage("s4_update", self._stage_update, (self.cells,)),
            ]
        )

    def _stage_counter(self, ctx: dict) -> None:
        t = self.counter.read("s1_counter", 0)
        self.counter.write("s1_counter", 0, t + 1)
        ctx["t"] = int(t)

    def _stage_hash(self, ctx: dict) -> None:
        idx = self.hash.index(int(ctx["item"]), 0, self.num_counters)
        ctx["gid"] = idx // self.group_width
        ctx["lane"] = idx % self.group_width

    def _stage_mark(self, ctx: dict) -> None:
        gid = ctx["gid"]
        cur = ((ctx["t"] + int(self.offsets[gid])) // self.t_cycle) % 2
        stored = self.marks.read("s3_mark", gid)
        ctx["stale"] = stored != cur
        if ctx["stale"]:
            self.marks.write("s3_mark", gid, cur)

    def _stage_update(self, ctx: dict) -> None:
        word = np.atleast_1d(
            np.asarray(self.cells.read("s4_update", ctx["gid"]), dtype=np.uint64)
        )
        # reinterpret the group word as packed 32-bit counters
        lanes = word.view(np.uint32)
        if ctx["stale"]:
            lanes[:] = 0
        lanes[ctx["lane"]] += 1
        self.cells.write("s4_update", ctx["gid"], word)

    def insert_stream(self, keys) -> PipelineRun:
        """Push keys through the pipeline; returns timing + stage stats."""
        return self.pipeline.process(as_key_array(keys).tolist())

    def counters_array(self) -> np.ndarray:
        """The counters as a flat vector (for co-simulation)."""
        return self.cells.words.view(np.uint32).reshape(-1)[: self.num_counters].copy()


class SheHllRtl:
    """SHE-HLL pipeline: w = 1 (a mark per register), MAX_RANK updates."""

    def __init__(self, window: int, num_registers: int = 256, *, alpha: float = 0.2, seed: int = 3):
        self.window = require_positive_int("window", window)
        self.num_registers = require_positive_int("num_registers", num_registers)
        self.t_cycle = max(int(round((1.0 + alpha) * window)), window + 1)
        gids = np.arange(self.num_registers, dtype=np.int64)
        self.offsets = -((self.t_cycle * gids) // self.num_registers)
        fam = HashFamily(2, seed=seed)
        self._select = HashFamily(1, seed=int(fam.seeds[0]))
        self._value = HashFamily(1, seed=int(fam.seeds[1]))

        self.counter = SramRegion("item_counter", 1, 32)
        self.marks = SramRegion("time_marks", self.num_registers, 1)
        self.cells = SramRegion("registers", self.num_registers, 5)
        init = ((self.offsets // self.t_cycle) % 2).astype(np.uint64)
        self.marks.words[:] = init
        self.marks.clear_log()

        self.pipeline = Pipeline(
            [
                Stage("s1_counter", self._stage_counter, (self.counter,)),
                Stage("s2_hash", self._stage_hash, ()),
                Stage("s3_mark", self._stage_mark, (self.marks,)),
                Stage("s4_update", self._stage_update, (self.cells,)),
            ]
        )

    def _stage_counter(self, ctx: dict) -> None:
        t = self.counter.read("s1_counter", 0)
        self.counter.write("s1_counter", 0, t + 1)
        ctx["t"] = int(t)

    def _stage_hash(self, ctx: dict) -> None:
        key = int(ctx["item"])
        ctx["gid"] = self._select.index(key, 0, self.num_registers)
        rank = leading_zeros_32(self._value.value(key, 0)) + 1
        ctx["rank"] = min(rank, 31)

    def _stage_mark(self, ctx: dict) -> None:
        gid = ctx["gid"]
        cur = ((ctx["t"] + int(self.offsets[gid])) // self.t_cycle) % 2
        stored = self.marks.read("s3_mark", gid)
        ctx["stale"] = stored != cur
        if ctx["stale"]:
            self.marks.write("s3_mark", gid, cur)

    def _stage_update(self, ctx: dict) -> None:
        reg = int(self.cells.read("s4_update", ctx["gid"]))
        if ctx["stale"]:
            reg = 0
        self.cells.write("s4_update", ctx["gid"], max(reg, ctx["rank"]))

    def insert_stream(self, keys) -> PipelineRun:
        """Push keys through the pipeline."""
        return self.pipeline.process(as_key_array(keys).tolist())

    def registers_array(self) -> np.ndarray:
        """The registers as a vector (for co-simulation)."""
        return self.cells.words.astype(np.uint8).copy()
