"""SRAM model for the pipeline simulator (§2.3 constraint 1 and 3).

Hardware pipelines see memory as named regions (register files / SRAM
blocks) with a fixed word width.  Every read/write is recorded with the
issuing stage, the address and the width, so the constraint checker can
verify after a run that (a) each region was touched by exactly one
stage and (b) no single access exceeded the region's word width — the
paper's "limited concurrent memory access".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.validation import require_non_negative_int, require_positive_int

__all__ = ["AccessRecord", "SramRegion"]


@dataclass(frozen=True)
class AccessRecord:
    """One memory access as seen by the constraint checker."""

    stage: str
    kind: str  # "read" | "write"
    address: int
    width_bits: int


class SramRegion:
    """A named on-chip memory region with access accounting.

    Args:
        name: region name (unique within a pipeline).
        num_words: addressable words.
        word_bits: width of one word — the most a single access moves.
    """

    def __init__(self, name: str, num_words: int, word_bits: int):
        self.name = str(name)
        self.num_words = require_positive_int("num_words", num_words)
        self.word_bits = require_positive_int("word_bits", word_bits)
        self.words = np.zeros(self.num_words, dtype=np.uint64)
        if word_bits > 64:
            # wide words (e.g. a 64-cell group of counters) are stored
            # as a 2-D backing array of 64-bit lanes
            lanes = (word_bits + 63) // 64
            self.words = np.zeros((self.num_words, lanes), dtype=np.uint64)
        self.accesses: list[AccessRecord] = []
        #: stages that ever touched this region (constraint 2)
        self.touching_stages: set[str] = set()

    @property
    def total_bits(self) -> int:
        """Region capacity in bits (constraint 1 accounting)."""
        return self.num_words * self.word_bits

    def _record(self, stage: str, kind: str, address: int, width_bits: int) -> None:
        require_non_negative_int("address", address)
        if address >= self.num_words:
            raise IndexError(
                f"address {address} out of range for region {self.name!r} "
                f"({self.num_words} words)"
            )
        if width_bits > self.word_bits:
            raise ValueError(
                f"access of {width_bits} bits exceeds word width "
                f"{self.word_bits} of region {self.name!r}"
            )
        self.accesses.append(AccessRecord(stage, kind, address, width_bits))
        self.touching_stages.add(stage)

    def read(self, stage: str, address: int, width_bits: int | None = None):
        """Read one word, recording the access."""
        w = self.word_bits if width_bits is None else width_bits
        self._record(stage, "read", address, w)
        return self.words[address].copy() if self.words.ndim == 2 else int(self.words[address])

    def write(self, stage: str, address: int, value, width_bits: int | None = None) -> None:
        """Write one word, recording the access."""
        w = self.word_bits if width_bits is None else width_bits
        self._record(stage, "write", address, w)
        self.words[address] = value

    def clear_log(self) -> None:
        """Drop the access log (state is kept)."""
        self.accesses.clear()

    def reset(self) -> None:
        """Zero the memory and the logs."""
        self.words.fill(0)
        self.accesses.clear()
        self.touching_stages.clear()
