"""Pipeline execution model (§2.3, §6).

A pipeline is an ordered list of stages; one item enters per clock
cycle and each stage takes one cycle, so a hazard-free pipeline
finishes ``n`` items in ``n + depth - 1`` cycles — the "one item per
cycle" throughput §6's 544 MHz clock translates into 544 Mips.

A stage is a Python callable ``stage_fn(ctx)`` receiving a mutable
per-item context dict; it reads/writes :class:`SramRegion` objects,
which record every access.  After a run, :func:`analyze` turns the logs
into per-stage statistics the constraint checker and the resource model
consume.  Violations (two stages sharing a region, multi-address access
within one stage-cycle) do not abort the simulation — they surface in
the report, because demonstrating *why SWAMP fails on hardware* is part
of the reproduction (§2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.memory import SramRegion

__all__ = ["Stage", "Pipeline", "StageStats", "PipelineRun"]


@dataclass
class Stage:
    """One pipeline stage: a name, a transform, and declared regions."""

    name: str
    fn: "callable"
    regions: tuple[SramRegion, ...] = ()


@dataclass(frozen=True)
class StageStats:
    """Post-run statistics for one stage."""

    name: str
    max_accesses_per_item: int
    max_distinct_addresses_per_item: int
    max_bits_per_item: int
    regions: tuple[str, ...]


@dataclass(frozen=True)
class PipelineRun:
    """Result of pushing a stream through a pipeline."""

    items: int
    cycles: int
    stage_stats: tuple[StageStats, ...]

    @property
    def items_per_cycle(self) -> float:
        return self.items / self.cycles if self.cycles else 0.0


class Pipeline:
    """An ordered chain of stages over shared SRAM regions."""

    def __init__(self, stages: list[Stage]):
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        self.stages = list(stages)
        names = [s.name for s in self.stages]
        if len(set(names)) != len(names):
            raise ValueError(f"stage names must be unique, got {names}")

    @property
    def regions(self) -> dict[str, SramRegion]:
        """All regions any stage declares, by name."""
        out: dict[str, SramRegion] = {}
        for s in self.stages:
            for r in s.regions:
                out[r.name] = r
        return out

    @property
    def depth(self) -> int:
        return len(self.stages)

    def process(self, items) -> PipelineRun:
        """Run every item through all stages, then analyse the logs.

        Functionally the stages execute sequentially per item (the
        pipeline overlap only affects timing, not results, when the
        single-stage-memory-access constraint holds — the checker
        verifies exactly that).
        """
        # per-(stage, item) counters, built from log watermarks
        marks = {s.name: [] for s in self.stages}
        region_list = list(self.regions.values())
        count = 0
        for item in items:
            ctx = {"item": item}
            for stage in self.stages:
                before = {r.name: len(r.accesses) for r in region_list}
                stage.fn(ctx)
                accs = []
                for r in region_list:
                    accs.extend(r.accesses[before[r.name] :])
                marks[stage.name].append(accs)
            count += 1

        stats = []
        for stage in self.stages:
            per_item = marks[stage.name]
            max_acc = max((len(a) for a in per_item), default=0)
            max_addr = max(
                (len({(rec.address,) for rec in a}) for a in per_item), default=0
            )
            max_bits = max(
                (sum(rec.width_bits for rec in a) for a in per_item), default=0
            )
            stats.append(
                StageStats(
                    name=stage.name,
                    max_accesses_per_item=max_acc,
                    max_distinct_addresses_per_item=max_addr,
                    max_bits_per_item=max_bits,
                    regions=tuple(r.name for r in stage.regions),
                )
            )
        cycles = count + self.depth - 1 if count else 0
        return PipelineRun(items=count, cycles=cycles, stage_stats=tuple(stats))
