"""Deterministic process-crash injection for durability tests.

:mod:`repro.service.faults` kills *workers*; this module kills the
*engine process* — the failure mode the write-ahead log exists for.  A
real SIGKILL cannot be injected inside one pytest process, so
:func:`simulate_process_kill` produces exactly what a kill plus power
cut leaves behind: the durable on-disk artifacts (published checkpoints
and the WAL's fsynced prefix) and nothing else.  In-memory state —
buffers, shard sketches, clocks — is abandoned, and the WAL is
truncated to its durable horizon, the *worst* outcome a power cut can
legally produce (a gentler crash keeps more; tests must survive the
worst).

:class:`CrashHarness` makes the kill deterministic: it counts engine
operations and kills immediately *before* the configured op index
executes, raising :class:`SimulatedCrash` for the test to catch before
it runs recovery.  The file fault injectors (:func:`tear_tail`,
:func:`flip_bit`) cover the other half of the fault model — torn
writes and bit rot on artifacts that survived the crash.
"""

from __future__ import annotations

from pathlib import Path

__all__ = [
    "SimulatedCrash",
    "CrashHarness",
    "simulate_process_kill",
    "tear_tail",
    "flip_bit",
]


class SimulatedCrash(BaseException):
    """The harness killed the engine at its configured op index.

    Derives from ``BaseException`` so no library ``except Exception``
    can swallow it mid-operation — a SIGKILL is not catchable either.
    """


def simulate_process_kill(engine) -> None:
    """Leave behind exactly what outlives a SIGKILL + power cut.

    The WAL is truncated to its durable (fsynced) horizon, the engine
    is marked closed (any later call is a bug in the test), and worker
    processes are reaped so nothing leaks — their in-memory shard
    state dies with them either way.
    """
    wal = getattr(engine, "_wal", None)
    if wal is not None:
        wal.simulate_crash()
    engine._closed = True
    try:
        engine._exec.close()
    except Exception:
        pass  # a dying process does not get to fail at dying


class CrashHarness:
    """Drive an engine through ops, killing at an exact op index.

    Args:
        engine: the engine under test (built with ``wal_dir`` for
            recovery to have anything to work with).
        crash_at_op: 1-based op index at which to kill — the op with
            that index never executes, matching ``ChaosExecutor``'s
            kill-before-op semantics.  ``None`` never crashes (the
            reference run).

    Route every operation through the harness (:meth:`ingest`,
    :meth:`checkpoint`) so the op count is the same for the crashed and
    reference runs; :attr:`ops` after a full reference run bounds the
    kill indices worth parametrising over.
    """

    def __init__(self, engine, *, crash_at_op: int | None = None):
        self.engine = engine
        self.crash_at_op = crash_at_op
        self.ops = 0
        self.crashed = False

    def _op(self, fn, *args, **kwargs):
        self.ops += 1
        if self.crash_at_op is not None and self.ops == self.crash_at_op:
            self.kill()
        return fn(*args, **kwargs)

    def ingest(self, keys, side=None):
        return self._op(self.engine.ingest, keys, side=side)

    def checkpoint(self, directory):
        from repro.service.checkpoint import save_checkpoint

        return self._op(save_checkpoint, self.engine, directory)

    def kill(self) -> None:
        """Kill now, regardless of the op counter."""
        simulate_process_kill(self.engine)
        self.crashed = True
        raise SimulatedCrash(f"simulated SIGKILL at op {self.ops}")


def tear_tail(wal_dir: str | Path, drop_bytes: int) -> Path:
    """Torn-write injector: chop ``drop_bytes`` off the newest WAL
    segment, leaving a partial record for tail recovery to truncate.
    Returns the torn segment's path."""
    segments = sorted(Path(wal_dir).glob("wal-*.log"))
    if not segments:
        raise FileNotFoundError(f"no WAL segments under {wal_dir}")
    last = segments[-1]
    keep = max(0, last.stat().st_size - int(drop_bytes))
    with open(last, "rb+") as f:
        f.truncate(keep)
    return last


def flip_bit(path: str | Path, byte_index: int, bit: int = 0) -> None:
    """Bit-rot injector: flip one bit of one byte in ``path``
    (``byte_index`` may be negative to count from the end)."""
    path = Path(path)
    data = bytearray(path.read_bytes())
    data[byte_index] ^= 1 << bit
    path.write_bytes(bytes(data))
