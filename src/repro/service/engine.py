"""The sharded streaming engine: ingestion, routing and query fan-in.

``StreamEngine`` turns the single-sketch SHE library into a serving
layer, following the shard-then-merge pattern of Papapetrou et al.'s
distributed sliding-window monitors:

* **Sharding.** Keys hash-partition across ``S`` shards; every shard is
  an independent SHE sketch built from one prototype, so all shards
  share geometry, seeds and — crucially — the *union stream's* count
  clock.  Arrivals carry their global arrival index into the owning
  shard (``insert_at``), and idle shards are advanced to the global
  clock before any query, so the shard set always satisfies
  :func:`repro.core.merge.merge_many`'s alignment requirement.

* **Batching.** Inserts buffer in per-shard queues and drain through
  the exact vectorised batch path.  A queue drains when it reaches
  ``flush_batch_size`` (size trigger) or when ``flush_interval_s``
  elapses since the last drain (time trigger, checked on ingest);
  queries and checkpoints drain everything first, so they always see
  the full stream.

* **Admission control.** Buffers are bounded when
  :class:`EngineConfig` sets budgets (``max_buffered_items`` /
  ``max_buffered_total`` / ``down_retention_items``): ingest *admits
  before it stamps*, so arrivals rejected by the ``raise`` / ``block``
  policies — or turned away by ``shed_newest`` — never consume
  union-stream clock ticks, while ``shed_oldest`` evicts the oldest
  buffered items with exact per-shard accounting.  The default
  (no budgets) is today's unbounded behaviour, untouched.

* **Query fan-in.** Membership / cardinality / similarity snapshot the
  shards and combine them via ``merge_many`` — the engine answers
  exactly as the merged single sketch would.  Frequency (SHE-CM) sums
  the per-shard estimates instead: counts of one key live entirely on
  its owning shard, and cross-shard summation preserves Count-Min's
  never-underestimate guarantee, which a min-over-summed-counters
  merge would dilute with other shards' collision noise.

* **Failure containment.** Executor failures arrive as the typed
  hierarchy of :mod:`repro.service.errors` and never lose data: a
  batch stays in (or returns to) its buffer until the executor
  acknowledges it, an attached
  :class:`repro.service.supervisor.Supervisor` restarts dead workers
  from checkpoint + replay, and shards that stay unrecoverable are
  marked *down* — strict calls raise
  :class:`ShardUnrecoverableError`, while ``strict=False`` queries
  answer from the surviving shards and annotate the result with its
  coverage (:class:`DegradedAnswer`).
"""

from __future__ import annotations

import dataclasses
import os
import time
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.common.validation import as_key_array, require_positive_int
from repro.core.merge import merge_many
from repro.core.registry import get_descriptor, registered_kinds
from repro.obs import Observability, new_id, span_record
from repro.obs.probes import AGE_HIST_BINS
from repro.service.errors import (
    EngineOverloadedError,
    ShardDeadError,
    ShardError,
    ShardFailedError,
    ShardTimeoutError,
    ShardUnrecoverableError,
)
from repro.service.executor import TRANSPORTS, ProcessExecutor, SerialExecutor
from repro.service.sharding import DEFAULT_SHARD_SEED, shard_ids, shard_of
from repro.service.stats import EngineStats, format_stats
from repro.service.wal import WAL_FSYNC_POLICIES, WriteAheadLog

__all__ = [
    "EngineConfig",
    "StreamEngine",
    "DegradedAnswer",
    "KINDS",
    "OVERLOAD_POLICIES",
]

#: admission-control responses when a buffer budget would be breached
OVERLOAD_POLICIES = ("raise", "shed_oldest", "shed_newest", "block")


class _KindsView(Mapping):
    """Live ``kind -> (sketch class, size-argument name)`` view.

    Kept for backward compatibility with pre-registry callers of
    ``repro.service.KINDS``; the registry is the source of truth, so
    kinds installed via :func:`repro.core.registry.register_algorithm`
    appear here automatically.
    """

    def __getitem__(self, kind: str) -> tuple[type, str]:
        desc = get_descriptor(kind)
        return (desc.cls, desc.size_arg)

    def __iter__(self):
        return iter(registered_kinds())

    def __len__(self) -> int:
        return len(registered_kinds())


KINDS = _KindsView()


@dataclass
class EngineConfig:
    """Everything needed to (re)build a :class:`StreamEngine`.

    Args:
        kind: which SHE sketch backs the shards — any registered
            algorithm kind: ``"bf"`` (membership), ``"bm"`` / ``"hll"``
            (cardinality), ``"cm"`` (frequency), ``"mh"`` (two-stream
            similarity), ``"generic"`` (a :class:`CsmSpec` via
            ``sketch_kwargs``), or anything installed with
            :func:`repro.core.registry.register_algorithm`.
        window: sliding-window size N (items).
        size: per-shard sketch size (bits / registers / counters).
        num_shards: how many shards to hash-partition keys across.
        flush_batch_size: per-shard queue depth that triggers a drain.
        flush_interval_s: drain everything when this much wall time has
            passed since the last drain (None disables the time trigger).
        shard_seed: partitioner seed (independent of sketch seeds).
        rpc_timeout_s: per-RPC deadline for worker executors (None
            waits forever); see :class:`ProcessExecutor`.
        max_buffered_items: per-shard buffer budget (items, summed over
            sides for two-stream engines).  ``None`` (the default)
            disables admission control entirely and preserves the
            unbounded pre-budget behaviour.
        max_buffered_total: engine-wide buffer budget across all
            shards; ``None`` disables the global bound.
        down_retention_items: retention cap for a *down* shard's buffer
            (its data cannot drain until recovery, so a long outage
            must degrade coverage, not memory).  ``None`` falls back to
            ``max_buffered_items``.
        overload_policy: what admission control does when a budget
            would be breached and draining the live buffers did not
            free enough room — ``"raise"`` rejects the batch with
            :class:`~repro.service.errors.EngineOverloadedError`
            (atomically: no arrival of it consumes a clock tick),
            ``"shed_oldest"`` admits the arrivals and evicts the oldest
            buffered items, ``"shed_newest"`` turns away the arrivals
            that do not fit (they never consume clock ticks), and
            ``"block"`` retries draining for up to ``block_timeout_s``
            before escalating to the raise behaviour.
        block_timeout_s: bounded wait for the ``"block"`` policy.
        wal_dir: directory for the durable ingestion write-ahead log
            (:mod:`repro.service.wal`).  ``None`` (the default) disables
            the WAL entirely.  When set, every *admitted* ingest batch
            is appended (checksummed) before it is stamped, checkpoints
            record their WAL position, and ``recover_engine`` replays
            the suffix — a crashed process recovers bit-identical to a
            crash-free run under ``wal_fsync="always"``.
        wal_fsync: durability policy, one of
            :data:`~repro.service.wal.WAL_FSYNC_POLICIES` —
            ``"always"`` fsyncs every append, ``"interval"`` at most
            every ``wal_fsync_interval_s``, ``"off"`` never (OS page
            cache only).  See docs/service.md "Durability model".
        wal_fsync_interval_s: max fsync staleness for ``"interval"``.
        wal_segment_bytes: WAL segment rotation size.
        transport: how flush batches reach the shard sketches —
            ``"pickle"`` ships arrays through executor pipes (the legacy
            path, always available), ``"shm"`` copies each batch once
            into a fixed-slot shared-memory ring and ships only slot
            descriptors, applying through the columnar kernel
            (:func:`repro.core.batch.apply_columnar`; bit-identical
            results).  The default reads ``REPRO_TRANSPORT`` from the
            environment (falling back to ``"pickle"``), so CI can run
            whole suites under either transport.
        sketch_kwargs: forwarded to the sketch constructor (``seed``,
            ``alpha``, ``num_hashes``, ``frame``, ...).
    """

    kind: str
    window: int
    size: int
    num_shards: int = 4
    flush_batch_size: int = 8192
    flush_interval_s: float | None = 1.0
    shard_seed: int = DEFAULT_SHARD_SEED
    rpc_timeout_s: float | None = 30.0
    max_buffered_items: int | None = None
    max_buffered_total: int | None = None
    down_retention_items: int | None = None
    overload_policy: str = "raise"
    block_timeout_s: float = 2.0
    wal_dir: str | None = None
    wal_fsync: str = "always"
    wal_fsync_interval_s: float = 1.0
    wal_segment_bytes: int = 64 * 1024 * 1024
    transport: str = field(default_factory=lambda: os.environ.get(
        "REPRO_TRANSPORT", "pickle"
    ))
    sketch_kwargs: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        try:
            self.descriptor()
        except KeyError:
            raise ValueError(
                f"kind must be one of {registered_kinds()}, got {self.kind!r} "
                "(register_algorithm adds more)"
            ) from None
        require_positive_int("window", self.window)
        require_positive_int("size", self.size)
        require_positive_int("num_shards", self.num_shards)
        require_positive_int("flush_batch_size", self.flush_batch_size)
        if self.max_buffered_items is not None:
            require_positive_int("max_buffered_items", self.max_buffered_items)
        if self.max_buffered_total is not None:
            require_positive_int("max_buffered_total", self.max_buffered_total)
        if self.down_retention_items is not None:
            require_positive_int(
                "down_retention_items", self.down_retention_items
            )
        if self.overload_policy not in OVERLOAD_POLICIES:
            raise ValueError(
                f"overload_policy must be one of {OVERLOAD_POLICIES}, "
                f"got {self.overload_policy!r}"
            )
        if self.block_timeout_s <= 0:
            raise ValueError(
                f"block_timeout_s must be positive, got {self.block_timeout_s}"
            )
        if self.wal_dir is not None:
            # JSON round-trip stability: manifests store the config, so
            # a Path here must not come back as a different type
            self.wal_dir = str(self.wal_dir)
        if self.wal_fsync not in WAL_FSYNC_POLICIES:
            raise ValueError(
                f"wal_fsync must be one of {WAL_FSYNC_POLICIES}, "
                f"got {self.wal_fsync!r}"
            )
        if self.wal_fsync_interval_s <= 0:
            raise ValueError(
                "wal_fsync_interval_s must be positive, "
                f"got {self.wal_fsync_interval_s}"
            )
        require_positive_int("wal_segment_bytes", self.wal_segment_bytes)
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"transport must be one of {TRANSPORTS}, "
                f"got {self.transport!r}"
            )

    @property
    def bounded(self) -> bool:
        """True when any admission-control budget is configured."""
        return (
            self.max_buffered_items is not None
            or self.max_buffered_total is not None
            or self.down_retention_items is not None
        )

    def descriptor(self):
        """The registered :class:`~repro.core.registry.AlgoDescriptor`."""
        return get_descriptor(self.kind)

    def to_json(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, data: dict) -> "EngineConfig":
        """Rebuild a config saved by :meth:`to_json`.

        Unknown keys raise a :class:`ValueError` naming them — a config
        from a newer version (or a typo) should fail loudly, not as an
        opaque ``TypeError`` from the dataclass constructor.
        """
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown EngineConfig keys {unknown}; known keys: "
                f"{sorted(known)}"
            )
        return cls(**data)


@dataclass(frozen=True)
class DegradedAnswer:
    """A ``strict=False`` query result plus its shard coverage.

    ``value`` is the usual answer computed over the surviving shards
    (``None`` when every shard is down).  ``caveat`` spells out, per
    sketch kind, which guarantee the missing shards cost — e.g. SHE-CM
    loses its one-sided error: keys owned by a missing shard can now be
    *under*-estimated (to zero), which a strict CM answer never does.

    ``shed_shards`` lists answering shards that shed arrivals inside
    the current window under an overload policy: their portion of the
    answer silently omits the shed items, and ``caveat`` (via the
    algorithm descriptor's caveat hook) says which guarantee that
    costs.
    """

    value: Any
    shards_answered: int
    shards_total: int
    missing_shards: tuple[int, ...] = ()
    caveat: str | None = None
    shed_shards: tuple[int, ...] = ()

    @property
    def degraded(self) -> bool:
        return self.shards_answered < self.shards_total or bool(self.shed_shards)

    @property
    def coverage(self) -> float:
        return self.shards_answered / self.shards_total


def _build_shards(config: EngineConfig) -> list:
    desc = config.descriptor()
    proto = desc.build(config.window, config.size, **config.sketch_kwargs)
    return [proto] + [proto.clone_empty() for _ in range(config.num_shards - 1)]


class _ShardBuffer:
    """Pending (keys, times) chunks for one shard (and side, for MH).

    Batch appends stage array slices; :meth:`append_one` stages bare
    scalars in side lists that are sealed into one array chunk only
    when the buffer is next drained/inspected, so the single-item
    ingest path allocates no per-item arrays.
    """

    __slots__ = ("keys", "times", "count", "_pk", "_pt")

    def __init__(self) -> None:
        self.keys: list[np.ndarray] = []
        self.times: list[np.ndarray] = []
        self.count = 0
        self._pk: list[int] = []
        self._pt: list[int] = []

    def append(self, keys: np.ndarray, times: np.ndarray) -> None:
        if self._pk:
            self._seal()
        self.keys.append(keys)
        self.times.append(times)
        self.count += int(keys.size)

    def append_one(self, key: int, time: int) -> None:
        self._pk.append(key)
        self._pt.append(time)
        self.count += 1

    def _seal(self) -> None:
        """Convert staged scalars into one ordered array chunk."""
        self.keys.append(np.asarray(self._pk, dtype=np.uint64))
        self.times.append(np.asarray(self._pt, dtype=np.int64))
        self._pk = []
        self._pt = []

    def drain(self) -> tuple[np.ndarray, np.ndarray]:
        if self._pk:
            self._seal()
        keys = np.concatenate(self.keys) if len(self.keys) > 1 else self.keys[0]
        times = np.concatenate(self.times) if len(self.times) > 1 else self.times[0]
        self.keys.clear()
        self.times.clear()
        self.count = 0
        return keys, times

    def requeue(self, keys: np.ndarray, times: np.ndarray) -> None:
        """Put a drained-but-unacknowledged batch back at the front,
        so per-shard time order survives a failed flush."""
        self.keys.insert(0, keys)
        self.times.insert(0, times)
        self.count += int(keys.size)

    def shed_oldest(self, n: int) -> int:
        """Drop up to ``n`` of the oldest buffered items; returns the
        number actually dropped.  Chunks are time-ordered front-to-back
        and ascending within, so popping from the front is oldest-first."""
        if self._pk:
            self._seal()
        dropped = 0
        while dropped < n and self.keys:
            head = self.keys[0]
            take = min(int(head.size), n - dropped)
            if take == int(head.size):
                self.keys.pop(0)
                self.times.pop(0)
            else:
                self.keys[0] = head[take:]
                self.times[0] = self.times[0][take:]
            dropped += take
        self.count -= dropped
        return dropped

    def front_time(self) -> int | None:
        """Union-stream time of the oldest buffered item (None if empty)."""
        if self.times:
            return int(self.times[0][0])
        if self._pt:
            return self._pt[0]
        return None


class StreamEngine:
    """Sharded, buffered ingestion and query serving over SHE sketches.

    Args:
        config: the :class:`EngineConfig` describing shards and flushing.
        executor: ``"serial"`` (default) applies flushes inline;
            ``"process"`` forks shard-owning workers so flushes of
            different shards run in parallel.  A callable taking the
            shard list and returning an executor instance is also
            accepted (fault-injection wrappers, custom pools).
        num_workers: worker count for the process executor
            (default: one per shard).
        clock: injectable monotonic clock for the time trigger and
            stats (tests pin it).
        sleep: injectable sleep used by the ``"block"`` overload
            policy's bounded wait (tests stub it).
        obs: observability — ``True`` / an :class:`repro.obs.Observability`
            bundle enables the labelled metrics registry, trace spans
            and SHE probe gauges (serve them with
            :class:`repro.obs.MetricsExporter`); the default ``None``
            keeps everything on no-op stand-ins so the hot path pays
            nothing.

    The engine is also a context manager; ``close()`` flushes buffers
    and stops workers.
    """

    def __init__(
        self,
        config: EngineConfig,
        *,
        executor: str = "serial",
        num_workers: int | None = None,
        clock=time.monotonic,
        sleep=time.sleep,
        obs: "Observability | bool | None" = None,
        _shards: list | None = None,
        _clock_state: list[int] | None = None,
    ):
        self.config = config
        self._clock = clock
        self.obs = Observability.coerce(obs)
        self.stats = EngineStats(
            clock=clock,
            registry=self.obs.registry if self.obs.enabled else None,
        )
        self._desc = config.descriptor()
        self._two_stream = self._desc.two_stream
        shards = _shards if _shards is not None else _build_shards(config)
        if len(shards) != config.num_shards:
            raise ValueError(
                f"got {len(shards)} shards for num_shards={config.num_shards}"
            )
        if executor == "serial":
            self._exec = SerialExecutor(shards, transport=config.transport)
        elif executor == "process":
            self._exec = ProcessExecutor(
                shards,
                num_workers=num_workers,
                timeout_s=config.rpc_timeout_s,
                transport=config.transport,
                ring_slot_items=max(4 * config.flush_batch_size, 32768),
            )
        elif callable(executor):
            self._exec = executor(shards)
        else:
            raise ValueError(
                "executor must be 'serial', 'process' or a factory "
                f"callable, got {executor!r}"
            )
        self.executor_kind = (
            executor if isinstance(executor, str)
            else type(self._exec).__name__
        )
        set_obs = getattr(self._exec, "set_obs", None)
        if set_obs is not None:
            set_obs(self.obs if self.obs.enabled else None)
        # stage-level latency attribution (repro.obs.windows): the
        # recorder is the bundle's NULL_STAGES no-op unless windowed
        # telemetry is on, so hot-path guards are one attribute read
        self._stages = self.obs.stages
        self._last_sync_trace: str | None = None
        self._init_shard_metrics()
        # global union-stream clock(s): next arrival index per side
        self._t = list(_clock_state) if _clock_state is not None else (
            [0, 0] if self._two_stream else [0]
        )
        self._buffers: dict[tuple[int, int], _ShardBuffer] = {}
        self._last_drain = clock()
        self._closed = False
        self._supervisor = None  # attached by Supervisor.__init__
        self._down: set[int] = set()  # shards with no live, trusted worker
        # admission-control bookkeeping (all zero-cost when unbounded):
        # lifetime shed count per shard, the union-stream time of each
        # shard's latest shed event (keyed by side, for the shed-in-window
        # caveat), and the deepest the queue has ever been per shard
        self._sleep = sleep
        self._shed_counts = [0] * config.num_shards
        self._last_shed_t: dict[tuple[int, int], int] = {}
        self._queue_high_water = [0] * config.num_shards
        # durable ingestion log (repro.service.wal): opening an existing
        # directory recovers the tail (truncating torn appends) and
        # raises WalCorruptionError on mid-log damage — an engine must
        # refuse to start on a log it cannot trust
        self._wal = None
        self._wal_replaying = False
        self._wal_replayed_items = 0
        if config.wal_dir is not None:
            self._wal = WriteAheadLog(
                config.wal_dir,
                fsync=config.wal_fsync,
                fsync_interval_s=config.wal_fsync_interval_s,
                segment_max_bytes=config.wal_segment_bytes,
                clock=clock,
                registry=self.obs.registry if self.obs.enabled else None,
            )

    def _init_shard_metrics(self) -> None:
        """Pre-resolve per-shard metric children so the hot path is one
        attribute increment per touched shard (no dict lookups)."""
        reg = self.obs.registry
        shards = [str(s) for s in range(self.config.num_shards)]
        items = reg.counter(
            "engine_shard_items_total",
            "Items routed to each shard's buffer",
            labels=("shard",),
        )
        flushes = reg.counter(
            "engine_shard_flushes_total",
            "Batches drained into each shard",
            labels=("shard",),
        )
        failures = reg.counter(
            "engine_shard_flush_failures_total",
            "Flush rounds that failed for each shard",
            labels=("shard",),
        )
        shed = reg.counter(
            "engine_shard_items_shed_total",
            "Items dropped by the overload shed policies, per shard",
            labels=("shard",),
        )
        self._m_shard_items = [items.labels(s) for s in shards]
        self._m_shard_flushes = [flushes.labels(s) for s in shards]
        self._m_shard_failures = [failures.labels(s) for s in shards]
        self._m_shard_shed = [shed.labels(s) for s in shards]
        # SHE probe gauges: refreshed by update_probe_gauges(), not the
        # hot path — see docs/observability.md for the catalogue
        self._g_probe = {
            name: reg.gauge(name, help_, labels=("shard",))
            for name, help_ in (
                ("she_young_cells", "Probe: cells younger than the window"),
                ("she_perfect_cells", "Probe: cells aged exactly N"),
                ("she_aged_cells", "Probe: cells older than the window"),
                ("she_occupied_cells", "Probe: cells holding a stored value"),
                ("she_fill_ratio", "Probe: occupied fraction of cells"),
                (
                    "she_legal_group_fraction",
                    "Probe: groups inside the legal age band",
                ),
                (
                    "she_cells_cleaned_total",
                    "Probe: cells reset by cleaning since start",
                ),
                (
                    "she_groups_cleaned_total",
                    "Probe: group resets by cleaning since start",
                ),
                (
                    "she_cleaning_checks_total",
                    "Probe: cleaning checks (CheckGroup calls / sweeps)",
                ),
            )
        }
        self._g_age_hist = reg.gauge(
            "she_cell_age_le",
            "Probe: cells with age <= le fraction of Tcycle (cumulative)",
            labels=("shard", "le"),
        )
        self._g_queue_depth = reg.gauge(
            "engine_queue_depth", "Buffered items per shard", labels=("shard",)
        )
        self._g_queue_high_water = reg.gauge(
            "engine_queue_depth_high_water",
            "Deepest buffered-item count observed per shard",
            labels=("shard",),
        )
        self._g_shard_down = reg.gauge(
            "engine_shard_down",
            "1 when the shard has no live, trusted worker",
            labels=("shard",),
        )
        self._g_memory = reg.gauge(
            "engine_memory_bytes", "Aggregate sketch memory across shards"
        )

    # -- clock ---------------------------------------------------------------

    def now(self, side: int = 0) -> int:
        """The union-stream clock: items ingested (per side for MH)."""
        return self._t[side]

    @property
    def window(self) -> int:
        return self.config.window

    @property
    def num_shards(self) -> int:
        return self.config.num_shards

    # -- ingestion -----------------------------------------------------------

    def ingest(self, keys, side: int | None = None) -> None:
        """Buffer a batch of arrivals at consecutive union-stream times.

        ``side`` selects the stream for two-stream (MH) engines and must
        be omitted otherwise.

        The batch is *admitted before it is stamped*: when admission
        control is configured (:attr:`EngineConfig.bounded`) the budgets
        are checked first, and only the admitted arrivals receive
        union-stream clock ticks.  A batch rejected by the ``"raise"``
        / ``"block"`` policies — and arrivals turned away by
        ``"shed_newest"`` — never advance the clock, so a caller that
        backs off and retries delivers exactly the stream it meant to.
        """
        self._check_open()
        if self._two_stream:
            if side not in (0, 1):
                raise ValueError("two-stream engines need side=0 or side=1")
        elif side not in (None, 0):
            raise ValueError(f"single-stream engine got side={side}")
        side = 0 if side is None else side
        arr = as_key_array(keys)
        if arr.size == 0:
            return
        n_offered = int(arr.size)
        sids = shard_ids(arr, self.config.num_shards, self.config.shard_seed)
        # stage timing (repro.obs.windows): zero-cost when telemetry is
        # off; when on, each hot-path stage feeds a windowed quantile
        # and the whole ingest files one span whose id rides into the
        # stage exemplars
        stages = self._stages
        timed = stages.enabled
        if timed:
            perf = time.perf_counter
            ingest_start = perf()
            trace_id = new_id() if self.obs.tracer.enabled else None
            stage_t0 = perf()
        # during WAL replay the arrivals were already admitted (and
        # logged) before the crash: re-running admission control could
        # shed them a second time and break bit-identical recovery
        admit = (
            None if self._wal_replaying
            else self._admit(arr, sids, side)  # may raise EngineOverloadedError
        )
        if admit is not None:
            arr = arr[admit]
            sids = sids[admit]
        if timed:
            stages.observe("admit", perf() - stage_t0, trace_id)
        if self._wal is not None and not self._wal_replaying and arr.size:
            # durability point: the *admitted* batch hits the log before
            # it is stamped — shed/rejected arrivals are never logged,
            # and a failed append (WalWriteError) rejects the batch
            # before any clock tick, like the raise overload policy
            if timed:
                stage_t0 = perf()
            self._wal.append(side, arr)
            if timed:
                stages.observe("wal_append", perf() - stage_t0, trace_id)
        if timed:
            stage_t0 = perf()
        t0 = self._t[side]
        times = t0 + np.arange(arr.size, dtype=np.int64)
        self._t[side] = t0 + int(arr.size)
        # partition in one vector pass: a stable sort by shard id turns
        # the batch into contiguous per-shard runs whose slices are
        # views, so buffers hold slices of one reordered array instead
        # of num_shards masked copies; within-shard time order (hence
        # bit-identical shard substreams) is preserved by stability
        if self.config.num_shards == 1:
            starts = (0,)
            counts = np.asarray([arr.size], dtype=np.int64)
            arr_p, times_p = arr, times
        else:
            order = np.argsort(sids, kind="stable")
            counts = np.bincount(sids, minlength=self.config.num_shards)
            starts = np.concatenate(([0], np.cumsum(counts[:-1])))
            arr_p = arr[order]
            times_p = times[order]
        for s in np.flatnonzero(counts):
            s = int(s)
            n = int(counts[s])
            lo = int(starts[s])
            buf = self._buffers.setdefault((s, side), _ShardBuffer())
            buf.append(arr_p[lo : lo + n], times_p[lo : lo + n])
            self._m_shard_items[s].inc(n)
            depth = buf.count
            if self._two_stream:
                other = self._buffers.get((s, 1 - side))
                if other is not None:
                    depth += other.count
            if depth > self._queue_high_water[s]:
                self._queue_high_water[s] = depth
        if timed:
            stages.observe("stamp", perf() - stage_t0, trace_id)
            if trace_id is not None:
                # file a complete ingest span so the exemplar trace-ids
                # the stage recorder samples resolve in the span ring
                self.obs.tracer.ingest((span_record(
                    "engine.ingest", trace_id, None, ingest_start,
                    (perf() - ingest_start) * 1e3,
                    items=n_offered, side=side,
                ),))
        # offered, not admitted: arrivals a shed policy dropped still
        # count as ingested, so the conservation identity
        #   ingested == flushed + buffered + shed + retained_down
        # closes.  raise/block rejections never reach this line.
        self.stats.record_ingest(n_offered)
        if self.config.bounded and self.config.overload_policy == "shed_oldest":
            self._enforce_caps_shed_oldest(side)
        self._maybe_flush()

    # -- admission control ---------------------------------------------------

    def _shard_cap(self, s: int) -> int | None:
        """The per-shard budget in force for shard ``s`` right now:
        the down-shard retention cap while it is down (falling back to
        the live cap), the live cap otherwise."""
        cfg = self.config
        if s in self._down and cfg.down_retention_items is not None:
            return cfg.down_retention_items
        return cfg.max_buffered_items

    def _over_budget(
        self, counts: np.ndarray
    ) -> tuple[dict[int, int], bool]:
        """Would admitting ``counts`` (incoming items per shard) breach
        a budget?  Returns (over-budget shard -> current depth, whether
        the engine-wide budget would be breached)."""
        cfg = self.config
        depths = self.queue_depths()
        over = {}
        for s in range(cfg.num_shards):
            cap = self._shard_cap(s)
            if cap is not None and counts[s] and depths[s] + int(counts[s]) > cap:
                over[s] = depths[s]
        over_total = (
            cfg.max_buffered_total is not None
            and sum(depths) + int(counts.sum()) > cfg.max_buffered_total
        )
        return over, over_total

    def _record_shed(self, s: int, side: int, n: int) -> None:
        """Account ``n`` items shed from shard ``s``: global and
        per-shard counters, plus the shed-event time used by the
        shed-in-window query caveat."""
        if n <= 0:
            return
        self.stats.record_shed(n)
        self._m_shard_shed[s].inc(n)
        self._shed_counts[s] += n
        mark = self._t[side]
        prev = self._last_shed_t.get((s, side))
        if prev is None or mark > prev:
            self._last_shed_t[s, side] = mark

    def _admit(
        self, arr: np.ndarray, sids: np.ndarray, side: int
    ) -> np.ndarray | None:
        """Admission control for one ingest batch.

        Returns ``None`` to admit everything (the unbounded fast path
        and the ``shed_oldest`` policy, which admits then evicts), or a
        boolean mask of the admitted arrivals (``shed_newest``).  The
        ``raise`` policy — and ``block`` once its deadline passes —
        raises :class:`EngineOverloadedError` for the whole batch
        instead; partial admission would reorder the union stream.

        Before any policy fires, flushable live buffers are drained
        (a *relief flush*): data is never rejected or dropped while
        room can still be made.
        """
        cfg = self.config
        if not cfg.bounded:
            return None
        policy = cfg.overload_policy
        if policy == "shed_oldest":
            return None
        counts = np.bincount(sids, minlength=cfg.num_shards)
        deadline = (
            self._clock() + cfg.block_timeout_s if policy == "block" else None
        )
        while True:
            over, over_total = self._over_budget(counts)
            if not over and not over_total:
                return None
            flushable = self._flushable_keys()
            if flushable:
                self._flush_buffers(flushable, strict=False)
                over, over_total = self._over_budget(counts)
                if not over and not over_total:
                    return None
            if deadline is not None and self._clock() < deadline:
                # bounded wait: nothing drains by itself in this
                # synchronous engine, but a supervisor thread or an
                # injected clock can change the picture between polls
                self._sleep(min(0.05, cfg.block_timeout_s / 10))
                continue
            break
        if policy in ("raise", "block"):
            self.stats.record_rejected(int(arr.size))
            limits = {self._shard_cap(s) for s in over} - {None}
            parts = []
            if over:
                parts.append(
                    "per-shard budget full: "
                    + ", ".join(f"shard {s} depth {d}" for s, d in sorted(over.items()))
                )
            if over_total:
                parts.append(
                    f"engine-wide budget {cfg.max_buffered_total} full"
                )
            raise EngineOverloadedError(
                f"ingest of {arr.size} items rejected ({'; '.join(parts)}); "
                "no clock ticks were consumed — back off and retry",
                shard_ids=tuple(sorted(over)),
                depths=over,
                limit=min(limits) if limits else None,
                total_limit=cfg.max_buffered_total,
                policy=policy,
            )
        # shed_newest: turn away exactly the overflow at the door —
        # per over-budget shard keep the earliest arrivals that fit,
        # then trim the batch tail for the engine-wide budget
        depths = self.queue_depths()
        admit = np.ones(arr.size, dtype=bool)
        for s in over:
            cap = self._shard_cap(s)
            room = max(0, cap - depths[s])
            idx = np.flatnonzero(sids == s)
            if idx.size > room:
                admit[idx[room:]] = False
        if cfg.max_buffered_total is not None:
            room_total = max(0, cfg.max_buffered_total - sum(depths))
            kept = np.flatnonzero(admit)
            if kept.size > room_total:
                admit[kept[room_total:]] = False
        dropped = sids[~admit]
        if dropped.size:
            drop_counts = np.bincount(dropped, minlength=cfg.num_shards)
            for s in np.flatnonzero(drop_counts):
                self._record_shed(int(s), side, int(drop_counts[s]))
        return admit

    def _enforce_caps_shed_oldest(self, side: int) -> None:
        """Post-admission eviction for the ``shed_oldest`` policy: the
        new arrivals are already stamped and buffered; evict the oldest
        buffered items until every budget holds again.  A relief flush
        runs first so live data drains instead of dropping."""
        cfg = self.config
        depths = self.queue_depths()
        caps = [self._shard_cap(s) for s in range(cfg.num_shards)]
        over = any(
            cap is not None and depths[s] > cap for s, cap in enumerate(caps)
        )
        over_total = (
            cfg.max_buffered_total is not None
            and sum(depths) > cfg.max_buffered_total
        )
        if not over and not over_total:
            return
        flushable = self._flushable_keys()
        if flushable:
            self._flush_buffers(flushable, strict=False)
        depths = self.queue_depths()
        for s in range(cfg.num_shards):
            cap = self._shard_cap(s)
            if cap is not None and depths[s] > cap:
                depths[s] -= self._shed_from_shard(s, depths[s] - cap)
        if cfg.max_buffered_total is not None:
            excess = sum(depths) - cfg.max_buffered_total
            while excess > 0:
                # evict globally-oldest: the shard whose front item is
                # earliest sheds first (front chunks only, so each pass
                # stays oldest-first at chunk granularity)
                oldest, oldest_t = None, None
                for (s, sd), buf in self._buffers.items():
                    ft = buf.front_time()
                    if ft is not None and (oldest_t is None or ft < oldest_t):
                        oldest, oldest_t = s, ft
                if oldest is None:
                    break
                shed = self._shed_from_shard(oldest, excess)
                if shed == 0:
                    break
                excess -= shed

    def _shed_from_shard(self, s: int, n: int) -> int:
        """Evict up to ``n`` oldest buffered items from shard ``s``
        (across its sides, oldest front chunk first); returns the
        number evicted."""
        remaining = n
        while remaining > 0:
            best_side, best_t, best_buf = None, None, None
            for side in ((0, 1) if self._two_stream else (0,)):
                buf = self._buffers.get((s, side))
                if buf is None:
                    continue
                ft = buf.front_time()
                if ft is not None and (best_t is None or ft < best_t):
                    best_side, best_t, best_buf = side, ft, buf
            if best_buf is None:
                break
            head = int(best_buf.keys[0].size)
            dropped = best_buf.shed_oldest(min(remaining, head))
            if dropped == 0:
                break
            self._record_shed(s, best_side, dropped)
            remaining -= dropped
        return n - remaining

    def ingest_one(self, key: int, side: int | None = None) -> None:
        """Scalar fast path of :meth:`ingest` for one arrival.

        Skips the batch path's array construction entirely — shard
        assignment is a scalar :func:`repro.service.sharding.shard_of`
        and the item is staged as a bare scalar in its shard buffer,
        sealed into an array only at flush.  Whenever a slow-path
        feature is active (admission control, WAL, stage telemetry)
        it delegates to the batch path, so behaviour and resulting
        state are identical either way.
        """
        if (
            self.config.bounded
            or self._wal is not None
            or self._stages.enabled
        ):
            self.ingest(np.asarray([key], dtype=np.uint64), side)
            return
        self._check_open()
        if self._two_stream:
            if side not in (0, 1):
                raise ValueError("two-stream engines need side=0 or side=1")
        elif side not in (None, 0):
            raise ValueError(f"single-stream engine got side={side}")
        side = 0 if side is None else side
        if not isinstance(key, (int, np.integer)):
            raise TypeError(f"keys must be integers, got {type(key).__name__}")
        key = int(key) & 0xFFFFFFFFFFFFFFFF  # uint64 wrap, as as_key_array
        s = shard_of(key, self.config.num_shards, self.config.shard_seed)
        t0 = self._t[side]
        self._t[side] = t0 + 1
        buf = self._buffers.setdefault((s, side), _ShardBuffer())
        buf.append_one(key, t0)
        self._m_shard_items[s].inc(1)
        depth = buf.count
        if self._two_stream:
            other = self._buffers.get((s, 1 - side))
            if other is not None:
                depth += other.count
        if depth > self._queue_high_water[s]:
            self._queue_high_water[s] = depth
        self.stats.record_ingest(1)
        self._maybe_flush()

    # alias so sketch-shaped consumers (HeavyHitters, harness drivers)
    # can drive an engine where they would drive a sketch
    def insert_many(self, keys) -> None:
        self.ingest(keys)

    def insert(self, key: int) -> None:
        self.ingest_one(key)

    def _maybe_flush(self) -> None:
        full = [
            key for key, buf in self._buffers.items()
            if buf.count >= self.config.flush_batch_size
            and key[0] not in self._down
        ]
        interval = self.config.flush_interval_s
        if interval is not None and self._clock() - self._last_drain >= interval:
            self._flush_buffers(self._flushable_keys())
        elif full:
            self._flush_buffers(full)

    def _flushable_keys(self) -> list[tuple[int, int]]:
        """Non-empty buffers whose shard has a live worker (down
        shards retain their data until recovery)."""
        return [
            k for k, b in self._buffers.items()
            if b.count and k[0] not in self._down
        ]

    def flush(self) -> None:
        """Drain every live shard's queue through the batch insert path.

        Buffers of down shards are retained, not dropped; recover the
        shards (:class:`repro.service.supervisor.Supervisor`) and the
        next flush delivers them in order.
        """
        self._check_open()
        self._flush_buffers(self._flushable_keys())

    def tick(self) -> None:
        """Run the time-based flush trigger without new arrivals.

        ``flush_interval_s`` used to be checked only inside
        :meth:`ingest`, so a quiet stream held buffered items (and an
        overloaded engine its backlog) until the next arrival.  The
        stats path calls this automatically on serial engines; drivers
        of idle engines should call it periodically.  Cheap no-op when
        nothing is due.
        """
        if self._closed:
            return
        interval = self.config.flush_interval_s
        if interval is not None and self._clock() - self._last_drain >= interval:
            self._flush_buffers(self._flushable_keys(), strict=False)

    # -- failure plumbing ----------------------------------------------------

    def _note_failure(self, err: ShardError) -> None:
        if isinstance(err, ShardTimeoutError):
            self.stats.record_timeout()
        elif isinstance(err, ShardDeadError):
            self.stats.record_worker_death()

    def _shards_of_error(self, err: ShardError) -> set[int]:
        """Which shards an executor error implicates (worst case: all)."""
        if err.shard_ids:
            return set(err.shard_ids)
        if err.worker_ids:
            return {
                s for w in err.worker_ids for s in self._exec.shards_of(w)
            }
        return set(range(self.config.num_shards))

    def _handle_executor_failure(self, err: ShardError, *, strict: bool) -> bool:
        """Common response to a failed executor op (advance/snapshot).

        Returns True when an attached supervisor fully recovered the
        implicated workers (the caller may retry the op).  Otherwise
        the shards are marked down and the error re-raises unless the
        caller opted into degradation.
        """
        self._note_failure(err)
        if (
            self._supervisor is not None
            and not isinstance(err, ShardFailedError)
            and self._supervisor.handle_failure(err)
        ):
            return True
        if not isinstance(err, ShardFailedError):
            self._down.update(self._shards_of_error(err))
        if strict or isinstance(err, ShardFailedError):
            raise err
        return False

    def _flush_buffers(self, buffer_keys, *, strict: bool = True) -> None:
        if not buffer_keys:
            self._last_drain = self._clock()
            return
        started = self._clock()
        staged: list[tuple[tuple[int, int], np.ndarray, np.ndarray]] = []
        batches = []
        n_items = 0
        for s, side in buffer_keys:
            keys, times = self._buffers[s, side].drain()
            n_items += int(keys.size)
            staged.append(((s, side), keys, times))
            batches.append((s, keys, times, side if self._two_stream else None))
        if self._supervisor is not None:
            # log before sending: a batch whose ack never arrives must
            # still be replayable after restart-from-checkpoint
            self._supervisor.record_sent(batches)
        try:
            tracer = self.obs.tracer
            stages = self._stages
            rpc_start = time.perf_counter() if stages.enabled else None
            if tracer.enabled:
                # root of the flush chain: the trace context crosses the
                # executor RPC boundary and the worker's apply span rides
                # back on the ack (see repro.obs.tracing)
                with tracer.span(
                    "engine.flush", items=n_items, batches=len(batches)
                ) as root:
                    self._exec.flush_many(batches, trace=root.context)
                flush_trace = root.trace_id
            else:
                self._exec.flush_many(batches)
                flush_trace = None
            if rpc_start is not None:
                # the full executor round-trip: send + apply + ack wait
                stages.observe(
                    "flush_rpc", time.perf_counter() - rpc_start, flush_trace
                )
            for (s, _side), _keys, _times in staged:
                self._m_shard_flushes[s].inc()
        except ShardError as err:
            self._note_failure(err)
            recovered = (
                self._supervisor is not None
                and not isinstance(err, ShardFailedError)
                and self._supervisor.handle_failure(err)
            )
            if not recovered:
                failed = self._shards_of_error(err)
                for s in failed & {s for (s, _side), _, _ in staged}:
                    self._m_shard_failures[s].inc()
                if not isinstance(err, ShardFailedError):
                    self._down.update(
                        failed & {s for (s, _side), _, _ in staged}
                    )
                if self._supervisor is None:
                    # retention: unacknowledged batches return to their
                    # buffers (front, preserving per-shard time order);
                    # with a supervisor the replay buffer owns them
                    for (s, side), keys, times in reversed(staged):
                        if s in failed:
                            self._buffers[s, side].requeue(keys, times)
                applied = n_items - sum(
                    int(keys.size)
                    for (s, _side), keys, _times in staged
                    if s in failed
                )
                self._last_drain = self._clock()
                if applied:
                    self.stats.record_flush(applied, self._last_drain - started)
                if strict or isinstance(err, ShardFailedError):
                    raise
                return
            # recovered: the failed worker was rebuilt from checkpoint
            # and every logged batch (including this round's) replayed
        self._last_drain = self._clock()
        self.stats.record_flush(n_items, self._last_drain - started)

    def queue_depths(self) -> list[int]:
        """Buffered items per shard (summed over sides)."""
        depths = [0] * self.config.num_shards
        for (s, _side), buf in self._buffers.items():
            depths[s] += buf.count
        return depths

    # -- querying ------------------------------------------------------------

    def _sync(self, strict: bool = True) -> None:
        """Drain buffers and bring every live shard to the global clock.

        With ``strict=True`` (the default), any down shard — previously
        marked or newly failed here — raises; ``strict=False`` marks
        failures down and keeps going so degraded queries can answer
        from the survivors.
        """
        if strict and self._down:
            raise ShardUnrecoverableError(
                f"shards {sorted(self._down)} are down; recover them "
                "(Supervisor.recover_down) or query with strict=False",
                shard_ids=tuple(sorted(self._down)),
            )
        self._check_open()
        with self.obs.tracer.span("engine.sync", strict=strict) as sync_span:
            # remembered for the query_fanin stage exemplar: the fan-in
            # that follows this sync belongs to the same logical trace
            self._last_sync_trace = sync_span.trace_id
            self._flush_buffers(self._flushable_keys(), strict=strict)
            for s in range(self.config.num_shards):
                if s in self._down:
                    continue
                try:
                    self._advance_shard(s)
                except ShardError as err:
                    if self._handle_executor_failure(err, strict=strict):
                        self._advance_shard(s)  # recovered: catch up once

    def _advance_shard(self, s: int) -> None:
        if self._two_stream:
            for side in (0, 1):
                self._exec.advance(s, self._t[side], side)
        else:
            self._exec.advance(s, self._t[0])

    def snapshots(self) -> list:
        """Clock-aligned copies of all shards (flushes first)."""
        self._sync()
        return self._exec.snapshots()

    def _surviving_snapshots(self) -> tuple[list, set[int]]:
        """Aligned snapshots of live shards + the missing-shard set."""
        self._sync(strict=False)
        snaps: list = []
        missing = set(self._down)
        for s in range(self.config.num_shards):
            if s in self._down:
                continue
            snap = None
            try:
                snap = self._exec.snapshot(s)
            except ShardError as err:
                if self._handle_executor_failure(err, strict=False):
                    try:  # recovered mid-query: one retry
                        self._advance_shard(s)
                        snap = self._exec.snapshot(s)
                    except ShardError:
                        pass
            if snap is None:
                missing.add(s)
            else:
                snaps.append(snap)
        return snaps, missing | self._down

    def merged(self):
        """One sketch equal to observing the union stream unsharded.

        This is the engine's fan-in: ``merge_many`` over the aligned
        shard snapshots, per :mod:`repro.core.merge` semantics.
        """
        started = time.perf_counter() if self._stages.enabled else None
        t = None if self._two_stream else self._t[0]
        out = merge_many(self.snapshots(), t=t, require_aligned=True)
        self._observe_fanin(started)
        return out

    def _observe_fanin(self, started: float | None) -> None:
        """File one query_fanin stage sample (no-op when untimed)."""
        if started is not None:
            self._stages.observe(
                "query_fanin",
                time.perf_counter() - started,
                self._last_sync_trace,
            )

    def _require_query(self, query: str) -> None:
        if query not in self._desc.queries:
            supporting = [
                k for k in registered_kinds()
                if query in get_descriptor(k).queries
            ]
            raise TypeError(
                f"{query} queries need a {'/'.join(supporting) or '?'} "
                f"engine, this one is {self.config.kind!r}"
            )

    def _shards_shed_in_window(self) -> set[int]:
        """Shards whose latest shed event is still inside the current
        window — their portion of any answer undercounts the stream."""
        if not self._last_shed_t:
            return set()
        window = self.config.window
        return {
            s
            for (s, side), mark in self._last_shed_t.items()
            if mark > self._t[side] - window
        }

    def _degraded_answer(self, value, missing: set[int]) -> DegradedAnswer:
        total = self.config.num_shards
        shed = self._shards_shed_in_window() - missing
        if missing:
            self.stats.record_degraded_query()
        return DegradedAnswer(
            value=value,
            shards_answered=total - len(missing),
            shards_total=total,
            missing_shards=tuple(sorted(missing)),
            caveat=self._desc.caveat(missing=bool(missing), shed=bool(shed)),
            shed_shards=tuple(sorted(shed)),
        )

    def _degraded_merged(self) -> tuple[Any, set[int]]:
        started = time.perf_counter() if self._stages.enabled else None
        snaps, missing = self._surviving_snapshots()
        if not snaps:
            return None, missing
        t = None if self._two_stream else self._t[0]
        out = merge_many(snaps, t=t, require_aligned=True), missing
        self._observe_fanin(started)
        return out

    def contains(self, key: int, *, strict: bool = True):
        """Membership of ``key`` in the window (BF engines)."""
        res = self.contains_many(np.asarray([key], dtype=np.uint64), strict=strict)
        if strict:
            return bool(res[0])
        value = None if res.value is None else bool(res.value[0])
        return dataclasses.replace(res, value=value)

    def contains_many(self, keys, *, strict: bool = True):
        """Windowed membership per key; ``strict=False`` answers from
        surviving shards as a :class:`DegradedAnswer` when some are
        down (their keys may come back as false negatives)."""
        self._require_query("membership")
        self.stats.record_query()
        if strict:
            return self.merged().contains_many(keys)
        merged, missing = self._degraded_merged()
        value = None if merged is None else merged.contains_many(keys)
        return self._degraded_answer(value, missing)

    def cardinality(self, *, strict: bool = True):
        """Distinct keys in the window (BM / HLL engines)."""
        self._require_query("cardinality")
        self.stats.record_query()
        if strict:
            return self.merged().cardinality()
        merged, missing = self._degraded_merged()
        value = None if merged is None else merged.cardinality()
        return self._degraded_answer(value, missing)

    def frequency(self, key: int, *, strict: bool = True):
        """Windowed count of ``key`` (CM engines)."""
        res = self.frequency_many(np.asarray([key], dtype=np.uint64), strict=strict)
        if strict:
            return float(res[0])
        value = None if res.value is None else float(res.value[0])
        return dataclasses.replace(res, value=value)

    def frequency_many(self, keys, *, strict: bool = True):
        """Windowed count estimates, fanned across shards per the
        algorithm's descriptor.

        Count-Min declares ``query_fanin="sum"``: counts of one key live
        entirely on its owning shard, and cross-shard summation
        preserves the never-underestimate guarantee that a
        min-over-merged-counters would dilute.  Algorithms declaring
        ``"merge"`` answer from the merged snapshot instead.

        ``strict=False`` answers over surviving shards only — Count-Min's
        one-sided error does not survive that (keys owned by a missing
        shard can be underestimated to zero), which the returned
        :class:`DegradedAnswer` says explicitly.
        """
        self._require_query("frequency")
        self.stats.record_query()
        keys = as_key_array(keys)
        if self._desc.query_fanin != "sum":
            if strict:
                return self.merged().frequency_many(keys)
            merged, missing = self._degraded_merged()
            value = None if merged is None else merged.frequency_many(keys)
            return self._degraded_answer(value, missing)
        if strict:
            started = time.perf_counter() if self._stages.enabled else None
            self._sync()
            t = self._t[0]
            out = np.sum(
                [s.frequency_many(keys, t) for s in self._exec.peeks()], axis=0
            )
            self._observe_fanin(started)
            return out
        snaps, missing = self._surviving_snapshots()
        t = self._t[0]
        value = (
            np.sum([s.frequency_many(keys, t) for s in snaps], axis=0)
            if snaps
            else None
        )
        return self._degraded_answer(value, missing)

    def similarity(self, *, strict: bool = True):
        """Jaccard similarity of the two streams (MH engines)."""
        self._require_query("similarity")
        self.stats.record_query()
        if strict:
            return self.merged().similarity()
        merged, missing = self._degraded_merged()
        value = None if merged is None else merged.similarity()
        return self._degraded_answer(value, missing)

    def quantile(self, q: float, *, strict: bool = True):
        """The ``q``-quantile of the windowed measurements (WQ engines).

        Served by the ``"wq"`` sliding-window quantile kind
        (:class:`repro.obs.windows.SheWindowedQuantile`): keys are
        non-negative integer measurements, the answer is the log-bucket
        representative value with the sketch's γ relative error, over
        (approximately) the last ``window`` arrivals of the union
        stream.  NaN when the window holds no samples.
        """
        self._require_query("quantile")
        self.stats.record_query()
        if strict:
            return self.merged().quantile(q)
        merged, missing = self._degraded_merged()
        value = None if merged is None else merged.quantile(q)
        return self._degraded_answer(value, missing)

    # -- observability -------------------------------------------------------

    @property
    def memory_bytes(self) -> int:
        """Aggregate sketch memory across shards (buffers excluded)."""
        return sum(s.memory_bytes for s in self._exec.peeks())

    @property
    def down_shards(self) -> tuple[int, ...]:
        """Shards currently without a live, trusted worker."""
        return tuple(sorted(self._down))

    def probe_shards(self) -> list[dict | None]:
        """Read-only SHE introspection of every shard (no draining).

        Each entry is the shard sketch's :meth:`probe` dict — cell age
        distribution vs ``Tcycle``, young/perfect/aged counts, fill
        ratio, cleaning telemetry — or ``None`` for down shards.  Reads
        the in-process views (``peeks``): serial executors probe the
        live shards, process executors probe snapshots shipped back
        over RPC, so call this from the engine's own thread only.
        """
        probed: list[dict | None] = [None] * self.config.num_shards
        views = self._exec.peeks()
        for s, sketch in enumerate(views):
            if s in self._down:
                continue
            probe = getattr(sketch, "probe", None)
            if probe is not None:
                probed[s] = probe()
        return probed

    @staticmethod
    def _probe_frames(probe: dict) -> list[dict]:
        """The frame dict(s) of one probe (MH reports one per side)."""
        if "frames" in probe:
            return list(probe["frames"])
        return [probe["frame"]]

    def update_probe_gauges(self) -> None:
        """Refresh the ``she_*`` / ``engine_queue_depth`` gauges.

        Cheap no-op when observability is disabled.  The exporter calls
        this on scrape for serial engines; process deployments should
        call it from the engine thread (e.g. after a flush round), since
        probing a process executor issues snapshot RPCs on the worker
        pipes.
        """
        if not self.obs.enabled:
            return
        for s, depth in enumerate(self.queue_depths()):
            self._g_queue_depth.labels(str(s)).set(depth)
        for s, hw in enumerate(self._queue_high_water):
            self._g_queue_high_water.labels(str(s)).set(hw)
        for s in range(self.config.num_shards):
            self._g_shard_down.labels(str(s)).set(1 if s in self._down else 0)
        if self._down:
            # probing fans out to every worker; while shards are down the
            # queue/down gauges above still refresh, the sketch-level
            # gauges keep their last good values
            return
        self._g_memory.set(self.memory_bytes)
        for s, probe in enumerate(self.probe_shards()):
            if probe is None:
                continue
            frames = self._probe_frames(probe)
            sums = {
                key: sum(f[key] for f in frames)
                for key in (
                    "young_cells", "perfect_cells", "aged_cells",
                    "occupied_cells", "cells_cleaned", "groups_cleaned",
                    "cleaning_checks", "num_cells",
                )
            }
            label = str(s)
            g = self._g_probe
            g["she_young_cells"].labels(label).set(sums["young_cells"])
            g["she_perfect_cells"].labels(label).set(sums["perfect_cells"])
            g["she_aged_cells"].labels(label).set(sums["aged_cells"])
            g["she_occupied_cells"].labels(label).set(sums["occupied_cells"])
            g["she_cells_cleaned_total"].labels(label).set(sums["cells_cleaned"])
            g["she_groups_cleaned_total"].labels(label).set(sums["groups_cleaned"])
            g["she_cleaning_checks_total"].labels(label).set(sums["cleaning_checks"])
            n_cells = max(sums["num_cells"], 1)
            g["she_fill_ratio"].labels(label).set(sums["occupied_cells"] / n_cells)
            g["she_legal_group_fraction"].labels(label).set(
                sum(f["legal_group_fraction"] for f in frames) / len(frames)
            )
            for frac in AGE_HIST_BINS:
                le = f"{frac:g}"
                self._g_age_hist.labels(label, le).set(
                    sum(f["age_hist_le"][le] for f in frames)
                )

    def overload_snapshot(self) -> dict:
        """Admission-control state for ``/statusz``: the configured
        budgets and policy, live depths, high-water marks, per-shard
        shed counts, and which shards shed inside the current window."""
        cfg = self.config
        return {
            "policy": cfg.overload_policy,
            "bounded": cfg.bounded,
            "max_buffered_items": cfg.max_buffered_items,
            "max_buffered_total": cfg.max_buffered_total,
            "down_retention_items": cfg.down_retention_items,
            "block_timeout_s": (
                cfg.block_timeout_s if cfg.overload_policy == "block" else None
            ),
            "queue_depths": self.queue_depths(),
            "queue_high_water": list(self._queue_high_water),
            "items_shed_per_shard": list(self._shed_counts),
            "items_shed_total": self.stats.items_shed,
            "items_rejected_total": self.stats.items_rejected,
            "shed_in_window": sorted(self._shards_shed_in_window()),
        }

    def wal_status(self) -> dict:
        """Durability state for ``/statusz`` and ``/healthz``.

        ``last_error`` is non-None while the most recent WAL append or
        fsync failed (the exporter reports degraded until a later sync
        clears it); ``lag_items`` counts appended items not yet covered
        by an fsync — what a power cut could take under the current
        policy.
        """
        if self._wal is None:
            return {"enabled": False}
        w = self._wal
        return {
            "enabled": True,
            "directory": str(w.directory),
            "fsync": w.fsync_policy,
            "fsync_interval_s": w.fsync_interval_s,
            "position": list(w.position()),
            "durable_position": list(w.durable_position()),
            "segments": w.segment_count(),
            "bytes": w.total_bytes,
            "lag_items": w.pending_items,
            "appends_total": w.appends,
            "fsyncs_total": w.fsyncs,
            "torn_bytes_dropped": w.torn_bytes_dropped,
            "last_error": w.last_error,
            "replayed_items": self._wal_replayed_items,
        }

    def stats_snapshot(self, *, tick: bool | None = None) -> dict:
        """Counter snapshot; see :meth:`EngineStats.snapshot`.

        ``tick`` runs the time-based flush trigger first so an idle
        engine's buffers still drain when only stats are being read.
        The default (``None``) ticks serial engines only: the metrics
        exporter scrapes from its own thread, and ticking a process
        executor there would issue worker RPCs off the engine thread.
        """
        if tick is None:
            tick = isinstance(self._exec, SerialExecutor)
        if tick and not self._closed:
            self.tick()
        return self.stats.snapshot(
            queue_depths=self.queue_depths(), down_shards=self.down_shards
        )

    def stats_report(self) -> str:
        """Human-readable counter block for dashboards and examples."""
        return format_stats(self.stats_snapshot())

    # -- lifecycle -----------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("engine is closed")

    def close(self) -> None:
        """Flush pending work and stop any workers.

        Workers are stopped (and their handles released) even when the
        final flush fails — a dying engine must not leak processes.
        """
        if self._closed:
            return
        try:
            self._flush_buffers(self._flushable_keys(), strict=False)
        finally:
            self._closed = True
            try:
                if self._wal is not None:
                    self._wal.close()
            finally:
                self._exec.close()

    def __enter__(self) -> "StreamEngine":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
