"""The sharded streaming engine: ingestion, routing and query fan-in.

``StreamEngine`` turns the single-sketch SHE library into a serving
layer, following the shard-then-merge pattern of Papapetrou et al.'s
distributed sliding-window monitors:

* **Sharding.** Keys hash-partition across ``S`` shards; every shard is
  an independent SHE sketch built from one prototype, so all shards
  share geometry, seeds and — crucially — the *union stream's* count
  clock.  Arrivals carry their global arrival index into the owning
  shard (``insert_at``), and idle shards are advanced to the global
  clock before any query, so the shard set always satisfies
  :func:`repro.core.merge.merge_many`'s alignment requirement.

* **Batching.** Inserts buffer in per-shard queues and drain through
  the exact vectorised batch path.  A queue drains when it reaches
  ``flush_batch_size`` (size trigger) or when ``flush_interval_s``
  elapses since the last drain (time trigger, checked on ingest);
  queries and checkpoints drain everything first, so they always see
  the full stream.

* **Query fan-in.** Membership / cardinality / similarity snapshot the
  shards and combine them via ``merge_many`` — the engine answers
  exactly as the merged single sketch would.  Frequency (SHE-CM) sums
  the per-shard estimates instead: counts of one key live entirely on
  its owning shard, and cross-shard summation preserves Count-Min's
  never-underestimate guarantee, which a min-over-summed-counters
  merge would dilute with other shards' collision noise.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.common.validation import as_key_array, require_positive_int
from repro.core.merge import merge_many
from repro.core.she_bf import SheBloomFilter
from repro.core.she_bm import SheBitmap
from repro.core.she_cm import SheCountMin
from repro.core.she_hll import SheHyperLogLog
from repro.core.she_mh import SheMinHash
from repro.service.executor import ProcessExecutor, SerialExecutor
from repro.service.sharding import DEFAULT_SHARD_SEED, shard_ids
from repro.service.stats import EngineStats, format_stats

__all__ = ["EngineConfig", "StreamEngine", "KINDS"]

# kind -> (sketch class, name of the size argument)
KINDS: dict[str, tuple[type, str]] = {
    "bf": (SheBloomFilter, "num_bits"),
    "bm": (SheBitmap, "num_bits"),
    "hll": (SheHyperLogLog, "num_registers"),
    "cm": (SheCountMin, "num_counters"),
    "mh": (SheMinHash, "num_counters"),
}


@dataclass
class EngineConfig:
    """Everything needed to (re)build a :class:`StreamEngine`.

    Args:
        kind: which SHE sketch backs the shards — ``"bf"`` (membership),
            ``"bm"`` / ``"hll"`` (cardinality), ``"cm"`` (frequency) or
            ``"mh"`` (two-stream similarity).
        window: sliding-window size N (items).
        size: per-shard sketch size (bits / registers / counters).
        num_shards: how many shards to hash-partition keys across.
        flush_batch_size: per-shard queue depth that triggers a drain.
        flush_interval_s: drain everything when this much wall time has
            passed since the last drain (None disables the time trigger).
        shard_seed: partitioner seed (independent of sketch seeds).
        sketch_kwargs: forwarded to the sketch constructor (``seed``,
            ``alpha``, ``num_hashes``, ``frame``, ...).
    """

    kind: str
    window: int
    size: int
    num_shards: int = 4
    flush_batch_size: int = 8192
    flush_interval_s: float | None = 1.0
    shard_seed: int = DEFAULT_SHARD_SEED
    sketch_kwargs: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"kind must be one of {sorted(KINDS)}, got {self.kind!r}")
        require_positive_int("window", self.window)
        require_positive_int("size", self.size)
        require_positive_int("num_shards", self.num_shards)
        require_positive_int("flush_batch_size", self.flush_batch_size)

    def to_json(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, data: dict) -> "EngineConfig":
        return cls(**data)


def _build_shards(config: EngineConfig) -> list:
    cls, _ = KINDS[config.kind]
    proto = cls(config.window, config.size, **config.sketch_kwargs)
    return [proto] + [proto.clone_empty() for _ in range(config.num_shards - 1)]


class _ShardBuffer:
    """Pending (keys, times) chunks for one shard (and side, for MH)."""

    __slots__ = ("keys", "times", "count")

    def __init__(self) -> None:
        self.keys: list[np.ndarray] = []
        self.times: list[np.ndarray] = []
        self.count = 0

    def append(self, keys: np.ndarray, times: np.ndarray) -> None:
        self.keys.append(keys)
        self.times.append(times)
        self.count += int(keys.size)

    def drain(self) -> tuple[np.ndarray, np.ndarray]:
        keys = np.concatenate(self.keys) if len(self.keys) > 1 else self.keys[0]
        times = np.concatenate(self.times) if len(self.times) > 1 else self.times[0]
        self.keys.clear()
        self.times.clear()
        self.count = 0
        return keys, times


class StreamEngine:
    """Sharded, buffered ingestion and query serving over SHE sketches.

    Args:
        config: the :class:`EngineConfig` describing shards and flushing.
        executor: ``"serial"`` (default) applies flushes inline;
            ``"process"`` forks shard-owning workers so flushes of
            different shards run in parallel.
        num_workers: worker count for the process executor
            (default: one per shard).
        clock: injectable monotonic clock for the time trigger and
            stats (tests pin it).

    The engine is also a context manager; ``close()`` flushes buffers
    and stops workers.
    """

    def __init__(
        self,
        config: EngineConfig,
        *,
        executor: str = "serial",
        num_workers: int | None = None,
        clock=time.monotonic,
        _shards: list | None = None,
        _clock_state: list[int] | None = None,
    ):
        self.config = config
        self._clock = clock
        self.stats = EngineStats(clock=clock)
        self._two_stream = config.kind == "mh"
        shards = _shards if _shards is not None else _build_shards(config)
        if len(shards) != config.num_shards:
            raise ValueError(
                f"got {len(shards)} shards for num_shards={config.num_shards}"
            )
        if executor == "serial":
            self._exec = SerialExecutor(shards)
        elif executor == "process":
            self._exec = ProcessExecutor(shards, num_workers=num_workers)
        else:
            raise ValueError(f"executor must be 'serial' or 'process', got {executor!r}")
        self.executor_kind = executor
        # global union-stream clock(s): next arrival index per side
        self._t = list(_clock_state) if _clock_state is not None else (
            [0, 0] if self._two_stream else [0]
        )
        self._buffers: dict[tuple[int, int], _ShardBuffer] = {}
        self._last_drain = clock()
        self._closed = False

    # -- clock ---------------------------------------------------------------

    def now(self, side: int = 0) -> int:
        """The union-stream clock: items ingested (per side for MH)."""
        return self._t[side]

    @property
    def window(self) -> int:
        return self.config.window

    @property
    def num_shards(self) -> int:
        return self.config.num_shards

    # -- ingestion -----------------------------------------------------------

    def ingest(self, keys, side: int | None = None) -> None:
        """Buffer a batch of arrivals at consecutive union-stream times.

        ``side`` selects the stream for two-stream (MH) engines and must
        be omitted otherwise.
        """
        self._check_open()
        if self._two_stream:
            if side not in (0, 1):
                raise ValueError("two-stream engines need side=0 or side=1")
        elif side not in (None, 0):
            raise ValueError(f"single-stream engine got side={side}")
        side = 0 if side is None else side
        arr = as_key_array(keys)
        if arr.size == 0:
            return
        t0 = self._t[side]
        times = t0 + np.arange(arr.size, dtype=np.int64)
        self._t[side] = t0 + int(arr.size)
        sids = shard_ids(arr, self.config.num_shards, self.config.shard_seed)
        for s in range(self.config.num_shards):
            mask = sids == s
            n = int(np.count_nonzero(mask))
            if n == 0:
                continue
            buf = self._buffers.setdefault((s, side), _ShardBuffer())
            buf.append(arr[mask], times[mask])
        self.stats.record_ingest(arr.size)
        self._maybe_flush()

    # alias so sketch-shaped consumers (HeavyHitters, harness drivers)
    # can drive an engine where they would drive a sketch
    def insert_many(self, keys) -> None:
        self.ingest(keys)

    def insert(self, key: int) -> None:
        self.ingest(np.asarray([key], dtype=np.uint64))

    def _maybe_flush(self) -> None:
        full = [
            key for key, buf in self._buffers.items()
            if buf.count >= self.config.flush_batch_size
        ]
        interval = self.config.flush_interval_s
        if interval is not None and self._clock() - self._last_drain >= interval:
            self.flush()
        elif full:
            self._flush_buffers(full)

    def flush(self) -> None:
        """Drain every per-shard queue through the batch insert path."""
        self._check_open()
        self._flush_buffers([k for k, b in self._buffers.items() if b.count])

    def _flush_buffers(self, buffer_keys) -> None:
        if not buffer_keys:
            self._last_drain = self._clock()
            return
        started = self._clock()
        batches = []
        n_items = 0
        for s, side in buffer_keys:
            keys, times = self._buffers[s, side].drain()
            n_items += int(keys.size)
            batches.append((s, keys, times, side if self._two_stream else None))
        if isinstance(self._exec, ProcessExecutor):
            self._exec.flush_many(batches)
        else:
            for s, keys, times, side in batches:
                self._exec.flush(s, keys, times, side)
        self._last_drain = self._clock()
        self.stats.record_flush(n_items, self._last_drain - started)

    def queue_depths(self) -> list[int]:
        """Buffered items per shard (summed over sides)."""
        depths = [0] * self.config.num_shards
        for (s, _side), buf in self._buffers.items():
            depths[s] += buf.count
        return depths

    # -- querying ------------------------------------------------------------

    def _sync(self) -> None:
        """Drain buffers and bring every shard to the global clock."""
        self.flush()
        for s in range(self.config.num_shards):
            if self._two_stream:
                for side in (0, 1):
                    self._exec.advance(s, self._t[side], side)
            else:
                self._exec.advance(s, self._t[0])

    def snapshots(self) -> list:
        """Clock-aligned copies of all shards (flushes first)."""
        self._sync()
        return self._exec.snapshots()

    def merged(self):
        """One sketch equal to observing the union stream unsharded.

        This is the engine's fan-in: ``merge_many`` over the aligned
        shard snapshots, per :mod:`repro.core.merge` semantics.
        """
        t = None if self._two_stream else self._t[0]
        return merge_many(self.snapshots(), t=t, require_aligned=True)

    def _require_kind(self, query: str, *kinds: str) -> None:
        if self.config.kind not in kinds:
            raise TypeError(
                f"{query} queries need a {'/'.join(kinds)} engine, "
                f"this one is {self.config.kind!r}"
            )

    def contains(self, key: int) -> bool:
        """Membership of ``key`` in the window (BF engines)."""
        return bool(self.contains_many(np.asarray([key], dtype=np.uint64))[0])

    def contains_many(self, keys) -> np.ndarray:
        self._require_kind("membership", "bf")
        self.stats.record_query()
        return self.merged().contains_many(keys)

    def cardinality(self) -> float:
        """Distinct keys in the window (BM / HLL engines)."""
        self._require_kind("cardinality", "bm", "hll")
        self.stats.record_query()
        return self.merged().cardinality()

    def frequency(self, key: int) -> float:
        """Windowed count of ``key`` (CM engines)."""
        return float(self.frequency_many(np.asarray([key], dtype=np.uint64))[0])

    def frequency_many(self, keys) -> np.ndarray:
        """Per-shard fan-in sum of Count-Min estimates."""
        self._require_kind("frequency", "cm")
        self.stats.record_query()
        keys = as_key_array(keys)
        self._sync()
        t = self._t[0]
        return np.sum(
            [s.frequency_many(keys, t) for s in self._exec.peeks()], axis=0
        )

    def similarity(self) -> float:
        """Jaccard similarity of the two streams (MH engines)."""
        self._require_kind("similarity", "mh")
        self.stats.record_query()
        return self.merged().similarity()

    # -- observability -------------------------------------------------------

    @property
    def memory_bytes(self) -> int:
        """Aggregate sketch memory across shards (buffers excluded)."""
        return sum(s.memory_bytes for s in self._exec.peeks())

    def stats_snapshot(self) -> dict:
        return self.stats.snapshot(queue_depths=self.queue_depths())

    def stats_report(self) -> str:
        """Human-readable counter block for dashboards and examples."""
        return format_stats(self.stats_snapshot())

    # -- lifecycle -----------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("engine is closed")

    def close(self) -> None:
        """Flush pending work and stop any workers."""
        if self._closed:
            return
        self.flush()
        self._closed = True
        self._exec.close()

    def __enter__(self) -> "StreamEngine":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
