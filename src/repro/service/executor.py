"""Flush executors: where the shard sketches actually live.

The engine is a router; the executor owns the shard state and applies
batches to it.  Two implementations share one protocol
(``flush`` / ``flush_many`` / ``advance`` / ``snapshot`` /
``checkpoint`` / ``ping`` / ``close`` plus the worker topology helpers
``worker_of`` / ``shards_of`` / ``is_worker_alive`` /
``restart_worker``, and ``set_obs`` to attach an observability bundle):

* :class:`SerialExecutor` keeps the sketches in-process — zero overhead
  per flush, the right default for one CPU.
* :class:`ProcessExecutor` forks long-lived workers, each owning a
  fixed subset of shards; batches ship over pipes and apply in
  parallel.  Shard ownership never migrates, so no state is ever
  shared — the classic shared-nothing layout of sharded stores.

Both are deterministic: the same sequence of flushes produces
bit-identical shard state, which the equivalence tests assert.

Failure semantics (see :mod:`repro.service.errors`): every
``ProcessExecutor`` RPC carries a deadline enforced with
``conn.poll(timeout)``, so no call can block past ``timeout_s``.  A
missed deadline raises :class:`ShardTimeoutError`, a vanished worker
:class:`ShardDeadError`, a worker-reported exception
:class:`ShardFailedError`; each names the shards whose batches are not
known to have applied, which is what the engine's retention logic and
the supervisor's replay need.

Observability (:mod:`repro.obs`): with a bundle attached via
``set_obs``, every RPC records its round-trip into the ``rpc_seconds``
histogram, and a flush carrying a ``(trace_id, parent_span_id)``
context is traced *across the process boundary* — the worker times the
sketch apply, ships a ``worker.apply`` span dict back on the
acknowledgement, and the parent files it in its span ring, so one
batch's journey main-process → worker → sketch-apply reads as one
trace.  ``restart_worker`` is the *mechanism*
half of recovery — it respawns one worker with caller-provided shard
state; the *policy* half (what state: checkpoint + replay) lives in
:class:`repro.service.supervisor.Supervisor`.
"""

from __future__ import annotations

import copy
import multiprocessing as mp
import time
import traceback

import numpy as np

from repro.core.registry import descriptor_of
from repro.obs import OBS_DISABLED
from repro.obs.tracing import span_record
from repro.persist import save_sketch
from repro.service.errors import (
    ShardDeadError,
    ShardFailedError,
    ShardTimeoutError,
)
from repro.service.shm import SlotRing, shm_available

__all__ = ["SerialExecutor", "ProcessExecutor", "DEFAULT_RPC_TIMEOUT_S"]

DEFAULT_RPC_TIMEOUT_S = 30.0

#: flush transports: ``"pickle"`` ships arrays through the pipe (the
#: legacy path, always available), ``"shm"`` ships slot descriptors into
#: a shared-memory ring and applies via the columnar kernel
TRANSPORTS = ("pickle", "shm")

#: default ring geometry: slots sized for a few engine flush batches
DEFAULT_RING_SLOT_ITEMS = 32768


def _check_transport(transport: str) -> str:
    if transport not in TRANSPORTS:
        raise ValueError(
            f"transport must be one of {TRANSPORTS}, got {transport!r}"
        )
    return transport

_UNSET = object()

# per-RPC latency buckets: pipe round-trips live in the sub-ms to
# tens-of-ms range; anything slower is already deadline territory
_RPC_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 5.0,
)


def _apply_flush(sketch, keys: np.ndarray, times: np.ndarray, side: int | None) -> None:
    # two-stream sketches (the SHE-MH shape) take the stream side first;
    # the class attribute is the dispatch point, not the concrete type
    if getattr(sketch, "two_stream", False):
        sketch.insert_at(0 if side is None else side, keys, times)
    else:
        sketch.insert_at(keys, times)


def _apply_flush_columnar(
    sketch, keys: np.ndarray, times: np.ndarray, side: int | None
) -> None:
    """Columnar flush apply, routed through the algorithm registry.

    Registered kinds go through ``AlgoDescriptor.apply_columnar`` (the
    optimised kernel); unregistered custom sketches fall back to the
    legacy ``insert_at`` path.  Bit-identical either way.
    """
    desc = descriptor_of(sketch)
    if desc is not None:
        desc.apply_columnar(sketch, keys, times, side)
    else:
        _apply_flush(sketch, keys, times, side)


def _apply_advance(sketch, t: int, side: int | None) -> None:
    if getattr(sketch, "two_stream", False):
        sketch.advance_to(t, side)
    else:
        sketch.advance_to(t)


class SerialExecutor:
    """All shards live in the calling process; commands apply inline.

    Presents the same worker topology surface as the process pool —
    one implicit worker 0 owning every shard — so supervisors and
    fault-injection wrappers treat both uniformly.
    """

    def __init__(self, shards, *, obs=None, transport: str = "pickle"):
        self._shards = list(shards)
        # the in-process equivalent of the shm transport: no ring is
        # needed, but flushes apply through the same columnar kernel so
        # serial and process runs stay bit-identical per transport
        self.transport = _check_transport(transport)
        self._apply = (
            _apply_flush_columnar if transport == "shm" else _apply_flush
        )
        self.set_obs(obs)

    def set_obs(self, obs) -> None:
        """Attach an :class:`repro.obs.Observability` bundle (or None)."""
        self.obs = obs if obs is not None else OBS_DISABLED
        self._h_apply = self.obs.registry.histogram(
            "executor_apply_seconds",
            "In-process sketch apply duration per batch",
            buckets=_RPC_BUCKETS,
        )

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def num_workers(self) -> int:
        return 1

    def worker_of(self, shard_id: int) -> int:
        return 0

    def shards_of(self, worker_id: int) -> list[int]:
        return list(range(self.num_shards))

    def is_worker_alive(self, worker_id: int) -> bool:
        return True

    def ping(self, worker_id: int, timeout: float | None = None) -> bool:
        return True

    def restart_worker(self, worker_id: int, shards: dict) -> None:
        """Replace the listed shards' state in place (recovery hook)."""
        for shard_id, sketch in shards.items():
            self._shards[shard_id] = sketch

    def flush(
        self,
        shard_id: int,
        keys,
        times,
        side: int | None = None,
        trace: tuple[str, str] | None = None,
    ) -> None:
        started = time.perf_counter()
        if trace is not None:
            with self.obs.tracer.span(
                "shard.apply",
                trace_id=trace[0],
                parent_id=trace[1],
                shard=shard_id,
                items=int(keys.size),
            ):
                self._apply(self._shards[shard_id], keys, times, side)
        else:
            self._apply(self._shards[shard_id], keys, times, side)
        elapsed = time.perf_counter() - started
        self._h_apply.observe(elapsed)
        self.obs.stages.observe(
            "apply", elapsed, trace[0] if trace is not None else None
        )

    def flush_many(self, batches, trace: tuple[str, str] | None = None) -> None:
        """Apply batches in order; a failure names the not-applied shards."""
        batches = list(batches)
        for i, (shard_id, keys, times, side) in enumerate(batches):
            try:
                self.flush(shard_id, keys, times, side, trace)
            except Exception as exc:
                not_applied = tuple(b[0] for b in batches[i:])
                raise ShardFailedError(
                    f"shard worker failed:\n{traceback.format_exc()}",
                    shard_ids=not_applied,
                    worker_ids=(0,),
                ) from exc

    def advance(self, shard_id: int, t: int, side: int | None = None) -> None:
        _apply_advance(self._shards[shard_id], t, side)

    def snapshot(self, shard_id: int):
        """An isolated copy of one shard, safe to merge or mutate."""
        return copy.deepcopy(self._shards[shard_id])

    def snapshots(self) -> list:
        return [self.snapshot(s) for s in range(self.num_shards)]

    def peeks(self) -> list:
        """Read-side view of the shards without copying.

        Callers may run queries (lazy cleaning mutates frames exactly as
        the next insert would) but must not insert.
        """
        return self._shards

    def checkpoint(self, shard_id: int, path) -> None:
        save_sketch(self._shards[shard_id], path)

    def close(self) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


# -- multiprocessing ---------------------------------------------------------


def _worker_main(conn, shards: dict, ring_spec: tuple | None = None) -> None:
    """Worker loop: apply commands to the shards this process owns.

    ``ring_spec`` — ``(name, slot_items, num_slots)`` of the parent's
    shared-memory ring under ``transport="shm"``; the worker attaches
    read-only and serves ``flush_shm`` descriptors from zero-copy views.
    """
    ring = None
    if ring_spec is not None:
        name, slot_items, num_slots = ring_spec
        ring = SlotRing(slot_items, num_slots, name=name)
    try:
        while True:
            cmd, *args = conn.recv()
            try:
                if cmd == "flush":
                    sid, keys, times, side, trace = args
                    if trace is None:
                        _apply_flush(shards[sid], keys, times, side)
                        conn.send(("ok", None))
                    else:
                        # the cross-process half of a flush trace: time
                        # the sketch apply here and ship the span back
                        # on the acknowledgement for the parent's ring
                        t0 = time.perf_counter()
                        _apply_flush(shards[sid], keys, times, side)
                        dur_ms = (time.perf_counter() - t0) * 1e3
                        conn.send((
                            "ok",
                            span_record(
                                "worker.apply", trace[0], trace[1],
                                t0, dur_ms,
                                shard=sid, items=int(keys.size),
                            ),
                        ))
                elif cmd == "flush_shm":
                    sid, slot, n, side, trace = args
                    keys = ring.keys_view(slot, n)
                    times = ring.times_view(slot, n)
                    if trace is None:
                        _apply_flush_columnar(shards[sid], keys, times, side)
                        # drop the slot views so they never pin the
                        # ring's mapping past this batch
                        keys = times = None
                        conn.send(("ok", None))
                    else:
                        t0 = time.perf_counter()
                        _apply_flush_columnar(shards[sid], keys, times, side)
                        dur_ms = (time.perf_counter() - t0) * 1e3
                        keys = times = None
                        conn.send((
                            "ok",
                            span_record(
                                "worker.apply", trace[0], trace[1],
                                t0, dur_ms,
                                shard=sid, items=int(n),
                            ),
                        ))
                elif cmd == "advance":
                    sid, t, side = args
                    _apply_advance(shards[sid], t, side)
                    conn.send(("ok", None))
                elif cmd == "snapshot":
                    (sid,) = args
                    conn.send(("ok", shards[sid]))
                elif cmd == "checkpoint":
                    sid, path = args
                    save_sketch(shards[sid], path)
                    conn.send(("ok", None))
                elif cmd == "ping":
                    conn.send(("ok", "pong"))
                elif cmd == "sleep":  # fault injection: stall this worker
                    (seconds,) = args
                    time.sleep(seconds)
                    conn.send(("ok", None))
                elif cmd == "close":
                    conn.send(("ok", None))
                    return
                else:  # pragma: no cover - protocol is closed
                    conn.send(("err", f"unknown command {cmd!r}"))
            except Exception:
                conn.send(("err", traceback.format_exc()))
    except (EOFError, KeyboardInterrupt):  # parent died / interrupted
        pass
    finally:
        if ring is not None:
            ring.close()


class ProcessExecutor:
    """Shards partitioned over a pool of long-lived worker processes.

    Shard ``s`` is owned by worker ``s % num_workers`` forever; a flush
    for it is a message to that worker.  ``flush_many`` fans a round of
    batches out to all workers before collecting acknowledgements, so
    independent shards really do apply in parallel.

    Args:
        shards: the sketch per shard (worker ownership derives from
            position).
        num_workers: pool size, capped at the shard count.
        timeout_s: per-RPC deadline; ``None`` waits forever (the
            pre-fault-tolerance behaviour).  Enforced with
            ``conn.poll``, so a wedged worker costs at most one
            deadline, never a hang.
        transport: ``"pickle"`` ships arrays through the pipes (legacy
            path); ``"shm"`` ships slot descriptors into a shared-memory
            ring — pipes stay the control plane — and workers apply
            through the columnar kernel.  Falls back to pickle per batch
            when a batch outgrows a slot or the ring is exhausted, and
            wholesale when shared memory is unavailable.
        ring_slot_items: slot capacity (items) of the shm ring; size it
            at or above the engine's flush batch size.
    """

    def __init__(
        self,
        shards,
        *,
        num_workers: int | None = None,
        timeout_s: float | None = DEFAULT_RPC_TIMEOUT_S,
        transport: str = "pickle",
        ring_slot_items: int = DEFAULT_RING_SLOT_ITEMS,
    ):
        shards = list(shards)
        if not shards:
            raise ValueError("ProcessExecutor needs at least one shard")
        methods = mp.get_all_start_methods()
        self._ctx = mp.get_context("fork" if "fork" in methods else "spawn")
        self._num_shards = len(shards)
        self.num_workers = min(num_workers or len(shards), len(shards))
        self.timeout_s = timeout_s
        self.transport = _check_transport(transport)
        self._ring: SlotRing | None = None
        if self.transport == "shm":
            if shm_available():
                # enough slots for a full flush round (one per shard and
                # side) plus headroom for supervisor replay traffic
                num_slots = max(2 * self._num_shards + 2, 8)
                self._ring = SlotRing(int(ring_slot_items), num_slots)
            else:  # pragma: no cover - exotic platforms
                self.transport = "pickle"
        self._conns: list = [None] * self.num_workers
        self._procs: list = [None] * self.num_workers
        # workers whose pipe can no longer be trusted (a missed deadline
        # may leave a stale ack in flight); only a restart clears this
        self._poisoned: set[int] = set()
        self.set_obs(None)
        for w in range(self.num_workers):
            self._spawn(w, {s: shards[s] for s in self.shards_of(w)})
        self._closed = False

    def set_obs(self, obs) -> None:
        """Attach an :class:`repro.obs.Observability` bundle (or None)."""
        self.obs = obs if obs is not None else OBS_DISABLED
        self._h_rpc = self.obs.registry.histogram(
            "rpc_seconds",
            "Worker RPC round-trip duration",
            labels=("op", "worker"),
            buckets=_RPC_BUCKETS,
        )
        self._g_ring_in_use = self.obs.registry.gauge(
            "engine_shm_ring_slots_in_use",
            "Shared-memory ring slots currently handed to workers",
        )
        self._g_ring_total = self.obs.registry.gauge(
            "engine_shm_ring_slots_total",
            "Shared-memory ring capacity in slots",
        )
        self._c_shm_fallback = self.obs.registry.counter(
            "executor_shm_fallback_total",
            "Flush batches that fell back to the pickle path "
            "(oversized batch or exhausted ring)",
        )
        if self._ring is not None:
            self._g_ring_total.set(self._ring.num_slots)
            self._g_ring_in_use.set(self._ring.in_use())

    # -- topology ------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return self._num_shards

    def worker_of(self, shard_id: int) -> int:
        return shard_id % self.num_workers

    def shards_of(self, worker_id: int) -> list[int]:
        return [
            s for s in range(self._num_shards)
            if s % self.num_workers == worker_id
        ]

    def is_worker_alive(self, worker_id: int) -> bool:
        proc = self._procs[worker_id]
        return proc is not None and proc.is_alive()

    # -- process lifecycle ---------------------------------------------------

    def _spawn(self, worker_id: int, owned: dict) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        ring_spec = None
        if self._ring is not None:
            ring_spec = (
                self._ring.name, self._ring.slot_items, self._ring.num_slots
            )
        proc = self._ctx.Process(
            target=_worker_main, args=(child_conn, owned, ring_spec), daemon=True
        )
        proc.start()
        child_conn.close()
        self._conns[worker_id] = parent_conn
        self._procs[worker_id] = proc
        self._poisoned.discard(worker_id)

    def _reap(self, worker_id: int, *, grace_s: float = 2.0) -> None:
        """Stop one worker on every path: join, escalate to terminate
        then kill for wedged processes, and release pipe + process
        handles so nothing leaks across restarts."""
        conn, proc = self._conns[worker_id], self._procs[worker_id]
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
            self._conns[worker_id] = None
        if proc is None:
            return
        proc.join(timeout=grace_s)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=grace_s)
        if proc.is_alive():  # pragma: no cover - terminate almost always lands
            proc.kill()
            proc.join(timeout=grace_s)
        try:
            proc.close()
        except ValueError:  # pragma: no cover - still alive after kill
            pass
        self._procs[worker_id] = None

    def restart_worker(self, worker_id: int, shards: dict) -> None:
        """Respawn one worker with caller-provided shard state.

        ``shards`` must map exactly the shard ids this worker owns to
        fresh sketch objects (typically checkpoint loads — the old
        process's in-memory state is unrecoverable by definition).
        """
        expected = set(self.shards_of(worker_id))
        if set(shards) != expected:
            raise ValueError(
                f"worker {worker_id} owns shards {sorted(expected)}, "
                f"got state for {sorted(shards)}"
            )
        self._reap(worker_id)
        self._spawn(worker_id, dict(shards))

    # -- RPC plumbing --------------------------------------------------------

    def _conn_of(self, shard_id: int):
        return self._conns[self.worker_of(shard_id)]

    def _check_trusted(self, worker_id: int, shard_ids) -> None:
        if worker_id in self._poisoned:
            raise ShardDeadError(
                f"worker {worker_id} is untrusted after a missed deadline; "
                "restart_worker() it before further RPCs",
                shard_ids=shard_ids, worker_ids=(worker_id,),
            )

    def _send(self, worker_id: int, message, *, shard_ids=()) -> None:
        self._check_trusted(worker_id, shard_ids)
        conn = self._conns[worker_id]
        if conn is None:
            raise ShardDeadError(
                f"worker {worker_id} has no live process",
                shard_ids=shard_ids, worker_ids=(worker_id,),
            )
        try:
            conn.send(message)
        except (BrokenPipeError, OSError) as exc:
            raise ShardDeadError(
                f"worker {worker_id} pipe is broken (process died?)",
                shard_ids=shard_ids, worker_ids=(worker_id,),
            ) from exc

    def _recv(self, worker_id: int, *, op="rpc", shard_ids=(), timeout=_UNSET):
        conn = self._conns[worker_id]
        deadline = self.timeout_s if timeout is _UNSET else timeout
        if conn is None:
            raise ShardDeadError(
                f"worker {worker_id} has no live process",
                shard_ids=shard_ids, worker_ids=(worker_id,),
            )
        if deadline is not None and not conn.poll(deadline):
            proc = self._procs[worker_id]
            if proc is None or not proc.is_alive():
                raise ShardDeadError(
                    f"worker {worker_id} died before acknowledging {op}",
                    shard_ids=shard_ids, worker_ids=(worker_id,),
                )
            self._poisoned.add(worker_id)
            raise ShardTimeoutError(
                f"worker {worker_id} missed the {deadline}s deadline for {op}",
                timeout_s=deadline, shard_ids=shard_ids, worker_ids=(worker_id,),
            )
        try:
            status, payload = conn.recv()
        except (EOFError, OSError) as exc:
            raise ShardDeadError(
                f"worker {worker_id} hung up mid-{op} (process died?)",
                shard_ids=shard_ids, worker_ids=(worker_id,),
            ) from exc
        if status == "err":
            raise ShardFailedError(
                f"shard worker failed:\n{payload}",
                shard_ids=shard_ids, worker_ids=(worker_id,),
            )
        return payload

    def _call(self, shard_id: int, *message, timeout=_UNSET):
        w = self.worker_of(shard_id)
        started = time.perf_counter()
        self._send(w, message, shard_ids=(shard_id,))
        payload = self._recv(
            w, op=message[0], shard_ids=(shard_id,), timeout=timeout
        )
        self._h_rpc.labels(message[0], str(w)).observe(
            time.perf_counter() - started
        )
        return payload

    # -- protocol verbs ------------------------------------------------------

    def _make_flush(self, shard_id, keys, times, side, trace):
        """Build one flush message: a slot descriptor when the shm ring
        can carry the batch, else the legacy pickled-array message.

        Returns ``(message, slot)``; the caller owns releasing a
        non-``None`` slot once the batch is acknowledged or failed.
        """
        if self._ring is not None:
            n = int(keys.size)
            if n <= self._ring.slot_items:
                slot = self._ring.acquire()
                if slot is not None:
                    started = time.perf_counter()
                    self._ring.write(slot, keys, times)
                    self._g_ring_in_use.set(self._ring.in_use())
                    self.obs.stages.observe(
                        "shm_acquire",
                        time.perf_counter() - started,
                        trace[0] if trace is not None else None,
                    )
                    return ("flush_shm", shard_id, slot, n, side, trace), slot
            # oversized batch or exhausted ring: pickle still works
            self._c_shm_fallback.inc()
        return ("flush", shard_id, keys, times, side, trace), None

    def _release_slot(self, slot, trace=None) -> None:
        if slot is None:
            return
        started = time.perf_counter()
        self._ring.release(slot)
        self._g_ring_in_use.set(self._ring.in_use())
        self.obs.stages.observe(
            "shm_release",
            time.perf_counter() - started,
            trace[0] if trace is not None else None,
        )

    def flush(
        self,
        shard_id: int,
        keys,
        times,
        side: int | None = None,
        trace: tuple[str, str] | None = None,
    ) -> None:
        keys = np.asarray(keys)
        message, slot = self._make_flush(shard_id, keys, times, side, trace)
        try:
            payload = self._call(shard_id, *message)
        finally:
            self._release_slot(slot, trace)
        if payload is not None:
            self.obs.tracer.ingest((payload,))
            self._observe_apply(payload)

    def _observe_apply(self, payload: dict) -> None:
        """Feed the worker's timed apply into the stage recorder.

        The worker half of the flush trace already times the sketch
        apply (``worker.apply`` span records, repro.obs.tracing); the
        same measurement feeds the windowed ``apply`` stage so process
        deployments attribute apply latency without extra clock reads.
        """
        duration_ms = payload.get("duration_ms")
        if duration_ms is not None:
            self.obs.stages.observe(
                "apply", duration_ms / 1e3, payload.get("trace_id")
            )

    def flush_many(self, batches, trace: tuple[str, str] | None = None) -> None:
        """Apply ``(shard_id, keys, times, side)`` batches in parallel.

        Sends every batch before awaiting any acknowledgement; pipes are
        FIFO per worker, so per-shard ordering is preserved while
        distinct workers overlap their work.  Every worker is attempted
        even if another has already failed; on error, the raised
        :class:`ShardError` lists exactly the shards whose batches are
        not known to have applied (and once a worker misses a deadline
        or dies, all its later batches in the round count as unapplied
        — the pipe can no longer be trusted).
        """
        batches = list(batches)
        started = time.perf_counter()
        # send phase: skip workers whose pipe already failed this round
        dead_workers: set[int] = set()
        errors: list[ShardFailedError | ShardDeadError | ShardTimeoutError] = []
        failed_shards: list[int] = []
        # (worker_id, shard_id, slot) in send order
        pending: list[tuple[int, int, int | None]] = []
        for shard_id, keys, times, side in batches:
            w = self.worker_of(shard_id)
            if w in dead_workers:
                failed_shards.append(shard_id)
                continue
            message, slot = self._make_flush(
                shard_id, np.asarray(keys), times, side, trace
            )
            try:
                self._send(w, message, shard_ids=(shard_id,))
            except ShardDeadError as exc:
                self._release_slot(slot, trace)
                dead_workers.add(w)
                errors.append(exc)
                failed_shards.append(shard_id)
                continue
            pending.append((w, shard_id, slot))
        # ack phase: one recv per surviving send, FIFO per worker
        for w, shard_id, slot in pending:
            if w in dead_workers:
                # the worker will never read this descriptor: its batch
                # counts as unapplied and the parent reclaims the slot
                self._release_slot(slot, trace)
                failed_shards.append(shard_id)
                continue
            try:
                payload = self._recv(w, op="flush", shard_ids=(shard_id,))
                if payload is not None:
                    self.obs.tracer.ingest((payload,))
                    self._observe_apply(payload)
            except (ShardDeadError, ShardTimeoutError) as exc:
                dead_workers.add(w)
                errors.append(exc)
                failed_shards.append(shard_id)
            except ShardFailedError as exc:
                # worker is alive and in protocol sync; only this batch failed
                errors.append(exc)
                failed_shards.append(shard_id)
            finally:
                self._release_slot(slot, trace)
        if errors:
            first = errors[0]
            raise type(first)(
                str(first),
                **(
                    {"timeout_s": first.timeout_s}
                    if isinstance(first, ShardTimeoutError)
                    else {}
                ),
                shard_ids=tuple(dict.fromkeys(failed_shards)),
                worker_ids=tuple(
                    dict.fromkeys(w for e in errors for w in e.worker_ids)
                ),
            ) from first
        self._h_rpc.labels("flush_many", "all").observe(
            time.perf_counter() - started
        )

    def advance(self, shard_id: int, t: int, side: int | None = None) -> None:
        self._call(shard_id, "advance", shard_id, t, side)

    def snapshot(self, shard_id: int):
        return self._call(shard_id, "snapshot", shard_id)

    def snapshots(self) -> list:
        """Copies of all shards, fanned out like ``flush_many``.

        Every worker's acknowledgements are drained even after one
        fails, so surviving workers' pipes stay in protocol sync; the
        first error is re-raised afterwards.
        """
        sent: list[int] = []  # shard ids whose request went out
        first_error: Exception | None = None
        dead_workers: set[int] = set()
        for s in range(self._num_shards):
            w = self.worker_of(s)
            if w in dead_workers:
                continue
            try:
                self._send(w, ("snapshot", s), shard_ids=(s,))
            except ShardDeadError as exc:
                dead_workers.add(w)
                first_error = first_error or exc
                continue
            sent.append(s)
        out: dict[int, object] = {}
        for s in sent:
            w = self.worker_of(s)
            if w in dead_workers:
                continue
            try:
                out[s] = self._recv(w, op="snapshot", shard_ids=(s,))
            except (ShardDeadError, ShardTimeoutError) as exc:
                dead_workers.add(w)
                first_error = first_error or exc
            except ShardFailedError as exc:
                first_error = first_error or exc
        if first_error is not None:
            raise first_error
        return [out[s] for s in range(self._num_shards)]

    def peeks(self) -> list:
        """Worker-owned shards can only be observed by copying."""
        return self.snapshots()

    def checkpoint(self, shard_id: int, path) -> None:
        self._call(shard_id, "checkpoint", shard_id, path)

    def ping(self, worker_id: int, timeout: float | None = None) -> bool:
        """Heartbeat one worker; raises the typed error on failure."""
        shard_ids = tuple(self.shards_of(worker_id))
        self._send(worker_id, ("ping",), shard_ids=shard_ids)
        self._recv(
            worker_id, op="ping", shard_ids=shard_ids,
            timeout=self.timeout_s if timeout is None else timeout,
        )
        return True

    def close(self) -> None:
        """Stop every worker, releasing pipes and process handles on
        all paths (clean exit, already-dead worker, wedged worker)."""
        if self._closed:
            return
        self._closed = True
        for w, conn in enumerate(self._conns):
            if conn is None:
                continue
            try:
                conn.send(("close",))
                if conn.poll(2.0):
                    conn.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass
        for w in range(self.num_workers):
            self._reap(w)
        if self._ring is not None:
            self._ring.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def __del__(self):  # pragma: no cover - best effort
        try:
            self.close()
        except Exception:
            pass
