"""Flush executors: where the shard sketches actually live.

The engine is a router; the executor owns the shard state and applies
batches to it.  Two implementations share one five-verb protocol
(``flush`` / ``advance`` / ``snapshot`` / ``checkpoint`` / ``close``):

* :class:`SerialExecutor` keeps the sketches in-process — zero overhead
  per flush, the right default for one CPU.
* :class:`ProcessExecutor` forks long-lived workers, each owning a
  fixed subset of shards; batches ship over pipes and apply in
  parallel.  Shard ownership never migrates, so no state is ever
  shared — the classic shared-nothing layout of sharded stores.

Both are deterministic: the same sequence of flushes produces
bit-identical shard state, which the equivalence tests assert.
"""

from __future__ import annotations

import copy
import multiprocessing as mp
import traceback

import numpy as np

from repro.core.she_mh import SheMinHash
from repro.persist import save_sketch

__all__ = ["SerialExecutor", "ProcessExecutor"]


def _apply_flush(sketch, keys: np.ndarray, times: np.ndarray, side: int | None) -> None:
    if isinstance(sketch, SheMinHash):
        sketch.insert_at(0 if side is None else side, keys, times)
    else:
        sketch.insert_at(keys, times)


def _apply_advance(sketch, t: int, side: int | None) -> None:
    if isinstance(sketch, SheMinHash):
        sketch.advance_to(t, side)
    else:
        sketch.advance_to(t)


class SerialExecutor:
    """All shards live in the calling process; commands apply inline."""

    def __init__(self, shards):
        self._shards = list(shards)

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    def flush(self, shard_id: int, keys, times, side: int | None = None) -> None:
        _apply_flush(self._shards[shard_id], keys, times, side)

    def advance(self, shard_id: int, t: int, side: int | None = None) -> None:
        _apply_advance(self._shards[shard_id], t, side)

    def snapshot(self, shard_id: int):
        """An isolated copy of one shard, safe to merge or mutate."""
        return copy.deepcopy(self._shards[shard_id])

    def snapshots(self) -> list:
        return [self.snapshot(s) for s in range(self.num_shards)]

    def peeks(self) -> list:
        """Read-side view of the shards without copying.

        Callers may run queries (lazy cleaning mutates frames exactly as
        the next insert would) but must not insert.
        """
        return self._shards

    def checkpoint(self, shard_id: int, path) -> None:
        save_sketch(self._shards[shard_id], path)

    def close(self) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


# -- multiprocessing ---------------------------------------------------------


def _worker_main(conn, shards: dict) -> None:
    """Worker loop: apply commands to the shards this process owns."""
    try:
        while True:
            cmd, *args = conn.recv()
            try:
                if cmd == "flush":
                    sid, keys, times, side = args
                    _apply_flush(shards[sid], keys, times, side)
                    conn.send(("ok", None))
                elif cmd == "advance":
                    sid, t, side = args
                    _apply_advance(shards[sid], t, side)
                    conn.send(("ok", None))
                elif cmd == "snapshot":
                    (sid,) = args
                    conn.send(("ok", shards[sid]))
                elif cmd == "checkpoint":
                    sid, path = args
                    save_sketch(shards[sid], path)
                    conn.send(("ok", None))
                elif cmd == "close":
                    conn.send(("ok", None))
                    return
                else:  # pragma: no cover - protocol is closed
                    conn.send(("err", f"unknown command {cmd!r}"))
            except Exception:
                conn.send(("err", traceback.format_exc()))
    except (EOFError, KeyboardInterrupt):  # parent died / interrupted
        pass


class ProcessExecutor:
    """Shards partitioned over a pool of long-lived worker processes.

    Shard ``s`` is owned by worker ``s % num_workers`` forever; a flush
    for it is a message to that worker.  ``flush_many`` fans a round of
    batches out to all workers before collecting acknowledgements, so
    independent shards really do apply in parallel.
    """

    def __init__(self, shards, *, num_workers: int | None = None):
        shards = list(shards)
        if not shards:
            raise ValueError("ProcessExecutor needs at least one shard")
        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork" if "fork" in methods else "spawn")
        self._num_shards = len(shards)
        self.num_workers = min(num_workers or len(shards), len(shards))
        self._conns = []
        self._procs = []
        for w in range(self.num_workers):
            owned = {s: shards[s] for s in range(self._num_shards) if s % self.num_workers == w}
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main, args=(child_conn, owned), daemon=True
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
        self._closed = False

    @property
    def num_shards(self) -> int:
        return self._num_shards

    def _conn_of(self, shard_id: int):
        return self._conns[shard_id % self.num_workers]

    def _recv(self, conn):
        status, payload = conn.recv()
        if status == "err":
            raise RuntimeError(f"shard worker failed:\n{payload}")
        return payload

    def _call(self, shard_id: int, *message):
        conn = self._conn_of(shard_id)
        conn.send(message)
        return self._recv(conn)

    def flush(self, shard_id: int, keys, times, side: int | None = None) -> None:
        self._call(shard_id, "flush", shard_id, keys, times, side)

    def flush_many(self, batches) -> None:
        """Apply ``(shard_id, keys, times, side)`` batches in parallel.

        Sends every batch before awaiting any acknowledgement; pipes are
        FIFO per worker, so per-shard ordering is preserved while
        distinct workers overlap their work.
        """
        pending = []
        for shard_id, keys, times, side in batches:
            conn = self._conn_of(shard_id)
            conn.send(("flush", shard_id, keys, times, side))
            pending.append(conn)
        for conn in pending:
            self._recv(conn)

    def advance(self, shard_id: int, t: int, side: int | None = None) -> None:
        self._call(shard_id, "advance", shard_id, t, side)

    def snapshot(self, shard_id: int):
        return self._call(shard_id, "snapshot", shard_id)

    def snapshots(self) -> list:
        for s in range(self._num_shards):
            self._conn_of(s).send(("snapshot", s))
        return [self._recv(self._conn_of(s)) for s in range(self._num_shards)]

    def peeks(self) -> list:
        """Worker-owned shards can only be observed by copying."""
        return self.snapshots()

    def checkpoint(self, shard_id: int, path) -> None:
        self._call(shard_id, "checkpoint", shard_id, path)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("close",))
                conn.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass
            conn.close()
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def __del__(self):  # pragma: no cover - best effort
        try:
            self.close()
        except Exception:
            pass
