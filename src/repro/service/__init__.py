"""repro.service — sharded streaming ingestion & query serving.

The serving layer over the SHE sketch library: hash-sharded ingestion
with batched flushes (:class:`StreamEngine`), optional multiprocessing
flush executors, merge-based query fan-in, atomic checkpoint/recovery
(:class:`Checkpointer`, :func:`recover_engine`), in-process counters
(:class:`EngineStats`), and a fault-tolerance layer: RPC deadlines and
a typed error hierarchy (:mod:`repro.service.errors`), worker
supervision with restart-from-checkpoint + replay
(:class:`Supervisor`), degraded queries that answer from surviving
shards (``strict=False`` → :class:`DegradedAnswer`), deterministic
fault injection (:class:`ChaosExecutor`) to test all of it, and
admission control: bounded ingestion buffers with typed overload
policies (``EngineConfig(max_buffered_items=..., overload_policy=...)``
→ :class:`EngineOverloadedError` / exact shed accounting; see
``docs/service.md``).

Observability lives in :mod:`repro.obs`: pass ``obs=True`` to the
engine and every counter, trace span and SHE probe gauge is live;
serve them with :class:`repro.obs.MetricsExporter` (``/metrics``,
``/healthz``, ``/statusz``).  See ``docs/observability.md``.

Quickstart::

    from repro.obs import MetricsExporter
    from repro.service import EngineConfig, StreamEngine, Supervisor

    engine = StreamEngine(EngineConfig("cm", window=1 << 16, size=1 << 14,
                                       num_shards=4), executor="process",
                          obs=True)
    sup = Supervisor(engine, "/var/tmp/ckpts")   # deadline+restart+replay
    exporter = MetricsExporter(engine).start()   # Prometheus endpoint
    engine.ingest(keys)                  # buffered, batched, sharded
    engine.frequency(some_key)           # per-shard fan-in sum
    engine.frequency(some_key, strict=False)  # survives down shards
    engine.close()
"""

from repro.service.checkpoint import (
    Checkpointer,
    latest_checkpoint,
    load_checkpoint_shard,
    prune_checkpoints,
    read_manifest,
    recover_engine,
    save_checkpoint,
    verify_checkpoint,
)
from repro.service.crashsim import (
    CrashHarness,
    SimulatedCrash,
    flip_bit,
    simulate_process_kill,
    tear_tail,
)
from repro.service.engine import (
    KINDS,
    OVERLOAD_POLICIES,
    DegradedAnswer,
    EngineConfig,
    StreamEngine,
)
from repro.service.errors import (
    CheckpointCorruptionError,
    EngineOverloadedError,
    ShardDeadError,
    ShardError,
    ShardFailedError,
    ShardTimeoutError,
    ShardUnrecoverableError,
    WalCorruptionError,
    WalError,
    WalWriteError,
)
from repro.service.executor import (
    DEFAULT_RPC_TIMEOUT_S,
    ProcessExecutor,
    SerialExecutor,
)
from repro.service.faults import ChaosExecutor
from repro.service.sharding import DEFAULT_SHARD_SEED, partition, shard_ids
from repro.service.stats import EngineStats, format_stats
from repro.service.supervisor import ReplayBuffer, RetryPolicy, Supervisor
from repro.service.wal import (
    WAL_FSYNC_POLICIES,
    WalPosition,
    WriteAheadLog,
    inspect_wal,
    iter_records,
    replay_into,
    verify_wal,
)

__all__ = [
    "KINDS",
    "OVERLOAD_POLICIES",
    "EngineConfig",
    "StreamEngine",
    "DegradedAnswer",
    "Checkpointer",
    "save_checkpoint",
    "latest_checkpoint",
    "prune_checkpoints",
    "recover_engine",
    "read_manifest",
    "load_checkpoint_shard",
    "SerialExecutor",
    "ProcessExecutor",
    "DEFAULT_RPC_TIMEOUT_S",
    "ChaosExecutor",
    "Supervisor",
    "RetryPolicy",
    "ReplayBuffer",
    "ShardError",
    "EngineOverloadedError",
    "ShardTimeoutError",
    "ShardDeadError",
    "ShardFailedError",
    "ShardUnrecoverableError",
    "EngineStats",
    "format_stats",
    "DEFAULT_SHARD_SEED",
    "shard_ids",
    "partition",
    # durability: write-ahead log + checksummed checkpoints (PR 7)
    "WAL_FSYNC_POLICIES",
    "WalPosition",
    "WriteAheadLog",
    "iter_records",
    "replay_into",
    "verify_wal",
    "inspect_wal",
    "verify_checkpoint",
    "WalError",
    "WalWriteError",
    "WalCorruptionError",
    "CheckpointCorruptionError",
    "CrashHarness",
    "SimulatedCrash",
    "simulate_process_kill",
    "tear_tail",
    "flip_bit",
]
