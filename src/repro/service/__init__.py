"""repro.service — sharded streaming ingestion & query serving.

The serving layer over the SHE sketch library: hash-sharded ingestion
with batched flushes (:class:`StreamEngine`), optional multiprocessing
flush executors, merge-based query fan-in, atomic checkpoint/recovery
(:class:`Checkpointer`, :func:`recover_engine`) and in-process counters
(:class:`EngineStats`).

Quickstart::

    from repro.service import EngineConfig, StreamEngine

    engine = StreamEngine(EngineConfig("cm", window=1 << 16, size=1 << 14,
                                       num_shards=4))
    engine.ingest(keys)                  # buffered, batched, sharded
    engine.frequency(some_key)           # per-shard fan-in sum
    engine.close()
"""

from repro.service.checkpoint import (
    Checkpointer,
    latest_checkpoint,
    prune_checkpoints,
    recover_engine,
    save_checkpoint,
)
from repro.service.engine import KINDS, EngineConfig, StreamEngine
from repro.service.executor import ProcessExecutor, SerialExecutor
from repro.service.sharding import DEFAULT_SHARD_SEED, partition, shard_ids
from repro.service.stats import EngineStats, format_stats

__all__ = [
    "KINDS",
    "EngineConfig",
    "StreamEngine",
    "Checkpointer",
    "save_checkpoint",
    "latest_checkpoint",
    "prune_checkpoints",
    "recover_engine",
    "SerialExecutor",
    "ProcessExecutor",
    "EngineStats",
    "format_stats",
    "DEFAULT_SHARD_SEED",
    "shard_ids",
    "partition",
]
