"""Atomic multi-shard checkpoints and crash recovery for the engine.

Layout under the checkpoint directory::

    ckpt-00000003/
        shard-00.npz     # one atomic .npz per shard (persist.save_sketch)
        ...
        MANIFEST.json    # engine config + clocks; written LAST

A checkpoint is staged in a hidden temp directory, shard files first,
manifest last, then published with one ``os.replace`` of the directory
— so a crash at any instant leaves either no trace of the attempt or a
complete, loadable checkpoint.  Recovery scans for the *newest complete*
checkpoint (manifest present, every listed shard file present) and
rebuilds the engine; torn attempts and stale temp directories are
ignored and eventually pruned.

``Checkpointer`` adds the periodic policy: call :meth:`maybe` from the
ingest loop and it checkpoints every ``interval_items`` ingested items
and/or ``interval_s`` seconds, keeping the newest ``keep`` checkpoints.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from pathlib import Path

from repro.common.validation import require_positive_int
from repro.service.engine import EngineConfig, StreamEngine
from repro.service.errors import CheckpointCorruptionError
from repro.service.wal import (
    WalPosition,
    checksum,
    replay_into,
    verify_checksum,
)

__all__ = [
    "Checkpointer",
    "save_checkpoint",
    "latest_checkpoint",
    "prune_checkpoints",
    "recover_engine",
    "read_manifest",
    "load_checkpoint_shard",
    "verify_checkpoint",
]

_MANIFEST = "MANIFEST.json"
_PREFIX = "ckpt-"
_FORMAT_VERSION = 1


def _shard_name(shard_id: int) -> str:
    return f"shard-{shard_id:02d}.npz"


def _fsync_dir(path: Path) -> None:
    """Flush a directory's metadata (entry renames) to stable storage.

    Best-effort on platforms whose directories cannot be opened or
    fsynced (Windows); the data files themselves are already synced.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def save_checkpoint(engine: StreamEngine, directory: str | Path) -> Path:
    """Persist every shard plus a manifest; returns the published path.

    The engine's buffers are drained and its shards clock-aligned first,
    so the checkpoint is a consistent cut of the stream at ``now()``.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    engine._sync()

    seq = _next_seq(directory)
    final = directory / f"{_PREFIX}{seq:08d}"
    staging = Path(
        tempfile.mkdtemp(dir=directory, prefix=f".{_PREFIX}{seq:08d}.")
    )
    try:
        shard_files = []
        for s in range(engine.num_shards):
            name = _shard_name(s)
            engine._exec.checkpoint(s, staging / name)
            shard_files.append(name)
        # integrity record: size + checksum of every shard file as
        # written, so recovery *detects* bit rot / truncation instead of
        # trusting whatever load_sketch makes of the bytes
        shard_meta = []
        for name in shard_files:
            data = (staging / name).read_bytes()
            crc, variant = checksum(data)
            shard_meta.append(
                {"name": name, "bytes": len(data), "crc": crc,
                 "crc_variant": variant}
            )
        manifest = {
            "format": _FORMAT_VERSION,
            "seq": seq,
            # versioned registry identity: the kind string plus the
            # persisted class name the shard archives carry, so a reader
            # can tell what must be registered before recovery (absent
            # from pre-registry checkpoints, which still load)
            "algorithm": {
                "kind": engine.config.kind,
                "class_name": engine.config.descriptor().class_name,
            },
            "config": engine.config.to_json(),
            "clock": list(engine._t),
            "shards": shard_files,
            "shard_meta": shard_meta,
            "created_unix": time.time(),
        }
        wal = getattr(engine, "_wal", None)
        if wal is not None:
            # sync first: the recorded position must never exceed the
            # durable horizon, or a power cut right after publishing
            # would leave a checkpoint pointing past the surviving log
            wal.sync()
            manifest["wal"] = {
                "position": [int(x) for x in wal.position()],
                "fsync": wal.fsync_policy,
            }
        body = json.dumps(manifest, sort_keys=True).encode()
        crc, variant = checksum(body)
        manifest["manifest_crc"] = {"crc": crc, "variant": variant}
        tmp_manifest = staging / (_MANIFEST + ".tmp")
        tmp_manifest.write_text(json.dumps(manifest, indent=2))
        os.replace(tmp_manifest, staging / _MANIFEST)
        # shard files and manifest contents are fsynced individually
        # (persist.py), but the *renames* live in directory metadata:
        # fsync the staging dir so its entries are durable before the
        # publish, then the parent so the publish rename itself is —
        # otherwise a power cut can forget a checkpoint that
        # prune_checkpoints already treated as the newest
        _fsync_dir(staging)
        os.replace(staging, final)
        _fsync_dir(directory)
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    engine.stats.record_checkpoint()
    supervisor = getattr(engine, "_supervisor", None)
    if supervisor is not None:
        # everything flushed so far is durable: the replay buffer can
        # trim to this cut and the restart breaker refills
        supervisor.on_checkpoint(final)
    return final


def read_manifest(path: str | Path) -> dict:
    """The manifest of one checkpoint directory (raises if unreadable)."""
    return json.loads((Path(path) / _MANIFEST).read_text())


def load_checkpoint_shard(path: str | Path, shard_id: int):
    """Load a single shard's sketch from one checkpoint directory.

    The supervisor rebuilds one worker at a time; loading only its
    shards keeps recovery cost proportional to the failure, not the
    fleet.
    """
    from repro.persist import load_sketch

    path = Path(path)
    names = read_manifest(path)["shards"]
    if not 0 <= shard_id < len(names):
        raise ValueError(
            f"checkpoint {path} has {len(names)} shards, no shard {shard_id}"
        )
    return load_sketch(path / names[shard_id])


def _next_seq(directory: Path) -> int:
    seqs = [
        int(p.name[len(_PREFIX):])
        for p in directory.iterdir()
        if p.is_dir() and p.name.startswith(_PREFIX) and p.name[len(_PREFIX):].isdigit()
    ]
    return max(seqs, default=-1) + 1


def _manifest_crc_ok(meta: dict) -> bool:
    """Self-checksum check; vacuously true for pre-durability manifests.

    The checksum covers the sorted-keys JSON dump of every field except
    ``manifest_crc`` itself; json round-trips ints and floats exactly,
    so re-serialising the loaded dict reproduces the hashed bytes.
    """
    rec = meta.get("manifest_crc")
    if rec is None:
        return True
    try:
        body = {k: v for k, v in meta.items() if k != "manifest_crc"}
        return verify_checksum(
            json.dumps(body, sort_keys=True).encode(),
            int(rec["crc"]),
            int(rec["variant"]),
        )
    except Exception:
        return False


def _is_complete(path: Path) -> bool:
    """Cheap completeness scan: manifest readable and self-consistent,
    every shard file present at its recorded size.  Full checksums are
    :func:`verify_checkpoint`'s job (this runs inside directory scans).
    """
    manifest = path / _MANIFEST
    if not manifest.is_file():
        return False
    try:
        meta = json.loads(manifest.read_text())
    except (OSError, json.JSONDecodeError):
        return False
    if meta.get("format") != _FORMAT_VERSION:
        return False
    if not _manifest_crc_ok(meta):
        return False
    sizes = {
        m.get("name"): m.get("bytes") for m in meta.get("shard_meta", [])
    }
    for name in meta.get("shards", []):
        f = path / name
        if not f.is_file():
            return False
        # a truncated shard file must make the checkpoint invisible to
        # recovery scans, not blow up (or worse, load) later
        if name in sizes and f.stat().st_size != sizes[name]:
            return False
    return True


def verify_checkpoint(path: str | Path) -> dict:
    """Affirmative integrity check of one checkpoint directory.

    Verifies the manifest self-checksum and every shard file's recorded
    size and checksum; returns the manifest on success.  Pre-durability
    checkpoints (no ``shard_meta``) only get existence checks — they
    carry nothing stronger to verify against.

    Raises:
        CheckpointCorruptionError: naming the first damaged file.
    """
    path = Path(path)
    try:
        meta = read_manifest(path)
    except Exception as exc:
        raise CheckpointCorruptionError(
            f"{path}: manifest unreadable ({exc})"
        ) from exc
    if not _manifest_crc_ok(meta):
        raise CheckpointCorruptionError(
            f"{path}: manifest failed its self-checksum"
        )
    recorded = {m["name"]: m for m in meta.get("shard_meta", [])}
    for name in meta.get("shards", []):
        f = path / name
        if not f.is_file():
            raise CheckpointCorruptionError(f"{path}: missing shard {name}")
        m = recorded.get(name)
        if m is None:
            continue
        data = f.read_bytes()
        if len(data) != int(m["bytes"]):
            raise CheckpointCorruptionError(
                f"{path}: shard {name} is {len(data)} bytes, "
                f"manifest recorded {m['bytes']} — truncated"
            )
        if not verify_checksum(data, int(m["crc"]), int(m["crc_variant"])):
            raise CheckpointCorruptionError(
                f"{path}: shard {name} failed its checksum — bit rot or "
                "a torn write survived the size check"
            )
    return meta


def latest_checkpoint(directory: str | Path) -> Path | None:
    """Newest *complete* checkpoint under ``directory`` (None if none)."""
    directory = Path(directory)
    if not directory.is_dir():
        return None
    candidates = sorted(
        (
            p
            for p in directory.iterdir()
            if p.is_dir() and p.name.startswith(_PREFIX)
        ),
        reverse=True,
    )
    for path in candidates:
        if _is_complete(path):
            return path
    return None


def recover_engine(
    directory: str | Path,
    *,
    executor="serial",
    num_workers: int | None = None,
    replay_wal: bool = True,
) -> StreamEngine:
    """Rebuild the engine from the newest *loadable* checkpoint, then
    replay its WAL suffix.

    A checkpoint whose shard files turn out to be corrupt (bit rot,
    torn storage, injected chaos) is skipped in favour of the next
    older complete one — a stale base beats no base, and because every
    older checkpoint records an older WAL position, the replay suffix
    grows to cover exactly the difference: recovery from an older base
    loses nothing.

    When the checkpoint records a WAL position (the engine ran with
    ``wal_dir``), the log suffix is fed back through the normal ingest
    path — the recovered engine is bit-identical to one that never
    crashed (up to the durable horizon of the configured fsync policy).
    ``replay_wal=False`` skips that and *truncates* the log at the
    checkpoint's position instead, explicitly discarding the suffix, so
    the log never disagrees with the state that was restored.

    Raises:
        FileNotFoundError: no complete checkpoint exists at all.
        CheckpointCorruptionError: checkpoints exist but every one
            failed integrity verification — corruption is surfaced,
            never silently ingested.
        WalCorruptionError: the checkpoint base loaded but its WAL
            suffix is damaged mid-log (torn tails are fine); an older
            base cannot help, it needs even more of the same log.
    """
    directory = Path(directory)
    # local import: persist -> core only, but keep engine import-light
    from repro.persist import load_sketch

    candidates = sorted(
        (
            p
            for p in directory.iterdir()
            if p.is_dir() and p.name.startswith(_PREFIX)
        ),
        reverse=True,
    ) if directory.is_dir() else []
    corruption: list[str] = []
    saw_candidate = False
    for path in candidates:
        if not (path / _MANIFEST).is_file():
            continue  # torn staging attempt, never published
        saw_candidate = True
        try:
            meta = verify_checkpoint(path)
        except CheckpointCorruptionError as exc:
            corruption.append(str(exc))
            continue  # fall back to the next older checkpoint
        if meta.get("format") != _FORMAT_VERSION:
            continue
        kind = meta.get("algorithm", {}).get("kind") or meta.get(
            "config", {}
        ).get("kind")
        if kind is not None:
            # an unregistered algorithm is an environment problem, not
            # checkpoint corruption: say so instead of skipping to an
            # older (equally unloadable) checkpoint
            from repro.core.registry import get_descriptor

            get_descriptor(kind)
        try:
            shards = [load_sketch(path / name) for name in meta["shards"]]
        except Exception as exc:
            # pre-durability checkpoints have no checksums to flag this
            # earlier; count it as corruption and fall back
            corruption.append(f"{path}: shard load failed ({exc})")
            continue
        config = EngineConfig.from_json(meta["config"])
        engine = StreamEngine(
            config,
            executor=executor,
            num_workers=num_workers,
            _shards=shards,
            _clock_state=[int(t) for t in meta["clock"]],
        )
        engine.stats.recovered_from = str(path)
        wal_meta = meta.get("wal")
        if engine._wal is not None and wal_meta is not None:
            position = WalPosition(*(int(x) for x in wal_meta["position"]))
            if replay_wal:
                engine._wal_replayed_items = replay_into(engine, position)
            else:
                engine._wal.truncate_to(position)
        return engine
    if corruption:
        raise CheckpointCorruptionError(
            f"no loadable checkpoint under {directory!s}; corruption "
            "detected: " + "; ".join(corruption)
        )
    raise FileNotFoundError(
        f"no complete, loadable checkpoint under {directory!s}"
    )


def prune_checkpoints(directory: str | Path, keep: int) -> list[Path]:
    """Delete all but the ``keep`` newest complete checkpoints.

    Torn attempts (incomplete directories) older than the newest
    complete checkpoint are removed too.  Returns the deleted paths.
    """
    require_positive_int("keep", keep)
    directory = Path(directory)
    if not directory.is_dir():
        return []
    entries = sorted(
        (p for p in directory.iterdir() if p.is_dir() and p.name.startswith(_PREFIX)),
        reverse=True,
    )
    complete = [p for p in entries if _is_complete(p)]
    keep_set = set(complete[:keep])
    newest = complete[0].name if complete else None
    deleted = []
    for p in entries:
        torn = p not in set(complete)
        if p in keep_set:
            continue
        if torn and (newest is None or p.name > newest):
            continue  # possibly a checkpoint being written right now
        # manifest first: a concurrent latest_checkpoint/recover scan
        # that races this deletion sees a manifest-less directory (a
        # torn attempt, skipped) instead of a manifest whose shard
        # files are vanishing under it
        try:
            (p / _MANIFEST).unlink(missing_ok=True)
        except OSError:
            pass
        shutil.rmtree(p, ignore_errors=True)
        deleted.append(p)
    return deleted


class Checkpointer:
    """Periodic checkpoint policy bound to one engine and directory.

    Args:
        engine: the engine to checkpoint.
        directory: where checkpoints live.
        interval_items: checkpoint after this many newly ingested items.
        interval_s: and/or after this much wall time.
        keep: retain this many complete checkpoints.
    """

    def __init__(
        self,
        engine: StreamEngine,
        directory: str | Path,
        *,
        interval_items: int | None = None,
        interval_s: float | None = None,
        keep: int = 3,
    ):
        if interval_items is None and interval_s is None:
            raise ValueError("set interval_items and/or interval_s")
        if interval_items is not None:
            require_positive_int("interval_items", interval_items)
        self.engine = engine
        self.directory = Path(directory)
        self.interval_items = interval_items
        self.interval_s = interval_s
        self.keep = require_positive_int("keep", keep)
        self._clock = engine._clock
        self._last_time = self._clock()
        self._last_items = engine.stats.items_ingested

    def due(self) -> bool:
        if (
            self.interval_items is not None
            and self.engine.stats.items_ingested - self._last_items >= self.interval_items
        ):
            return True
        return (
            self.interval_s is not None
            and self._clock() - self._last_time >= self.interval_s
        )

    def maybe(self) -> Path | None:
        """Checkpoint if due; returns the new path or None."""
        if not self.due():
            return None
        return self.save()

    def save(self) -> Path:
        """Checkpoint unconditionally, prune old ones, and trim the WAL.

        WAL segments are pruned to the *oldest* position any retained
        checkpoint records: every checkpoint an operator could still
        fall back to keeps its full replay suffix.  A retained
        checkpoint without a WAL position (taken before the WAL was
        enabled) pins the whole log.
        """
        path = save_checkpoint(self.engine, self.directory)
        self._last_time = self._clock()
        self._last_items = self.engine.stats.items_ingested
        prune_checkpoints(self.directory, self.keep)
        wal = getattr(self.engine, "_wal", None)
        if wal is not None:
            positions = []
            for p in sorted(self.directory.iterdir()):
                if not (p.is_dir() and p.name.startswith(_PREFIX)):
                    continue
                if not _is_complete(p):
                    continue
                try:
                    wal_meta = read_manifest(p).get("wal")
                except Exception:
                    wal_meta = None
                if wal_meta is None:
                    positions = None  # pre-WAL checkpoint pins everything
                    break
                positions.append(
                    WalPosition(*(int(x) for x in wal_meta["position"]))
                )
            if positions:
                wal.prune_to(min(positions))
        return path
