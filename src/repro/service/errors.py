"""Typed failure hierarchy for the sharded serving layer.

A sharded store distinguishes *how* a shard failed because each mode
has a different remedy: a timed-out RPC may still complete (restart and
replay from a durable base, never resend blind), a dead worker needs a
restart, a worker-reported exception is the caller's bug, and a shard
that cannot be rebuilt (no checkpoint, replay overflow, circuit breaker
open) can only be dropped from the fan-in.  The supervisor and the
engine's degraded-query mode dispatch on these types; everything
derives from :class:`ShardError` (itself a ``RuntimeError`` so legacy
``except RuntimeError`` call sites keep working).

Timeout ambiguity is the important subtlety: ``ShardTimeoutError``
means *the acknowledgement did not arrive in time*, not *the operation
did not happen*.  The worker may have applied the batch just before —
or just after — the deadline fired.  The only safe recovery is to
discard the worker's in-memory state and rebuild from the newest
checkpoint plus the replay buffer, which is exactly what
:class:`repro.service.supervisor.Supervisor` does.
"""

from __future__ import annotations

__all__ = [
    "ShardError",
    "ShardTimeoutError",
    "ShardDeadError",
    "ShardFailedError",
    "ShardUnrecoverableError",
    "EngineOverloadedError",
    "WalError",
    "WalWriteError",
    "WalCorruptionError",
    "CheckpointCorruptionError",
]


class ShardError(RuntimeError):
    """Base for executor / supervisor failures tied to specific shards.

    Args:
        message: human-readable description.
        shard_ids: the shards whose batches are *not known to have
            applied* (failed, skipped, or unacknowledged), empty when
            unknown.
        worker_ids: the owning workers, when the executor has workers
            (a fan-out round can lose several at once).
    """

    def __init__(
        self,
        message: str,
        *,
        shard_ids: tuple[int, ...] = (),
        worker_ids: tuple[int, ...] = (),
    ):
        super().__init__(message)
        self.shard_ids = tuple(shard_ids)
        self.worker_ids = tuple(worker_ids)

    @property
    def worker_id(self) -> int | None:
        """First affected worker (None when unattributed)."""
        return self.worker_ids[0] if self.worker_ids else None


class ShardTimeoutError(ShardError):
    """An executor RPC missed its deadline; the op may or may not have
    applied.  Worker state is now untrusted — rebuild, don't resend."""

    def __init__(self, message: str, *, timeout_s: float | None = None, **kw):
        super().__init__(message, **kw)
        self.timeout_s = timeout_s


class ShardDeadError(ShardError):
    """The worker process is gone (EOF on its pipe / not alive)."""


class ShardFailedError(ShardError):
    """The worker is alive and reported an exception applying the op.

    Carries the worker-side traceback; this is a caller/data error
    (e.g. rewound times), not a process failure, so the supervisor does
    *not* restart for it.
    """


class ShardUnrecoverableError(ShardError):
    """A shard cannot be rebuilt: replay buffer overflowed, checkpoint
    missing/corrupt, or the restart circuit breaker is open.  Strict
    queries fail with this; ``strict=False`` queries degrade instead."""


class EngineOverloadedError(ShardError):
    """Admission control rejected an ingest batch: buffer budgets full.

    Raised by the ``"raise"`` overload policy (and by ``"block"`` once
    its deadline passes) *before* any arrival of the batch is stamped —
    rejected keys never consume union-stream clock ticks, so a caller
    that backs off and retries observes exactly the stream it delivered.
    The whole batch is rejected atomically: admitting a prefix would
    silently reorder the union stream relative to what the caller sent.

    Args:
        message: human-readable description.
        depths: shard id -> buffered depth at rejection time for the
            over-budget shards.
        limit: the per-shard budget in force for those shards (the
            down-shard retention cap when the shard was down), None
            when only the engine-wide budget was breached.
        total_limit: the engine-wide budget, None when unset.
        policy: the overload policy that escalated here (``"raise"`` or
            ``"block"``).
        shard_ids / worker_ids: standard :class:`ShardError`
            attribution (the over-budget shards).
    """

    def __init__(
        self,
        message: str,
        *,
        depths: dict[int, int] | None = None,
        limit: int | None = None,
        total_limit: int | None = None,
        policy: str = "raise",
        **kw,
    ):
        super().__init__(message, **kw)
        self.depths = dict(depths or {})
        self.limit = limit
        self.total_limit = total_limit
        self.policy = policy


class WalError(RuntimeError):
    """Base for write-ahead-log failures (:mod:`repro.service.wal`)."""


class WalWriteError(WalError):
    """The OS rejected a WAL append or fsync.  The batch that triggered
    it was *not* ingested (no clock ticks were consumed) and the log's
    ``last_error`` stays set — ``/healthz`` reports degraded — until a
    later sync succeeds."""


class WalCorruptionError(WalError):
    """The log is damaged in a way recovery must not paper over: a
    mid-log record fails its checksum with valid records after it, a
    segment is missing from the middle of the sequence, or a recorded
    replay position points past the data.  A *torn tail* — the final
    segment ending mid-record — is NOT this error; torn bytes were
    never durable and are silently truncated on open."""


class CheckpointCorruptionError(RuntimeError):
    """Checkpoint integrity verification failed: a manifest or shard
    file does not match its recorded checksum/size.  ``recover_engine``
    falls back to an older checkpoint when one is loadable and raises
    this (never silently loads damaged state) when none is."""
