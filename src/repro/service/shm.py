"""Fixed-slot shared-memory ring for zero-copy flush batches.

The data plane of the engine's ``transport="shm"`` mode: one
``multiprocessing.shared_memory`` segment carved into fixed-size slots,
each holding two aligned columns — ``keys`` (``uint64``) and ``times``
(``int64``) — for one flush batch.  The parent copies a drained batch
into a free slot once and sends workers a tiny *slot descriptor*
``(slot, n, side, shard)`` over the existing pipes, which remain the
control plane (acks, deadlines, traces, chaos injection).  Workers map
the same segment and apply straight from zero-copy views.

Ownership is strictly parent-side: the parent allocates slots from a
local free list, writes them, and releases them when the worker's ack
(or a typed failure) comes back.  Workers only ever read, so no
cross-process allocator state is needed and a SIGKILLed worker can
never corrupt or leak ring bookkeeping — its in-flight slots are freed
by the parent's error path.

Batches larger than a slot fall back to the pickle path (the executor
counts these); rings are sized so steady-state flushes always fit.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

__all__ = ["SlotRing", "shm_available"]

#: dtypes of the two slot columns (wire format of one flush batch)
KEY_DTYPE = np.uint64
TIME_DTYPE = np.int64
_ITEM_BYTES = KEY_DTYPE().itemsize + TIME_DTYPE().itemsize  # 16


def shm_available() -> bool:
    """Can this platform back a :class:`SlotRing`?"""
    return _shared_memory is not None


class SlotRing:
    """A parent-owned ring of fixed-size two-column slots.

    Args:
        slot_items: capacity of one slot, in items.
        num_slots: number of slots in the ring.
        name: attach to an existing segment instead of creating one
            (worker side); geometry must match the creator's.
    """

    def __init__(self, slot_items: int, num_slots: int, *, name: str | None = None):
        if _shared_memory is None:  # pragma: no cover
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        if slot_items < 1:
            raise ValueError(f"slot_items must be >= 1, got {slot_items}")
        if num_slots < 1:
            raise ValueError(f"num_slots must be >= 1, got {num_slots}")
        self.slot_items = int(slot_items)
        self.num_slots = int(num_slots)
        nbytes = self.slot_items * self.num_slots * _ITEM_BYTES
        self._owner = name is None
        if self._owner:
            self._shm = _shared_memory.SharedMemory(create=True, size=nbytes)
        else:
            # attachers must not register with the resource tracker: the
            # parent owns the segment's lifecycle, and under fork the
            # tracker is shared, so an attacher unregistering later would
            # silently drop the owner's registration (Python < 3.13 lacks
            # SharedMemory(track=False))
            from multiprocessing import resource_tracker

            orig_register = resource_tracker.register
            resource_tracker.register = lambda *a, **kw: None
            try:
                self._shm = _shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = orig_register
            if self._shm.size < nbytes:
                self._shm.close()
                raise ValueError(
                    f"segment {name!r} is {self._shm.size} bytes; ring geometry "
                    f"({num_slots} x {slot_items}) needs {nbytes}"
                )
        buf = self._shm.buf
        key_bytes = self.slot_items * self.num_slots * KEY_DTYPE().itemsize
        self._keys = np.frombuffer(buf[:key_bytes], dtype=KEY_DTYPE).reshape(
            self.num_slots, self.slot_items
        )
        self._times = np.frombuffer(buf[key_bytes:nbytes], dtype=TIME_DTYPE).reshape(
            self.num_slots, self.slot_items
        )
        self._free: list[int] = list(range(self.num_slots - 1, -1, -1))
        self._closed = False

    # -- parent-side allocation -------------------------------------------

    @property
    def name(self) -> str:
        """Segment name workers attach by."""
        return self._shm.name

    def acquire(self) -> int | None:
        """Pop a free slot id, or ``None`` when the ring is exhausted."""
        if not self._free:
            return None
        return self._free.pop()

    def release(self, slot: int) -> None:
        """Return a slot to the free list (parent side, on ack/error)."""
        if not 0 <= slot < self.num_slots:
            raise ValueError(f"slot {slot} out of range [0, {self.num_slots})")
        self._free.append(slot)

    def in_use(self) -> int:
        """Slots currently handed out (the ring-occupancy gauge)."""
        return self.num_slots - len(self._free)

    # -- slot I/O -----------------------------------------------------------

    def write(self, slot: int, keys: np.ndarray, times: np.ndarray) -> int:
        """Copy one batch into ``slot``'s columns; returns the item count."""
        n = keys.size
        if n > self.slot_items:
            raise ValueError(
                f"batch of {n} items exceeds slot capacity {self.slot_items}"
            )
        self._keys[slot, :n] = keys
        self._times[slot, :n] = times
        return n

    def keys_view(self, slot: int, n: int) -> np.ndarray:
        """Zero-copy ``uint64`` view of a slot's first ``n`` keys."""
        return self._keys[slot, :n]

    def times_view(self, slot: int, n: int) -> np.ndarray:
        """Zero-copy ``int64`` view of a slot's first ``n`` times."""
        return self._times[slot, :n]

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Unmap (and, for the owner, unlink) the segment. Idempotent."""
        if self._closed:
            return
        self._closed = True
        # drop the numpy views before closing the mmap they alias
        self._keys = None
        self._times = None
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - a straggling view pins
            pass             # the mapping; process exit unmaps it
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SlotRing":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - backstop, not the contract
        try:
            self.close()
        except Exception:
            pass
