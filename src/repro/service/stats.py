"""In-process observability for the streaming engine.

A serving system is debugged through its counters: how much came in,
how often the buffers drained, how long a drain takes at the tail, how
stale the last checkpoint is.  ``EngineStats`` keeps exactly that — but
since the obs subsystem arrived it no longer owns the numbers: every
counter lives in a :class:`repro.obs.Registry` (the engine's, when
observability is enabled, so ``/metrics`` serves the same values; a
private one otherwise), and ``EngineStats`` is the thin view that
preserves the original attribute and ``snapshot()`` surface.  The ring
of recent flush durations stays local (percentiles need the raw
samples), there are still no locks (the engine mutates from one
thread), and the monotonic clock is injectable so tests can pin time.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Iterable, Mapping

import numpy as np

from repro.obs.registry import Registry

__all__ = ["EngineStats", "format_stats"]

_RING = 1024  # flush-latency samples kept for percentile estimates

# seconds-scale buckets for the exported flush-duration histogram
_FLUSH_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)


class EngineStats:
    """Counters and latency percentiles for one :class:`StreamEngine`.

    Args:
        clock: injectable monotonic clock.
        registry: where the counters live.  Pass the engine's obs
            registry to have ``/metrics`` serve these values; the
            default private registry keeps the class self-contained
            (and is what a disabled-obs engine uses — counting is an
            attribute increment either way, so ``snapshot()`` always
            works).
    """

    def __init__(
        self,
        *,
        clock: Callable[[], float] = time.monotonic,
        registry: Registry | None = None,
    ):
        self._clock = clock
        self.started_at = clock()
        reg = registry if registry is not None else Registry()
        self.registry = reg
        self._ingested = reg.counter(
            "engine_items_ingested_total", "Items accepted by ingest()"
        )
        self._flushed = reg.counter(
            "engine_items_flushed_total", "Items drained into shard sketches"
        )
        self._flushes = reg.counter(
            "engine_flushes_total", "Buffer drain rounds"
        )
        self._queries = reg.counter(
            "engine_queries_total", "Queries answered (any kind)"
        )
        self._checkpoints = reg.counter(
            "engine_checkpoints_total", "Completed checkpoints"
        )
        # fault-tolerance counters: how often the engine hit a deadline,
        # lost a worker, restarted one, replayed batches into a rebuilt
        # worker, or answered a query with shards missing
        self._timeouts = reg.counter(
            "engine_rpc_timeouts_total", "Worker RPCs that missed their deadline"
        )
        self._deaths = reg.counter(
            "engine_worker_deaths_total", "Workers observed dead"
        )
        self._restarts = reg.counter(
            "engine_worker_restarts_total", "Successful worker restarts"
        )
        self._replayed_items = reg.counter(
            "engine_items_replayed_total", "Items re-applied during recovery"
        )
        self._replayed_batches = reg.counter(
            "engine_batches_replayed_total", "Batches re-applied during recovery"
        )
        self._degraded = reg.counter(
            "engine_degraded_queries_total",
            "Queries answered with shards missing",
        )
        # admission-control counters: items dropped by a shed policy
        # (admitted then evicted, or turned away at the door) and whole
        # batches rejected by the raise/block policies (those never
        # consume union-stream clock ticks and are NOT in items_ingested)
        self._shed = reg.counter(
            "engine_items_shed_total",
            "Items dropped by the overload shed policies",
        )
        self._rejected = reg.counter(
            "engine_items_rejected_total",
            "Items in batches rejected by the raise/block overload policies",
        )
        self._flush_hist = reg.histogram(
            "engine_flush_seconds", "Buffer drain duration", buckets=_FLUSH_BUCKETS
        )
        self.recovered_from: str | None = None
        self._flush_seconds: deque[float] = deque(maxlen=_RING)
        self._last_checkpoint_at: float | None = None

    # -- recording (called by the engine) ----------------------------------

    def record_ingest(self, n: int) -> None:
        self._ingested.inc(int(n))

    def record_flush(self, n_items: int, seconds: float) -> None:
        self._flushes.inc()
        self._flushed.inc(int(n_items))
        self._flush_seconds.append(float(seconds))
        self._flush_hist.observe(float(seconds))

    def record_query(self) -> None:
        self._queries.inc()

    def record_checkpoint(self) -> None:
        self._checkpoints.inc()
        self._last_checkpoint_at = self._clock()

    def record_timeout(self) -> None:
        self._timeouts.inc()

    def record_worker_death(self) -> None:
        self._deaths.inc()

    def record_restart(self) -> None:
        self._restarts.inc()

    def record_replay(self, n_items: int, n_batches: int) -> None:
        self._replayed_items.inc(int(n_items))
        self._replayed_batches.inc(int(n_batches))

    def record_degraded_query(self) -> None:
        self._degraded.inc()

    def record_shed(self, n: int) -> None:
        self._shed.inc(int(n))

    def record_rejected(self, n: int) -> None:
        self._rejected.inc(int(n))

    # -- the original attribute surface (now registry-backed reads) ---------

    @property
    def items_ingested(self) -> int:
        return int(self._ingested.value)

    @property
    def items_flushed(self) -> int:
        return int(self._flushed.value)

    @property
    def flush_count(self) -> int:
        return int(self._flushes.value)

    @property
    def query_count(self) -> int:
        return int(self._queries.value)

    @property
    def checkpoint_count(self) -> int:
        return int(self._checkpoints.value)

    @property
    def rpc_timeouts(self) -> int:
        return int(self._timeouts.value)

    @property
    def worker_deaths(self) -> int:
        return int(self._deaths.value)

    @property
    def worker_restarts(self) -> int:
        return int(self._restarts.value)

    @property
    def items_replayed(self) -> int:
        return int(self._replayed_items.value)

    @property
    def batches_replayed(self) -> int:
        return int(self._replayed_batches.value)

    @property
    def degraded_queries(self) -> int:
        return int(self._degraded.value)

    @property
    def items_shed(self) -> int:
        return int(self._shed.value)

    @property
    def items_rejected(self) -> int:
        return int(self._rejected.value)

    # -- derived views ------------------------------------------------------

    def flush_latency_ms(self, percentiles: Iterable[float] = (50, 90, 99)) -> dict[str, float]:
        """Percentiles (ms) over the most recent flushes; empty dict if none."""
        if not self._flush_seconds:
            return {}
        samples = np.asarray(self._flush_seconds, dtype=np.float64) * 1e3
        return {
            f"p{int(p) if float(p).is_integer() else p}": float(np.percentile(samples, p))
            for p in percentiles
        }

    def checkpoint_age_s(self) -> float | None:
        """Seconds since the last completed checkpoint (None if never)."""
        if self._last_checkpoint_at is None:
            return None
        return self._clock() - self._last_checkpoint_at

    def uptime_s(self) -> float:
        return self._clock() - self.started_at

    def snapshot(
        self,
        queue_depths: Iterable[int] = (),
        down_shards: Iterable[int] = (),
    ) -> dict:
        """One flat dict of everything, for printing or scraping."""
        depths = list(queue_depths)
        down = [int(s) for s in down_shards]
        # conservation identity: items_ingested == items_flushed +
        # items_buffered + items_shed + items_retained_down.  Buffered
        # splits into live-shard queues and down-shard retention; when
        # the caller supplies real per-shard depths those are the source
        # of truth, otherwise fall back to counter arithmetic.
        retained_down = sum(
            depths[s] for s in down if 0 <= s < len(depths)
        )
        if depths:
            buffered = sum(depths) - retained_down
        else:
            buffered = (
                self.items_ingested - self.items_flushed - self.items_shed
            )
        # read the clock once: under an injected clock, calling
        # checkpoint_age_s() twice could yield inconsistent None/float
        # (or two different ages) within one snapshot
        checkpoint_age = self.checkpoint_age_s()
        out = {
            "uptime_s": round(self.uptime_s(), 3),
            "items_ingested": self.items_ingested,
            "items_flushed": self.items_flushed,
            "items_buffered": buffered,
            "items_shed": self.items_shed,
            "items_rejected": self.items_rejected,
            "items_retained_down": retained_down,
            "flush_count": self.flush_count,
            "query_count": self.query_count,
            "checkpoint_count": self.checkpoint_count,
            "checkpoint_age_s": (
                None if checkpoint_age is None else round(checkpoint_age, 3)
            ),
            "queue_depths": depths,
            "queue_depth_max": max(depths) if depths else 0,
            "rpc_timeouts": self.rpc_timeouts,
            "worker_deaths": self.worker_deaths,
            "worker_restarts": self.worker_restarts,
            "items_replayed": self.items_replayed,
            "batches_replayed": self.batches_replayed,
            "degraded_queries": self.degraded_queries,
            "shards_down": down,
        }
        if self.recovered_from is not None:
            out["recovered_from"] = self.recovered_from
        for name, value in self.flush_latency_ms().items():
            out[f"flush_{name}_ms"] = round(value, 3)
        return out


def format_stats(snapshot: Mapping) -> str:
    """Render a stats snapshot as an aligned two-column text block."""
    if not snapshot:
        return ""
    width = max(len(str(k)) for k in snapshot)
    lines = [f"{k:<{width}}  {v}" for k, v in snapshot.items()]
    return "\n".join(lines)
