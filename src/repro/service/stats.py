"""In-process observability for the streaming engine.

A serving system is debugged through its counters: how much came in,
how often the buffers drained, how long a drain takes at the tail, how
stale the last checkpoint is.  ``EngineStats`` keeps exactly that —
plain Python integers plus a bounded ring of recent flush durations —
with no locks (the engine mutates it from one thread) and an injectable
monotonic clock so tests can pin time.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Iterable, Mapping

import numpy as np

__all__ = ["EngineStats", "format_stats"]

_RING = 1024  # flush-latency samples kept for percentile estimates


class EngineStats:
    """Counters and latency percentiles for one :class:`StreamEngine`."""

    def __init__(self, *, clock: Callable[[], float] = time.monotonic):
        self._clock = clock
        self.started_at = clock()
        self.items_ingested = 0
        self.items_flushed = 0
        self.flush_count = 0
        self.query_count = 0
        self.checkpoint_count = 0
        self.recovered_from: str | None = None
        # fault-tolerance counters: how often the engine hit a deadline,
        # lost a worker, restarted one, replayed batches into a rebuilt
        # worker, or answered a query with shards missing
        self.rpc_timeouts = 0
        self.worker_deaths = 0
        self.worker_restarts = 0
        self.items_replayed = 0
        self.batches_replayed = 0
        self.degraded_queries = 0
        self._flush_seconds: deque[float] = deque(maxlen=_RING)
        self._last_checkpoint_at: float | None = None

    # -- recording (called by the engine) ----------------------------------

    def record_ingest(self, n: int) -> None:
        self.items_ingested += int(n)

    def record_flush(self, n_items: int, seconds: float) -> None:
        self.flush_count += 1
        self.items_flushed += int(n_items)
        self._flush_seconds.append(float(seconds))

    def record_query(self) -> None:
        self.query_count += 1

    def record_checkpoint(self) -> None:
        self.checkpoint_count += 1
        self._last_checkpoint_at = self._clock()

    def record_timeout(self) -> None:
        self.rpc_timeouts += 1

    def record_worker_death(self) -> None:
        self.worker_deaths += 1

    def record_restart(self) -> None:
        self.worker_restarts += 1

    def record_replay(self, n_items: int, n_batches: int) -> None:
        self.items_replayed += int(n_items)
        self.batches_replayed += int(n_batches)

    def record_degraded_query(self) -> None:
        self.degraded_queries += 1

    # -- derived views ------------------------------------------------------

    def flush_latency_ms(self, percentiles: Iterable[float] = (50, 90, 99)) -> dict[str, float]:
        """Percentiles (ms) over the most recent flushes; empty dict if none."""
        if not self._flush_seconds:
            return {}
        samples = np.asarray(self._flush_seconds, dtype=np.float64) * 1e3
        return {
            f"p{int(p) if float(p).is_integer() else p}": float(np.percentile(samples, p))
            for p in percentiles
        }

    def checkpoint_age_s(self) -> float | None:
        """Seconds since the last completed checkpoint (None if never)."""
        if self._last_checkpoint_at is None:
            return None
        return self._clock() - self._last_checkpoint_at

    def uptime_s(self) -> float:
        return self._clock() - self.started_at

    def snapshot(
        self,
        queue_depths: Iterable[int] = (),
        down_shards: Iterable[int] = (),
    ) -> dict:
        """One flat dict of everything, for printing or scraping."""
        depths = list(queue_depths)
        out = {
            "uptime_s": round(self.uptime_s(), 3),
            "items_ingested": self.items_ingested,
            "items_flushed": self.items_flushed,
            "items_buffered": self.items_ingested - self.items_flushed,
            "flush_count": self.flush_count,
            "query_count": self.query_count,
            "checkpoint_count": self.checkpoint_count,
            "checkpoint_age_s": (
                None
                if self.checkpoint_age_s() is None
                else round(self.checkpoint_age_s(), 3)
            ),
            "queue_depths": depths,
            "queue_depth_max": max(depths) if depths else 0,
            "rpc_timeouts": self.rpc_timeouts,
            "worker_deaths": self.worker_deaths,
            "worker_restarts": self.worker_restarts,
            "items_replayed": self.items_replayed,
            "batches_replayed": self.batches_replayed,
            "degraded_queries": self.degraded_queries,
            "shards_down": list(down_shards),
        }
        if self.recovered_from is not None:
            out["recovered_from"] = self.recovered_from
        for name, value in self.flush_latency_ms().items():
            out[f"flush_{name}_ms"] = round(value, 3)
        return out


def format_stats(snapshot: Mapping) -> str:
    """Render a stats snapshot as an aligned two-column text block."""
    width = max(len(str(k)) for k in snapshot)
    lines = [f"{k:<{width}}  {v}" for k, v in snapshot.items()]
    return "\n".join(lines)
