"""Key partitioning for the sharded streaming engine.

Shard assignment must be (a) deterministic — a key always lands on the
same shard, so per-key state never splits, (b) independent of every
hash family the sketches use — correlation would skew per-shard load
*and* per-shard collision structure, and (c) cheap enough to sit on the
ingest hot path.  One splitmix64 round over ``key XOR seed`` satisfies
all three; the engine's default partitioner seed is distinct from every
sketch seed in the repository.
"""

from __future__ import annotations

import numpy as np

from repro.common.hashing import splitmix64, splitmix64_inplace
from repro.common.validation import require_positive_int

__all__ = ["DEFAULT_SHARD_SEED", "shard_ids", "shard_of", "partition"]

DEFAULT_SHARD_SEED = 0x5EA2D_C0DE


def shard_of(key: int, num_shards: int, seed: int = DEFAULT_SHARD_SEED) -> int:
    """Owning shard of one key — the scalar twin of :func:`shard_ids`.

    Bit-identical to ``shard_ids(np.asarray([key], dtype=np.uint64), ...)[0]``
    without building the array (the engine's single-item fast path).
    """
    if num_shards == 1:
        return 0
    return splitmix64((int(key) ^ seed) & 0xFFFFFFFFFFFFFFFF) % num_shards


def shard_ids(keys: np.ndarray, num_shards: int, seed: int = DEFAULT_SHARD_SEED) -> np.ndarray:
    """Owning shard of each key, shape ``(n,)`` with values in ``[0, S)``."""
    require_positive_int("num_shards", num_shards)
    if num_shards == 1:
        return np.zeros(keys.shape, dtype=np.int64)
    z = np.asarray(keys, dtype=np.uint64) ^ np.uint64(seed)  # owned copy
    splitmix64_inplace(z, np.empty_like(z))
    np.remainder(z, np.uint64(num_shards), out=z)
    return z.astype(np.int64)


def partition(
    keys: np.ndarray,
    times: np.ndarray,
    num_shards: int,
    seed: int = DEFAULT_SHARD_SEED,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Split a timed batch into per-shard ``(keys, times)`` sub-batches.

    Order within each shard is preserved (times stay non-decreasing),
    which the frames' batch-update derivations require.
    """
    if num_shards == 1:
        return [(keys, times)]
    sids = shard_ids(keys, num_shards, seed)
    return [
        (keys[sids == s], times[sids == s]) for s in range(num_shards)
    ]
