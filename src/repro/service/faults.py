"""Deterministic fault injection for the service layer.

Real crash tests are flaky by construction — a SIGKILL lands between
two unknowable instructions.  :class:`ChaosExecutor` instead wraps any
executor and injects failures at exact *operation indices*: the N-th
forwarded data op (flush batch / advance / snapshot / checkpoint,
counted from 1) can kill the owning worker, stall it past the RPC
deadline, apply-but-drop the acknowledgement, or corrupt the checkpoint
file it just wrote.  Because the engine's op sequence is a pure
function of the ingested stream, every chaos run is exactly
reproducible — the supervision tests assert bit-identical recovery, not
"it eventually worked".

Fault semantics:

* ``kill_worker_after_ops=N`` — immediately before op ``N`` executes,
  SIGKILL the worker that owns it (real process death for
  :class:`ProcessExecutor`; a simulated dead-worker mark for
  :class:`SerialExecutor`).  Op ``N`` and everything after it on that
  worker fails with :class:`ShardDeadError` until a restart.
* ``delay_ops={N: seconds}`` — stall the owning worker for ``seconds``
  before op ``N``.  Against a ``ProcessExecutor`` this exercises the
  real ``conn.poll`` deadline path: pick ``seconds`` larger than the
  executor's ``timeout_s`` and op ``N`` raises
  :class:`ShardTimeoutError` (the worker is then poisoned, exactly as
  a production stall would leave it).  Delays smaller than the deadline
  would desynchronise the pipe and are rejected up front.
* ``slow_workers={W: seconds}`` — a *slow* worker, distinct from a
  stalled one: every op forwarded to worker ``W`` first pays
  ``seconds`` of latency, kept strictly below the executor's
  ``timeout_s`` so the op still completes inside its deadline.  The
  injection round-trips a real sleep through the worker loop (send +
  acknowledge), so the pipe stays in sync — this models a CPU-starved
  or swapping worker that drags the whole engine's throughput down
  without ever tripping the fault machinery, which is exactly the
  overload regime admission control exists for.
* ``drop_ack_ops={N}`` — forward op ``N``, let it apply, then raise
  :class:`ShardTimeoutError` as if the acknowledgement were lost.
  This is the at-least-once ambiguity that forces restart-from-
  checkpoint + replay (blindly resending would double-apply).
* ``corrupt_checkpoint_ops={N}`` — if op ``N`` is a checkpoint, let it
  write and then overwrite the file with garbage, modelling torn or
  bit-rotted durable storage.

The wrapper forwards the full executor surface (topology helpers,
``restart_worker``, ``ping``, ``close``), so a
:class:`repro.service.supervisor.Supervisor` can drive recovery through
it without knowing chaos is present.
"""

from __future__ import annotations

import os
import signal
import time

from repro.obs import OBS_DISABLED
from repro.service.errors import (
    ShardDeadError,
    ShardError,
    ShardFailedError,
    ShardTimeoutError,
)

__all__ = ["ChaosExecutor"]


class ChaosExecutor:
    """Fault-injecting wrapper around any executor (see module docs).

    Args:
        inner: the executor to wrap (``SerialExecutor`` /
            ``ProcessExecutor`` / anything protocol-compatible).
        kill_worker_after_ops: kill the owning worker right before this
            op index (1-based) executes.
        kill_worker_id: kill this worker instead of the op's owner.
        delay_ops: op index -> seconds to stall the owning worker first.
        slow_workers: worker id -> seconds of latency paid before every
            op on that worker (must stay below the executor deadline;
            use ``delay_ops`` to trip it instead).
        drop_ack_ops: op indices whose acknowledgement is "lost" after
            the op applies.
        corrupt_checkpoint_ops: checkpoint op indices whose file is
            overwritten with garbage after writing.

    ``ops`` exposes the running op count; ``kills`` the
    ``(op_index, worker_id)`` log of injected kills.
    """

    def __init__(
        self,
        inner,
        *,
        kill_worker_after_ops: int | None = None,
        kill_worker_id: int | None = None,
        delay_ops: dict[int, float] | None = None,
        slow_workers: dict[int, float] | None = None,
        drop_ack_ops=(),
        corrupt_checkpoint_ops=(),
    ):
        self._inner = inner
        self._kill_at = kill_worker_after_ops
        self._kill_worker = kill_worker_id
        self._delay_ops = dict(delay_ops or {})
        self._slow_workers = dict(slow_workers or {})
        self._drop_ack_ops = set(drop_ack_ops)
        self._corrupt_ops = set(corrupt_checkpoint_ops)
        self._dead: set[int] = set()  # simulated deaths (serial inner)
        self.ops = 0
        self.kills: list[tuple[int, int]] = []
        self.set_obs(None)
        for w, seconds in self._slow_workers.items():
            if seconds <= 0:
                raise ValueError(
                    f"slow_workers[{w}]={seconds}s must be positive"
                )
        timeout_s = getattr(inner, "timeout_s", None)
        if timeout_s is not None:
            for op, seconds in self._delay_ops.items():
                if seconds <= timeout_s:
                    raise ValueError(
                        f"delay_ops[{op}]={seconds}s must exceed the inner "
                        f"executor's timeout_s={timeout_s}s (a shorter stall "
                        "would desynchronise the ack pipe instead of timing "
                        "out)"
                    )
            for w, seconds in self._slow_workers.items():
                if seconds >= timeout_s:
                    raise ValueError(
                        f"slow_workers[{w}]={seconds}s must stay below the "
                        f"inner executor's timeout_s={timeout_s}s — a slow "
                        "worker completes inside its deadline; use delay_ops "
                        "to trip it"
                    )

    def set_obs(self, obs) -> None:
        """Attach an obs bundle: chaos events become countable metrics."""
        self.obs = obs if obs is not None else OBS_DISABLED
        self._chaos_events = self.obs.registry.counter(
            "chaos_events_total",
            "Injected faults by kind",
            labels=("event",),
        )
        inner_set = getattr(self._inner, "set_obs", None)
        if inner_set is not None:
            inner_set(obs)

    # -- topology (forwarded) ------------------------------------------------

    @property
    def num_shards(self) -> int:
        return self._inner.num_shards

    @property
    def num_workers(self) -> int:
        return self._inner.num_workers

    def worker_of(self, shard_id: int) -> int:
        return self._inner.worker_of(shard_id)

    def shards_of(self, worker_id: int) -> list[int]:
        return self._inner.shards_of(worker_id)

    def is_worker_alive(self, worker_id: int) -> bool:
        if worker_id in self._dead:
            return False
        return self._inner.is_worker_alive(worker_id)

    # -- fault machinery -----------------------------------------------------

    def _kill(self, worker_id: int) -> None:
        self._chaos_events.labels("kill").inc()
        self.kills.append((self.ops, worker_id))
        procs = getattr(self._inner, "_procs", None)
        if procs is not None:
            proc = procs[worker_id]
            if proc is not None and proc.is_alive():
                os.kill(proc.pid, signal.SIGKILL)
                proc.join(timeout=5)  # make the death visible deterministically
        else:
            self._dead.add(worker_id)

    def _stall(self, worker_id: int, seconds: float) -> None:
        self._chaos_events.labels("stall").inc()
        send = getattr(self._inner, "_send", None)
        if send is not None:  # process worker: sleep inside the worker loop
            send(worker_id, ("sleep", float(seconds)))
        # serial inner: the deadline machinery doesn't exist in-process,
        # so a stall there has nothing to trip; treat it as a no-op.

    def _maybe_slow(self, worker_id: int, shard_ids=()) -> None:
        """Pay the configured latency for a slow worker before its op.

        Unlike :meth:`_stall`, the sleep's acknowledgement is consumed,
        keeping the worker pipe in sync — the subsequent real op then
        completes inside its deadline, just late.
        """
        seconds = self._slow_workers.get(worker_id)
        if not seconds:
            return
        self._chaos_events.labels("slow").inc()
        send = getattr(self._inner, "_send", None)
        if send is not None:
            send(worker_id, ("sleep", float(seconds)), shard_ids=shard_ids)
            self._inner._recv(
                worker_id, op="chaos-slow", shard_ids=shard_ids
            )
        else:
            time.sleep(float(seconds))

    def _guard(self, worker_id: int, shard_ids=()) -> None:
        if worker_id in self._dead:
            raise ShardDeadError(
                f"worker {worker_id} was killed by chaos at op "
                f"{self.kills[-1][0] if self.kills else '?'}",
                shard_ids=tuple(shard_ids), worker_ids=(worker_id,),
            )

    def _before_op(self, worker_id: int) -> int:
        """Advance the op counter and fire any faults staged at it."""
        self.ops += 1
        n = self.ops
        if n == self._kill_at:
            target = self._kill_worker if self._kill_worker is not None else worker_id
            self._kill(target)
        if n in self._delay_ops:
            self._stall(worker_id, self._delay_ops[n])
        return n

    def _run(self, shard_id: int, fn, *args, op: str):
        worker_id = self.worker_of(shard_id)
        n = self._before_op(worker_id)
        self._guard(worker_id, shard_ids=(shard_id,))
        self._maybe_slow(worker_id, shard_ids=(shard_id,))
        result = fn(*args)
        if n in self._drop_ack_ops:
            # the op applied, but the caller must believe the ack vanished;
            # poison a real worker pool the way a genuine lost ack would
            self._chaos_events.labels("drop_ack").inc()
            poisoned = getattr(self._inner, "_poisoned", None)
            if poisoned is not None:
                poisoned.add(worker_id)
            raise ShardTimeoutError(
                f"chaos dropped the acknowledgement of {op} (op {n})",
                shard_ids=(shard_id,), worker_ids=(worker_id,),
            )
        return result

    # -- protocol verbs ------------------------------------------------------

    def flush(
        self, shard_id: int, keys, times, side: int | None = None, trace=None
    ) -> None:
        self._run(
            shard_id,
            self._inner.flush,
            shard_id,
            keys,
            times,
            side,
            trace,
            op="flush",
        )

    def flush_many(self, batches, trace=None) -> None:
        """Per-batch forwarding so each batch is its own countable op."""
        batches = list(batches)
        errors: list[ShardError] = []
        failed_shards: list[int] = []
        for shard_id, keys, times, side in batches:
            try:
                self.flush(shard_id, keys, times, side, trace)
            except ShardError as exc:
                errors.append(exc)
                failed_shards.append(shard_id)
        if errors:
            first = errors[0]
            raise type(first)(
                str(first),
                shard_ids=tuple(dict.fromkeys(failed_shards)),
                worker_ids=tuple(
                    dict.fromkeys(w for e in errors for w in e.worker_ids)
                ),
            ) from first

    def advance(self, shard_id: int, t: int, side: int | None = None) -> None:
        self._run(shard_id, self._inner.advance, shard_id, t, side, op="advance")

    def snapshot(self, shard_id: int):
        return self._run(shard_id, self._inner.snapshot, shard_id, op="snapshot")

    def snapshots(self) -> list:
        return [self.snapshot(s) for s in range(self.num_shards)]

    def peeks(self) -> list:
        """Read-only views are not ops; simulated deaths still apply."""
        for w in self._dead:
            self._guard(w, shard_ids=tuple(self.shards_of(w)))
        return self._inner.peeks()

    def checkpoint(self, shard_id: int, path) -> None:
        worker_id = self.worker_of(shard_id)
        n = self._before_op(worker_id)
        self._guard(worker_id, shard_ids=(shard_id,))
        self._maybe_slow(worker_id, shard_ids=(shard_id,))
        self._inner.checkpoint(shard_id, path)
        if n in self._corrupt_ops:
            self._chaos_events.labels("corrupt_checkpoint").inc()
            with open(path, "wb") as fh:
                fh.write(b"chaos ate this checkpoint")
        if n in self._drop_ack_ops:
            self._chaos_events.labels("drop_ack").inc()
            poisoned = getattr(self._inner, "_poisoned", None)
            if poisoned is not None:
                poisoned.add(worker_id)
            raise ShardTimeoutError(
                f"chaos dropped the acknowledgement of checkpoint (op {n})",
                shard_ids=(shard_id,), worker_ids=(worker_id,),
            )

    def ping(self, worker_id: int, timeout: float | None = None) -> bool:
        self._guard(worker_id, shard_ids=tuple(self.shards_of(worker_id)))
        return self._inner.ping(worker_id, timeout)

    def restart_worker(self, worker_id: int, shards: dict) -> None:
        self._inner.restart_worker(worker_id, shards)
        self._dead.discard(worker_id)

    def close(self) -> None:
        self._inner.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
