"""Durable ingestion write-ahead log: segmented, checksummed, replayable.

``StreamEngine`` with ``EngineConfig(wal_dir=...)`` appends every
*admitted* ingest batch here **after** admission control but **before**
the batch is stamped with union-stream times.  That ordering is what
makes replay exact:

* shed / rejected arrivals never reach the log, so a replayed stream is
  precisely the admitted stream and the PR 5 conservation identity
  (``ingested == flushed + buffered + shed + retained_down``) closes
  the same way on recovery as it did live;
* stamping happens only if the append succeeded, so a batch that could
  not be made durable never consumes clock ticks — the caller can back
  off and retry exactly as with the ``raise`` overload policy.

On-disk format (all integers little-endian)::

    wal-00000001.log
    ├── 16-byte segment header: 8-byte magic "SHEWAL01"
    │                           + u8 crc variant (0=zlib.crc32, 1=crc32c)
    │                           + 7 reserved zero bytes
    └── records, back to back:
        4-byte record magic + u32 payload_len + u32 crc(payload)
        + payload (u8 side + keys as little-endian uint64)

Segments rotate at ``segment_max_bytes`` and are pruned only under
checkpoint coordination (:meth:`WriteAheadLog.prune_to` from
``Checkpointer.save``): a segment is deleted once *every retained
checkpoint* records a WAL position past it, so fallback-to-older
recovery always finds the suffix it needs.

Failure semantics, the whole point of the module:

* **Torn tail** (power cut / SIGKILL mid-append): opening the log
  truncates the final segment at the first record that fails its CRC
  or runs past end-of-file — those bytes were never acknowledged as
  durable, dropping them is correct.
* **Mid-log corruption** (bit rot, a bad disk): a record that fails its
  CRC *with valid records after it* is not a torn write.  That raises
  :class:`~repro.service.errors.WalCorruptionError` — silently skipping
  it would replay a stream the engine never admitted.
* **fsync policy** — ``"always"`` fsyncs every append (no admitted item
  is ever lost), ``"interval"`` fsyncs at most every
  ``fsync_interval_s`` (bounded loss window), ``"off"`` leaves
  durability to the OS page cache.  :meth:`durable_position` tracks the
  last fsynced byte; :meth:`simulate_crash` (tests, chaos) truncates to
  exactly that horizon, the worst outcome a real power cut can produce.

Writes are unbuffered (``open(..., buffering=0)``): one ``write(2)``
per record, so a SIGKILL without power loss never loses an appended
record — only the fsync policy decides what a power cut can take.
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from pathlib import Path
from typing import Iterator, NamedTuple

import numpy as np

from repro.obs import NULL_REGISTRY
from repro.service.errors import WalCorruptionError, WalWriteError

__all__ = [
    "WAL_FSYNC_POLICIES",
    "WalPosition",
    "WriteAheadLog",
    "iter_records",
    "replay_into",
    "verify_wal",
    "inspect_wal",
    "checksum",
    "verify_checksum",
]

#: when the engine fsyncs the log: every append / at most every
#: ``fsync_interval_s`` / never (OS page cache only)
WAL_FSYNC_POLICIES = ("always", "interval", "off")

_SEG_MAGIC = b"SHEWAL01"
_SEG_HEADER_LEN = 16
_REC_MAGIC = b"\xf1\x57\xc0\xde"
_REC_HEADER = struct.Struct("<II")  # payload_len, crc32(payload)
_REC_HEADER_LEN = len(_REC_MAGIC) + _REC_HEADER.size
_SEG_GLOB = "wal-*.log"

# CRC32C (Castagnoli) when the optional accelerated module is present,
# plain zlib.crc32 otherwise.  The variant byte in every segment header
# (and in checkpoint manifests) records which function *wrote* the
# checksums, so a reader on a different machine picks the same one.
CRC_VARIANT_ZLIB = 0
CRC_VARIANT_CRC32C = 1
try:  # pragma: no cover - depends on the environment
    from crc32c import crc32c as _crc32c

    _DEFAULT_VARIANT = CRC_VARIANT_CRC32C
except ImportError:  # pragma: no cover
    _crc32c = None
    _DEFAULT_VARIANT = CRC_VARIANT_ZLIB


def _crc_fn(variant: int):
    if variant == CRC_VARIANT_ZLIB:
        return zlib.crc32
    if variant == CRC_VARIANT_CRC32C:
        if _crc32c is None:
            raise WalCorruptionError(
                "log was written with crc32c checksums but the crc32c "
                "module is not installed in this environment"
            )
        return _crc32c
    raise WalCorruptionError(f"unknown crc variant {variant}")


def checksum(data: bytes, variant: int | None = None) -> tuple[int, int]:
    """``(crc, variant)`` of ``data`` using the preferred local variant."""
    variant = _DEFAULT_VARIANT if variant is None else variant
    return _crc_fn(variant)(data) & 0xFFFFFFFF, variant


def verify_checksum(data: bytes, crc: int, variant: int) -> bool:
    """Does ``data`` hash to ``crc`` under ``variant``?"""
    return (_crc_fn(variant)(data) & 0xFFFFFFFF) == (crc & 0xFFFFFFFF)


class WalPosition(NamedTuple):
    """A byte position in the log: (segment seq, offset *after* a record).

    Tuple ordering is the log ordering — segment first, then offset —
    so positions compare correctly across rotations.
    """

    segment: int
    offset: int


def _segment_name(seq: int) -> str:
    return f"wal-{seq:08d}.log"


def _segment_seq(path: Path) -> int:
    return int(path.name[len("wal-"):-len(".log")])


def _list_segments(directory: Path) -> list[tuple[int, Path]]:
    out = []
    for p in directory.glob(_SEG_GLOB):
        stem = p.name[len("wal-"):-len(".log")]
        if stem.isdigit():
            out.append((int(stem), p))
    out.sort()
    return out


class _BadRecord(Exception):
    """Internal: a record failed to parse at ``offset`` (torn or rotten)."""

    def __init__(self, offset: int, reason: str):
        super().__init__(reason)
        self.offset = offset
        self.reason = reason


def _parse_record(buf: bytes, off: int, crc_fn) -> tuple[int, int, bytes]:
    """Parse one record at ``off``; returns (end_offset, side, key_bytes)."""
    if off + _REC_HEADER_LEN > len(buf):
        raise _BadRecord(off, "short record header")
    if buf[off:off + 4] != _REC_MAGIC:
        raise _BadRecord(off, "bad record magic")
    length, crc = _REC_HEADER.unpack_from(buf, off + 4)
    # payload = 1 side byte + whole uint64 keys
    if length < 1 or (length - 1) % 8:
        raise _BadRecord(off, f"implausible payload length {length}")
    end = off + _REC_HEADER_LEN + length
    if end > len(buf):
        raise _BadRecord(off, "record runs past end of segment")
    payload = buf[off + _REC_HEADER_LEN:end]
    if (crc_fn(payload) & 0xFFFFFFFF) != crc:
        raise _BadRecord(off, "payload checksum mismatch")
    return end, payload[0], payload[1:]


def _valid_record_after(buf: bytes, pos: int, crc_fn) -> bool:
    """Is there any fully valid record past ``pos``?  Distinguishes a
    torn tail (nothing valid follows — safe to truncate) from mid-log
    corruption (valid data follows — truncating would drop admitted
    items)."""
    search = pos + 1
    while True:
        i = buf.find(_REC_MAGIC, search)
        if i < 0:
            return False
        try:
            _parse_record(buf, i, crc_fn)
            return True
        except _BadRecord:
            search = i + 1


def _read_segment_header(buf: bytes, path: Path) -> int:
    """Validate the header; returns the crc variant byte."""
    if len(buf) < _SEG_HEADER_LEN or buf[:len(_SEG_MAGIC)] != _SEG_MAGIC:
        raise WalCorruptionError(f"{path}: bad or short segment header")
    return buf[len(_SEG_MAGIC)]


def _scan_segment(
    path: Path, *, final: bool, start_offset: int | None = None
) -> tuple[list[tuple[int, int, bytes]], int, str | None]:
    """Parse a segment's records from ``start_offset`` (header end when
    None).  Returns ``(records, end_of_valid_data, torn_reason)`` where
    each record is ``(end_offset, side, key_bytes)``.

    Only the *final* segment of a log may legally end mid-record (a
    torn append); anywhere else a parse failure is corruption and
    raises :class:`WalCorruptionError`.
    """
    buf = path.read_bytes()
    variant = _read_segment_header(buf, path)
    crc_fn = _crc_fn(variant)
    off = _SEG_HEADER_LEN if start_offset is None else start_offset
    if off > len(buf):
        raise WalCorruptionError(
            f"{path}: recorded position {off} is past the segment "
            f"end ({len(buf)} bytes) — the segment was truncated"
        )
    records: list[tuple[int, int, bytes]] = []
    while off < len(buf):
        try:
            end, side, key_bytes = _parse_record(buf, off, crc_fn)
        except _BadRecord as bad:
            if final and not _valid_record_after(buf, bad.offset, crc_fn):
                return records, off, bad.reason  # torn tail: drop it
            raise WalCorruptionError(
                f"{path}: corrupt record at byte {bad.offset} "
                f"({bad.reason}) with valid data after it — this is "
                "bit rot, not a torn write; refusing to replay past it"
            ) from None
        records.append((end, side, key_bytes))
        off = end
    return records, off, None


class WriteAheadLog:
    """Append-only durable log of admitted ingest batches.

    Args:
        directory: where segments live (created if missing).
        fsync: one of :data:`WAL_FSYNC_POLICIES`.
        fsync_interval_s: max staleness for the ``"interval"`` policy.
        segment_max_bytes: rotate to a new segment past this size.
        clock: injectable monotonic clock (tests pin it).
        registry: a :class:`repro.obs.Registry` for the ``engine_wal_*``
            metrics; None keeps them on no-op stand-ins.

    Opening an existing directory recovers the tail: the final segment
    is scanned and truncated at the first torn record.  Mid-log
    corruption in the final segment raises
    :class:`~repro.service.errors.WalCorruptionError` immediately;
    earlier segments are verified when they are read
    (:func:`iter_records` / :func:`verify_wal`).
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        fsync: str = "always",
        fsync_interval_s: float = 1.0,
        segment_max_bytes: int = 64 * 1024 * 1024,
        clock=time.monotonic,
        registry=None,
    ):
        if fsync not in WAL_FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {WAL_FSYNC_POLICIES}, got {fsync!r}"
            )
        if fsync_interval_s <= 0:
            raise ValueError(
                f"fsync_interval_s must be positive, got {fsync_interval_s}"
            )
        if segment_max_bytes < _SEG_HEADER_LEN + _REC_HEADER_LEN + 9:
            raise ValueError(
                f"segment_max_bytes {segment_max_bytes} cannot hold a record"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync_policy = fsync
        self.fsync_interval_s = float(fsync_interval_s)
        self.segment_max_bytes = int(segment_max_bytes)
        self._clock = clock
        self._variant = _DEFAULT_VARIANT
        self._crc = _crc_fn(self._variant)
        reg = registry if registry is not None else NULL_REGISTRY
        self._m_appends = reg.counter(
            "engine_wal_appends_total", "Batches appended to the WAL"
        )
        self._m_fsyncs = reg.counter(
            "engine_wal_fsyncs_total", "fsync calls issued by the WAL"
        )
        self._g_bytes = reg.gauge(
            "engine_wal_bytes", "Total bytes across live WAL segments"
        )
        self._g_lag = reg.gauge(
            "engine_wal_lag_items",
            "Appended items not yet covered by an fsync",
        )
        self.appends = 0
        self.fsyncs = 0
        self.torn_bytes_dropped = 0
        self.last_error: str | None = None
        self._pending_items = 0
        self._total_bytes = 0
        self._closed = False
        self._fh = None
        self._recover_tail()

    # -- open / tail recovery ------------------------------------------------

    def _segments(self) -> list[tuple[int, Path]]:
        return _list_segments(self.directory)

    def _recover_tail(self) -> None:
        for p in self.directory.glob("*.tmp"):  # torn segment creations
            p.unlink(missing_ok=True)
        segments = self._segments()
        if not segments:
            self._seg = 1
            self._offset = _SEG_HEADER_LEN
            self._create_segment(self._seg)
        else:
            self._seg, last = segments[-1]
            _records, valid_end, torn = _scan_segment(last, final=True)
            size = last.stat().st_size
            if valid_end < size:
                self.torn_bytes_dropped = size - valid_end
                with open(last, "rb+") as f:
                    f.truncate(valid_end)
                    f.flush()
                    os.fsync(f.fileno())
            self._offset = valid_end
            self._fh = open(last, "ab", buffering=0)
        # everything on disk at open is as durable as it will ever be
        self._durable = WalPosition(self._seg, self._offset)
        self._last_sync = self._clock()
        self._refresh_sizes()

    def _create_segment(self, seq: int) -> None:
        path = self.directory / _segment_name(seq)
        tmp = path.with_suffix(".log.tmp")
        header = _SEG_MAGIC + bytes([self._variant]) + b"\x00" * 7
        with open(tmp, "wb") as f:
            f.write(header)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)  # a segment either exists whole or not at all
        _fsync_dir(self.directory)
        self._fh = open(path, "ab", buffering=0)
        self._offset = _SEG_HEADER_LEN

    def _refresh_sizes(self) -> None:
        self._total_bytes = sum(p.stat().st_size for _s, p in self._segments())
        self._g_bytes.set(self._total_bytes)

    # -- write path ----------------------------------------------------------

    def append(self, side: int, keys: np.ndarray) -> WalPosition:
        """Append one admitted batch; returns the position after it.

        Raises :class:`~repro.service.errors.WalWriteError` (and records
        :attr:`last_error` for ``/healthz``) when the OS rejects the
        write or a policy-mandated fsync — the caller must treat the
        batch as not ingested.
        """
        if self._closed:
            raise WalWriteError("write-ahead log is closed")
        arr = np.ascontiguousarray(keys, dtype="<u8")
        payload = bytes([side]) + arr.tobytes()
        record = (
            _REC_MAGIC
            + _REC_HEADER.pack(len(payload), self._crc(payload) & 0xFFFFFFFF)
            + payload
        )
        if (
            self._offset + len(record) > self.segment_max_bytes
            and self._offset > _SEG_HEADER_LEN
        ):
            self._rotate()
        try:
            self._fh.write(record)
        except OSError as exc:
            self.last_error = f"append failed: {exc}"
            raise WalWriteError(
                f"WAL append of {arr.size} items failed: {exc}"
            ) from exc
        self._offset += len(record)
        self._total_bytes += len(record)
        self._pending_items += int(arr.size)
        self.appends += 1
        self._m_appends.inc()
        self._g_bytes.set(self._total_bytes)
        if self.fsync_policy == "always":
            self.sync()
        elif (
            self.fsync_policy == "interval"
            and self._clock() - self._last_sync >= self.fsync_interval_s
        ):
            self.sync()
        else:
            self._g_lag.set(self._pending_items)
        return self.position()

    def sync(self) -> None:
        """fsync the active segment and advance the durable horizon."""
        if self._closed or self._fh is None:
            return
        try:
            os.fsync(self._fh.fileno())
        except OSError as exc:
            self.last_error = f"fsync failed: {exc}"
            raise WalWriteError(f"WAL fsync failed: {exc}") from exc
        self.last_error = None
        self._durable = WalPosition(self._seg, self._offset)
        self._pending_items = 0
        self._last_sync = self._clock()
        self.fsyncs += 1
        self._m_fsyncs.inc()
        self._g_lag.set(0)

    def _rotate(self) -> None:
        # the old segment's tail must be durable before the log moves
        # on: a crash between rotation and the next sync would otherwise
        # leave a hole in the middle of the durable prefix
        if self.fsync_policy != "off":
            self.sync()
        self._fh.close()
        self._seg += 1
        self._create_segment(self._seg)
        if self.fsync_policy != "off":
            self._durable = WalPosition(self._seg, self._offset)

    # -- positions & lifecycle -----------------------------------------------

    def position(self) -> WalPosition:
        """Position after the last appended record."""
        return WalPosition(self._seg, self._offset)

    def durable_position(self) -> WalPosition:
        """Position after the last *fsynced* record — what a power cut
        cannot take away."""
        return self._durable

    @property
    def pending_items(self) -> int:
        """Appended items not yet covered by an fsync."""
        return self._pending_items

    @property
    def total_bytes(self) -> int:
        return self._total_bytes

    def segment_count(self) -> int:
        return len(self._segments())

    def close(self) -> None:
        """Final sync (best effort) and release the file handle."""
        if self._closed:
            return
        try:
            if self._fh is not None and self.fsync_policy != "off":
                self.sync()
        except WalWriteError:
            pass  # last_error already records it; close must not raise
        finally:
            self._closed = True
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    # -- maintenance ---------------------------------------------------------

    def prune_to(self, position: WalPosition) -> list[Path]:
        """Delete segments wholly before ``position`` (never the active
        one).  Called under checkpoint coordination: pass the *oldest*
        WAL position any retained checkpoint records, so every
        checkpoint an operator could still fall back to keeps its
        replay suffix."""
        deleted = []
        for seq, path in self._segments():
            if seq < position.segment and seq != self._seg:
                path.unlink()
                deleted.append(path)
        if deleted:
            _fsync_dir(self.directory)
            self._refresh_sizes()
        return deleted

    def truncate_to(self, position: WalPosition) -> None:
        """Discard everything after ``position`` (explicit data drop —
        used by ``recover_engine(replay_wal=False)`` so the log stays
        consistent with the engine state that was actually restored)."""
        segments = dict(self._segments())
        if position.segment not in segments:
            raise WalCorruptionError(
                f"cannot truncate to {position}: segment "
                f"{position.segment} is missing from {self.directory}"
            )
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        for seq, path in self._segments():
            if seq > position.segment:
                path.unlink()
        path = segments[position.segment]
        with open(path, "rb+") as f:
            f.truncate(position.offset)
            f.flush()
            os.fsync(f.fileno())
        _fsync_dir(self.directory)
        self._seg = position.segment
        self._offset = position.offset
        self._fh = open(path, "ab", buffering=0)
        self._durable = position
        self._pending_items = 0
        self._refresh_sizes()

    def simulate_crash(self) -> None:
        """Chaos hook: leave on disk exactly what a power cut at this
        instant guarantees — the fsynced prefix.  Un-synced appends are
        discarded (a real cut *may* keep some of them; keeping none is
        the worst legal outcome, which is what tests must survive)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        durable = self._durable
        for seq, path in self._segments():
            if seq > durable.segment:
                path.unlink()
            elif seq == durable.segment and path.stat().st_size > durable.offset:
                with open(path, "rb+") as f:
                    f.truncate(durable.offset)
        self._closed = True


def _fsync_dir(path: Path) -> None:
    """Best-effort directory-entry fsync (no-op where unsupported)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


# -- reading / replay --------------------------------------------------------


def iter_records(
    directory: str | Path, start: WalPosition | None = None
) -> Iterator[tuple[WalPosition, int, np.ndarray]]:
    """Yield ``(position_after, side, keys)`` for every record from
    ``start`` (the whole log when None), in order.

    A torn tail on the final segment ends iteration silently (those
    bytes were never durable).  Mid-log corruption — or a ``start``
    that points into pruned/missing segments — raises
    :class:`~repro.service.errors.WalCorruptionError`: replaying *past*
    a hole would silently ingest a stream the engine never admitted.
    """
    directory = Path(directory)
    segments = _list_segments(directory)
    if start is not None:
        kept = [(s, p) for s, p in segments if s >= start.segment]
        if not kept or kept[0][0] != start.segment:
            raise WalCorruptionError(
                f"WAL position {tuple(start)} points into segment "
                f"{_segment_name(start.segment)} which is missing from "
                f"{directory} — the log was pruned past the checkpoint"
            )
        segments = kept
    prev_seq = None
    for i, (seq, path) in enumerate(segments):
        if prev_seq is not None and seq != prev_seq + 1:
            raise WalCorruptionError(
                f"gap in WAL segments: {_segment_name(prev_seq)} is "
                f"followed by {_segment_name(seq)}"
            )
        prev_seq = seq
        offset = (
            start.offset if (start is not None and seq == start.segment)
            else None
        )
        records, _end, _torn = _scan_segment(
            path, final=(i == len(segments) - 1), start_offset=offset
        )
        for end, side, key_bytes in records:
            keys = np.frombuffer(key_bytes, dtype="<u8").astype(
                np.uint64, copy=True
            )
            yield WalPosition(seq, end), side, keys


#: replay feeds the engine batches of roughly this many items —
#: consecutive same-side records are coalesced up to the cap, so a log
#: written one small append at a time still replays through full-width
#: columnar flushes instead of thousands of tiny ones
REPLAY_COALESCE_ITEMS = 8192


def replay_into(engine, start: WalPosition | None = None) -> int:
    """Feed the WAL suffix from ``start`` through ``engine.ingest``.

    The engine's ``_wal_replaying`` flag suppresses re-appending (the
    records are already in the log) and re-running admission control
    (the items were admitted before the crash), so the replayed engine
    is bit-identical to one that never crashed.  Returns the number of
    items replayed.

    Records are already columnar on disk (one side byte, then the keys
    as little-endian ``uint64`` — the same key column the shm transport
    ships), so consecutive same-side records are concatenated into
    batches of up to :data:`REPLAY_COALESCE_ITEMS` before ingesting.
    This is exact: replay skips admission, and stamping consecutive
    arrivals assigns the same union-stream times whether they arrive
    as one batch or many.
    """
    wal = getattr(engine, "_wal", None)
    if wal is None:
        raise ValueError("engine has no write-ahead log to replay")
    two_stream = getattr(engine, "_two_stream", False)
    n = 0
    engine._wal_replaying = True
    pend: list[np.ndarray] = []
    pend_side = 0
    pend_n = 0

    def _drain() -> None:
        nonlocal pend, pend_n
        if not pend:
            return
        batch = pend[0] if len(pend) == 1 else np.concatenate(pend)
        engine.ingest(batch, side=pend_side if two_stream else None)
        pend = []
        pend_n = 0

    try:
        for _pos, side, keys in iter_records(wal.directory, start=start):
            if pend and side != pend_side:
                _drain()
            pend_side = side
            pend.append(keys)
            pend_n += int(keys.size)
            n += int(keys.size)
            if pend_n >= REPLAY_COALESCE_ITEMS:
                _drain()
        _drain()
    finally:
        engine._wal_replaying = False
    return n


def verify_wal(directory: str | Path) -> dict:
    """Walk every record of every segment; raises
    :class:`~repro.service.errors.WalCorruptionError` on any mid-log
    damage, returns a summary dict otherwise (a torn tail is reported,
    not raised — it is a legal crash artifact)."""
    directory = Path(directory)
    segments = _list_segments(directory)
    summary = {
        "directory": str(directory),
        "segments": len(segments),
        "records": 0,
        "items": 0,
        "bytes": 0,
        "torn_tail_bytes": 0,
    }
    prev_seq = None
    for i, (seq, path) in enumerate(segments):
        if prev_seq is not None and seq != prev_seq + 1:
            raise WalCorruptionError(
                f"gap in WAL segments: {_segment_name(prev_seq)} is "
                f"followed by {_segment_name(seq)}"
            )
        prev_seq = seq
        records, end, _torn = _scan_segment(path, final=(i == len(segments) - 1))
        size = path.stat().st_size
        summary["records"] += len(records)
        summary["items"] += sum(len(kb) // 8 for _e, _s, kb in records)
        summary["bytes"] += size
        summary["torn_tail_bytes"] += size - end
    return summary


def inspect_wal(directory: str | Path) -> dict:
    """Non-raising per-segment report for the ``wal inspect`` CLI."""
    directory = Path(directory)
    out = {"directory": str(directory), "segments": [], "ok": True}
    segments = _list_segments(directory)
    for i, (seq, path) in enumerate(segments):
        entry = {
            "segment": seq,
            "path": str(path),
            "bytes": path.stat().st_size,
            "status": "ok",
            "records": 0,
            "items": 0,
        }
        try:
            records, end, torn = _scan_segment(
                path, final=(i == len(segments) - 1)
            )
            entry["records"] = len(records)
            entry["items"] = sum(len(kb) // 8 for _e, _s, kb in records)
            if torn is not None:
                entry["status"] = "torn-tail"
                entry["torn_bytes"] = entry["bytes"] - end
                entry["torn_reason"] = torn
        except WalCorruptionError as exc:
            entry["status"] = "corrupt"
            entry["error"] = str(exc)
            out["ok"] = False
        out["segments"].append(entry)
    return out


def _position_to_json(position: WalPosition) -> list[int]:
    return [int(position.segment), int(position.offset)]


def _position_from_json(data) -> WalPosition:
    seg, off = data
    return WalPosition(int(seg), int(off))
