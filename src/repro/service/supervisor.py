"""Worker supervision: detect, restart, replay, or give up honestly.

A sharded engine's failure story has two halves.  The *mechanism* —
deadlines, typed errors, ``restart_worker`` — lives in the executors.
This module is the *policy*: :class:`Supervisor` watches worker
liveness, and when an RPC times out or a worker dies it rebuilds the
worker's shards from the newest complete checkpoint plus a bounded
in-memory :class:`ReplayBuffer` of every batch flushed since that
checkpoint.  Restart-from-base-plus-replay (rather than "resend the
failed batch") is forced by timeout ambiguity: a batch whose ack was
lost may already have applied, and resending it blind would
double-count; rebuilding from a durable base makes replay exact, so a
recovered shard is *bit-identical* to one that never failed (the chaos
tests assert this).

Retries follow :class:`RetryPolicy` — exponential backoff between
attempts and a per-worker circuit breaker (``max_restarts`` between
successful checkpoints).  When the breaker opens, the replay buffer
overflows, or the base checkpoint is unreadable, the worker's shards
are marked **down**: strict engine calls raise
:class:`ShardUnrecoverableError`, while ``strict=False`` queries keep
answering from the surviving shards with a coverage annotation (the
graceful-degradation posture of distributed sliding-window monitors —
Papapetrou et al., PAPERS.md).

The supervisor takes a checkpoint at attach time, so it always owns a
durable base covering everything the engine has flushed; thereafter
every successful checkpoint trims the replay buffer and resets the
breaker.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.common.validation import require_positive_int
from repro.obs import OBS_DISABLED
from repro.service.checkpoint import (
    latest_checkpoint,
    load_checkpoint_shard,
    read_manifest,
    save_checkpoint,
)
from repro.service.errors import (
    ShardError,
    ShardFailedError,
    ShardUnrecoverableError,
)
from repro.service.sharding import shard_ids as _shard_ids
from repro.service.wal import WalPosition, iter_records

__all__ = ["RetryPolicy", "ReplayBuffer", "Supervisor"]


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff and circuit-breaker knobs for worker restarts.

    Args:
        max_restarts: restart budget per worker between successful
            checkpoints; exhausting it opens the breaker and marks the
            worker's shards down.  ``0`` disables recovery outright
            (every failure degrades immediately).
        backoff_base_s: sleep before the first restart attempt.
        backoff_factor: multiplier per subsequent attempt.
        backoff_max_s: backoff ceiling.
    """

    max_restarts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0

    def backoff_s(self, attempt: int) -> float:
        """Sleep before restart ``attempt`` (0-based)."""
        return min(
            self.backoff_base_s * self.backoff_factor ** attempt,
            self.backoff_max_s,
        )


class ReplayBuffer:
    """Bounded log of flushed batches since the last durable base.

    Batches are recorded *before* they are sent (so a batch whose ack
    never arrives is still replayable) and kept until a checkpoint
    makes them durable.  The bound is in items; exceeding it sets
    ``overflowed`` and drops the log — recovery is then impossible
    until the next checkpoint resets the buffer, and restart attempts
    raise :class:`ShardUnrecoverableError`.
    """

    def __init__(self, limit_items: int = 1 << 22):
        self.limit_items = require_positive_int("limit_items", limit_items)
        self._batches: list[tuple[int, np.ndarray, np.ndarray, int | None]] = []
        self.items = 0
        self.overflowed = False

    def __len__(self) -> int:
        return len(self._batches)

    def record(self, batches) -> None:
        """Log ``(shard_id, keys, times, side)`` batches about to be sent."""
        if self.overflowed:
            return  # already unrecoverable; don't hoard memory
        for shard_id, keys, times, side in batches:
            self._batches.append((shard_id, keys, times, side))
            self.items += int(keys.size)
        if self.items > self.limit_items:
            self.overflowed = True
            self._batches.clear()
            self.items = 0

    def batches_for(self, shard_ids) -> list:
        """Recorded batches owned by ``shard_ids``, oldest first."""
        wanted = set(shard_ids)
        return [b for b in self._batches if b[0] in wanted]

    def reset(self) -> None:
        """A checkpoint made everything durable; start a fresh log."""
        self._batches.clear()
        self.items = 0
        self.overflowed = False


class Supervisor:
    """Monitors one engine's workers and rebuilds them after failures.

    Args:
        engine: the :class:`StreamEngine` to supervise; the supervisor
            attaches itself (``engine._supervisor``) so flush failures
            route here automatically.
        checkpoint_dir: where durable bases live.  An attach-time
            checkpoint is taken immediately, so the replay buffer's
            coverage starts exactly at a durable cut.
        policy: restart/backoff/breaker knobs.
        replay_limit_items: replay-buffer bound (items).
        sleep: injectable backoff sleeper (tests pin it to a recorder).

    Use :func:`repro.service.checkpoint.save_checkpoint` (or a
    ``Checkpointer``) as usual — completed checkpoints notify the
    supervisor, trimming the replay buffer and resetting the breaker.
    """

    def __init__(
        self,
        engine,
        checkpoint_dir: str | Path,
        *,
        policy: RetryPolicy | None = None,
        replay_limit_items: int = 1 << 22,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.engine = engine
        self.directory = Path(checkpoint_dir)
        self.policy = policy or RetryPolicy()
        self.replay = ReplayBuffer(replay_limit_items)
        self._sleep = sleep
        self._restarts: dict[int, int] = defaultdict(int)
        self._base_path: Path | None = None
        # WAL fallback: when the engine runs with a write-ahead log, the
        # base checkpoint's WAL position + clock let a worker replay
        # from *disk* after the in-memory buffer overflows — the replay
        # buffer effectively trims to the WAL's durable horizon
        self._base_wal: WalPosition | None = None
        self._base_clock: list[int] | None = None
        engine._supervisor = self
        # share the engine's obs bundle (no-op stand-ins when disabled):
        # replay-buffer exposure is the recovery-risk metric — how much
        # stream is one worker death away from needing a replay
        self.obs = getattr(engine, "obs", None) or OBS_DISABLED
        reg = self.obs.registry
        self._g_replay_batches = reg.gauge(
            "supervisor_replay_batches", "Batches logged since the base checkpoint"
        )
        self._g_replay_items = reg.gauge(
            "supervisor_replay_items", "Items logged since the base checkpoint"
        )
        self._g_replay_overflowed = reg.gauge(
            "supervisor_replay_overflowed",
            "1 when the replay log overflowed (recovery impossible until "
            "the next checkpoint)",
        )
        # establish the durable base this buffer is relative to
        save_checkpoint(engine, self.directory)
        if self._base_path is None:  # pragma: no cover - hook always fires
            self._base_path = latest_checkpoint(self.directory)

    # -- engine hooks --------------------------------------------------------

    def record_sent(self, batches) -> None:
        """Called by the engine just before batches go to the executor."""
        self.replay.record(batches)
        self._update_replay_gauges()

    def on_checkpoint(self, path: Path) -> None:
        """Called after a checkpoint publishes: new base, fresh budget."""
        self._base_path = Path(path)
        self._base_wal = None
        self._base_clock = None
        try:
            meta = read_manifest(self._base_path)
            wal_meta = meta.get("wal")
            if wal_meta is not None:
                self._base_wal = WalPosition(
                    *(int(x) for x in wal_meta["position"])
                )
                self._base_clock = [int(t) for t in meta["clock"]]
        except Exception:
            pass  # no WAL fallback from this base; replay buffer only
        self.replay.reset()
        self._restarts.clear()
        self._update_replay_gauges()

    def _update_replay_gauges(self) -> None:
        self._g_replay_batches.set(len(self.replay))
        self._g_replay_items.set(self.replay.items)
        self._g_replay_overflowed.set(1 if self.replay.overflowed else 0)

    # -- failure handling ----------------------------------------------------

    def restarts(self, worker_id: int) -> int:
        """Restarts spent on this worker since the last checkpoint."""
        return self._restarts[worker_id]

    def handle_failure(self, err: ShardError) -> bool:
        """Recover every worker implicated by ``err``.

        Returns True only if *all* of them came back (their replayed
        state now includes the batches the failed round covered).
        Worker-reported data errors (:class:`ShardFailedError`) are the
        caller's bug, not a process failure — never restarted.
        """
        if isinstance(err, ShardFailedError):
            return False
        executor = self.engine._exec
        workers = set(err.worker_ids)
        if not workers:
            workers = {executor.worker_of(s) for s in err.shard_ids}
        if not workers:  # unattributed: assume the worst
            workers = set(range(executor.num_workers))
        ok = True
        for w in sorted(workers):
            ok &= self.recover_worker(w)
        return ok

    def recover_worker(self, worker_id: int) -> bool:
        """Restart one worker from checkpoint + replay, with backoff.

        Returns True on success (shards un-marked down, state
        bit-identical to an unfailed worker at the same stream point);
        False once the circuit breaker opens or the shards are
        unrecoverable (they are then marked down for degraded queries).
        """
        with self.obs.tracer.span("supervisor.recover", worker=worker_id) as sp:
            ok = self._recover_worker(worker_id)
            sp.tag(outcome="recovered" if ok else "down")
            return ok

    def _recover_worker(self, worker_id: int) -> bool:
        engine, executor = self.engine, self.engine._exec
        shard_ids = tuple(executor.shards_of(worker_id))
        while True:
            attempt = self._restarts[worker_id]
            if attempt >= self.policy.max_restarts:
                engine._down.update(shard_ids)
                return False
            self._sleep(self.policy.backoff_s(attempt))
            self._restarts[worker_id] = attempt + 1
            try:
                base = self._base_shards(worker_id, shard_ids)
                executor.restart_worker(worker_id, base)
                self._replay_worker(worker_id, shard_ids)
                executor.ping(worker_id)
            except ShardUnrecoverableError:
                engine._down.update(shard_ids)
                return False
            except ShardError:
                continue  # worker died again mid-recovery; next attempt
            engine.stats.record_restart()
            engine._down.difference_update(shard_ids)
            return True

    def _wal_fallback_ready(self) -> bool:
        """Can a worker be replayed from the engine's WAL instead of
        the in-memory buffer?  Needs a live log and a base checkpoint
        that recorded its WAL position and clock."""
        return (
            getattr(self.engine, "_wal", None) is not None
            and self._base_wal is not None
            and self._base_clock is not None
        )

    def _base_shards(self, worker_id: int, shard_ids) -> dict:
        """Load the worker's shards from the base checkpoint."""
        if self.replay.overflowed and not self._wal_fallback_ready():
            raise ShardUnrecoverableError(
                f"replay buffer overflowed its {self.replay.limit_items}-item "
                "bound; batches since the last checkpoint are gone",
                shard_ids=shard_ids, worker_ids=(worker_id,),
            )
        path = self._base_path
        if path is None or not path.is_dir():
            raise ShardUnrecoverableError(
                f"base checkpoint {path} is missing",
                shard_ids=shard_ids, worker_ids=(worker_id,),
            )
        try:
            return {s: load_checkpoint_shard(path, s) for s in shard_ids}
        except ShardUnrecoverableError:
            raise
        except Exception as exc:
            raise ShardUnrecoverableError(
                f"base checkpoint {path} is unreadable ({exc}); worker "
                f"{worker_id} cannot be rebuilt",
                shard_ids=shard_ids, worker_ids=(worker_id,),
            ) from exc

    def _replay_worker(self, worker_id: int, shard_ids) -> None:
        """Re-apply every logged batch owned by the restarted worker."""
        if self.replay.overflowed:
            self._replay_worker_from_wal(worker_id, shard_ids)
            return
        engine, executor = self.engine, self.engine._exec
        n_items = n_batches = 0
        for shard_id, keys, times, side in self.replay.batches_for(shard_ids):
            executor.flush(shard_id, keys, times, side)
            n_batches += 1
            n_items += int(keys.size)
        engine.stats.record_replay(n_items, n_batches)

    def _replay_worker_from_wal(self, worker_id: int, shards) -> None:
        """Rebuild a worker's flushed suffix from the engine's WAL.

        The in-memory log is gone (overflowed), but the WAL holds every
        admitted batch since the base checkpoint.  Walking it from the
        base position while re-deriving union-stream times from the
        base clock reproduces exactly the (keys, times) the engine
        stamped — the same math :meth:`StreamEngine.ingest` ran.  Items
        still sitting in the engine's buffers are the contiguous
        *un-flushed* suffix per (shard, side); replay stops short of
        each buffer's front time so they are not applied twice (the
        normal flush path will deliver them).
        """
        engine, executor = self.engine, self.engine._exec
        cfg = engine.config
        sides = (0, 1) if engine._two_stream else (0,)
        wanted = set(shards)
        cutoff: dict[tuple[int, int], int] = {}
        for s in wanted:
            for side in sides:
                buf = engine._buffers.get((s, side))
                front = buf.front_time() if buf is not None else None
                cutoff[s, side] = engine._t[side] if front is None else front
        t = list(self._base_clock)
        n_items = n_batches = 0
        for _pos, side, keys in iter_records(
            engine._wal.directory, start=self._base_wal
        ):
            times = t[side] + np.arange(keys.size, dtype=np.int64)
            t[side] += int(keys.size)
            owners = _shard_ids(keys, cfg.num_shards, cfg.shard_seed)
            for s in wanted:
                mask = owners == s
                if not mask.any():
                    continue
                keep = times[mask] < cutoff[s, side]
                if not keep.any():
                    continue
                executor.flush(
                    s,
                    keys[mask][keep],
                    times[mask][keep],
                    side if engine._two_stream else None,
                )
                n_batches += 1
                n_items += int(np.count_nonzero(keep))
        engine.stats.record_replay(n_items, n_batches)

    # -- liveness ------------------------------------------------------------

    def check(self) -> dict[int, bool]:
        """Heartbeat every worker; recover the dead ones.

        Returns worker id -> healthy-after-check.  A worker that fails
        ``is_alive``/ping is put through :meth:`recover_worker`; the
        mapping then reflects whether recovery succeeded.
        """
        executor = self.engine._exec
        result: dict[int, bool] = {}
        for w in range(executor.num_workers):
            healthy = executor.is_worker_alive(w)
            if healthy:
                try:
                    executor.ping(w)
                except ShardError:
                    healthy = False
            if healthy:
                result[w] = True
                continue
            self.engine.stats.record_worker_death()
            result[w] = self.recover_worker(w)
        return result

    def reset_breaker(self) -> None:
        """Manually refill every worker's restart budget."""
        self._restarts.clear()

    def recover_down(self) -> bool:
        """Retry recovery for every currently-down shard's worker."""
        executor = self.engine._exec
        workers = sorted({executor.worker_of(s) for s in self.engine._down})
        ok = True
        for w in workers:
            ok &= self.recover_worker(w)
        return ok

    def snapshot(self) -> dict:
        """Supervision counters for dashboards."""
        out = {
            "replay_buffer_batches": len(self.replay),
            "replay_buffer_items": self.replay.items,
            "replay_buffer_overflowed": self.replay.overflowed,
            "restarts_since_checkpoint": dict(self._restarts),
            "base_checkpoint": str(self._base_path),
            "down_shards": sorted(self.engine._down),
            "wal_fallback_available": self._wal_fallback_ready(),
        }
        # overload context: a down shard under admission control keeps
        # at most the retention cap buffered, and anything it shed
        # before recovery is gone for good — dashboards correlating
        # replay size with recovery prospects need both numbers
        if self.engine.config.bounded:
            out["items_shed_per_shard"] = list(self.engine._shed_counts)
            out["overload_policy"] = self.engine.config.overload_policy
        return out
