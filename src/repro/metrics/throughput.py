"""Insertion-throughput measurement (§7.4's Mips metric).

The paper reports million insertions per second.  Python absolute
numbers are of course far below the C++/FPGA ones; what Figs. 10-11
actually establish is the *relative* ordering — SHE close to the
fixed-window original, timestamp/queue baselines behind — which
survives the substrate change because all algorithms here share the
same NumPy/loop cost model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.common.validation import require_positive_int

__all__ = ["ThroughputResult", "measure_throughput"]


@dataclass(frozen=True)
class ThroughputResult:
    """Throughput of one structure over one stream."""

    name: str
    items: int
    seconds: float

    @property
    def mips(self) -> float:
        """Million insertions per second."""
        if self.seconds <= 0:
            return float("inf")
        return self.items / self.seconds / 1e6


def measure_throughput(
    sketch,
    stream: np.ndarray,
    *,
    name: str | None = None,
    chunk: int = 8192,
    warmup: int = 0,
    side: int | None = None,
) -> ThroughputResult:
    """Time ``insert_many`` over ``stream`` in ``chunk``-sized batches.

    Args:
        sketch: anything with ``insert_many(keys)`` (or
            ``insert_many(side, keys)`` when ``side`` is given).
        stream: keys to insert.
        name: label for the result (defaults to the class name).
        chunk: batch size per call — large enough to amortise Python
            overhead, small enough to exercise cleaning interleave.
        warmup: items fed (untimed) before measurement so the structure
            reaches steady state, as §7.1 prescribes.
        side: for two-stream sketches, which stream to feed.
    """
    require_positive_int("chunk", chunk)
    label = name if name is not None else type(sketch).__name__

    def feed(keys: np.ndarray) -> None:
        if side is None:
            sketch.insert_many(keys)
        else:
            sketch.insert_many(side, keys)

    if warmup > 0:
        for lo in range(0, min(warmup, stream.size), chunk):
            feed(stream[lo : lo + chunk])
        stream = stream[warmup:]

    start = time.perf_counter()
    for lo in range(0, stream.size, chunk):
        feed(stream[lo : lo + chunk])
    elapsed = time.perf_counter() - start
    return ThroughputResult(label, int(stream.size), elapsed)
