"""Evaluation metrics: FPR / RE / ARE and insertion throughput."""

from repro.metrics.accuracy import (
    average_relative_error,
    false_positive_rate,
    relative_error,
)
from repro.metrics.throughput import ThroughputResult, measure_throughput

__all__ = [
    "average_relative_error",
    "false_positive_rate",
    "relative_error",
    "ThroughputResult",
    "measure_throughput",
]
