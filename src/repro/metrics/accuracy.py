"""Accuracy metrics from §7.1: FPR, RE and ARE."""

from __future__ import annotations

import numpy as np

__all__ = ["false_positive_rate", "relative_error", "average_relative_error"]


def false_positive_rate(predicted: np.ndarray, truth: np.ndarray) -> float:
    """FPR = false positives / true negatives queried.

    Args:
        predicted: boolean membership answers.
        truth: boolean ground truth for the same queries.
    """
    predicted = np.asarray(predicted, dtype=bool)
    truth = np.asarray(truth, dtype=bool)
    if predicted.shape != truth.shape:
        raise ValueError(
            f"shape mismatch: predicted {predicted.shape} vs truth {truth.shape}"
        )
    negatives = ~truth
    n = int(np.count_nonzero(negatives))
    if n == 0:
        return 0.0
    return float(np.count_nonzero(predicted & negatives)) / n


def relative_error(estimate: float, truth: float) -> float:
    """RE = |f - f_hat| / f.  Zero truth with zero estimate counts as 0."""
    if truth == 0:
        return 0.0 if estimate == 0 else float("inf")
    return abs(estimate - truth) / abs(truth)


def average_relative_error(estimates: np.ndarray, truths: np.ndarray) -> float:
    """ARE = mean over items of |f_i - f_hat_i| / f_i (truths must be > 0)."""
    estimates = np.asarray(estimates, dtype=np.float64)
    truths = np.asarray(truths, dtype=np.float64)
    if estimates.shape != truths.shape:
        raise ValueError(
            f"shape mismatch: estimates {estimates.shape} vs truths {truths.shape}"
        )
    if np.any(truths <= 0):
        raise ValueError("ARE needs strictly positive true frequencies")
    return float(np.mean(np.abs(estimates - truths) / truths))
