"""The original fixed-window Bitmap / linear counter (§2.1, Whang 1990).

Cardinality is estimated from the zero-bit fraction by maximum
likelihood: ``C_hat = -n * ln(u / n)`` with ``u`` zero bits among ``n``.
"""

from __future__ import annotations

import numpy as np

from repro.common.hashing import HashFamily
from repro.common.validation import as_key_array, require_positive_int

__all__ = ["Bitmap"]


class Bitmap:
    """Plain n-bit probabilistic counting bitmap."""

    def __init__(self, num_bits: int, *, seed: int = 12):
        self.num_bits = require_positive_int("num_bits", num_bits)
        self.hashes = HashFamily(1, seed=seed)
        self.bits = np.zeros(self.num_bits, dtype=np.uint8)

    def insert(self, key: int) -> None:
        """Set the single hashed bit for ``key``."""
        self.insert_many(np.asarray([key], dtype=np.uint64))

    def insert_many(self, keys) -> None:
        """Vectorised batch insert."""
        keys = as_key_array(keys)
        if keys.size == 0:
            return
        idx = self.hashes.indices(keys, self.num_bits)[:, 0]
        self.bits[idx] = 1

    def cardinality(self) -> float:
        """MLE cardinality estimate ``-n * ln(u/n)``."""
        zeros = self.num_bits - int(np.count_nonzero(self.bits))
        if zeros == 0:
            zeros = 0.5  # saturated array: report the max resolvable value
        return -float(self.num_bits) * float(np.log(zeros / self.num_bits))

    @property
    def memory_bytes(self) -> int:
        return (self.num_bits + 7) // 8

    def reset(self) -> None:
        self.bits.fill(0)
