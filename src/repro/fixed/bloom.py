"""The original fixed-window Bloom filter (§2.1, Bloom 1970).

Used two ways in the reproduction: as the CSM source algorithm SHE-BF
lifts, and — wrapped by :class:`repro.fixed.ideal.IdealMembership` — as
the paper's "ideal goal" (a fresh filter rebuilt from the exact window
contents at query time).
"""

from __future__ import annotations

import numpy as np

from repro.common.hashing import HashFamily
from repro.common.validation import as_key_array, require_positive_int

__all__ = ["BloomFilter"]


class BloomFilter:
    """Plain k-hash Bloom filter over an n-bit array."""

    def __init__(self, num_bits: int, num_hashes: int = 8, *, seed: int = 11):
        self.num_bits = require_positive_int("num_bits", num_bits)
        self.num_hashes = require_positive_int("num_hashes", num_hashes)
        self.hashes = HashFamily(self.num_hashes, seed=seed)
        self.bits = np.zeros(self.num_bits, dtype=np.uint8)

    def insert(self, key: int) -> None:
        """Set the k hashed bits for ``key``."""
        self.insert_many(np.asarray([key], dtype=np.uint64))

    def insert_many(self, keys) -> None:
        """Vectorised batch insert."""
        keys = as_key_array(keys)
        if keys.size == 0:
            return
        idx = self.hashes.indices(keys, self.num_bits)
        self.bits[idx.reshape(-1)] = 1

    def contains(self, key: int) -> bool:
        """True iff all k hashed bits are set (one-sided error)."""
        return bool(self.contains_many(np.asarray([key], dtype=np.uint64))[0])

    def contains_many(self, keys) -> np.ndarray:
        """Vectorised membership test."""
        keys = as_key_array(keys)
        idx = self.hashes.indices(keys, self.num_bits)
        return np.all(self.bits[idx.reshape(-1)].reshape(idx.shape) != 0, axis=1)

    @property
    def memory_bytes(self) -> int:
        return (self.num_bits + 7) // 8

    def reset(self) -> None:
        self.bits.fill(0)
