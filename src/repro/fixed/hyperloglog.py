"""The original fixed-window HyperLogLog (§2.1, Flajolet et al. 2007).

m 5-bit registers; register ``Hc(x) % m`` keeps the maximum rank
(leading-zero count of ``Hz(x)`` + 1).  The estimator is the harmonic
mean ``alpha_m * m^2 / sum(2^-reg)`` with the standard small-range
(linear counting) correction.
"""

from __future__ import annotations

import numpy as np

from repro.common.hashing import HashFamily, leading_zeros_32
from repro.common.validation import as_key_array, require_positive_int
from repro.core.she_hll import hll_alpha

__all__ = ["HyperLogLog"]


class HyperLogLog:
    """Plain HyperLogLog cardinality estimator."""

    def __init__(self, num_registers: int, *, seed: int = 13):
        self.num_registers = require_positive_int("num_registers", num_registers)
        fam = HashFamily(2, seed=seed)
        self._select = HashFamily(1, seed=int(fam.seeds[0]))
        self._value = HashFamily(1, seed=int(fam.seeds[1]))
        self.registers = np.zeros(self.num_registers, dtype=np.uint8)

    def insert(self, key: int) -> None:
        """Max-merge the rank of ``key`` into its register."""
        self.insert_many(np.asarray([key], dtype=np.uint64))

    def insert_many(self, keys) -> None:
        """Vectorised batch insert."""
        keys = as_key_array(keys)
        if keys.size == 0:
            return
        idx = self._select.indices(keys, self.num_registers)[:, 0]
        ranks = np.minimum(leading_zeros_32(self._value.values(keys)[:, 0]) + 1, 31)
        np.maximum.at(self.registers, idx, ranks.astype(np.uint8))

    def cardinality(self) -> float:
        """Harmonic-mean estimate with linear-counting correction."""
        m = self.num_registers
        z = float(np.sum(np.exp2(-self.registers.astype(np.float64))))
        est = hll_alpha(m) * m * m / z
        if est <= 2.5 * m:
            zeros = int(np.count_nonzero(self.registers == 0))
            if zeros > 0:
                est = m * float(np.log(m / zeros))
        return est

    @property
    def memory_bytes(self) -> int:
        return (self.num_registers * 5 + 7) // 8

    def reset(self) -> None:
        self.registers.fill(0)
