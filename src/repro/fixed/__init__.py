"""Original fixed-window sketches + the paper's "ideal goal" wrappers."""

from repro.fixed.bitmap import Bitmap
from repro.fixed.bloom import BloomFilter
from repro.fixed.countmin import CountMinSketch
from repro.fixed.hyperloglog import HyperLogLog
from repro.fixed.ideal import (
    IdealCardinalityBitmap,
    IdealCardinalityHLL,
    IdealFrequency,
    IdealMembership,
    IdealSimilarity,
)
from repro.fixed.minhash import MinHash

__all__ = [
    "Bitmap",
    "BloomFilter",
    "CountMinSketch",
    "HyperLogLog",
    "MinHash",
    "IdealMembership",
    "IdealCardinalityBitmap",
    "IdealCardinalityHLL",
    "IdealFrequency",
    "IdealSimilarity",
]
