"""The original fixed-window MinHash (§2.1, Broder 1997).

The M-hash-function variant the paper lifts: for each of M hash
functions keep the minimum hash value seen per stream; the similarity
estimate is the fraction of positions where the two streams' minima
coincide.
"""

from __future__ import annotations

import numpy as np

from repro.common.hashing import splitmix64
from repro.common.validation import as_key_array, require_positive_int

__all__ = ["MinHash"]

_HASH_BITS = 24
_EMPTY = (1 << _HASH_BITS) - 1


class MinHash:
    """Plain two-stream MinHash similarity estimator."""

    def __init__(self, num_hashes: int, *, seed: int = 15):
        self.num_hashes = require_positive_int("num_hashes", num_hashes)
        cols = np.arange(self.num_hashes, dtype=np.uint64)
        self._col_seeds = splitmix64(
            cols * np.uint64(0x9E3779B97F4A7C15) + np.uint64(seed)
        )
        self.minima = np.full((2, self.num_hashes), _EMPTY, dtype=np.uint32)

    def _column_hashes(self, keys: np.ndarray) -> np.ndarray:
        return (
            splitmix64(keys[:, None] ^ self._col_seeds[None, :])
            & np.uint64(_EMPTY)
        ).astype(np.uint32)

    def insert(self, side: int, key: int) -> None:
        """Min-merge one item of stream ``side`` into all M positions."""
        self.insert_many(side, np.asarray([key], dtype=np.uint64))

    def insert_many(self, side: int, keys) -> None:
        """Vectorised batch insert for one stream."""
        if side not in (0, 1):
            raise ValueError(f"side must be 0 or 1, got {side}")
        keys = as_key_array(keys)
        if keys.size == 0:
            return
        vals = self._column_hashes(keys).min(axis=0)
        np.minimum(self.minima[side], vals, out=self.minima[side])

    def similarity(self) -> float:
        """Fraction of matching minima — the Jaccard estimate."""
        return float(np.count_nonzero(self.minima[0] == self.minima[1])) / self.num_hashes

    @property
    def memory_bytes(self) -> int:
        return (2 * self.num_hashes * _HASH_BITS + 7) // 8

    def reset(self) -> None:
        self.minima.fill(_EMPTY)
