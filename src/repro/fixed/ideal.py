"""The paper's "ideal goal": fixed-window sketches replayed on the window.

§7.3: *"The ideal goal for each measurement task is the accuracy
achieved if we treat the sliding window task as a fixed window task.
For example, we insert all items in the sliding window to an empty
Bloom filter, and calculate the membership accuracy by it."*

Each wrapper keeps an exact window (oracle memory is *not* charged — the
ideal is an accuracy target, not a feasible competitor), and on every
query replays the current window contents through a fresh fixed-window
sketch sized to the compared memory budget.
"""

from __future__ import annotations

import numpy as np

from repro.common.validation import require_positive_int
from repro.exact.window import ExactWindow
from repro.fixed.bitmap import Bitmap
from repro.fixed.bloom import BloomFilter
from repro.fixed.countmin import CountMinSketch
from repro.fixed.hyperloglog import HyperLogLog
from repro.fixed.minhash import MinHash

__all__ = [
    "IdealMembership",
    "IdealCardinalityBitmap",
    "IdealCardinalityHLL",
    "IdealFrequency",
    "IdealSimilarity",
]


class _IdealBase:
    """Window tracking + replay plumbing shared by the ideal wrappers."""

    def __init__(self, window: int):
        self.window = require_positive_int("window", window)
        self.oracle = ExactWindow(window)

    def insert(self, key: int) -> None:
        self.oracle.insert(key)

    def insert_many(self, keys) -> None:
        self.oracle.insert_many(keys)

    def reset(self) -> None:
        self.oracle.reset()


class IdealMembership(_IdealBase):
    """Fresh Bloom filter rebuilt from the exact window at query time."""

    def __init__(self, window: int, num_bits: int, num_hashes: int = 8, *, seed: int = 21):
        super().__init__(window)
        self.num_bits = require_positive_int("num_bits", num_bits)
        self.num_hashes = num_hashes
        self.seed = seed

    def _rebuild(self) -> BloomFilter:
        bf = BloomFilter(self.num_bits, self.num_hashes, seed=self.seed)
        bf.insert_many(self.oracle.distinct_keys())
        return bf

    def contains(self, key: int) -> bool:
        return self._rebuild().contains(key)

    def contains_many(self, keys) -> np.ndarray:
        return self._rebuild().contains_many(keys)

    @property
    def memory_bytes(self) -> int:
        return (self.num_bits + 7) // 8


class IdealCardinalityBitmap(_IdealBase):
    """Fresh bitmap rebuilt from the exact window at query time."""

    def __init__(self, window: int, num_bits: int, *, seed: int = 22):
        super().__init__(window)
        self.num_bits = require_positive_int("num_bits", num_bits)
        self.seed = seed

    def cardinality(self) -> float:
        bm = Bitmap(self.num_bits, seed=self.seed)
        bm.insert_many(self.oracle.distinct_keys())
        return bm.cardinality()

    @property
    def memory_bytes(self) -> int:
        return (self.num_bits + 7) // 8


class IdealCardinalityHLL(_IdealBase):
    """Fresh HyperLogLog rebuilt from the exact window at query time."""

    def __init__(self, window: int, num_registers: int, *, seed: int = 23):
        super().__init__(window)
        self.num_registers = require_positive_int("num_registers", num_registers)
        self.seed = seed

    def cardinality(self) -> float:
        hll = HyperLogLog(self.num_registers, seed=self.seed)
        hll.insert_many(self.oracle.distinct_keys())
        return hll.cardinality()

    @property
    def memory_bytes(self) -> int:
        return (self.num_registers * 5 + 7) // 8


class IdealFrequency(_IdealBase):
    """Fresh Count-Min rebuilt from the exact window at query time."""

    def __init__(self, window: int, num_counters: int, num_hashes: int = 8, *, seed: int = 24):
        super().__init__(window)
        self.num_counters = require_positive_int("num_counters", num_counters)
        self.num_hashes = num_hashes
        self.seed = seed

    def _rebuild(self) -> CountMinSketch:
        cm = CountMinSketch(self.num_counters, self.num_hashes, seed=self.seed)
        cm.insert_many(self.oracle.items())
        return cm

    def frequency(self, key: int) -> int:
        return self._rebuild().frequency(key)

    def frequency_many(self, keys) -> np.ndarray:
        return self._rebuild().frequency_many(keys)

    @property
    def memory_bytes(self) -> int:
        return self.num_counters * 4


class IdealSimilarity:
    """Fresh MinHash rebuilt from two exact windows at query time."""

    def __init__(self, window: int, num_hashes: int, *, seed: int = 25):
        self.window = require_positive_int("window", window)
        self.num_hashes = require_positive_int("num_hashes", num_hashes)
        self.seed = seed
        self.sides = (ExactWindow(window), ExactWindow(window))

    def insert(self, side: int, key: int) -> None:
        self.sides[side].insert(key)

    def insert_many(self, side: int, keys) -> None:
        self.sides[side].insert_many(keys)

    def similarity(self) -> float:
        mh = MinHash(self.num_hashes, seed=self.seed)
        mh.insert_many(0, self.sides[0].distinct_keys())
        mh.insert_many(1, self.sides[1].distinct_keys())
        return mh.similarity()

    @property
    def memory_bytes(self) -> int:
        return (2 * self.num_hashes * 24 + 7) // 8

    def reset(self) -> None:
        for s in self.sides:
            s.reset()
