"""The original fixed-window Count-Min sketch (§2.1, Cormode 2005).

Following the paper's CSM description (Fig. 2), this is the single-array
variant: one array of n counters, k hash functions into it, query =
minimum over the k mapped counters.  It never underestimates.
"""

from __future__ import annotations

import numpy as np

from repro.common.hashing import HashFamily
from repro.common.validation import as_key_array, require_positive_int

__all__ = ["CountMinSketch"]


class CountMinSketch:
    """Plain single-array Count-Min frequency estimator."""

    def __init__(self, num_counters: int, num_hashes: int = 8, *, seed: int = 14):
        self.num_counters = require_positive_int("num_counters", num_counters)
        self.num_hashes = require_positive_int("num_hashes", num_hashes)
        self.hashes = HashFamily(self.num_hashes, seed=seed)
        self.counters = np.zeros(self.num_counters, dtype=np.uint32)

    def insert(self, key: int) -> None:
        """Increment the k mapped counters."""
        self.insert_many(np.asarray([key], dtype=np.uint64))

    def insert_many(self, keys) -> None:
        """Vectorised batch insert (duplicate indices accumulate)."""
        keys = as_key_array(keys)
        if keys.size == 0:
            return
        idx = self.hashes.indices(keys, self.num_counters)
        np.add.at(self.counters, idx.reshape(-1), 1)

    def frequency(self, key: int) -> int:
        """Min over the k mapped counters (never underestimates)."""
        return int(self.frequency_many(np.asarray([key], dtype=np.uint64))[0])

    def frequency_many(self, keys) -> np.ndarray:
        """Vectorised frequency estimates."""
        keys = as_key_array(keys)
        idx = self.hashes.indices(keys, self.num_counters)
        return np.min(self.counters[idx.reshape(-1)].reshape(idx.shape), axis=1)

    @property
    def memory_bytes(self) -> int:
        return self.num_counters * 4

    def reset(self) -> None:
        self.counters.fill(0)
