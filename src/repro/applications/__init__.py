"""Applied structures over the SHE sketches (the intro's use cases).

Submodules — :mod:`~repro.applications.anomaly` (cardinality anomaly
detection), :mod:`~repro.applications.heavy_hitters` (threshold-τ heavy
hitters), and the :mod:`~repro.applications.drift` package (streaming
drift detection service) — are imported lazily: ``import
repro.applications`` stays cheap, and each symbol pulls in only the
module that defines it on first attribute access.
"""

from typing import TYPE_CHECKING

# public name -> defining submodule (PEP 562 lazy surface)
_EXPORTS = {
    "AnomalyEvent": "repro.applications.anomaly",
    "CardinalityAnomalyDetector": "repro.applications.anomaly",
    "HeavyHitters": "repro.applications.heavy_hitters",
    "DriftState": "repro.applications.drift",
    "DriftEvent": "repro.applications.drift",
    "DriftDetector": "repro.applications.drift",
    "CompositeDriftDetector": "repro.applications.drift",
    "DriftMonitor": "repro.applications.drift",
    "JaccardDistance": "repro.applications.drift",
    "CardinalityShiftDistance": "repro.applications.drift",
    "FrequencyProfileDivergence": "repro.applications.drift",
    "MultiResolutionBank": "repro.applications.drift",
    "ReferenceWindow": "repro.applications.drift",
    "make_estimator": "repro.applications.drift",
}

__all__ = sorted(_EXPORTS)

if TYPE_CHECKING:  # static analyzers see the eager imports
    from repro.applications.anomaly import (  # noqa: F401
        AnomalyEvent,
        CardinalityAnomalyDetector,
    )
    from repro.applications.drift import (  # noqa: F401
        CardinalityShiftDistance,
        CompositeDriftDetector,
        DriftDetector,
        DriftEvent,
        DriftMonitor,
        DriftState,
        FrequencyProfileDivergence,
        JaccardDistance,
        MultiResolutionBank,
        ReferenceWindow,
        make_estimator,
    )
    from repro.applications.heavy_hitters import HeavyHitters  # noqa: F401


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: __getattr__ runs once per name
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
