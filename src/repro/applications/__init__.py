"""Applied structures over the SHE sketches (the intro's use cases)."""

from repro.applications.anomaly import AnomalyEvent, CardinalityAnomalyDetector
from repro.applications.heavy_hitters import HeavyHitters

__all__ = ["AnomalyEvent", "CardinalityAnomalyDetector", "HeavyHitters"]
