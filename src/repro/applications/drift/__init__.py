"""Streaming drift detection on SHE window-vs-window distances.

Layers (each usable alone):

* :mod:`~repro.applications.drift.distances` — window-vs-window
  distance estimators (Jaccard / cardinality shift / frequency-profile
  divergence) with trailing, pinned and multi-resolution references.
* :mod:`~repro.applications.drift.detectors` — EWMA-baselined,
  hysteretic drift state machines and the composite quorum vote.
* :mod:`~repro.applications.drift.monitor` — the service:
  :class:`DriftMonitor` wired to a :class:`StreamEngine` with
  degraded-coverage alarm suppression and obs integration.
* :mod:`~repro.applications.drift.eval` — synthetic drift injection
  and the detection-delay / false-alarm-rate sweep.

See ``docs/drift.md``.
"""

from repro.applications.drift.detectors import (
    CompositeDriftDetector,
    DriftDetector,
    DriftEvent,
    DriftState,
)
from repro.applications.drift.distances import (
    DISTANCE_KINDS,
    REFERENCE_MODES,
    CardinalityShiftDistance,
    FrequencyProfileDivergence,
    JaccardDistance,
    MultiResolutionBank,
    ReferenceWindow,
    make_estimator,
)
from repro.applications.drift.monitor import DriftMonitor

__all__ = [
    "DISTANCE_KINDS",
    "REFERENCE_MODES",
    "ReferenceWindow",
    "JaccardDistance",
    "CardinalityShiftDistance",
    "FrequencyProfileDivergence",
    "MultiResolutionBank",
    "make_estimator",
    "DriftState",
    "DriftEvent",
    "DriftDetector",
    "CompositeDriftDetector",
    "DriftMonitor",
]
