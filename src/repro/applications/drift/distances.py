"""Window-vs-window distance estimators on SHE sketches.

Drift detection compares the *live* sliding window against a
*reference* window of the same stream.  SHE makes the comparisons cheap
because every sketch is mergeable and clock-aligned snapshots are exact
(:mod:`repro.core.merge`), so a reference is either a second small
sketch trailing the live one, or a frozen ``merge_many([live])``
snapshot.  (The one exception is *pinned* Jaccard: SHE-MH's two sides
must share a clock phase to be comparable, so its pin stores one exact
window of keys — see :class:`JaccardDistance`.)

Three estimators, one per query family:

* :class:`JaccardDistance` — SHE-MH similarity between the live and
  reference windows; drift in *key identity* (new keys replace old).
* :class:`CardinalityShiftDistance` — SHE-HLL distinct counts; drift in
  *stream width* (scans, churn, key-space growth or collapse).
* :class:`FrequencyProfileDivergence` — SHE-CM frequency profiles over
  a tracked hot-key set; drift in *mass allocation* (the heavy hitters
  change even when the key pool does not), per the learning-augmented
  frequency-estimation line of work.

Reference policies (:class:`ReferenceWindow`):

* ``trailing`` — the reference sketch sees the same stream delayed by
  ``lag`` items, so it always covers the window just behind the live
  one.  The steady-state policy.
* ``pinned`` — :meth:`ReferenceWindow.pin` freezes a snapshot of the
  live sketch via ``merge_many([live])`` (clone + merge, so the copy is
  prepared at the pin clock and never ages).  Baseline-vs-now
  monitoring against a known-good epoch; :class:`JaccardDistance` pins
  by exact-window replay instead (class docs).
* ``external`` — the caller feeds the reference side explicitly (e.g.
  a second exchange's stream, a canary vs control split).

Multi-resolution references (:class:`MultiResolutionBank`) run one
estimator per window scale (1x/2x/4x by default) so an alarm can be
*localized*: a coarse reference dilutes fresh drift, so the smallest
scale whose distance is elevated bounds how long ago drift began —
the interval-query idea of "Heavy Hitters over Interval Queries"
applied to drift onset.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.common.validation import (
    as_key_array,
    require_positive_float,
    require_positive_int,
)
from repro.core.merge import merge_many
from repro.core.she_cm import SheCountMin
from repro.core.she_hll import SheHyperLogLog
from repro.core.she_mh import SheMinHash

__all__ = [
    "REFERENCE_MODES",
    "DISTANCE_KINDS",
    "ReferenceWindow",
    "JaccardDistance",
    "CardinalityShiftDistance",
    "FrequencyProfileDivergence",
    "MultiResolutionBank",
    "make_estimator",
]

REFERENCE_MODES = ("trailing", "pinned", "external")

#: estimator kinds accepted by :func:`make_estimator`
DISTANCE_KINDS = ("jaccard", "cardinality", "frequency")


def _check_mode(mode: str) -> str:
    if mode not in REFERENCE_MODES:
        raise ValueError(
            f"reference mode must be one of {REFERENCE_MODES}, got {mode!r}"
        )
    return mode


class _LagBuffer:
    """FIFO of key chunks releasing items ``lag`` positions behind."""

    __slots__ = ("lag", "_chunks", "_buffered")

    def __init__(self, lag: int):
        self.lag = require_positive_int("lag", lag)
        self._chunks: deque[np.ndarray] = deque()
        self._buffered = 0

    def push(self, keys: np.ndarray) -> list[np.ndarray]:
        """Buffer ``keys``; return the chunks now older than ``lag``."""
        if keys.size:
            self._chunks.append(keys)
            self._buffered += int(keys.size)
        released: list[np.ndarray] = []
        while self._buffered > self.lag:
            head = self._chunks[0]
            take = min(int(head.size), self._buffered - self.lag)
            if take == int(head.size):
                released.append(self._chunks.popleft())
            else:
                released.append(head[:take])
                self._chunks[0] = head[take:]
            self._buffered -= take
        return released


class ReferenceWindow:
    """The reference side of a window-vs-window comparison.

    Args:
        live: the live single-stream sketch being compared against
            (supplies ``clone_empty`` geometry and pin snapshots).
        mode: ``"trailing"`` / ``"pinned"`` / ``"external"`` (see
            module docs).
        lag: trailing delay in items (default: the live window, so the
            reference covers the window immediately behind the live
            one).
        window: reference window size (default: the live window).  A
            larger window needs ``factory`` since it changes geometry.
        factory: ``factory(window) -> sketch`` for reference windows
            that differ from the live geometry (multi-resolution).
    """

    def __init__(
        self,
        live,
        *,
        mode: str = "trailing",
        lag: int | None = None,
        window: int | None = None,
        factory=None,
    ):
        self.mode = _check_mode(mode)
        self._live = live
        base_window = int(live.config.window)
        self.window = require_positive_int(
            "window", base_window if window is None else window
        )
        if self.window != base_window and factory is None:
            raise ValueError(
                f"reference window {self.window} != live window "
                f"{base_window}; pass factory= to build it"
            )
        self._sketch = None
        self._buf: _LagBuffer | None = None
        if mode == "trailing":
            self._sketch = (
                factory(self.window) if factory is not None else live.clone_empty()
            )
            self._buf = _LagBuffer(base_window if lag is None else lag)
        elif mode == "external":
            self._sketch = (
                factory(self.window) if factory is not None else live.clone_empty()
            )
        # pinned: no sketch until pin() snapshots the live side

    @property
    def lag(self) -> int | None:
        return self._buf.lag if self._buf is not None else None

    @property
    def sketch(self):
        """The current reference sketch (None before a pin)."""
        return self._sketch

    def observe(self, keys: np.ndarray) -> None:
        """Tap of the live stream (trailing mode buffers and delays)."""
        if self._buf is not None:
            for chunk in self._buf.push(keys):
                self._sketch.insert_many(chunk)

    def observe_reference(self, keys: np.ndarray) -> None:
        """Feed the reference side directly (external mode only)."""
        if self.mode != "external":
            raise ValueError(
                f"observe_reference is for external references, mode is "
                f"{self.mode!r}"
            )
        self._sketch.insert_many(keys)

    def pin(self) -> None:
        """Freeze the live window as the reference (pinned mode).

        The snapshot is ``merge_many([live])`` — a clone prepared at
        the pin clock, so its content never ages while the live sketch
        moves on.  Re-pinning replaces the snapshot (epoch rotation).
        """
        if self.mode != "pinned":
            raise ValueError(f"pin() is for pinned references, mode is {self.mode!r}")
        self._sketch = merge_many([self._live])

    def ready(self) -> bool:
        """Does the reference hold a full window yet?"""
        if self.mode == "pinned":
            return self._sketch is not None
        return int(self._sketch.t) >= self.window


class _EstimatorBase:
    """Shared observe/reference plumbing for the single-stream estimators."""

    name = "distance"

    def __init__(self, live, *, mode, lag, window=None, factory=None):
        self._live = live
        self.reference = ReferenceWindow(
            live, mode=mode, lag=lag, window=window, factory=factory
        )

    @property
    def window(self) -> int:
        return int(self._live.config.window)

    @property
    def mode(self) -> str:
        return self.reference.mode

    def observe(self, keys, reference_keys=None) -> None:
        """Feed a batch of live arrivals (and, externally, reference ones)."""
        keys = as_key_array(keys)
        if keys.size:
            self._live.insert_many(keys)
            self.reference.observe(keys)
        if reference_keys is not None:
            self.reference.observe_reference(as_key_array(reference_keys))

    def pin(self) -> None:
        self.reference.pin()

    def ready(self) -> bool:
        """Both windows hold enough stream for the distance to mean much."""
        return int(self._live.t) >= self.window and self.reference.ready()

    def distance(self) -> float:
        raise NotImplementedError

    @property
    def memory_bytes(self) -> int:
        ref = self.reference.sketch
        return self._live.memory_bytes + (ref.memory_bytes if ref is not None else 0)


class JaccardDistance:
    """``1 - Jaccard(live window, reference window)`` via SHE-MH.

    One two-stream :class:`SheMinHash` holds both sides: side 0 is the
    live stream, side 1 the reference stream per the chosen policy.

    Pinned mode cannot freeze side 1's clock the way single-stream
    sketches pin via clone+merge: SHE-MH legality is a rotating phase
    band per side, so two sides at different clocks have (almost) no
    legal counters in common.  Instead, :meth:`pin` stores the pinned
    window's keys exactly (``8 * N`` bytes) and *replays* them into
    side 1 in lockstep with live arrivals — side 1's clock stays
    aligned with side 0 while its content stays the pinned window.

    Args:
        window: sliding-window size N per side.
        num_counters: MinHash functions M (accuracy ~ 1/sqrt(M)).
        mode: reference policy (module docs).
        lag: trailing delay (default N).
        seed: column-hash seed.
        frame: SHE frame kind.
    """

    name = "jaccard"

    def __init__(
        self,
        window: int,
        *,
        num_counters: int = 2048,
        mode: str = "trailing",
        lag: int | None = None,
        seed: int = 11,
        frame: str = "hardware",
    ):
        self.mode = _check_mode(mode)
        self._mh = SheMinHash(window, num_counters, seed=seed, frame=frame)
        self._buf = (
            _LagBuffer(window if lag is None else lag)
            if mode == "trailing"
            else None
        )
        # pinned mode: the last <= N live keys, promoted to the exact
        # pinned window by pin(), then replayed cyclically into side 1
        self._recent: deque[np.ndarray] = deque()
        self._recent_size = 0
        self._pin_keys: np.ndarray | None = None
        self._pin_pos = 0

    @property
    def window(self) -> int:
        return int(self._mh.config.window)

    @property
    def lag(self) -> int | None:
        return self._buf.lag if self._buf is not None else None

    def observe(self, keys, reference_keys=None) -> None:
        keys = as_key_array(keys)
        if keys.size:
            self._mh.insert_many(0, keys)
            if self._buf is not None:
                for chunk in self._buf.push(keys):
                    self._mh.insert_many(1, chunk)
            elif self.mode == "pinned":
                if self._pin_keys is None:
                    # pre-pin: mirror the live stream (and remember the
                    # last window of it, the pin candidate)
                    self._mh.insert_many(1, keys)
                    self._recent.append(keys)
                    self._recent_size += int(keys.size)
                    while (
                        self._recent_size - int(self._recent[0].size)
                        >= self.window
                    ):
                        self._recent_size -= int(self._recent.popleft().size)
                else:
                    self._mh.insert_many(1, self._replay(int(keys.size)))
        if reference_keys is not None:
            if self.mode != "external":
                raise ValueError(
                    f"reference_keys is for external references, mode is "
                    f"{self.mode!r}"
                )
            self._mh.insert_many(1, as_key_array(reference_keys))

    def _replay(self, n: int) -> np.ndarray:
        """The next ``n`` pinned-window keys, cycling."""
        reps = []
        pos = self._pin_pos
        size = int(self._pin_keys.size)
        while n > 0:
            take = min(n, size - pos)
            reps.append(self._pin_keys[pos : pos + take])
            n -= take
            pos = (pos + take) % size
        self._pin_pos = pos
        return np.concatenate(reps) if len(reps) > 1 else reps[0]

    def pin(self) -> None:
        """Freeze the current window as the reference (pinned mode).

        Snapshots the last (up to) N live keys exactly; from here on
        side 1 replays them in lockstep with live arrivals (class docs).
        Re-pinning later re-snapshots the *pinned* stream, not the live
        one, so pin once per epoch from live data.
        """
        if self.mode != "pinned":
            raise ValueError(f"pin() is for pinned references, mode is {self.mode!r}")
        if not self._recent:
            raise ValueError("nothing observed yet; pin() needs a live window")
        window = np.concatenate(self._recent)[-self.window :]
        self._pin_keys = window
        self._pin_pos = 0
        self._recent.clear()
        self._recent_size = 0

    def ready(self) -> bool:
        w = self.window
        if self.mode == "pinned":
            return self._pin_keys is not None and self._mh.counts[0] >= w
        return self._mh.counts[0] >= w and self._mh.counts[1] >= w

    def distance(self) -> float:
        """``1 - similarity`` clamped into [0, 1]."""
        return float(min(1.0, max(0.0, 1.0 - self._mh.similarity())))

    def similarity(self) -> float:
        return float(self._mh.similarity())

    @property
    def memory_bytes(self) -> int:
        extra = self._recent_size + (
            int(self._pin_keys.size) if self._pin_keys is not None else 0
        )
        return self._mh.memory_bytes + 8 * extra


class CardinalityShiftDistance(_EstimatorBase):
    """Relative distinct-count shift between the two windows via SHE-HLL.

    ``distance = 1 - min(c_live, c_ref) / max(c_live, c_ref)`` — 0 when
    the windows hold equally many distinct keys, approaching 1 when one
    side's key space collapses or explodes.  Insensitive to *which*
    keys changed (that is :class:`JaccardDistance`'s job).
    """

    name = "cardinality"

    def __init__(
        self,
        window: int,
        *,
        num_registers: int = 1024,
        mode: str = "trailing",
        lag: int | None = None,
        seed: int = 13,
        frame: str = "hardware",
        window_scale: int = 1,
    ):
        require_positive_int("window_scale", window_scale)
        live = SheHyperLogLog(window, num_registers, seed=seed, frame=frame)
        factory = (
            (lambda w: SheHyperLogLog(w, num_registers, seed=seed, frame=frame))
            if window_scale != 1
            else None
        )
        super().__init__(
            live,
            mode=mode,
            lag=lag,
            window=window * window_scale if window_scale != 1 else None,
            factory=factory,
        )

    def distance(self) -> float:
        ref = self.reference.sketch
        c_live = float(self._live.cardinality())
        c_ref = float(ref.cardinality())
        hi = max(c_live, c_ref)
        if hi <= 0.0:
            return 0.0
        return float(min(1.0, max(0.0, 1.0 - min(c_live, c_ref) / hi)))


class FrequencyProfileDivergence(_EstimatorBase):
    """Total-variation-style divergence of hot-key frequency profiles.

    A small exact set of *tracked keys* — the hottest keys by live
    SHE-CM estimate, refreshed on every batch — anchors the comparison:
    both windows' estimated counts over the tracked set are normalised
    into profiles p (live) and q (reference) and the distance is
    ``0.5 * sum |p - q|``.  Keys that newly dominate the live window
    enter the tracked set with near-zero reference mass (and vice
    versa), so heavy-hitter churn registers even when cardinality and
    Jaccard barely move.

    Args:
        window: sliding-window size N.
        num_counters: SHE-CM counters per window.
        track_keys: tracked hot-key budget.
        mode / lag / seed / frame: as the other estimators.
    """

    name = "frequency"

    def __init__(
        self,
        window: int,
        *,
        num_counters: int = 4096,
        track_keys: int = 128,
        mode: str = "trailing",
        lag: int | None = None,
        seed: int = 17,
        frame: str = "hardware",
        window_scale: int = 1,
    ):
        require_positive_int("window_scale", window_scale)
        live = SheCountMin(window, num_counters, seed=seed, frame=frame)
        factory = (
            (lambda w: SheCountMin(w, num_counters, seed=seed, frame=frame))
            if window_scale != 1
            else None
        )
        super().__init__(
            live,
            mode=mode,
            lag=lag,
            window=window * window_scale if window_scale != 1 else None,
            factory=factory,
        )
        self.track_keys = require_positive_int("track_keys", track_keys)
        self._tracked: dict[int, float] = {}

    def observe(self, keys, reference_keys=None) -> None:
        keys = as_key_array(keys)
        super().observe(keys, reference_keys)
        if keys.size == 0:
            return
        # refresh the tracked hot set from this batch's distinct keys
        distinct = np.unique(keys)
        est = self._live.frequency_many(distinct)
        for k, e in zip(distinct.tolist(), est.tolist()):
            self._tracked[int(k)] = float(e)
        if len(self._tracked) > self.track_keys:
            self._revalidate()

    def _revalidate(self) -> None:
        """Re-estimate every tracked key; keep the hottest ``track_keys``."""
        if not self._tracked:
            return
        arr = np.fromiter(self._tracked.keys(), dtype=np.uint64)
        est = self._live.frequency_many(arr)
        order = np.argsort(-est, kind="stable")[: self.track_keys]
        self._tracked = {
            int(arr[i]): float(est[i]) for i in order
        }

    def tracked(self) -> np.ndarray:
        """The current tracked key set (hottest first)."""
        self._revalidate()
        arr = np.fromiter(self._tracked.keys(), dtype=np.uint64)
        return arr

    def distance(self) -> float:
        keys = self.tracked()
        if keys.size == 0:
            return 0.0
        ref = self.reference.sketch
        p = self._live.frequency_many(keys).astype(np.float64)
        q = ref.frequency_many(keys).astype(np.float64)
        ps, qs = float(p.sum()), float(q.sum())
        if ps <= 0.0 and qs <= 0.0:
            return 0.0
        if ps <= 0.0 or qs <= 0.0:
            return 1.0
        tv = 0.5 * float(np.abs(p / ps - q / qs).sum())
        return float(min(1.0, max(0.0, tv)))


_FACTORIES = {
    "jaccard": JaccardDistance,
    "cardinality": CardinalityShiftDistance,
    "frequency": FrequencyProfileDivergence,
}


def make_estimator(kind: str, window: int, **kwargs):
    """Build a distance estimator by kind string.

    ``kind`` is one of :data:`DISTANCE_KINDS`; ``kwargs`` forward to
    the estimator constructor (``mode``, ``lag``, sizes, ``seed``).
    """
    try:
        cls = _FACTORIES[kind]
    except KeyError:
        raise ValueError(
            f"estimator kind must be one of {DISTANCE_KINDS}, got {kind!r}"
        ) from None
    return cls(window, **kwargs)


class MultiResolutionBank:
    """One estimator per reference scale, for drift-onset localization.

    Scale ``s`` compares the live window (N items) against a reference
    window of ``s * N`` items trailing directly behind it.  Fresh drift
    contaminates a coarse reference ``s`` times slower than a fine one,
    so right after onset *every* scale is elevated, and as drifted data
    floods the references the fine scales decay back first.  The
    smallest still-elevated scale therefore bounds how long ago drift
    began: :meth:`localize` returns that bound in items.

    Args:
        kind: estimator kind (:data:`DISTANCE_KINDS`); ``"jaccard"`` is
            excluded (SHE-MH sides share one window size).
        window: live window size N.
        scales: reference window multipliers, ascending.
        estimator_kwargs: forwarded to every member estimator.
    """

    def __init__(
        self,
        kind: str,
        window: int,
        *,
        scales: tuple[int, ...] = (1, 2, 4),
        **estimator_kwargs,
    ):
        if kind == "jaccard":
            raise ValueError(
                "multi-resolution references need per-side window sizes; "
                "SHE-MH shares one — use 'cardinality' or 'frequency'"
            )
        if not scales or any(s < 1 for s in scales):
            raise ValueError(f"scales must be positive ints, got {scales!r}")
        self.window = require_positive_int("window", window)
        self.scales = tuple(sorted(set(int(s) for s in scales)))
        estimator_kwargs.setdefault("mode", "trailing")
        estimator_kwargs.setdefault("lag", window)
        self.members = {
            s: make_estimator(kind, window, window_scale=s, **estimator_kwargs)
            for s in self.scales
        }

    def observe(self, keys) -> None:
        keys = as_key_array(keys)
        for member in self.members.values():
            member.observe(keys)

    def distances(self) -> dict[int, float]:
        """Per-scale distance (NaN until that scale's reference fills)."""
        return {
            s: (m.distance() if m.ready() else float("nan"))
            for s, m in self.members.items()
        }

    def localize(self, threshold: float) -> int | None:
        """Upper bound, in items, on how long ago drift began.

        The smallest ready scale ``s`` whose distance meets
        ``threshold`` says drift entered within the last
        ``s * N + lag`` items; ``None`` when no scale is elevated.
        """
        require_positive_float("threshold", threshold)
        for s in self.scales:
            member = self.members[s]
            if member.ready() and member.distance() >= threshold:
                lag = member.reference.lag or 0
                return s * self.window + lag
        return None
