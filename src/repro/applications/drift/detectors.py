"""Drift detector state machines over window-vs-window distance scores.

A :class:`DriftDetector` consumes one scalar distance score per
evaluation and runs the classic four-state monitor::

    STABLE --(score >= warn)--> WARN --(hysteresis x >= alarm)--> ALARM
      ^                          |                                  |
      |<---(hysteresis x < warn)-+       (recovery x < warn)        v
      +<--------(recovery x < warn)------------------------- RECOVERING

* **Burn-in calibration.**  Unless explicit thresholds are given, the
  first ``burn_in`` scores build an EWMA baseline and a mean-absolute
  deviation spread; thresholds resolve to ``baseline + k * spread``
  (``warn_sigma`` / ``alarm_sigma``), floored by ``min_spread`` so a
  perfectly flat burn-in does not produce hair-trigger thresholds.
* **Hysteresis.**  ALARM needs ``hysteresis`` *consecutive* scores at
  or above the alarm threshold; returning to STABLE needs consecutive
  quiet scores too, so a score oscillating around a threshold cannot
  flap the state.
* **Robust baseline.**  Only STABLE, unsuppressed scores adapt the
  baseline (and auto-calibrated thresholds), so the excursion being
  judged never drags the yardstick after it.  After RECOVERING ->
  STABLE the detector re-anchors on the new regime: post-drift traffic
  becomes the new normal instead of a permanent alarm.
* **Suppression.**  ``update(score, suppress=True)`` — the monitor's
  degraded-coverage path — can never *enter* ALARM: a would-be alarm is
  recorded as a suppressed :class:`DriftEvent` instead, because a
  distance computed while shards are down or arrivals were shed
  measures the outage, not the stream.

:class:`CompositeDriftDetector` votes across several member detectors
(one per distance estimator): ALARM only when at least ``quorum``
members alarm, which suppresses single-estimator noise while keeping
sensitivity to real drift (which moves several distances at once).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.validation import require_positive_float, require_positive_int

__all__ = ["DriftState", "DriftEvent", "DriftDetector", "CompositeDriftDetector"]


class DriftState(enum.Enum):
    STABLE = "stable"
    WARN = "warn"
    ALARM = "alarm"
    RECOVERING = "recovering"


#: gauge encoding of the states (monitor publishes these)
STATE_CODES = {
    DriftState.STABLE: 0,
    DriftState.WARN: 1,
    DriftState.ALARM: 2,
    DriftState.RECOVERING: 3,
}


@dataclass(frozen=True)
class DriftEvent:
    """One state transition (or suppressed would-be transition)."""

    t: int
    state_from: DriftState
    state_to: DriftState
    score: float
    threshold: float | None
    suppressed: bool = False


class DriftDetector:
    """EWMA-baselined, hysteretic drift state machine (module docs).

    Args:
        name: label used in events, metrics and ``/statusz``.
        warn_threshold / alarm_threshold: fixed thresholds; ``None``
            (default) calibrates both from the burn-in scores.
        burn_in: scores consumed building the baseline before any state
            can leave STABLE.
        ewma: baseline smoothing factor.
        warn_sigma / alarm_sigma: calibrated thresholds sit this many
            spread units above the baseline.
        hysteresis: consecutive scores required to enter ALARM (and to
            fall back from WARN to STABLE).
        recovery_steps: consecutive quiet scores required to leave
            ALARM (via RECOVERING) and to complete recovery.
        min_spread: spread floor for calibration — also the floor while
            adapting, so a long flat stretch cannot collapse the band.
    """

    def __init__(
        self,
        name: str = "drift",
        *,
        warn_threshold: float | None = None,
        alarm_threshold: float | None = None,
        burn_in: int = 16,
        ewma: float = 0.1,
        warn_sigma: float = 3.0,
        alarm_sigma: float = 6.0,
        hysteresis: int = 2,
        recovery_steps: int = 4,
        min_spread: float = 0.02,
    ):
        self.name = name
        self.burn_in = require_positive_int("burn_in", burn_in)
        self.ewma = require_positive_float("ewma", ewma)
        self.warn_sigma = require_positive_float("warn_sigma", warn_sigma)
        self.alarm_sigma = require_positive_float("alarm_sigma", alarm_sigma)
        self.hysteresis = require_positive_int("hysteresis", hysteresis)
        self.recovery_steps = require_positive_int("recovery_steps", recovery_steps)
        self.min_spread = require_positive_float("min_spread", min_spread)
        if warn_threshold is not None and alarm_threshold is not None:
            if alarm_threshold < warn_threshold:
                raise ValueError(
                    f"alarm_threshold {alarm_threshold} < warn_threshold "
                    f"{warn_threshold}"
                )
        self._fixed_warn = warn_threshold
        self._fixed_alarm = alarm_threshold
        self.warn_threshold = warn_threshold
        self.alarm_threshold = alarm_threshold
        self.state = DriftState.STABLE
        self.events: list[DriftEvent] = []
        self.alarm_count = 0
        self.suppressed_count = 0
        self.updates = 0
        self.last_score: float | None = None
        self._baseline: float | None = None
        self._spread = 0.0
        self._seen = 0  # burn-in / re-anchor progress
        self._hot = 0  # consecutive scores >= alarm threshold
        self._cool = 0  # consecutive scores < warn threshold

    # -- calibration ---------------------------------------------------------

    @property
    def baseline(self) -> float | None:
        return self._baseline

    @property
    def spread(self) -> float:
        return self._spread

    @property
    def calibrated(self) -> bool:
        """Are both thresholds resolved (fixed or burned in)?"""
        return self.warn_threshold is not None and self.alarm_threshold is not None

    def _absorb(self, score: float) -> None:
        """Fold one score into the EWMA baseline + spread.

        The deviation is winsorized at two spreads: a slow ramp (or a
        near-threshold excursion) cannot drag the baseline after it or
        inflate the spread faster than stationary noise could, which
        would otherwise legalize gradual drift score by score.
        """
        if self._baseline is None:
            self._baseline = score
            self._spread = self.min_spread
            return
        cap = 2.0 * self._spread
        deviation = min(cap, max(-cap, score - self._baseline))
        self._baseline += self.ewma * deviation
        self._spread += self.ewma * (abs(deviation) - self._spread)
        self._spread = max(self._spread, self.min_spread)

    def _refresh_thresholds(self) -> None:
        if self._fixed_warn is None:
            self.warn_threshold = self._baseline + self.warn_sigma * self._spread
        if self._fixed_alarm is None:
            self.alarm_threshold = self._baseline + self.alarm_sigma * self._spread
        if self.alarm_threshold < self.warn_threshold:  # fixed/calibrated mix
            self.alarm_threshold = self.warn_threshold

    def _rebaseline(self) -> None:
        """Adopt the current regime as normal (post-recovery re-anchor)."""
        if self._fixed_warn is None or self._fixed_alarm is None:
            self._baseline = None
            self._seen = 0
            if self._fixed_warn is None:
                self.warn_threshold = None
            if self._fixed_alarm is None:
                self.alarm_threshold = None

    # -- the state machine ---------------------------------------------------

    def _transition(
        self, to: DriftState, t: int, score: float, threshold: float | None,
        *, suppressed: bool = False,
    ) -> None:
        self.events.append(
            DriftEvent(t, self.state, to, score, threshold, suppressed)
        )
        if suppressed:
            self.suppressed_count += 1
            return
        if to is DriftState.ALARM:
            self.alarm_count += 1
        self.state = to

    def update(self, score: float, t: int | None = None, *, suppress: bool = False) -> DriftState:
        """Consume one distance score; returns the (possibly new) state.

        ``t`` stamps events (default: the update ordinal).  With
        ``suppress=True`` the score can never *enter* ALARM and never
        adapts the baseline — would-be alarms are recorded as
        suppressed events (degraded-coverage semantics, module docs).
        """
        score = float(score)
        self.updates += 1
        self.last_score = score
        t = self.updates if t is None else int(t)
        # burn-in (and post-recovery re-anchoring): absorb, then arm
        if not self.calibrated or (self._seen < self.burn_in and self.state is DriftState.STABLE):
            if not suppress:
                self._absorb(score)
                self._seen += 1
                self._refresh_thresholds()
            if self._seen < self.burn_in:
                return self.state
        over_alarm = score >= self.alarm_threshold
        over_warn = score >= self.warn_threshold
        self._hot = min(self._hot + 1, self.hysteresis) if over_alarm else 0
        self._cool = min(self._cool + 1, max(self.hysteresis, self.recovery_steps)) if not over_warn else 0

        if self.state in (DriftState.STABLE, DriftState.WARN):
            if self._hot >= self.hysteresis:
                if suppress:
                    self._transition(
                        DriftState.ALARM, t, score, self.alarm_threshold,
                        suppressed=True,
                    )
                else:
                    self._transition(DriftState.ALARM, t, score, self.alarm_threshold)
            elif over_warn or over_alarm:
                if self.state is DriftState.STABLE:
                    self._transition(DriftState.WARN, t, score, self.warn_threshold)
            elif self.state is DriftState.WARN:
                if self._cool >= self.hysteresis:
                    self._transition(DriftState.STABLE, t, score, self.warn_threshold)
            else:  # quiet STABLE score: keep adapting the yardstick
                if not suppress:
                    self._absorb(score)
                    self._refresh_thresholds()
        elif self.state is DriftState.ALARM:
            if self._cool >= self.recovery_steps:
                self._transition(DriftState.RECOVERING, t, score, self.warn_threshold)
                self._cool = 0
        elif self.state is DriftState.RECOVERING:
            if self._hot >= self.hysteresis:
                if suppress:
                    self._transition(
                        DriftState.ALARM, t, score, self.alarm_threshold,
                        suppressed=True,
                    )
                else:
                    self._transition(DriftState.ALARM, t, score, self.alarm_threshold)
            elif self._cool >= self.recovery_steps:
                self._transition(DriftState.STABLE, t, score, self.warn_threshold)
                self._rebaseline()
        return self.state

    # -- introspection -------------------------------------------------------

    def alarms(self) -> list[DriftEvent]:
        """Unsuppressed transitions into ALARM, oldest first."""
        return [
            e for e in self.events
            if e.state_to is DriftState.ALARM and not e.suppressed
        ]

    def snapshot(self) -> dict:
        """JSON-safe state for ``/statusz`` and dashboards."""
        return {
            "name": self.name,
            "state": self.state.value,
            "last_score": self.last_score,
            "baseline": self._baseline,
            "spread": self._spread,
            "warn_threshold": self.warn_threshold,
            "alarm_threshold": self.alarm_threshold,
            "calibrated": self.calibrated,
            "updates": self.updates,
            "alarms_total": self.alarm_count,
            "alarms_suppressed_total": self.suppressed_count,
        }


class CompositeDriftDetector:
    """Quorum vote across member detectors (one per distance estimator).

    Args:
        members: ``name -> DriftDetector`` mapping.
        quorum: members that must be in ALARM for the composite to
            alarm (clamped to the member count).
    """

    def __init__(self, members: dict[str, DriftDetector], *, quorum: int = 2):
        if not members:
            raise ValueError("composite detector needs at least one member")
        self.members = dict(members)
        self.quorum = min(require_positive_int("quorum", quorum), len(self.members))
        self.state = DriftState.STABLE
        self.events: list[DriftEvent] = []
        self.alarm_count = 0

    def update(
        self,
        scores: dict[str, float],
        t: int | None = None,
        *,
        suppress: bool = False,
    ) -> DriftState:
        """Feed each member its score; recompute the composite state.

        Members absent from ``scores`` keep their current state (their
        estimator was not ready this evaluation).
        """
        for name, score in scores.items():
            self.members[name].update(score, t, suppress=suppress)
        states = [d.state for d in self.members.values()]
        n_alarm = sum(s is DriftState.ALARM for s in states)
        if n_alarm >= self.quorum:
            new = DriftState.ALARM
        elif any(s in (DriftState.WARN, DriftState.ALARM) for s in states):
            new = DriftState.WARN
        elif any(s is DriftState.RECOVERING for s in states):
            new = DriftState.RECOVERING
        else:
            new = DriftState.STABLE
        if new is not self.state:
            worst = max(
                (d.last_score or 0.0 for d in self.members.values()), default=0.0
            )
            self.events.append(DriftEvent(
                t if t is not None else -1, self.state, new, worst, None,
            ))
            if new is DriftState.ALARM:
                self.alarm_count += 1
            self.state = new
        return self.state

    def snapshot(self) -> dict:
        return {
            "state": self.state.value,
            "quorum": self.quorum,
            "alarms_total": self.alarm_count,
            "members": {n: d.snapshot() for n, d in self.members.items()},
        }
