"""`DriftMonitor` — the drift service wired to a :class:`StreamEngine`.

The monitor taps the engine's ingest path: every admitted batch also
feeds a small per-estimator sketch pair (live window vs reference
window, :mod:`repro.applications.drift.distances`), so the distance
scores always describe the same union-stream clock the engine's own
fan-in uses.  Evaluations run on the engine cadence — every
``eval_every`` union-stream items, checked on :meth:`ingest`,
:meth:`tick` and :meth:`flush` — and drive one
:class:`CompositeDriftDetector`.

**Degraded-coverage suppression.**  Before each evaluation the monitor
snapshots the engine's coverage: ``down_shards`` (shards with no live
worker) and ``shed_in_window`` (shards that dropped arrivals under
admission control inside the current window).  When either is
non-empty the evaluation runs with ``suppress=True`` — scores still
update states up to WARN, but a would-be ALARM is recorded as a
suppressed event instead, carrying the same per-kind caveat string a
:class:`~repro.service.engine.DegradedAnswer` would (via the algorithm
descriptor's ``caveat`` hook).  A distance measured while coverage is
degraded describes the outage, not the input distribution; paging on
it would be a false drift alarm.

Observability: publishes ``drift_score{estimator=}`` and
``drift_state{detector=}`` gauges, ``drift_alarms_total`` /
``drift_alarms_suppressed_total`` counters and
``drift_evaluations_total`` into the engine's registry (no-ops when
obs is off), and a ``drift`` section into the exporter's ``/statusz``
(the monitor attaches itself as ``engine._drift_monitor``, mirroring
the Supervisor pattern).
"""

from __future__ import annotations

import numpy as np

from repro.applications.drift.detectors import (
    STATE_CODES,
    CompositeDriftDetector,
    DriftDetector,
)
from repro.applications.drift.distances import DISTANCE_KINDS, make_estimator
from repro.common.validation import require_positive_int

__all__ = ["DriftMonitor"]


class DriftMonitor:
    """Online drift detection over an engine's input stream (module docs).

    Args:
        engine: the :class:`~repro.service.engine.StreamEngine` to
            monitor.  For two-stream (MH) engines only side 0 is
            monitored.
        kinds: distance estimators to run (default: all three).
        mode: reference-window mode for every estimator
            (``"trailing"`` or ``"pinned"``; pin with :meth:`pin`).
        lag: trailing-reference lag (default: one window).
        eval_every: evaluation cadence in union-stream items
            (default: ``window // 4``).
        quorum: members that must alarm for a composite alarm
            (clamped to ``len(kinds)``).
        suppress_degraded: run evaluations with ``suppress=True``
            while coverage is degraded (module docs).  Off means
            degraded coverage is still *reported* but alarms fire.
        detector_kwargs: forwarded to every member
            :class:`DriftDetector` (e.g. ``alarm_sigma``).
        estimator_kwargs: per-kind overrides,
            ``{"jaccard": {"num_counters": 1024}, ...}``.
    """

    def __init__(
        self,
        engine,
        *,
        kinds: tuple[str, ...] = DISTANCE_KINDS,
        mode: str = "trailing",
        lag: int | None = None,
        eval_every: int | None = None,
        quorum: int = 2,
        suppress_degraded: bool = True,
        detector_kwargs: dict | None = None,
        estimator_kwargs: dict | None = None,
    ):
        if not kinds:
            raise ValueError("kinds must name at least one distance estimator")
        unknown = set(kinds) - set(DISTANCE_KINDS)
        if unknown:
            raise ValueError(
                f"unknown distance kinds {sorted(unknown)}; "
                f"choose from {DISTANCE_KINDS}"
            )
        self.engine = engine
        window = engine.window
        self.eval_every = (
            require_positive_int("eval_every", eval_every)
            if eval_every is not None
            else max(1, window // 4)
        )
        self.suppress_degraded = bool(suppress_degraded)
        per_kind = estimator_kwargs or {}
        self.estimators = {
            kind: make_estimator(
                kind, window, mode=mode, lag=lag, **per_kind.get(kind, {})
            )
            for kind in kinds
        }
        dk = detector_kwargs or {}
        self.detector = CompositeDriftDetector(
            {kind: DriftDetector(kind, **dk) for kind in kinds},
            quorum=quorum,
        )
        self.evaluations = 0
        self.last_eval_t: int | None = None
        self.last_scores: dict[str, float] = {}
        self.last_coverage: dict = {"degraded": False}
        self._next_eval = self.eval_every
        self._prev_alarms = {kind: 0 for kind in kinds}
        self._prev_suppressed = {kind: 0 for kind in kinds}
        self._prev_composite_alarms = 0
        self._init_metrics(kinds)
        engine._drift_monitor = self  # /statusz hook, like engine._supervisor

    def _init_metrics(self, kinds) -> None:
        reg = self.engine.obs.registry
        g_score = reg.gauge(
            "drift_score", "Window-vs-window distance score", labels=("estimator",)
        )
        g_state = reg.gauge(
            "drift_state",
            "Detector state (0=stable 1=warn 2=alarm 3=recovering)",
            labels=("detector",),
        )
        c_alarms = reg.counter(
            "drift_alarms_total", "Drift alarms raised", labels=("detector",)
        )
        c_suppressed = reg.counter(
            "drift_alarms_suppressed_total",
            "Would-be alarms suppressed by degraded coverage",
            labels=("detector",),
        )
        self._c_evals = reg.counter(
            "drift_evaluations_total", "Drift evaluations run"
        )
        self._g_last_t = reg.gauge(
            "drift_last_eval_t", "Union-stream time of the last evaluation"
        )
        # pre-resolve children: the eval path never does label lookups
        self._m_score = {k: g_score.labels(k) for k in kinds}
        self._m_state = {k: g_state.labels(k) for k in kinds}
        self._m_state["composite"] = g_state.labels("composite")
        self._m_alarms = {k: c_alarms.labels(k) for k in kinds}
        self._m_alarms["composite"] = c_alarms.labels("composite")
        self._m_suppressed = {k: c_suppressed.labels(k) for k in kinds}

    # -- stream path ---------------------------------------------------------

    def ingest(self, keys, side: int | None = None) -> None:
        """Forward a batch to the engine and tap it into the estimators.

        For two-stream engines only side-0 batches feed the estimators
        (side 1 is the comparison exchange, not the monitored stream).
        """
        keys = np.asarray(keys, dtype=np.uint64)
        self.engine.ingest(keys, side=side)
        if side in (None, 0):
            for est in self.estimators.values():
                est.observe(keys)
        self.maybe_evaluate()

    def tick(self) -> None:
        """Engine time-based flush trigger plus a due-evaluation check."""
        self.engine.tick()
        self.maybe_evaluate()

    def flush(self) -> None:
        self.engine.flush()
        self.maybe_evaluate()

    def pin(self) -> None:
        """Freeze the current window as the reference (pinned mode)."""
        for est in self.estimators.values():
            est.pin()

    # -- evaluation ----------------------------------------------------------

    def maybe_evaluate(self) -> bool:
        """Evaluate iff the cadence says one is due; returns whether it ran."""
        t = self.engine.now(0)
        if t < self._next_eval:
            return False
        self.evaluate(t)
        # skip missed slots rather than replaying them: scores are
        # window-level, evaluating twice at the same clock adds nothing
        self._next_eval = t + self.eval_every
        return True

    def coverage_snapshot(self) -> dict:
        """Engine coverage as the suppression decision sees it."""
        down = list(self.engine.down_shards)
        shed = list(self.engine.overload_snapshot()["shed_in_window"])
        degraded = bool(down or shed)
        caveat = None
        if degraded:
            caveat = self.engine.config.descriptor().caveat(
                missing=bool(down), shed=bool(shed)
            )
        return {
            "degraded": degraded,
            "down_shards": down,
            "shed_in_window": shed,
            "caveat": caveat,
        }

    def evaluate(self, t: int | None = None) -> dict[str, float]:
        """Run one evaluation now, regardless of cadence.

        Returns the scores of the estimators that were ready (warmed-up
        live *and* reference windows); estimators still warming up are
        skipped and their detectors keep their state.
        """
        t = self.engine.now(0) if t is None else int(t)
        coverage = self.coverage_snapshot()
        suppress = self.suppress_degraded and coverage["degraded"]
        scores = {
            kind: est.distance()
            for kind, est in self.estimators.items()
            if est.ready()
        }
        self.detector.update(scores, t, suppress=suppress)
        self.evaluations += 1
        self.last_eval_t = t
        self.last_scores = scores
        self.last_coverage = coverage
        self._publish(scores, t)
        return scores

    def _publish(self, scores: dict[str, float], t: int) -> None:
        self._c_evals.inc()
        self._g_last_t.set(t)
        for kind, score in scores.items():
            self._m_score[kind].set(score)
        for kind, det in self.detector.members.items():
            self._m_state[kind].set(STATE_CODES[det.state])
            if det.alarm_count > self._prev_alarms[kind]:
                self._m_alarms[kind].inc(det.alarm_count - self._prev_alarms[kind])
                self._prev_alarms[kind] = det.alarm_count
            if det.suppressed_count > self._prev_suppressed[kind]:
                self._m_suppressed[kind].inc(
                    det.suppressed_count - self._prev_suppressed[kind]
                )
                self._prev_suppressed[kind] = det.suppressed_count
        self._m_state["composite"].set(STATE_CODES[self.detector.state])
        if self.detector.alarm_count > self._prev_composite_alarms:
            self._m_alarms["composite"].inc(
                self.detector.alarm_count - self._prev_composite_alarms
            )
            self._prev_composite_alarms = self.detector.alarm_count

    # -- introspection -------------------------------------------------------

    @property
    def state(self):
        return self.detector.state

    @property
    def memory_bytes(self) -> int:
        return sum(est.memory_bytes for est in self.estimators.values())

    def statusz_section(self) -> dict:
        """The ``drift`` section of the exporter's ``/statusz``."""
        return {
            "state": self.detector.state.value,
            "eval_every": self.eval_every,
            "evaluations": self.evaluations,
            "last_eval_t": self.last_eval_t,
            "scores": dict(self.last_scores),
            "coverage": dict(self.last_coverage),
            "suppress_degraded": self.suppress_degraded,
            "memory_bytes": self.memory_bytes,
            "detector": self.detector.snapshot(),
        }
