"""Synthetic drift evaluation: detection delay vs false-alarm rate.

The injected drift is a *mixture shift*: after onset, a fraction of
arrivals is redirected into a disjoint alternate key pool (twice the
universe, flatter skew, keys offset far above the base pool).  One
mechanism moves all three distances at once — key identity (Jaccard),
distinct count (cardinality, the alternate pool is wider), and hot-key
mass (frequency divergence, the alternate pool's law is flatter).

Drift kinds (:data:`DRIFT_KINDS`):

* ``none`` — stationary control; every alarm is a false alarm.
* ``abrupt`` — the mixture fraction steps to ``drift_frac`` at onset.
* ``gradual`` — it ramps linearly from 0 to ``drift_frac`` over
  ``ramp`` items after onset.
* ``recurring`` — it alternates between ``drift_frac`` and 0 every
  ``period`` items after onset (regime flapping).

:func:`score_series` runs a stream through one estimator once and
records the (t, distance) series; :func:`detect` replays a series
through a fresh :class:`DriftDetector` — so :func:`sweep` pays each
stream once and sweeps ``alarm_sigma`` for free, emitting
``BENCH_drift.json`` with per-estimator, per-drift-kind curves of
detection delay and false-alarm rate.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

import numpy as np

from repro.applications.drift.detectors import DriftDetector
from repro.applications.drift.distances import DISTANCE_KINDS, make_estimator
from repro.datasets.zipf import BoundedZipf

__all__ = [
    "DRIFT_KINDS",
    "DetectionResult",
    "drift_stream",
    "score_series",
    "detect",
    "run_detection",
    "sweep",
]

DRIFT_KINDS = ("none", "abrupt", "gradual", "recurring")

#: alternate-pool keys live far above any base-pool key (base keys are
#: 32-bit; see repro.datasets.zipf.BoundedZipf key_bits)
_ALT_OFFSET = np.uint64(1) << np.uint64(40)


def _mix_fraction(t: int, *, kind: str, onset: int, drift_frac: float,
                  ramp: int, period: int) -> float:
    """Alternate-pool mixture fraction at stream position ``t``."""
    if kind == "none" or t < onset:
        return 0.0
    if kind == "abrupt":
        return drift_frac
    if kind == "gradual":
        return drift_frac * min(1.0, (t - onset) / ramp)
    if kind == "recurring":
        return drift_frac if ((t - onset) // period) % 2 == 0 else 0.0
    raise ValueError(f"drift kind must be one of {DRIFT_KINDS}, got {kind!r}")


def drift_stream(
    n: int,
    *,
    kind: str = "abrupt",
    onset: int | None = None,
    drift_frac: float = 0.75,
    ramp: int | None = None,
    period: int | None = None,
    universe: int = 1 << 14,
    skew: float = 1.1,
    batch: int = 512,
    seed: int = 0,
):
    """Yield uint64 key batches of a stream with injected drift.

    ``onset`` defaults to ``n // 2``; ``ramp`` (gradual) to ``n // 4``;
    ``period`` (recurring) to ``n // 8``.  ``kind="none"`` ignores all
    drift parameters and yields a stationary Zipf stream.
    """
    if kind not in DRIFT_KINDS:
        raise ValueError(f"drift kind must be one of {DRIFT_KINDS}, got {kind!r}")
    onset = n // 2 if onset is None else int(onset)
    ramp = max(1, n // 4 if ramp is None else int(ramp))
    period = max(1, n // 8 if period is None else int(period))
    rng = np.random.default_rng(seed)
    base = BoundedZipf(universe, skew, seed=seed)
    alt = BoundedZipf(2 * universe, max(0.1, skew - 0.6), seed=seed + 9001)
    t = 0
    while t < n:
        b = min(batch, n - t)
        frac = _mix_fraction(
            t, kind=kind, onset=onset, drift_frac=drift_frac,
            ramp=ramp, period=period,
        )
        keys = base.sample(b)
        if frac > 0.0:
            mask = rng.random(b) < frac
            n_alt = int(mask.sum())
            if n_alt:
                keys = keys.copy()
                keys[mask] = alt.sample(n_alt) + _ALT_OFFSET
        yield keys
        t += b


def score_series(
    estimator_kind: str,
    *,
    window: int = 1 << 12,
    n: int | None = None,
    eval_every: int | None = None,
    drift_kind: str = "abrupt",
    onset: int | None = None,
    seed: int = 0,
    estimator_kwargs: dict | None = None,
    **stream_kwargs,
) -> tuple[list[tuple[int, float]], int]:
    """Run one stream through one estimator; return ([(t, score)], onset).

    Scores start once both windows are warm (``estimator.ready()``) and
    are spaced ``eval_every`` (default ``window // 4``) items apart.
    """
    n = 16 * window if n is None else int(n)
    eval_every = max(1, window // 4) if eval_every is None else int(eval_every)
    onset = n // 2 if onset is None else int(onset)
    # keep the key universe proportional to the window: a universe far
    # wider than one window makes adjacent windows nearly disjoint and
    # buries the drift signal in baseline Jaccard distance
    stream_kwargs.setdefault("universe", 4 * window)
    est = make_estimator(
        estimator_kind, window, mode="trailing", **(estimator_kwargs or {})
    )
    series: list[tuple[int, float]] = []
    t = 0
    next_eval = eval_every
    for keys in drift_stream(
        n, kind=drift_kind, onset=onset, seed=seed, **stream_kwargs
    ):
        est.observe(keys)
        t += int(keys.size)
        if t >= next_eval:
            if est.ready():
                series.append((t, est.distance()))
            next_eval = t + eval_every
    return series, onset


@dataclass(frozen=True)
class DetectionResult:
    """One (estimator, drift kind, threshold, seed) detection run."""

    estimator: str
    drift_kind: str
    alarm_sigma: float
    seed: int
    onset: int | None  # None for stationary runs
    detection_t: int | None  # first alarm at/after onset
    detection_delay: int | None
    false_alarms: int  # alarms before onset (all alarms when stationary)
    evaluations: int
    clean_evaluations: int  # evaluations that could have false-alarmed

    @property
    def detected(self) -> bool:
        return self.detection_t is not None

    @property
    def false_alarm_rate(self) -> float:
        if self.clean_evaluations == 0:
            return 0.0
        return self.false_alarms / self.clean_evaluations


def detect(
    series: list[tuple[int, float]],
    *,
    estimator: str,
    drift_kind: str,
    seed: int,
    onset: int | None,
    alarm_sigma: float = 6.0,
    detector_kwargs: dict | None = None,
) -> DetectionResult:
    """Replay a score series through a fresh :class:`DriftDetector`."""
    dk = dict(detector_kwargs or {})
    dk.setdefault("alarm_sigma", alarm_sigma)
    dk.setdefault("warn_sigma", min(3.0, dk["alarm_sigma"]))
    det = DriftDetector(estimator, **dk)
    detection_t = None
    false_alarms = 0
    clean = 0
    for t, score in series:
        before = det.alarm_count
        det.update(score, t)
        alarmed = det.alarm_count > before
        if onset is None or t < onset:
            clean += 1
            if alarmed:
                false_alarms += 1
        elif alarmed and detection_t is None:
            detection_t = t
    return DetectionResult(
        estimator=estimator,
        drift_kind=drift_kind,
        alarm_sigma=float(dk["alarm_sigma"]),
        seed=seed,
        onset=onset,
        detection_t=detection_t,
        detection_delay=None if detection_t is None else detection_t - onset,
        false_alarms=false_alarms,
        evaluations=len(series),
        clean_evaluations=clean,
    )


def run_detection(
    estimator_kind: str,
    *,
    drift_kind: str = "abrupt",
    window: int = 1 << 12,
    n: int | None = None,
    seed: int = 0,
    alarm_sigma: float = 6.0,
    detector_kwargs: dict | None = None,
    estimator_kwargs: dict | None = None,
    **stream_kwargs,
) -> DetectionResult:
    """One end-to-end run: stream -> estimator -> detector -> result.

    This is the CI smoke path: ``drift_kind="none"`` must report zero
    false alarms at defaults, ``"abrupt"`` a bounded detection delay.
    """
    series, onset = score_series(
        estimator_kind,
        window=window,
        n=n,
        drift_kind=drift_kind,
        seed=seed,
        estimator_kwargs=estimator_kwargs,
        **stream_kwargs,
    )
    return detect(
        series,
        estimator=estimator_kind,
        drift_kind=drift_kind,
        seed=seed,
        onset=None if drift_kind == "none" else onset,
        alarm_sigma=alarm_sigma,
        detector_kwargs=detector_kwargs,
    )


def _curve_point(results: list[DetectionResult]) -> dict:
    """Aggregate same-threshold runs into one curve point."""
    delays = [r.detection_delay for r in results if r.detected]
    return {
        "alarm_sigma": results[0].alarm_sigma,
        "runs": len(results),
        "detected": len(delays),
        "mean_delay": (sum(delays) / len(delays)) if delays else None,
        "max_delay": max(delays) if delays else None,
        "false_alarm_rate": (
            sum(r.false_alarm_rate for r in results) / len(results)
        ),
        "results": [asdict(r) for r in results],
    }


def sweep(
    out_path: str | None = "BENCH_drift.json",
    *,
    quick: bool = False,
    window: int | None = None,
    n: int | None = None,
    seeds: tuple[int, ...] | None = None,
    sigmas: tuple[float, ...] | None = None,
    estimator_kwargs: dict | None = None,
    verbose: bool = False,
) -> dict:
    """Full evaluation grid -> ``BENCH_drift.json``.

    For every estimator kind and drift kind, each (seed) stream is
    scored once and every ``alarm_sigma`` replays the same series, so
    the curve sweep costs detectors, not sketches.  ``quick=True``
    shrinks everything for smoke runs.
    """
    window = (1 << 10 if quick else 1 << 12) if window is None else window
    n = (8 * window if quick else 16 * window) if n is None else n
    seeds = ((1, 2) if quick else (1, 2, 3)) if seeds is None else seeds
    sigmas = ((4.0, 8.0) if quick else (3.0, 4.0, 6.0, 8.0, 10.0)) if sigmas is None else sigmas
    per_kind = estimator_kwargs or {}
    curves: dict[str, dict[str, list[dict]]] = {}
    for est_kind in DISTANCE_KINDS:
        curves[est_kind] = {}
        for drift_kind in DRIFT_KINDS:
            series_by_seed = {}
            for seed in seeds:
                series_by_seed[seed] = score_series(
                    est_kind,
                    window=window,
                    n=n,
                    drift_kind=drift_kind,
                    seed=seed,
                    estimator_kwargs=per_kind.get(est_kind),
                )
            points = []
            for sigma in sigmas:
                results = [
                    detect(
                        series,
                        estimator=est_kind,
                        drift_kind=drift_kind,
                        seed=seed,
                        onset=None if drift_kind == "none" else onset,
                        alarm_sigma=sigma,
                    )
                    for seed, (series, onset) in series_by_seed.items()
                ]
                points.append(_curve_point(results))
            curves[est_kind][drift_kind] = points
            if verbose:
                summary = ", ".join(
                    f"s{p['alarm_sigma']:g}:{p['detected']}/{p['runs']}"
                    for p in points
                )
                print(f"{est_kind:11s} {drift_kind:9s} {summary}", flush=True)
    payload = {
        "bench": "drift",
        "config": {
            "window": window,
            "n": n,
            "eval_every": max(1, window // 4),
            "seeds": list(seeds),
            "alarm_sigmas": list(sigmas),
            "quick": quick,
            "estimators": list(DISTANCE_KINDS),
            "drift_kinds": list(DRIFT_KINDS),
        },
        "curves": curves,
    }
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
    return payload
