"""Sliding-window heavy hitters on top of SHE-CM.

The paper's introduction motivates SHE with financial trackers and
QoS/intrusion monitors; the bread-and-butter query of those systems is
"which keys exceed a frequency threshold over the last N items?".
Count-Min alone answers point queries; this module adds the classic
candidate-set construction: keep a small exact map of the keys whose
*estimated* windowed count ever crossed the threshold, re-validating
(and expiring) candidates against the sketch on demand.

Because SHE-CM never underestimates through mature counters, a true
heavy hitter is always admitted to the candidate set (no false
dismissals while it stays hot); collisions can admit impostors, which
the re-validation prunes as the window slides — the usual CM
heavy-hitter guarantee, transplanted onto sliding windows.
"""

from __future__ import annotations

import numpy as np

from repro.common.validation import as_key_array, require_positive_float, require_positive_int
from repro.core.she_cm import SheCountMin

__all__ = ["HeavyHitters"]


class HeavyHitters:
    """Threshold heavy hitters over the most recent N items.

    Args:
        window: sliding-window size N.
        threshold: report keys whose windowed count >= this.
        num_counters: SHE-CM size (or pass a prebuilt ``sketch``).
        max_candidates: cap on tracked candidates (oldest-estimate
            entries are evicted first when full).
        sketch: optionally supply a prebuilt frequency backend — a
            :class:`SheCountMin`, or any object with the same
            ``insert_many`` / ``frequency`` / ``frequency_many`` /
            ``config.window`` surface, such as a CM-kind
            :class:`repro.service.StreamEngine` (sharded serving).
    """

    def __init__(
        self,
        window: int,
        threshold: float,
        *,
        num_counters: int = 1 << 14,
        max_candidates: int = 1024,
        sketch=None,
        seed: int = 40,
    ):
        require_positive_int("window", window)
        self.threshold = require_positive_float("threshold", threshold)
        self.max_candidates = require_positive_int("max_candidates", max_candidates)
        self.sketch = (
            sketch
            if sketch is not None
            else SheCountMin(window, num_counters, seed=seed)
        )
        if self.sketch.config.window != window:
            raise ValueError(
                f"sketch window {self.sketch.config.window} != {window}"
            )
        self._candidates: dict[int, float] = {}

    def insert_many(self, keys) -> None:
        """Ingest a batch; admit keys whose estimate crosses the threshold."""
        keys = as_key_array(keys)
        if keys.size == 0:
            return
        self.sketch.insert_many(keys)
        # batch-estimate the batch's distinct keys once
        distinct = np.unique(keys)
        est = self.sketch.frequency_many(distinct)
        hot = distinct[est >= self.threshold]
        for k, e in zip(hot.tolist(), est[est >= self.threshold].tolist()):
            self._candidates[int(k)] = float(e)
        if len(self._candidates) > self.max_candidates:
            self._revalidate()
            if len(self._candidates) > self.max_candidates:
                keep = sorted(
                    self._candidates.items(), key=lambda kv: -kv[1]
                )[: self.max_candidates]
                self._candidates = dict(keep)

    def insert(self, key: int) -> None:
        """Ingest one item."""
        self.insert_many(np.asarray([key], dtype=np.uint64))

    def _revalidate(self) -> None:
        """Re-estimate every candidate; drop the ones that cooled off."""
        if not self._candidates:
            return
        keys = np.fromiter(self._candidates.keys(), dtype=np.uint64)
        est = self.sketch.frequency_many(keys)
        self._candidates = {
            int(k): float(e)
            for k, e in zip(keys.tolist(), est.tolist())
            if e >= self.threshold
        }

    def heavy_hitters(self) -> list[tuple[int, float]]:
        """Current heavy hitters as (key, estimated count), hottest first."""
        self._revalidate()
        return sorted(self._candidates.items(), key=lambda kv: -kv[1])

    def is_heavy(self, key: int) -> bool:
        """Does ``key`` currently estimate at or above the threshold?"""
        return self.sketch.frequency(int(key)) >= self.threshold

    @property
    def memory_bytes(self) -> int:
        """Sketch plus candidate map (16 B per tracked entry)."""
        return self.sketch.memory_bytes + 16 * self.max_candidates

    def reset(self) -> None:
        self.sketch.reset()
        self._candidates.clear()
