"""Cardinality-based anomaly detection on top of SHE-BM / SHE-HLL.

The scan/anomaly detector the paper's intro gestures at: track the
distinct-key count of the most recent window and flag excursions from
a running baseline.  Uses an exponentially-weighted baseline with a
robust (median-absolute-deviation-like) spread estimate so a single
excursion doesn't poison the baseline it is judged against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.validation import require_positive_float, require_positive_int

__all__ = ["CardinalityAnomalyDetector", "AnomalyEvent"]


@dataclass(frozen=True)
class AnomalyEvent:
    """One flagged excursion."""

    t: int
    estimate: float
    baseline: float
    score: float


class CardinalityAnomalyDetector:
    """EWMA baseline + deviation score over windowed cardinality.

    Args:
        sketch: any cardinality sketch (SHE-BM, SHE-HLL, ...).
        check_every: items between checks (typically N/4).
        score_threshold: flag when |estimate - baseline| exceeds this
            many spread units.
        warmup_checks: checks consumed building the baseline before any
            flagging happens.
        ewma: baseline smoothing factor.
    """

    def __init__(
        self,
        sketch,
        *,
        check_every: int,
        score_threshold: float = 4.0,
        warmup_checks: int = 4,
        ewma: float = 0.15,
    ):
        self.sketch = sketch
        self.check_every = require_positive_int("check_every", check_every)
        self.score_threshold = require_positive_float("score_threshold", score_threshold)
        self.warmup_checks = require_positive_int("warmup_checks", warmup_checks)
        self.ewma = require_positive_float("ewma", ewma)
        self._baseline: float | None = None
        self._spread: float = 0.0
        self._checks = 0
        self._since_check = 0
        self.events: list[AnomalyEvent] = []

    def insert_many(self, keys) -> list[AnomalyEvent]:
        """Ingest a batch; returns any events the batch triggered."""
        new: list[AnomalyEvent] = []
        import numpy as np

        keys = np.asarray(keys, dtype=np.uint64)
        pos = 0
        while pos < keys.size:
            take = min(self.check_every - self._since_check, keys.size - pos)
            self.sketch.insert_many(keys[pos : pos + take])
            self._since_check += take
            pos += take
            if self._since_check >= self.check_every:
                self._since_check = 0
                event = self._check()
                if event is not None:
                    new.append(event)
        self.events.extend(new)
        return new

    def _check(self) -> AnomalyEvent | None:
        est = float(self.sketch.cardinality())
        self._checks += 1
        if self._baseline is None:
            self._baseline = est
            self._spread = max(est * 0.1, 1.0)
            return None
        deviation = abs(est - self._baseline)
        score = deviation / max(self._spread, 1e-9)
        flagged = self._checks > self.warmup_checks and score >= self.score_threshold
        if flagged:
            event = AnomalyEvent(
                t=self.sketch.now(), estimate=est, baseline=self._baseline, score=score
            )
        else:
            # only non-anomalous checks update the baseline (robustness)
            self._baseline += self.ewma * (est - self._baseline)
            self._spread += self.ewma * (deviation - self._spread)
            self._spread = max(self._spread, max(self._baseline * 0.02, 1.0))
            event = None
        return event

    @property
    def baseline(self) -> float | None:
        return self._baseline
