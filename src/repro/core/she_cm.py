"""SHE-CM: the Count-Min sketch under SHE (§4.4).

As in the paper, the structure mirrors SHE-BF with counters in place of
bits: one array of M counters, ``k`` hash functions into it, each
insertion incrementing ``k`` counters (after on-demand group cleaning).
Queries ignore counters younger than the window — using them would
break Count-Min's never-underestimate guarantee (§4.4) — and return the
minimum of the mature mapped counters.  In the rare case that *every*
mapped counter is young (probability ``(1/(1+alpha))^k``), we fall back
to the minimum over all mapped counters; this is the only point where a
(documented) underestimate can occur.
"""

from __future__ import annotations

import numpy as np

from repro.common.hashing import HashFamily
from repro.common.validation import as_key_array, require_positive_int
from repro.core.base import FrameKind, SheSketchBase, make_frame
from repro.core.batch import apply_batch
from repro.core.config import SheConfig
from repro.core.csm import UpdateKind

__all__ = ["SheCountMin"]


class SheCountMin(SheSketchBase):
    """Sliding-window Count-Min frequency estimator with SHE cleaning.

    Args:
        window: sliding-window size N (items).
        num_counters: number of counters M.
        num_hashes: k (paper default 8 for SHE-CM).
        alpha: cleaning stretch (paper default 1 for SHE-CM).
        group_width: counters per hardware group (paper default 64).
        frame: ``"hardware"`` or ``"software"``.
        seed: hash-family seed.
    """

    cell_bits = 32

    def __init__(
        self,
        window: int,
        num_counters: int,
        *,
        num_hashes: int = 8,
        alpha: float = 1.0,
        group_width: int = 64,
        frame: FrameKind = "hardware",
        seed: int = 4,
    ):
        super().__init__()
        require_positive_int("num_counters", num_counters)
        self.config = SheConfig(window=window, alpha=alpha, group_width=group_width)
        m = (
            (num_counters // group_width) * group_width
            if frame == "hardware"
            else num_counters
        )
        if m < 1:
            raise ValueError(
                f"num_counters ({num_counters}) must fit at least one group "
                f"of {group_width}"
            )
        self.num_counters = m
        self.num_hashes = require_positive_int("num_hashes", num_hashes)
        self.hashes = HashFamily(self.num_hashes, seed=seed)
        self.frame = make_frame(
            frame,
            self.config,
            m,
            dtype=np.uint32,
            empty_value=0,
            cell_bits=self.cell_bits,
        )

    def _touch_columns(self, keys: np.ndarray, times: np.ndarray):
        # item-major times: apply_columnar expands to per-touch
        # times itself (one repeat, inside the kernel)
        idx = self.hashes.indices(keys, self.num_counters)
        return times, idx.reshape(-1), None, UpdateKind.ADD_ONE

    def _insert_at(self, keys: np.ndarray, times: np.ndarray) -> None:
        _, idx, values, kind = self._touch_columns(keys, times)
        touch_times = np.repeat(times, self.num_hashes)
        apply_batch(self.frame, touch_times, idx, values, kind)

    def frequency(self, key: int, t: int | None = None) -> float:
        """Estimate how many times ``key`` appeared in the window."""
        return float(self.frequency_many(np.asarray([key], dtype=np.uint64), t)[0])

    def frequency_many(self, keys, t: int | None = None) -> np.ndarray:
        """Vectorised frequency estimates for a batch of keys."""
        t = self._resolve_time(t)
        keys = as_key_array(keys)
        idx = self.hashes.indices(keys, self.num_counters)
        flat = idx.reshape(-1)
        self.frame.prepare_query(flat, t)
        mature = self.frame.mature_mask(flat, t).reshape(idx.shape)
        counts = self.frame.cells[flat].reshape(idx.shape).astype(np.float64)
        # min over mature counters; fall back to min over all if none mature
        masked = np.where(mature, counts, np.inf)
        est = np.min(masked, axis=1)
        no_mature = ~np.any(mature, axis=1)
        if np.any(no_mature):
            est[no_mature] = np.min(counts[no_mature], axis=1)
        return est

    def _probe_extra(self) -> dict:
        return {"num_counters": self.num_counters, "num_hashes": self.num_hashes}

    @property
    def memory_bytes(self) -> int:
        return self.frame.memory_bytes

    def reset(self) -> None:
        """Clear all state and rewind the clock."""
        self.frame.reset()
        self.t = 0
