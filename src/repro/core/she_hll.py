"""SHE-HLL: HyperLogLog under SHE (§4.3).

Each register is its own group (``w = 1``, so every register carries a
1-bit time mark).  Insertion stores the *rank* (leading-zero count + 1)
of the value hash, max-merged unless the register's mark is stale, in
which case the register restarts from the new rank (§4.3's
``C[i] <- l_zero + 1``).  Queries use only registers in the legal age
band and rescale the standard HLL estimator from the ``k`` legal
registers to the whole array: ``C_hat = alpha_k * k * M / sum(2^-l_j)``,
with Flajolet et al.'s small-range (linear-counting) correction applied
on the legal subsample.
"""

from __future__ import annotations

import numpy as np

from repro.common.hashing import HashFamily, leading_zeros_32
from repro.common.validation import require_positive_int
from repro.core.base import FrameKind, SheSketchBase, make_frame
from repro.core.batch import apply_batch
from repro.core.config import SheConfig
from repro.core.csm import UpdateKind

__all__ = ["SheHyperLogLog", "hll_alpha"]


def hll_alpha(m: int) -> float:
    """Flajolet et al.'s bias-correction constant for ``m`` registers."""
    if m <= 16:
        return 0.673
    if m <= 32:
        return 0.697
    if m <= 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / m)


class SheHyperLogLog(SheSketchBase):
    """Sliding-window HyperLogLog with SHE cleaning.

    Args:
        window: sliding-window size N (items).
        num_registers: number of 5-bit registers M.
        alpha: cleaning stretch (paper default 0.2).
        beta: lower edge of the legal age band.
        frame: ``"hardware"`` or ``"software"``.
        seed: hash seed (register-select and value hashes derive from it).
    """

    cell_bits = 5

    def __init__(
        self,
        window: int,
        num_registers: int,
        *,
        alpha: float = 0.2,
        beta: float = 0.9,
        frame: FrameKind = "hardware",
        seed: int = 3,
    ):
        super().__init__()
        self.num_registers = require_positive_int("num_registers", num_registers)
        # each register is its own group (w = 1), per §4.3
        self.config = SheConfig(window=window, alpha=alpha, group_width=1, beta=beta)
        fam = HashFamily(2, seed=seed)
        self._select = HashFamily(1, seed=int(fam.seeds[0]))
        self._value = HashFamily(1, seed=int(fam.seeds[1]))
        self.frame = make_frame(
            frame,
            self.config,
            self.num_registers,
            dtype=np.uint8,
            empty_value=0,
            cell_bits=self.cell_bits,
        )

    def _touch_columns(self, keys: np.ndarray, times: np.ndarray):
        idx = self._select.indices(keys, self.num_registers)[:, 0]
        ranks = leading_zeros_32(self._value.values(keys)[:, 0]) + 1
        # 5-bit registers saturate at 31
        ranks = np.minimum(ranks, 31)
        return times, idx, ranks, UpdateKind.MAX_RANK

    def _insert_at(self, keys: np.ndarray, times: np.ndarray) -> None:
        apply_batch(self.frame, *self._touch_columns(keys, times))

    def cardinality(self, t: int | None = None) -> float:
        """Estimate the number of distinct keys in the window."""
        t = self._resolve_time(t)
        self.frame.prepare_query_all(t)
        legal = self.frame.legal_groups(t)
        k = int(np.count_nonzero(legal))
        if k == 0:
            return 0.0
        regs = self.frame.cells[legal].astype(np.float64)
        z = float(np.sum(np.exp2(-regs)))
        est_sub = hll_alpha(k) * k * k / z
        if est_sub <= 2.5 * k:
            zeros = int(np.count_nonzero(regs == 0))
            if zeros > 0:
                est_sub = k * float(np.log(k / zeros))
        # rescale from the k-register legal subsample to all M registers
        return est_sub * self.num_registers / k

    def _probe_extra(self) -> dict:
        return {"num_registers": self.num_registers}

    @property
    def memory_bytes(self) -> int:
        return self.frame.memory_bytes

    def reset(self) -> None:
        """Clear all state and rewind the clock."""
        self.frame.reset()
        self.t = 0
