"""SHE-BM: the Bitmap (linear probabilistic counter) under SHE (§4.1).

One hash sets one bit per insertion.  Cardinality queries use the
*legal* age band ``[beta*N, Tcycle)`` (§4.1): groups slightly younger
than the window under-count, aged groups over-count, and averaging over
the band debiases the estimate (Eq. 3 bounds the residual by
``alpha*T/4C``).  With ``u`` zero bits among the ``w * l`` bits of the
``l`` legal groups the estimate is ``-M * ln(u / (w*l))`` — the Whang
et al. MLE rescaled from the legal sample to the whole array.
"""

from __future__ import annotations

import numpy as np

from repro.common.hashing import HashFamily
from repro.common.validation import require_positive_int
from repro.core.base import FrameKind, SheSketchBase, make_frame
from repro.core.batch import apply_batch
from repro.core.config import SheConfig
from repro.core.csm import UpdateKind

__all__ = ["SheBitmap"]


class SheBitmap(SheSketchBase):
    """Sliding-window bitmap cardinality estimator with SHE cleaning.

    Args:
        window: sliding-window size N (items).
        num_bits: number of bits M.
        alpha: cleaning stretch (paper default 0.2 for SHE-BM).
        beta: lower edge of the legal age band (fraction of N).
        group_width: cells per hardware group (paper default 64).
        frame: ``"hardware"`` or ``"software"``.
        seed: hash seed.
    """

    cell_bits = 1

    def __init__(
        self,
        window: int,
        num_bits: int,
        *,
        alpha: float = 0.2,
        beta: float = 0.9,
        group_width: int = 64,
        frame: FrameKind = "hardware",
        seed: int = 2,
    ):
        super().__init__()
        require_positive_int("num_bits", num_bits)
        self.config = SheConfig(
            window=window, alpha=alpha, group_width=group_width, beta=beta
        )
        m = (num_bits // group_width) * group_width if frame == "hardware" else num_bits
        if m < 1:
            raise ValueError(
                f"num_bits ({num_bits}) must fit at least one group of {group_width}"
            )
        self.num_bits = m
        self.hashes = HashFamily(1, seed=seed)
        self.frame = make_frame(
            frame, self.config, m, dtype=np.uint8, empty_value=0, cell_bits=self.cell_bits
        )

    def _touch_columns(self, keys: np.ndarray, times: np.ndarray):
        idx = self.hashes.indices(keys, self.num_bits)[:, 0]
        return times, idx, None, UpdateKind.SET_ONE

    def _insert_at(self, keys: np.ndarray, times: np.ndarray) -> None:
        apply_batch(self.frame, *self._touch_columns(keys, times))

    def cardinality(self, t: int | None = None) -> float:
        """Estimate the number of distinct keys in the window."""
        t = self._resolve_time(t)
        self.frame.prepare_query_all(t)
        legal = self.frame.legal_groups(t)
        num_legal = int(np.count_nonzero(legal))
        if num_legal == 0:
            return 0.0
        w = self.frame.group_width
        view = self.frame.cells.reshape(self.frame.num_groups, w)
        legal_bits = num_legal * w
        zeros = legal_bits - int(np.count_nonzero(view[legal]))
        if zeros == 0:
            zeros = 0.5  # saturated: report the max resolvable cardinality
        est = -float(self.num_bits) * float(np.log(zeros / legal_bits))
        return max(est, 0.0)

    def _probe_extra(self) -> dict:
        return {"num_bits": self.num_bits}

    @property
    def memory_bytes(self) -> int:
        return self.frame.memory_bytes

    def reset(self) -> None:
        """Clear all state and rewind the clock."""
        self.frame.reset()
        self.t = 0
