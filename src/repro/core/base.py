"""Shared plumbing for the five SHE sketches.

Each SHE sketch owns one (or, for MinHash, two) *frames* — the cleaning
machinery of §3.2/§3.3 — plus the hash family and query strategy of the
original algorithm.  This module centralises frame construction, the
item clock, and memory accounting so the per-algorithm modules contain
only what the paper actually specifies for them.
"""

from __future__ import annotations

import copy
import inspect
from typing import Literal

import numpy as np

from repro.common.validation import as_key_array, require_non_negative_int
from repro.core.config import SheConfig
from repro.core.hardware_frame import HardwareFrame
from repro.core.software_frame import SoftwareFrame

__all__ = ["FrameKind", "make_frame", "SheSketchBase", "sized_from_memory"]

FrameKind = Literal["hardware", "software"]


def make_frame(
    kind: FrameKind,
    config: SheConfig,
    num_cells: int,
    *,
    dtype,
    empty_value: int,
    cell_bits: int,
):
    """Build the requested frame variant with a uniform signature."""
    if kind == "hardware":
        return HardwareFrame(
            config,
            num_cells,
            dtype=dtype,
            empty_value=empty_value,
            cell_bits=cell_bits,
        )
    if kind == "software":
        return SoftwareFrame(
            config,
            num_cells,
            dtype=dtype,
            empty_value=empty_value,
            cell_bits=cell_bits,
        )
    raise ValueError(f"frame kind must be 'hardware' or 'software', got {kind!r}")


def sized_from_memory(cls, window: int, memory_bytes: int, **kwargs):
    """Build ``cls`` sized for a memory budget (cells + group marks).

    One implementation serves every SHE sketch class: the geometry
    knobs (``alpha`` / ``beta`` / ``group_width``) come from the
    caller's kwargs, falling back to the class constructor's own
    defaults, so each algorithm's paper parameters apply without a
    per-class copy of this method.  Classes without a ``group_width``
    parameter (one cell per group, w = 1) size with ``group_width=1``;
    classes spreading the budget over several arrays declare
    ``memory_streams`` (SHE-MH: 2).
    """
    params = inspect.signature(cls.__init__).parameters

    def knob(name):
        if name in kwargs:
            return kwargs[name]
        p = params.get(name)
        if p is not None and p.default is not inspect.Parameter.empty:
            return p.default
        return None

    cfg_kwargs = {"window": window}
    for name in ("alpha", "beta"):
        value = knob(name)
        if value is not None:
            cfg_kwargs[name] = value
    group_width = knob("group_width")
    cfg_kwargs["group_width"] = 1 if group_width is None else group_width
    cfg = SheConfig(**cfg_kwargs)
    streams = getattr(cls, "memory_streams", 1)
    m = cfg.cells_for_memory(memory_bytes // streams, cls.cell_bits)
    return cls(window, m, **kwargs)


class SheSketchBase:
    """Item clock + common insert/query scaffolding for SHE sketches.

    Subclasses implement ``_insert_at(keys, times)`` to place a batch of
    keys whose arrival times are consecutive integers.  The base class
    maintains ``self.t`` — the count-based clock: the number of items
    inserted so far, which is also the arrival time of the *next* item.
    """

    #: two-stream sketches (SHE-MH shape) override this; executors and
    #: the engine dispatch on it instead of on concrete classes
    two_stream = False

    #: how many equal arrays share a memory budget (SHE-MH: 2)
    memory_streams = 1

    #: shared budget sizing — ``cls.from_memory(window, memory_bytes, **kw)``
    from_memory = classmethod(sized_from_memory)

    def __init__(self) -> None:
        self.t = 0

    # -- clock -------------------------------------------------------------

    def now(self) -> int:
        """Current time = number of items inserted so far."""
        return self.t

    def _resolve_time(self, t: int | None) -> int:
        """Queries default to 'now'; explicit times allow replay tests."""
        if t is None:
            return self.t
        return require_non_negative_int("t", t)

    def advance_to(self, t: int) -> None:
        """Move the clock forward to ``t`` without inserting anything.

        Sharded deployments use this to keep every shard on the union
        stream's time axis: a shard that saw no arrivals lately still
        ages.  Cleaning is lazy, so only the clock moves here; frames
        catch up on the next insert or query.
        """
        t = require_non_negative_int("t", t)
        if t < self.t:
            raise ValueError(f"cannot rewind clock from {self.t} to {t}")
        self.t = t

    def clone_empty(self) -> "SheSketchBase":
        """A fresh, empty sketch with identical geometry and hash seeds.

        Clones are mutually mergeable with the original (and with each
        other), which is exactly what a shard set needs.
        """
        out = copy.deepcopy(self)
        out.reset()
        return out

    # -- introspection -------------------------------------------------------

    def _probe_extra(self) -> dict:
        """Per-algorithm fields merged into :meth:`probe` (override)."""
        return {}

    def probe(self, t: int | None = None) -> dict:
        """Read-only introspection of the sketch's SHE state at ``t``.

        Wraps :func:`repro.obs.probes.frame_probe` over the sketch's
        frame: cell-age distribution vs ``Tcycle``, young/perfect/aged
        counts, legal-band coverage, occupancy, and the cleaning-work
        counters.  Never mutates the frame (no lazy cleaning runs), so
        it is safe to call between inserts at any rate.
        """
        from repro.obs.probes import frame_probe

        t = self._resolve_time(t)
        out = {
            "kind": type(self).__name__,
            "t": t,
            "memory_bytes": self.memory_bytes,
            "frame": frame_probe(self.frame, t),
        }
        out.update(self._probe_extra())
        return out

    # -- insertion ---------------------------------------------------------

    def insert(self, key: int) -> None:
        """Insert one item at the current time."""
        self.insert_many(np.asarray([key], dtype=np.uint64))

    def insert_many(self, keys) -> None:
        """Insert a batch of items at consecutive times, oldest first."""
        arr = as_key_array(keys)
        if arr.size == 0:
            return
        times = self.t + np.arange(arr.size, dtype=np.int64)
        self._insert_at(arr, times)
        self.t += int(arr.size)

    def insert_at(self, keys, times) -> None:
        """Insert a batch with explicit (non-decreasing) arrival times.

        This is the substream entry point: a shard observing part of a
        stream inserts its share of the arrivals at their *union-stream*
        times, so its clock stays aligned with every sibling shard and
        the shards remain mergeable (see :mod:`repro.core.merge`).
        Times must start at or after the current clock; afterwards the
        clock sits just past the last arrival.
        """
        arr = as_key_array(keys)
        times = np.asarray(times, dtype=np.int64)
        if arr.shape != times.shape:
            raise ValueError(
                f"keys ({arr.shape}) and times ({times.shape}) must align"
            )
        if arr.size == 0:
            return
        if int(times[0]) < self.t:
            raise ValueError(
                f"times must start at or after the clock ({self.t}), "
                f"got {int(times[0])}"
            )
        if np.any(np.diff(times) < 0):
            raise ValueError("times must be non-decreasing")
        self._insert_at(arr, times)
        self.t = int(times[-1]) + 1

    def _insert_at(self, keys: np.ndarray, times: np.ndarray) -> None:
        raise NotImplementedError

    # -- columnar fast path --------------------------------------------------

    def _touch_columns(self, keys: np.ndarray, times: np.ndarray):
        """``(touch_times, cell_idx, values, kind)`` for a batch, or ``None``.

        Frame-backed sketches override this with their hashing step;
        both insert paths (legacy ``apply_batch`` and the columnar
        ``apply_columnar``) then consume identical columns.  Returning
        ``None`` means "no columnar form" and the columnar entry falls
        back to ``_insert_at``.
        """
        return None

    def _insert_columnar(self, keys: np.ndarray, times: np.ndarray) -> None:
        from repro.core.batch import apply_columnar

        cols = self._touch_columns(keys, times)
        if cols is None:
            self._insert_at(keys, times)
        else:
            apply_columnar(self.frame, *cols)

    def insert_at_columnar(self, keys, times) -> None:
        """Columnar twin of :meth:`insert_at` (bit-identical results).

        The shared-memory transport's apply entry: consumes ``(keys,
        times)`` column batches straight from ring-buffer views via the
        optimised :func:`repro.core.batch.apply_columnar` kernel.
        """
        arr = as_key_array(keys)
        times = np.asarray(times, dtype=np.int64)
        if arr.shape != times.shape:
            raise ValueError(
                f"keys ({arr.shape}) and times ({times.shape}) must align"
            )
        if arr.size == 0:
            return
        if int(times[0]) < self.t:
            raise ValueError(
                f"times must start at or after the clock ({self.t}), "
                f"got {int(times[0])}"
            )
        if np.any(np.diff(times) < 0):
            raise ValueError("times must be non-decreasing")
        self._insert_columnar(arr, times)
        self.t = int(times[-1]) + 1
