"""Configuration shared by both SHE frame implementations.

The framework (§3) is parameterised by the sliding-window size ``N``,
the cleaning-cycle stretch ``alpha`` (``Tcycle = (1 + alpha) * N``), the
group width ``w`` (hardware version only; the software version sweeps
individual cells) and the legal-age band lower fraction ``beta`` used by
two-sided estimators (§4.1: ages in ``[beta*N, Tcycle)`` are *legal*).

Time is discrete and count-based: the p-th inserted item arrives at
time ``t = p`` (0-indexed).  Time-based windows map onto this under the
paper's uniform-arrival assumption (§5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.validation import (
    require_in_range,
    require_positive_float,
    require_positive_int,
)

__all__ = ["SheConfig"]


@dataclass(frozen=True)
class SheConfig:
    """Parameters of a SHE frame.

    Attributes:
        window: sliding-window size ``N`` in items.
        alpha: cleaning stretch; ``Tcycle = round((1 + alpha) * N)``.
        group_width: cells per group ``w`` (hardware version).
        beta: lower edge of the legal age band as a fraction of ``N``.
    """

    window: int
    alpha: float = 0.2
    group_width: int = 64
    beta: float = 0.9

    def __post_init__(self) -> None:
        require_positive_int("window", self.window)
        require_positive_float("alpha", self.alpha)
        require_positive_int("group_width", self.group_width)
        require_in_range("beta", self.beta, 0.0, 1.0)

    @property
    def t_cycle(self) -> int:
        """Cleaning-cycle length ``Tcycle = (1 + alpha) * N`` in time units."""
        t = int(round((1.0 + self.alpha) * self.window))
        # Tcycle must strictly exceed N or there are no aged cells at all.
        return max(t, self.window + 1)

    @property
    def legal_low(self) -> int:
        """Lower edge of the legal age band, ``beta * N`` in time units."""
        return int(self.beta * self.window)

    def cells_for_memory(self, memory_bytes: int, cell_bits: int) -> int:
        """How many cells fit a memory budget, counting the 1-bit marks.

        Each group of ``w`` cells carries one time-mark bit, so a cell
        costs ``cell_bits + 1/w`` bits.  Returns a multiple of ``w``.
        """
        require_positive_int("memory_bytes", memory_bytes)
        require_positive_int("cell_bits", cell_bits)
        total_bits = memory_bytes * 8
        per_group_bits = self.group_width * cell_bits + 1
        groups = total_bits // per_group_bits
        if groups < 1:
            raise ValueError(
                f"memory budget of {memory_bytes} B cannot hold even one "
                f"group of {self.group_width} cells x {cell_bits} bits"
            )
        return groups * self.group_width
