"""SHE-MH: MinHash under SHE (§4.5).

Two counter arrays ``C1``/``C2`` track two streams; every insertion
updates **all** ``M`` counters with ``min(H_i(x), C_i)`` (classic
M-permutation MinHash), subject to SHE cleaning with one counter per
group (``w = 1``).  A cleaned counter holds the "empty" value — the
maximum 24-bit hash — which is the identity of min.  Similarity is the
match fraction ``u / k`` over the ``k`` counters whose age is legal on
*both* sides (§4.5; Eq. 5 bounds the bias by ``~alpha*T/(2*S_union)``).

Because one insertion touches every counter, the generic touch-list
batching of :mod:`repro.core.batch` would materialise ``B x M`` touches;
instead we process the stream in chunks and compute, per counter, the
suffix of the chunk that survives its last cleaning, exactly as derived
in that module's docstring, then take suffix-minima column-wise.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.common.hashing import splitmix64
from repro.common.validation import as_key_array, require_non_negative_int, require_positive_int
from repro.core.base import FrameKind, make_frame, sized_from_memory
from repro.core.config import SheConfig
from repro.core.hardware_frame import HardwareFrame
from repro.core.software_frame import SoftwareFrame

__all__ = ["SheMinHash"]

_HASH_BITS = 24
_EMPTY = (1 << _HASH_BITS) - 1
_CHUNK = 2048


class SheMinHash:
    """Sliding-window MinHash similarity estimator with SHE cleaning.

    Args:
        window: sliding-window size N (items, per stream).
        num_counters: number of MinHash functions / counters M per side.
        alpha: cleaning stretch (paper default 0.2).
        beta: lower edge of the legal age band.
        frame: ``"hardware"`` or ``"software"``.
        seed: seed for the M column hash functions (shared by both sides,
            as MinHash requires).
    """

    cell_bits = _HASH_BITS

    #: two frames / per-side clocks; dispatch on this, not the class
    two_stream = True

    #: the budget covers both counter arrays
    memory_streams = 2

    #: shared budget sizing (same implementation as SheSketchBase)
    from_memory = classmethod(sized_from_memory)

    def __init__(
        self,
        window: int,
        num_counters: int,
        *,
        alpha: float = 0.2,
        beta: float = 0.9,
        frame: FrameKind = "hardware",
        seed: int = 5,
    ):
        self.num_counters = require_positive_int("num_counters", num_counters)
        self.config = SheConfig(window=window, alpha=alpha, group_width=1, beta=beta)
        rng_state = np.uint64(seed)
        cols = np.arange(self.num_counters, dtype=np.uint64)
        self._col_seeds = splitmix64(cols * np.uint64(0x9E3779B97F4A7C15) + rng_state)
        self.frames = tuple(
            make_frame(
                frame,
                self.config,
                self.num_counters,
                dtype=np.uint32,
                empty_value=_EMPTY,
                cell_bits=self.cell_bits,
            )
            for _ in range(2)
        )
        self.counts = [0, 0]  # per-side item clocks

    # -- insertion ---------------------------------------------------------

    def _column_hashes(self, keys: np.ndarray) -> np.ndarray:
        """24-bit hash of every key under every column function: (B, M)."""
        return (
            splitmix64(keys[:, None] ^ self._col_seeds[None, :])
            & np.uint64(_EMPTY)
        ).astype(np.uint32)

    def insert(self, side: int, key: int) -> None:
        """Insert one item into stream ``side`` (0 or 1)."""
        self.insert_many(side, np.asarray([key], dtype=np.uint64))

    def insert_many(self, side: int, keys) -> None:
        """Insert a batch into stream ``side`` at consecutive times."""
        if side not in (0, 1):
            raise ValueError(f"side must be 0 or 1, got {side}")
        keys = as_key_array(keys)
        frame = self.frames[side]
        t = self.counts[side]
        for lo in range(0, keys.size, _CHUNK):
            chunk = keys[lo : lo + _CHUNK]
            times = t + lo + np.arange(chunk.size, dtype=np.int64)
            self._insert_chunk(frame, chunk, times)
        self.counts[side] += int(keys.size)

    def insert_at(self, side: int, keys, times) -> None:
        """Insert a substream batch with explicit (non-decreasing) times.

        The sharded-service counterpart of the base sketches'
        ``insert_at``: arrivals carry their union-stream times, which may
        be sparse (a shard sees only its share of the stream), so sibling
        shards stay clock-aligned and mergeable.  Times must start at or
        after the side's clock; afterwards the clock sits just past the
        last arrival.
        """
        if side not in (0, 1):
            raise ValueError(f"side must be 0 or 1, got {side}")
        keys = as_key_array(keys)
        times = np.asarray(times, dtype=np.int64)
        if keys.shape != times.shape:
            raise ValueError(
                f"keys ({keys.shape}) and times ({times.shape}) must align"
            )
        if keys.size == 0:
            return
        if int(times[0]) < self.counts[side]:
            raise ValueError(
                f"times must start at or after the side-{side} clock "
                f"({self.counts[side]}), got {int(times[0])}"
            )
        if np.any(np.diff(times) < 0):
            raise ValueError("times must be non-decreasing")
        frame = self.frames[side]
        for lo in range(0, keys.size, _CHUNK):
            self._insert_chunk(frame, keys[lo : lo + _CHUNK], times[lo : lo + _CHUNK])
        self.counts[side] = int(times[-1]) + 1

    def insert_at_columnar(self, side: int, keys, times) -> None:
        """Columnar twin of :meth:`insert_at`.

        SHE-MH's chunk kernel is already a columnar suffix-minima scan
        with no per-item work, so both transports share it verbatim.
        """
        self.insert_at(side, keys, times)

    def advance_to(self, t: int, side: int | None = None) -> None:
        """Move one side's clock (or both) forward without inserting."""
        t = require_non_negative_int("t", t)
        sides = (0, 1) if side is None else (side,)
        for s in sides:
            if t < self.counts[s]:
                raise ValueError(
                    f"cannot rewind side-{s} clock from {self.counts[s]} to {t}"
                )
        for s in sides:
            self.counts[s] = t

    def clone_empty(self) -> "SheMinHash":
        """A fresh, empty sketch with identical geometry and hash seeds."""
        out = copy.deepcopy(self)
        out.reset()
        return out

    def _insert_chunk(self, frame, keys: np.ndarray, times: np.ndarray) -> None:
        b = keys.size
        t0 = int(times[0])
        t1 = int(times[-1])
        values = self._column_hashes(keys)  # (B, M)
        # suffix minima over the chunk: sm[i, j] = min(values[i:, j])
        sm = np.minimum.accumulate(values[::-1], axis=0)[::-1]
        m = self.num_counters

        if isinstance(frame, HardwareFrame):
            d = frame.offsets
            tc = frame.t_cycle
            e_first = (t0 + d) // tc
            e_last = (t1 + d) // tc
            flipped = e_last > e_first
            # survivors start at the first touch at/after the last flip
            # inside the chunk (searchsorted handles sparse times)
            start = np.zeros(m, dtype=np.int64)
            flip_t = e_last * tc - d
            if np.any(flipped):
                start[flipped] = np.searchsorted(times, flip_t[flipped], side="left")
            cleaned = flipped | (frame.marks != (e_last % 2).astype(np.uint8))
            frame.marks[:] = (e_last % 2).astype(np.uint8)
            # this fast path bypasses check_groups; keep its telemetry honest
            frame.cleaning_checks += 1
            n_cleaned = int(np.count_nonzero(cleaned))
            frame.groups_cleaned += n_cleaned
            frame.cells_cleaned += n_cleaned
        elif isinstance(frame, SoftwareFrame):
            frame.advance(t0)
            j = np.arange(m, dtype=np.int64)
            big_b = frame._boundaries_at(t1)
            b_j = ((big_b - j) // m) * m + j
            clean_t = -((-b_j * frame.t_cycle) // m)
            cleaned = clean_t > t0
            start = np.clip(np.searchsorted(times, clean_t, side="left"), 0, b - 1)
            frame.advance(t1)
        else:  # pragma: no cover - closed set of frames
            raise TypeError(f"unsupported frame type {type(frame).__name__}")

        candidate = sm[start, np.arange(m)]
        frame.cells[cleaned] = frame.empty_value
        np.minimum(frame.cells, candidate, out=frame.cells)

    # -- introspection -------------------------------------------------------

    def probe(self, t: int | None = None) -> dict:
        """Read-only SHE introspection of both sides' frames.

        Mirrors :meth:`repro.core.base.SheSketchBase.probe` but reports
        one frame per stream side (each at its own clock unless an
        explicit ``t`` is given) — the two-stream shape of SHE-MH.
        """
        from repro.obs.probes import frame_probe

        times = (
            (self.counts[0], self.counts[1])
            if t is None
            else (require_non_negative_int("t", t),) * 2
        )
        return {
            "kind": type(self).__name__,
            "t": max(times),
            "memory_bytes": self.memory_bytes,
            "num_counters": self.num_counters,
            "frames": [
                frame_probe(frame, side_t)
                for frame, side_t in zip(self.frames, times)
            ],
        }

    # -- query ---------------------------------------------------------------

    def similarity(self, t: int | None = None) -> float:
        """Estimate the Jaccard similarity of the two windowed streams.

        Uses each side's own clock unless an explicit time is given;
        only counters legal on *both* sides participate.
        """
        t0 = self.counts[0] if t is None else t
        t1 = self.counts[1] if t is None else t
        f0, f1 = self.frames
        f0.prepare_query_all(t0)
        f1.prepare_query_all(t1)
        legal = f0.legal_groups(t0) & f1.legal_groups(t1)
        k = int(np.count_nonzero(legal))
        if k == 0:
            return 0.0
        u = int(np.count_nonzero(f0.cells[legal] == f1.cells[legal]))
        return u / k

    @property
    def memory_bytes(self) -> int:
        return self.frames[0].memory_bytes + self.frames[1].memory_bytes

    def reset(self) -> None:
        """Clear both sides and rewind the clocks."""
        for f in self.frames:
            f.reset()
        self.counts = [0, 0]
