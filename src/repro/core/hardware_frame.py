"""Hardware-version SHE frame: grouped cells with 1-bit time marks (§3.3).

The cell array is split into ``G`` groups of ``w`` contiguous cells.
Each group ``gid`` has a fixed time offset ``d_gid = -floor(Tcycle *
gid / G)`` and a stored 1-bit mark ``m[gid]``.  The *current* mark of a
group, ``floor((t + d_gid) / Tcycle) mod 2``, flips once per cleaning
cycle; whenever a touched group's stored mark disagrees, the whole group
is lazily reset (Algorithm 1: ``CheckGroup``).  The group's *age* —
time since its virtual cleaning instant — is ``(t + d_gid) mod Tcycle``.

This reproduces on-demand + group cleaning exactly, including the known
failure mode: a group untouched for two full cycles wraps its mark back
to the current value and stale cells survive (quantified by Eq. 1;
see :mod:`repro.analysis.ondemand`).
"""

from __future__ import annotations

import numpy as np

from repro.common.validation import require_positive_int
from repro.core.config import SheConfig

__all__ = ["HardwareFrame"]


class HardwareFrame:
    """Grouped, time-marked cell array — the SHE hardware version.

    Args:
        config: frame parameters (window, alpha, group width, beta).
        num_cells: total number of cells ``M`` (multiple of ``w``).
        dtype: NumPy dtype of a cell.
        empty_value: value a cleaned cell takes (0 for BF/BM/CM/HLL,
            the max hash value for MinHash).
        cell_bits: bits a cell costs on hardware (for memory accounting;
            may be narrower than the NumPy dtype used to store it).
    """

    def __init__(
        self,
        config: SheConfig,
        num_cells: int,
        *,
        dtype=np.uint8,
        empty_value: int = 0,
        cell_bits: int = 1,
    ):
        self.config = config
        self.num_cells = require_positive_int("num_cells", num_cells)
        self.group_width = config.group_width
        if self.num_cells % self.group_width != 0:
            raise ValueError(
                f"num_cells ({num_cells}) must be a multiple of the group "
                f"width ({self.group_width})"
            )
        self.num_groups = self.num_cells // self.group_width
        self.t_cycle = config.t_cycle
        self.window = config.window
        self.cell_bits = require_positive_int("cell_bits", cell_bits)
        self.empty_value = empty_value
        self.cells = np.full(self.num_cells, empty_value, dtype=dtype)
        # d_gid = -floor(Tcycle * gid / G): offsets evenly spaced over a cycle.
        gids = np.arange(self.num_groups, dtype=np.int64)
        self.offsets = -((self.t_cycle * gids) // self.num_groups)
        # Initialise stored marks to the current marks at t = 0 so the
        # (already empty) array does not need a spurious first cleaning.
        self.marks = self._current_marks_all(0)
        # cleaning-work telemetry (read by repro.obs.probes): how many
        # CheckGroup passes ran, and how many groups/cells they reset
        self.cleaning_checks = 0
        self.groups_cleaned = 0
        self.cells_cleaned = 0

    # -- mark arithmetic ---------------------------------------------------

    def _current_marks(self, gids: np.ndarray, t: int) -> np.ndarray:
        """Current 1-bit marks of ``gids`` at time ``t`` (Algorithm 1 l.2)."""
        return (((t + self.offsets[gids]) // self.t_cycle) % 2).astype(np.uint8)

    def _current_marks_all(self, t: int) -> np.ndarray:
        return (((t + self.offsets) // self.t_cycle) % 2).astype(np.uint8)

    def group_of(self, indices: np.ndarray) -> np.ndarray:
        """Group id of each cell index."""
        return np.asarray(indices, dtype=np.int64) // self.group_width

    # -- cleaning ----------------------------------------------------------

    def check_groups(self, gids: np.ndarray, t: int) -> None:
        """``CheckGroup`` for a batch of group ids: lazily reset stale ones."""
        self.cleaning_checks += 1
        gids = np.unique(np.asarray(gids, dtype=np.int64))
        cur = self._current_marks(gids, t)
        mask = self.marks[gids] != cur
        stale = gids[mask]
        if stale.size:
            view = self.cells.reshape(self.num_groups, self.group_width)
            view[stale] = self.empty_value
            self.marks[stale] = cur[mask]
            self.groups_cleaned += int(stale.size)
            self.cells_cleaned += int(stale.size) * self.group_width

    def check_all_groups(self, t: int) -> None:
        """Check every group — used by whole-array queries (BM/HLL/MH)."""
        self.cleaning_checks += 1
        cur = self._current_marks_all(t)
        stale = self.marks != cur
        n_stale = int(np.count_nonzero(stale))
        if n_stale:
            view = self.cells.reshape(self.num_groups, self.group_width)
            view[stale] = self.empty_value
            self.marks[stale] = cur[stale]
            self.groups_cleaned += n_stale
            self.cells_cleaned += n_stale * self.group_width

    # -- frame protocol ----------------------------------------------------

    def prepare_insert(self, indices: np.ndarray, t: int) -> None:
        """Clean the groups the insertion touches (on-demand cleaning)."""
        self.check_groups(self.group_of(indices), t)

    def prepare_query(self, indices: np.ndarray, t: int) -> None:
        """Clean the groups a point query touches before reading them."""
        self.check_groups(self.group_of(indices), t)

    def prepare_query_all(self, t: int) -> None:
        """Clean every group before a whole-array query."""
        self.check_all_groups(t)

    def ages(self, indices: np.ndarray, t: int) -> np.ndarray:
        """Age (time since virtual cleaning) of each cell's group."""
        gids = self.group_of(indices)
        return (t + self.offsets[gids]) % self.t_cycle

    def group_ages(self, t: int) -> np.ndarray:
        """Ages of all ``G`` groups, shape ``(G,)``."""
        return (t + self.offsets) % self.t_cycle

    def all_cell_ages(self, t: int) -> np.ndarray:
        """Ages of all ``M`` cells (each cell inherits its group's age)."""
        return np.repeat(self.group_ages(t), self.group_width)

    def mature_mask(self, indices: np.ndarray, t: int) -> np.ndarray:
        """True where the cell is perfect or aged (age >= N), §3.2."""
        return self.ages(indices, t) >= self.window

    def legal_mask(self, indices: np.ndarray, t: int) -> np.ndarray:
        """True where the cell's age lies in the legal band [beta*N, Tcycle)."""
        return self.ages(indices, t) >= self.config.legal_low

    def legal_groups(self, t: int) -> np.ndarray:
        """Boolean mask over groups whose age is in the legal band."""
        return self.group_ages(t) >= self.config.legal_low

    def reset(self) -> None:
        """Return the frame to its empty t=0 state."""
        self.cells.fill(self.empty_value)
        self.marks = self._current_marks_all(0)
        self.cleaning_checks = 0
        self.groups_cleaned = 0
        self.cells_cleaned = 0

    @property
    def memory_bytes(self) -> int:
        """Hardware memory: M cells of ``cell_bits`` plus one mark bit/group."""
        bits = self.num_cells * self.cell_bits + self.num_groups
        return (bits + 7) // 8
