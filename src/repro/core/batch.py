"""Exact vectorised batch updates for both SHE frames.

Inserting a large stream item-by-item from Python is prohibitively slow,
but SHE's cleaning semantics interleave with insertion order, so naive
"hash everything, scatter once" batching would be *wrong*.  This module
implements batch insertion that is bit-exact with the per-item
definition, derived as follows.

Hardware frame (parity marks, Algorithm 1).  Consider one group and the
sequence of its touches inside a batch, in time order, each touch
carrying the parity ``p_i = floor((t_i + d_g)/Tcycle) mod 2`` of the
group's current mark at that instant.  ``CheckGroup`` resets the group
exactly at touches where ``p_i`` differs from the running stored mark,
and the stored mark then becomes ``p_i``.  Hence after the batch:

* the surviving updates are precisely the maximal constant-parity
  *suffix* of the touch sequence;
* the group was reset during the batch iff the suffix does not extend
  to the first touch **or** the first touch's parity differs from the
  pre-batch stored mark;
* the stored mark ends up equal to the last touch's parity.

Note this preserves the documented failure mode: two flips with no
touch in between leave the parity equal and no reset happens (Eq. 1).

Software frame (sweeping cleaner).  A write to cell ``j`` at time
``t_i`` survives to the end of the batch iff the sweeper does not cross
``j`` in ``(t_i, t_end]`` — i.e. iff the cell's latest cleaning time as
of ``t_end`` is ``<= t_i``.  So: compute survivors, advance the sweep to
``t_end``, then scatter only the survivors.

All five CSM update kinds are commutative and idempotent-safe under
this regrouping (SET, ADD via ``np.add.at``, MAX/MIN via ``ufunc.at``).
"""

from __future__ import annotations

import numpy as np

from repro.core.csm import UpdateKind
from repro.core.hardware_frame import HardwareFrame
from repro.core.software_frame import SoftwareFrame

__all__ = ["apply_batch"]


def _scatter(cells: np.ndarray, idx: np.ndarray, values: np.ndarray | None, kind: UpdateKind) -> None:
    """Apply update kind ``F`` for (possibly duplicated) cell indices."""
    if idx.size == 0:
        return
    if kind is UpdateKind.SET_ONE:
        cells[idx] = 1
    elif kind is UpdateKind.ADD_ONE:
        np.add.at(cells, idx, 1)
    elif kind is UpdateKind.MAX_RANK:
        np.maximum.at(cells, idx, values.astype(cells.dtype))
    elif kind is UpdateKind.MIN_HASH:
        np.minimum.at(cells, idx, values.astype(cells.dtype))
    else:  # pragma: no cover - enum is closed
        raise AssertionError(f"unhandled update kind {kind!r}")


def _apply_batch_hardware(
    frame: HardwareFrame,
    times: np.ndarray,
    cell_idx: np.ndarray,
    values: np.ndarray | None,
    kind: UpdateKind,
) -> None:
    gids = cell_idx // frame.group_width
    parity = (((times + frame.offsets[gids]) // frame.t_cycle) % 2).astype(np.uint8)

    # Sort-free derivation (touches arrive in non-decreasing time order):
    # fancy assignment applies writes in order, so `a[idx] = v` leaves
    # each group's LAST touch — and reversed, its FIRST touch.
    g32 = frame.num_groups
    last_parity = np.empty(g32, dtype=np.uint8)
    last_parity[gids] = parity
    first_parity = np.empty(g32, dtype=np.uint8)
    first_parity[gids[::-1]] = parity[::-1]

    # the last opposite-parity touch time per group: every touch at or
    # before it is discarded by a later CheckGroup reset
    opposite = parity != last_parity[gids]
    last_flip = np.full(g32, -1, dtype=np.int64)
    if np.any(opposite):
        np.maximum.at(last_flip, gids[opposite], times[opposite])
    survivors = times > last_flip[gids]

    touched = np.zeros(g32, dtype=bool)
    touched[gids] = True
    cleaned = touched & ((last_flip >= 0) | (frame.marks != first_parity))

    frame.cleaning_checks += 1
    n_cleaned = int(np.count_nonzero(cleaned))
    if n_cleaned:
        view = frame.cells.reshape(frame.num_groups, frame.group_width)
        view[cleaned] = frame.empty_value
        frame.groups_cleaned += n_cleaned
        frame.cells_cleaned += n_cleaned * frame.group_width
    frame.marks[gids] = parity  # in order: each group keeps its last mark

    _scatter(
        frame.cells,
        cell_idx[survivors],
        None if values is None else values[survivors],
        kind,
    )


def _apply_batch_software(
    frame: SoftwareFrame,
    times: np.ndarray,
    cell_idx: np.ndarray,
    values: np.ndarray | None,
    kind: UpdateKind,
) -> None:
    t_end = int(times[-1])
    j = cell_idx.astype(np.int64)
    big_b = frame._boundaries_at(t_end)
    b_j = ((big_b - j) // frame.num_cells) * frame.num_cells + j
    clean_t = -((-b_j * frame.t_cycle) // frame.num_cells)
    survivors = clean_t <= times
    frame.advance(t_end)
    _scatter(
        frame.cells,
        cell_idx[survivors],
        None if values is None else values[survivors],
        kind,
    )


def apply_batch(
    frame,
    times: np.ndarray,
    cell_idx: np.ndarray,
    values: np.ndarray | None,
    kind: UpdateKind,
) -> None:
    """Apply a batch of timestamped cell updates to either frame kind.

    Args:
        frame: a :class:`HardwareFrame` or :class:`SoftwareFrame`.
        times: arrival time of each touch (non-decreasing), ``int64``.
        cell_idx: touched cell index per touch (same length).
        values: per-touch operand for MAX_RANK / MIN_HASH, else ``None``.
        kind: which CSM update function to apply.
    """
    if times.size == 0:
        return
    times = np.asarray(times, dtype=np.int64)
    cell_idx = np.asarray(cell_idx, dtype=np.int64)
    if isinstance(frame, HardwareFrame):
        _apply_batch_hardware(frame, times, cell_idx, values, kind)
    elif isinstance(frame, SoftwareFrame):
        _apply_batch_software(frame, times, cell_idx, values, kind)
    else:
        raise TypeError(f"unsupported frame type {type(frame).__name__}")
