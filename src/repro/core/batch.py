"""Exact vectorised batch updates for both SHE frames.

Inserting a large stream item-by-item from Python is prohibitively slow,
but SHE's cleaning semantics interleave with insertion order, so naive
"hash everything, scatter once" batching would be *wrong*.  This module
implements batch insertion that is bit-exact with the per-item
definition, derived as follows.

Hardware frame (parity marks, Algorithm 1).  Consider one group and the
sequence of its touches inside a batch, in time order, each touch
carrying the parity ``p_i = floor((t_i + d_g)/Tcycle) mod 2`` of the
group's current mark at that instant.  ``CheckGroup`` resets the group
exactly at touches where ``p_i`` differs from the running stored mark,
and the stored mark then becomes ``p_i``.  Hence after the batch:

* the surviving updates are precisely the maximal constant-parity
  *suffix* of the touch sequence;
* the group was reset during the batch iff the suffix does not extend
  to the first touch **or** the first touch's parity differs from the
  pre-batch stored mark;
* the stored mark ends up equal to the last touch's parity.

Note this preserves the documented failure mode: two flips with no
touch in between leave the parity equal and no reset happens (Eq. 1).

Software frame (sweeping cleaner).  A write to cell ``j`` at time
``t_i`` survives to the end of the batch iff the sweeper does not cross
``j`` in ``(t_i, t_end]`` — i.e. iff the cell's latest cleaning time as
of ``t_end`` is ``<= t_i``.  So: compute survivors, advance the sweep to
``t_end``, then scatter only the survivors.

All five CSM update kinds are commutative and idempotent-safe under
this regrouping (SET, ADD via ``np.add.at``, MAX/MIN via ``ufunc.at``).
"""

from __future__ import annotations

import threading

import numpy as np

from repro.core.csm import UpdateKind
from repro.core.hardware_frame import HardwareFrame
from repro.core.software_frame import SoftwareFrame

__all__ = ["apply_batch", "apply_columnar"]


def _pow2_shift(v: int) -> int | None:
    """log2 of ``v`` when it is a positive power of two, else ``None``."""
    v = int(v)
    if v > 0 and (v & (v - 1)) == 0:
        return v.bit_length() - 1
    return None


def _scatter(cells: np.ndarray, idx: np.ndarray, values: np.ndarray | None, kind: UpdateKind) -> None:
    """Apply update kind ``F`` for (possibly duplicated) cell indices."""
    if idx.size == 0:
        return
    if kind is UpdateKind.SET_ONE:
        cells[idx] = 1
    elif kind is UpdateKind.ADD_ONE:
        np.add.at(cells, idx, 1)
    elif kind is UpdateKind.MAX_RANK:
        np.maximum.at(cells, idx, values.astype(cells.dtype))
    elif kind is UpdateKind.MIN_HASH:
        np.minimum.at(cells, idx, values.astype(cells.dtype))
    else:  # pragma: no cover - enum is closed
        raise AssertionError(f"unhandled update kind {kind!r}")


def _apply_batch_hardware(
    frame: HardwareFrame,
    times: np.ndarray,
    cell_idx: np.ndarray,
    values: np.ndarray | None,
    kind: UpdateKind,
) -> None:
    gids = cell_idx // frame.group_width
    parity = (((times + frame.offsets[gids]) // frame.t_cycle) % 2).astype(np.uint8)

    # Sort-free derivation (touches arrive in non-decreasing time order):
    # fancy assignment applies writes in order, so `a[idx] = v` leaves
    # each group's LAST touch — and reversed, its FIRST touch.
    g32 = frame.num_groups
    last_parity = np.empty(g32, dtype=np.uint8)
    last_parity[gids] = parity
    first_parity = np.empty(g32, dtype=np.uint8)
    first_parity[gids[::-1]] = parity[::-1]

    # the last opposite-parity touch time per group: every touch at or
    # before it is discarded by a later CheckGroup reset
    opposite = parity != last_parity[gids]
    last_flip = np.full(g32, -1, dtype=np.int64)
    if np.any(opposite):
        np.maximum.at(last_flip, gids[opposite], times[opposite])
    survivors = times > last_flip[gids]

    touched = np.zeros(g32, dtype=bool)
    touched[gids] = True
    cleaned = touched & ((last_flip >= 0) | (frame.marks != first_parity))

    frame.cleaning_checks += 1
    n_cleaned = int(np.count_nonzero(cleaned))
    if n_cleaned:
        view = frame.cells.reshape(frame.num_groups, frame.group_width)
        view[cleaned] = frame.empty_value
        frame.groups_cleaned += n_cleaned
        frame.cells_cleaned += n_cleaned * frame.group_width
    frame.marks[gids] = parity  # in order: each group keeps its last mark

    _scatter(
        frame.cells,
        cell_idx[survivors],
        None if values is None else values[survivors],
        kind,
    )


def _apply_batch_software(
    frame: SoftwareFrame,
    times: np.ndarray,
    cell_idx: np.ndarray,
    values: np.ndarray | None,
    kind: UpdateKind,
) -> None:
    t_end = int(times[-1])
    j = cell_idx.astype(np.int64)
    big_b = frame._boundaries_at(t_end)
    b_j = ((big_b - j) // frame.num_cells) * frame.num_cells + j
    clean_t = -((-b_j * frame.t_cycle) // frame.num_cells)
    survivors = clean_t <= times
    frame.advance(t_end)
    _scatter(
        frame.cells,
        cell_idx[survivors],
        None if values is None else values[survivors],
        kind,
    )


def apply_batch(
    frame,
    times: np.ndarray,
    cell_idx: np.ndarray,
    values: np.ndarray | None,
    kind: UpdateKind,
) -> None:
    """Apply a batch of timestamped cell updates to either frame kind.

    Args:
        frame: a :class:`HardwareFrame` or :class:`SoftwareFrame`.
        times: arrival time of each touch (non-decreasing), ``int64``.
        cell_idx: touched cell index per touch (same length).
        values: per-touch operand for MAX_RANK / MIN_HASH, else ``None``.
        kind: which CSM update function to apply.
    """
    if times.size == 0:
        return
    times = np.asarray(times, dtype=np.int64)
    cell_idx = np.asarray(cell_idx, dtype=np.int64)
    if isinstance(frame, HardwareFrame):
        _apply_batch_hardware(frame, times, cell_idx, values, kind)
    elif isinstance(frame, SoftwareFrame):
        _apply_batch_software(frame, times, cell_idx, values, kind)
    else:
        raise TypeError(f"unsupported frame type {type(frame).__name__}")


# -- columnar fast path -------------------------------------------------------
#
# ``apply_columnar`` is the zero-copy transport's apply entry: the same
# batch semantics as :func:`apply_batch` (bit-identical results, pinned
# by tests/core/test_columnar.py), reworked for throughput:
#
# * the ADD_ONE scatter passes a dtype-matched operand so ``np.add.at``
#   takes NumPy's fast indexed-loop path instead of the generic
#   buffered one (~50x on uint32 cells);
# * ``last_flip`` uses in-order fancy assignment instead of
#   ``np.maximum.at`` — touches arrive in non-decreasing time order, so
#   the last write per group IS the max opposite-parity time;
# * group ids and mark parities use arithmetic shifts when the group
#   width / ``Tcycle`` are powers of two (exact for int64 under floor
#   semantics, including the negative phases offsets can produce).
#
# The legacy ``apply_batch`` is kept untouched as the pickle-transport
# fallback path.


def _scatter_columnar(
    cells: np.ndarray, idx: np.ndarray, values: np.ndarray | None, kind: UpdateKind
) -> None:
    """Dtype-matched :func:`_scatter`: keeps ``ufunc.at`` on its fast path."""
    if idx.size == 0:
        return
    if kind is UpdateKind.SET_ONE:
        cells[idx] = 1
    elif kind is UpdateKind.ADD_ONE:
        np.add.at(cells, idx, cells.dtype.type(1))
    elif kind is UpdateKind.MAX_RANK:
        np.maximum.at(cells, idx, values.astype(cells.dtype, copy=False))
    elif kind is UpdateKind.MIN_HASH:
        np.minimum.at(cells, idx, values.astype(cells.dtype, copy=False))
    else:  # pragma: no cover - enum is closed
        raise AssertionError(f"unhandled update kind {kind!r}")


# sentinel parity for groups no touch landed in; real parities are 0/1
_UNTOUCHED = np.uint8(2)


_scratch_pool = threading.local()


def _hw_scratch(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Two reusable ``int64`` work buffers of at least ``n`` elements.

    The per-touch arrays here run to megabytes per flush; allocating
    them fresh every call keeps the working set perpetually cold.  The
    buffers are thread-local and only live within one kernel call, so
    interleaved applies to different frames cannot alias.
    """
    bufs = getattr(_scratch_pool, "bufs", None)
    if bufs is None or bufs[0].size < n:
        cap = max(1 << (max(n, 2) - 1).bit_length(), 1024)
        bufs = (np.empty(cap, np.int64), np.empty(cap, np.int64))
        _scratch_pool.bufs = bufs
    return bufs[0][:n], bufs[1][:n]


def _apply_columnar_hardware(
    frame: HardwareFrame,
    times: np.ndarray,
    cell_idx: np.ndarray,
    values: np.ndarray | None,
    kind: UpdateKind,
) -> None:
    g_buf, p_buf = _hw_scratch(cell_idx.size)
    gw_shift = _pow2_shift(frame.group_width)
    if gw_shift is not None:
        gids = np.right_shift(cell_idx, gw_shift, out=g_buf)
    else:
        gids = np.floor_divide(cell_idx, frame.group_width, out=g_buf)

    # gids are in-range by construction; mode="clip" skips the per-
    # element bounds check, which is the bulk of np.take's cost here
    phase = np.take(frame.offsets, gids, out=p_buf, mode="clip")
    if times.size != cell_idx.size:
        # item-major layout: one time per item, k touches per item
        times = np.repeat(times, cell_idx.size // times.size)
    phase += times
    tc_shift = _pow2_shift(frame.t_cycle)
    if tc_shift is not None:
        # floor-div / floor-mod by 2**s == arithmetic shift / low bit,
        # for negative phases too
        np.right_shift(phase, tc_shift, out=phase)
        np.bitwise_and(phase, 1, out=phase)
    else:
        np.floor_divide(phase, frame.t_cycle, out=phase)
        np.remainder(phase, 2, out=phase)
    parity = phase.astype(np.uint8)

    g32 = frame.num_groups
    last_parity = np.full(g32, _UNTOUCHED, dtype=np.uint8)
    last_parity[gids] = parity
    touched = last_parity != _UNTOUCHED

    opposite = parity != last_parity[gids]
    n_opp = int(np.count_nonzero(opposite))

    surv_idx: np.ndarray | None = None  # None == every touch survives
    undo_idx: np.ndarray | None = None  # ADD_ONE-only deferred removal
    if n_opp == 0:
        # No group flipped parity inside this batch: every touch
        # survives, and each group's first parity == its last.
        cleaned = touched & (frame.marks != last_parity)
    elif int(times[-1]) - int(times[0]) < frame.t_cycle:
        # The batch spans less than one Tcycle, so each group crosses
        # at most one parity boundary: the opposite-parity touches are
        # exactly each flipped group's prefix.  Survivors collapse to
        # ``~opposite`` and the first parity is the last xored with
        # the flip — no reverse scatter, no last-flip scan.
        opp_pos = np.flatnonzero(opposite)
        flipped = np.zeros(g32, dtype=np.uint8)
        flipped[gids.take(opp_pos)] = 1
        first_parity = last_parity ^ flipped
        cleaned = touched & (
            flipped.view(bool) | (frame.marks != first_parity)
        )
        if kind is UpdateKind.ADD_ONE:
            # cheaper than compressing the survivors: scatter every
            # touch, then subtract the few opposite ones back out —
            # exact under modular cell arithmetic
            undo_idx = cell_idx.take(opp_pos)
        else:
            surv_idx = np.flatnonzero(~opposite)
    else:
        # General path (batch at least one Tcycle wide): groups may
        # flip several times, so scan for each group's last flip.
        first_parity = np.empty(g32, dtype=np.uint8)
        first_parity[gids[::-1]] = parity[::-1]
        last_flip = np.full(g32, -1, dtype=np.int64)
        # in-order fancy assignment: last opposite touch per group ==
        # its max opposite time, because times are non-decreasing
        last_flip[gids[opposite]] = times[opposite]
        surv_idx = np.flatnonzero(times > last_flip[gids])
        cleaned = touched & ((last_flip >= 0) | (frame.marks != first_parity))

    frame.cleaning_checks += 1
    n_cleaned = int(np.count_nonzero(cleaned))
    if n_cleaned:
        view = frame.cells.reshape(frame.num_groups, frame.group_width)
        view[cleaned] = frame.empty_value
        frame.groups_cleaned += n_cleaned
        frame.cells_cleaned += n_cleaned * frame.group_width
    # equivalent to ``frame.marks[gids] = parity`` (last write per group
    # wins) without re-reading the per-touch arrays
    np.copyto(frame.marks, last_parity, where=touched)

    if surv_idx is None:
        _scatter_columnar(frame.cells, cell_idx, values, kind)
        if undo_idx is not None and undo_idx.size:
            np.subtract.at(
                frame.cells, undo_idx, frame.cells.dtype.type(1)
            )
    else:
        _scatter_columnar(
            frame.cells,
            cell_idx.take(surv_idx),
            None if values is None else values.take(surv_idx),
            kind,
        )


def _apply_columnar_software(
    frame: SoftwareFrame,
    times: np.ndarray,
    cell_idx: np.ndarray,
    values: np.ndarray | None,
    kind: UpdateKind,
) -> None:
    t_end = int(times[-1])
    j = cell_idx.astype(np.int64, copy=False)
    big_b = frame._boundaries_at(t_end)
    b_j = ((big_b - j) // frame.num_cells) * frame.num_cells + j
    clean_t = -((-b_j * frame.t_cycle) // frame.num_cells)
    survivors = clean_t <= times
    frame.advance(t_end)
    _scatter_columnar(
        frame.cells,
        cell_idx[survivors],
        None if values is None else values[survivors],
        kind,
    )


def apply_columnar(
    frame,
    times: np.ndarray,
    cell_idx: np.ndarray,
    values: np.ndarray | None,
    kind: UpdateKind,
) -> None:
    """Optimised columnar twin of :func:`apply_batch` (bit-identical).

    Same contract as :func:`apply_batch`, with one extension: ``times``
    may hold one entry per *item* while ``cell_idx`` is laid out
    item-major with ``k`` touches per item (``cell_idx.size == k *
    times.size``); the expansion to per-touch times happens here.  The
    shared-memory transport routes flushes here via
    ``AlgoDescriptor.apply_columnar``.
    """
    if times.size == 0:
        return
    times = np.asarray(times, dtype=np.int64)
    cell_idx = np.asarray(cell_idx)
    if cell_idx.dtype.kind not in "iu":
        cell_idx = cell_idx.astype(np.int64)
    if cell_idx.size % times.size:
        raise ValueError(
            f"cell_idx ({cell_idx.size}) must be a multiple of "
            f"times ({times.size})"
        )
    if isinstance(frame, HardwareFrame):
        _apply_columnar_hardware(frame, times, cell_idx, values, kind)
    elif isinstance(frame, SoftwareFrame):
        if times.size != cell_idx.size:
            times = np.repeat(times, cell_idx.size // times.size)
        _apply_columnar_software(frame, times, cell_idx, values, kind)
    else:
        raise TypeError(f"unsupported frame type {type(frame).__name__}")
