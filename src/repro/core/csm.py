"""Common Sketch Model (CSM) — the ⟨C, K, F⟩ abstraction of §3.1 / Fig. 2.

The paper characterises a fixed-window sketch by a triple:

* ``C`` — cell type (bit or counter),
* ``K`` — how many cells one insertion touches,
* ``F`` — the update function applied independently to each touched
  cell, ``y <- F(x, y)``.

Enumerating the update functions (rather than accepting arbitrary
callables) is what makes the framework *hardware-realisable*: each
:class:`UpdateKind` maps onto a one-cycle ALU op in the pipeline model
(:mod:`repro.hardware.she_rtl`).  The five canonical instantiations
from Fig. 2 are provided as module constants.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = [
    "CellType",
    "UpdateKind",
    "CsmSpec",
    "BLOOM_FILTER_SPEC",
    "BITMAP_SPEC",
    "HYPERLOGLOG_SPEC",
    "COUNT_MIN_SPEC",
    "MINHASH_SPEC",
]


class CellType(enum.Enum):
    """Cell type ``C`` of the CSM triple."""

    BIT = "bit"
    COUNTER = "counter"


class UpdateKind(enum.Enum):
    """Update function ``F`` of the CSM triple (Fig. 2, rightmost column)."""

    SET_ONE = "set_one"          # Bloom filter / Bitmap: F(x, y) = 1
    MAX_RANK = "max_rank"        # HyperLogLog: F(x, y) = max(rank(x), y)
    ADD_ONE = "add_one"          # Count-Min: F(x, y) = y + 1
    MIN_HASH = "min_hash"        # MinHash: F(x, y) = min(hash(x), y)


@dataclass(frozen=True)
class CsmSpec:
    """One row of Fig. 2: a fixed-window sketch the framework can lift.

    Attributes:
        name: human-readable algorithm name.
        cell_type: bit or counter cells.
        locations: ``K`` — cells touched per insertion.  ``"all"`` means
            every cell (MinHash touches all ``M`` counters).
        update: the update function ``F``.
        default_cell_bits: hardware width of one cell.
        empty_value: cell value after cleaning (identity of ``F``).
        one_sided: True when the original sketch has one-sided error,
            in which case SHE must ignore *all* young cells (§3.2).
    """

    name: str
    cell_type: CellType
    locations: int | str
    update: UpdateKind
    default_cell_bits: int
    empty_value: int
    one_sided: bool

    def __post_init__(self) -> None:
        if isinstance(self.locations, str) and self.locations != "all":
            raise ValueError("locations must be a positive int or 'all'")
        if isinstance(self.locations, int) and self.locations < 1:
            raise ValueError(f"locations must be >= 1, got {self.locations}")

    def apply(self, values: np.ndarray, cells: np.ndarray) -> np.ndarray:
        """Apply ``F`` elementwise: new cell contents given hash values.

        ``values`` carries what ``F`` needs per touched cell: the HLL
        rank for MAX_RANK, the hash value for MIN_HASH, ignored for
        SET_ONE / ADD_ONE.
        """
        if self.update is UpdateKind.SET_ONE:
            return np.ones_like(cells)
        if self.update is UpdateKind.ADD_ONE:
            return cells + 1
        if self.update is UpdateKind.MAX_RANK:
            return np.maximum(cells, values.astype(cells.dtype))
        if self.update is UpdateKind.MIN_HASH:
            return np.minimum(cells, values.astype(cells.dtype))
        raise AssertionError(f"unhandled update kind {self.update!r}")


BLOOM_FILTER_SPEC = CsmSpec(
    name="Bloom filter",
    cell_type=CellType.BIT,
    locations=8,
    update=UpdateKind.SET_ONE,
    default_cell_bits=1,
    empty_value=0,
    one_sided=True,
)

BITMAP_SPEC = CsmSpec(
    name="Bitmap",
    cell_type=CellType.BIT,
    locations=1,
    update=UpdateKind.SET_ONE,
    default_cell_bits=1,
    empty_value=0,
    one_sided=False,
)

HYPERLOGLOG_SPEC = CsmSpec(
    name="HyperLogLog",
    cell_type=CellType.COUNTER,
    locations=1,
    update=UpdateKind.MAX_RANK,
    default_cell_bits=5,
    empty_value=0,
    one_sided=False,
)

COUNT_MIN_SPEC = CsmSpec(
    name="Count-Min Sketch",
    cell_type=CellType.COUNTER,
    locations=8,
    update=UpdateKind.ADD_ONE,
    default_cell_bits=32,
    empty_value=0,
    one_sided=True,
)

MINHASH_SPEC = CsmSpec(
    name="MinHash",
    cell_type=CellType.COUNTER,
    locations="all",
    update=UpdateKind.MIN_HASH,
    default_cell_bits=24,
    empty_value=(1 << 24) - 1,
    one_sided=False,
)
