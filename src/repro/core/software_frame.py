"""Software-version SHE frame: a sweeping per-cell cleaning process (§3.2).

A virtual cleaning pointer moves over the ``M`` cells at constant speed,
covering the whole array once every ``Tcycle`` time units, resetting
each cell as it passes, then wrapping around.  In continuous terms the
pointer position at time ``t`` is ``p(t) = M * t / Tcycle``; cell ``j``
is cleaned whenever ``p(t)`` crosses ``j + c*M`` for integer ``c``.

We keep everything in exact integer arithmetic: the pointer has crossed
``B(t) = floor(t * M / Tcycle)`` cell boundaries by time ``t``, so
advancing from ``t0`` to ``t1`` resets cell indices ``(B(t0), B(t1)]``
modulo ``M`` (everything, if more than ``M`` boundaries were crossed).

A cell's age is the time since its latest crossing; comparisons against
the window ``N`` use the common numerator ``age * M`` to stay integral.
"""

from __future__ import annotations

import numpy as np

from repro.common.validation import require_positive_int
from repro.core.config import SheConfig

__all__ = ["SoftwareFrame"]


class SoftwareFrame:
    """Cell array cleaned by a constant-speed circular sweep.

    Mirrors the :class:`~repro.core.hardware_frame.HardwareFrame` API so
    the five SHE sketches run on either frame unchanged.  The software
    version has no groups or marks — cleaning is per cell and *eager*
    relative to the stream (applied lazily in code, but the state after
    ``prepare_*`` is exactly what an always-running sweeper would leave).
    """

    def __init__(
        self,
        config: SheConfig,
        num_cells: int,
        *,
        dtype=np.uint8,
        empty_value: int = 0,
        cell_bits: int = 1,
    ):
        self.config = config
        self.num_cells = require_positive_int("num_cells", num_cells)
        # kept for API parity; the sweep ignores grouping
        self.group_width = 1
        self.num_groups = self.num_cells
        self.t_cycle = config.t_cycle
        self.window = config.window
        self.cell_bits = require_positive_int("cell_bits", cell_bits)
        self.empty_value = empty_value
        self.cells = np.full(self.num_cells, empty_value, dtype=dtype)
        # number of cell boundaries the sweeper has crossed so far
        self._boundaries_done = 0
        # cleaning-work telemetry (read by repro.obs.probes); each cell
        # is its own group here, so the two reset counters track together
        self.cleaning_checks = 0
        self.groups_cleaned = 0
        self.cells_cleaned = 0

    # -- sweep bookkeeping ---------------------------------------------------

    def _boundaries_at(self, t: int) -> int:
        """Index of the last boundary crossed by time ``t``.

        Boundary ``b`` (cleaning cell ``b % M``) is crossed at time
        ``ceil(b * Tcycle / M)``, so boundaries ``0..floor(t*M/Tcycle)``
        have all been crossed by integer time ``t`` — boundary 0 at
        ``t = 0``, matching §3.2's "starts from the leftmost cell".
        """
        return (t * self.num_cells) // self.t_cycle

    def advance(self, t: int) -> None:
        """Apply all cleanings the sweeper performed up to time ``t``.

        Cleans the cells of boundaries ``(done, B(t)]``; boundary 0 is
        consumed at construction (the array starts empty).
        """
        self.cleaning_checks += 1
        b1 = self._boundaries_at(t)
        b0 = self._boundaries_done
        if b1 <= b0:
            return
        count = b1 - b0
        swept = min(count, self.num_cells)
        self.groups_cleaned += swept
        self.cells_cleaned += swept
        if count >= self.num_cells:
            self.cells.fill(self.empty_value)
        else:
            start = (b0 + 1) % self.num_cells
            end = start + count
            if end <= self.num_cells:
                self.cells[start:end] = self.empty_value
            else:
                self.cells[start:] = self.empty_value
                self.cells[: end - self.num_cells] = self.empty_value
        self._boundaries_done = b1

    # -- frame protocol --------------------------------------------------------

    def prepare_insert(self, indices: np.ndarray, t: int) -> None:
        self.advance(t)

    def prepare_query(self, indices: np.ndarray, t: int) -> None:
        self.advance(t)

    def prepare_query_all(self, t: int) -> None:
        self.advance(t)

    def group_of(self, indices: np.ndarray) -> np.ndarray:
        """Each cell is its own group in the software version."""
        return np.asarray(indices, dtype=np.int64)

    def _age_numerators(self, indices: np.ndarray, t: int) -> np.ndarray:
        """Cell ages multiplied by ``M`` (exact integers).

        Cell ``j`` was last cleaned at the crossing ``b_j``: the largest
        integer congruent to ``j`` (mod M) with ``b_j <= B(t)``, which
        happened at time ``ceil(b_j * Tcycle / M)``.
        """
        j = np.asarray(indices, dtype=np.int64)
        big_b = self._boundaries_at(t)
        b_j = ((big_b - j) // self.num_cells) * self.num_cells + j
        clean_t = -((-b_j * self.t_cycle) // self.num_cells)  # ceil div
        return (t - clean_t) * self.num_cells

    def ages(self, indices: np.ndarray, t: int) -> np.ndarray:
        """Cell ages in (integer-floored) time units."""
        return self._age_numerators(indices, t) // self.num_cells

    def all_cell_ages(self, t: int) -> np.ndarray:
        return self.ages(np.arange(self.num_cells), t)

    def group_ages(self, t: int) -> np.ndarray:
        """Per-"group" ages; groups are single cells here."""
        return self.all_cell_ages(t)

    def mature_mask(self, indices: np.ndarray, t: int) -> np.ndarray:
        """True where age >= N (perfect or aged cells)."""
        return self._age_numerators(indices, t) >= self.window * self.num_cells

    def legal_mask(self, indices: np.ndarray, t: int) -> np.ndarray:
        """True where age >= beta*N (legal band for estimators)."""
        return self._age_numerators(indices, t) >= self.config.legal_low * self.num_cells

    def legal_groups(self, t: int) -> np.ndarray:
        return self.legal_mask(np.arange(self.num_cells), t)

    def reset(self) -> None:
        self.cells.fill(self.empty_value)
        self._boundaries_done = 0
        self.cleaning_checks = 0
        self.groups_cleaned = 0
        self.cells_cleaned = 0

    @property
    def memory_bytes(self) -> int:
        """Software memory: just the cells (no marks, no timestamps)."""
        bits = self.num_cells * self.cell_bits
        return (bits + 7) // 8
