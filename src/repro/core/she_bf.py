"""SHE-BF: the Bloom filter lifted to sliding windows (§3.2-2, §4.2).

Insertion sets the ``k`` hashed bits like an ordinary Bloom filter; the
frame's cleaning process expires old bits.  Queries apply *age-sensitive
selection*: young bits (age < N) carry incomplete window information and
could create false negatives, so they are ignored; among the remaining
(perfect/aged) mapped bits, any 0 proves the key is absent from the
window.  This preserves the original one-sided error — SHE-BF never
reports a false negative (property-tested in
``tests/core/test_she_bf.py``).

The default ``alpha = 3`` follows Eq. 2 for ``k = 8`` hash functions
(:func:`repro.analysis.optimal_alpha.optimal_alpha`).
"""

from __future__ import annotations

import numpy as np

from repro.common.hashing import HashFamily
from repro.common.validation import as_key_array, require_positive_int
from repro.core.base import FrameKind, SheSketchBase, make_frame
from repro.core.batch import apply_batch
from repro.core.config import SheConfig
from repro.core.csm import UpdateKind

__all__ = ["SheBloomFilter"]


class SheBloomFilter(SheSketchBase):
    """Sliding-window Bloom filter with SHE cleaning.

    Args:
        window: sliding-window size N (items).
        num_bits: number of bits M (rounded down to a group multiple).
        num_hashes: k, the number of hash functions (paper default 8).
        alpha: cleaning stretch; paper default 3 for k=8 (Eq. 2).
        group_width: cells per hardware group (paper default 64).
        frame: ``"hardware"`` (group marks) or ``"software"`` (sweep).
        seed: hash-family seed.
    """

    cell_bits = 1

    def __init__(
        self,
        window: int,
        num_bits: int,
        *,
        num_hashes: int = 8,
        alpha: float = 3.0,
        group_width: int = 64,
        frame: FrameKind = "hardware",
        seed: int = 1,
    ):
        super().__init__()
        require_positive_int("num_bits", num_bits)
        self.config = SheConfig(window=window, alpha=alpha, group_width=group_width)
        m = (num_bits // group_width) * group_width if frame == "hardware" else num_bits
        if m < 1:
            raise ValueError(
                f"num_bits ({num_bits}) must fit at least one group of {group_width}"
            )
        self.num_bits = m
        self.num_hashes = require_positive_int("num_hashes", num_hashes)
        self.hashes = HashFamily(self.num_hashes, seed=seed)
        self.frame = make_frame(
            frame, self.config, m, dtype=np.uint8, empty_value=0, cell_bits=self.cell_bits
        )

    # sizing for a memory budget: the shared SheSketchBase.from_memory

    # -- insertion -----------------------------------------------------------

    def _touch_columns(self, keys: np.ndarray, times: np.ndarray):
        # item-major times: apply_columnar expands to per-touch
        # times itself (one repeat, inside the kernel)
        idx = self.hashes.indices(keys, self.num_bits)  # (n, k)
        return times, idx.reshape(-1), None, UpdateKind.SET_ONE

    def _insert_at(self, keys: np.ndarray, times: np.ndarray) -> None:
        _, idx, values, kind = self._touch_columns(keys, times)
        touch_times = np.repeat(times, self.num_hashes)
        apply_batch(self.frame, touch_times, idx, values, kind)

    # -- queries ---------------------------------------------------------------

    def contains(self, key: int, t: int | None = None) -> bool:
        """Did ``key`` appear within the last N items? (no false negatives)"""
        return bool(self.contains_many(np.asarray([key], dtype=np.uint64), t)[0])

    def contains_many(self, keys, t: int | None = None) -> np.ndarray:
        """Vectorised membership test for a batch of keys."""
        t = self._resolve_time(t)
        keys = as_key_array(keys)
        idx = self.hashes.indices(keys, self.num_bits)  # (n, k)
        flat = idx.reshape(-1)
        self.frame.prepare_query(flat, t)
        mature = self.frame.mature_mask(flat, t).reshape(idx.shape)
        bits = self.frame.cells[flat].reshape(idx.shape).astype(bool)
        # evidence of absence: a mature mapped bit that is 0
        absent = np.any(mature & ~bits, axis=1)
        return ~absent

    def _probe_extra(self) -> dict:
        return {"num_bits": self.num_bits, "num_hashes": self.num_hashes}

    @property
    def memory_bytes(self) -> int:
        return self.frame.memory_bytes

    def reset(self) -> None:
        """Clear all state and rewind the clock."""
        self.frame.reset()
        self.t = 0
