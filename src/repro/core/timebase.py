"""Time-based sliding windows (§3.1).

The SHE machinery is clock-agnostic: ages, marks and the sweep are all
functions of an integer time ``t``.  The five sketch classes drive that
clock with the item count (count-based windows); this module drives it
with *explicit timestamps* instead, giving time-based windows ("items
of the last N seconds") with zero change to the cleaning logic — which
is exactly how §5's analysis transfers ("for time-based sliding window,
we assume that the items arrive at a uniform speed").

``TimedStream`` wraps any single-stream SHE sketch (SHE-BF, SHE-BM,
SHE-HLL, SHE-CM or a generic lift).  Timestamps are non-decreasing
integers in any unit (ticks, microseconds, ...); the wrapped sketch's
``window``/``alpha`` are interpreted in that unit.  Queries answered
"as of" a wall-clock instant take it via their ``t`` parameter.

Example::

    base = SheBloomFilter(window=1_000_000, num_bits=1 << 20)  # 1 s in us
    timed = TimedStream(base)
    timed.insert(key, t_us)
    timed.contains(key)                  # over the last second of arrivals
    base.contains(key, t=now_us)         # over the last second of wall time
"""

from __future__ import annotations

import numpy as np

from repro.common.validation import as_key_array

__all__ = ["TimedStream"]


class TimedStream:
    """Drive a count-based SHE sketch with explicit timestamps.

    Two-stream sketches (SHE-MH) are not supported: their chunked
    insertion assumes a dense per-side clock.  Wrap each side's data in
    a dense re-timestamped stream instead if needed.
    """

    def __init__(self, sketch):
        if hasattr(sketch, "counts"):
            raise TypeError(
                "TimedStream supports single-stream sketches only "
                f"(got {type(sketch).__name__})"
            )
        self.sketch = sketch
        self._last_t = 0

    def insert(self, key: int, t: int) -> None:
        """Insert one item with its arrival timestamp."""
        self.insert_many(np.asarray([key], dtype=np.uint64), np.asarray([t]))

    def insert_many(self, keys, times) -> None:
        """Insert a batch of (key, timestamp) pairs in arrival order."""
        keys = as_key_array(keys)
        times = np.asarray(times, dtype=np.int64)
        if keys.shape != times.shape:
            raise ValueError(
                f"keys ({keys.shape}) and times ({times.shape}) must align"
            )
        if keys.size == 0:
            return
        if times.min() < 0:
            raise ValueError("timestamps must be non-negative")
        if np.any(np.diff(times) < 0) or times[0] < self._last_t:
            raise ValueError("timestamps must be non-decreasing")
        self.sketch._insert_at(keys, times)
        self._last_t = int(times[-1])
        # default query time = just after the latest arrival
        self.sketch.t = self._last_t + 1

    def now(self) -> int:
        """The wrapped clock: latest timestamp + 1."""
        return self._last_t + 1

    def __getattr__(self, name):
        # queries (contains / cardinality / frequency / memory_bytes /
        # reset ...) pass straight through to the wrapped sketch
        return getattr(self.sketch, name)
